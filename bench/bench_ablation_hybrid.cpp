// Ablation: the dynamic hybrid mechanism itself (Section 3.1).  Compares
// the hybrid entropy unit against (a) the same unit with the holding-region
// metastability disabled and (b) a plain 2-ring XOR with no MUX switching,
// at equal XOR fan-in — isolating how much of the entropy comes from the
// dynamic switching.
#include <cstdio>

#include "bench_util.h"
#include "core/hybrid_unit.h"
#include "stats/sp800_90b.h"
#include "support/bitstream.h"
#include "support/rng.h"

namespace {

using namespace dhtrng;

support::BitStream generate_units(const core::HybridUnitParams& params,
                                  int units, std::size_t nbits,
                                  std::uint64_t seed) {
  std::vector<core::HybridUnit> bank;
  support::SplitMix64 seeder(seed);
  for (int u = 0; u < units; ++u) bank.emplace_back(params, seeder.next());
  const noise::PvtScaling nominal{1.0, 1.0, 1.0};
  support::BitStream bs;
  bs.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    bool out = false;
    for (auto& unit : bank) {
      out ^= unit.sample(10000.0, 0.0, nominal, 12.0).out;  // 100 MHz
    }
    bs.push_back(out);
  }
  return bs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bits = static_cast<std::size_t>(
      dhtrng::bench::flag(argc, argv, "bits", 300000));
  const auto units = static_cast<int>(dhtrng::bench::flag(argc, argv, "units", 4));

  dhtrng::bench::header("Ablation - dynamic hybrid mechanism",
                        "DH-TRNG paper, Section 3.1 (entropy unit design)");
  std::printf("config: %d XORed units, %zu bits each variant\n\n", units, bits);

  core::HybridUnitParams full = core::default_hybrid_params();

  core::HybridUnitParams no_hold = full;
  no_hold.hold_capture_prob = 0.0;  // holding region latches deterministically

  core::HybridUnitParams no_smoothing = full;
  no_smoothing.pulse_smoothing = 1.0;  // no pulse-widened edges

  core::HybridUnitParams static_unit = full;
  static_unit.hold_capture_prob = 0.0;
  static_unit.pulse_smoothing = 1.0;  // ~ plain two-ring XOR

  struct Variant {
    const char* name;
    const core::HybridUnitParams* params;
  } variants[] = {
      {"full hybrid unit", &full},
      {"no hold capture (tau=0)", &no_hold},
      {"no pulse smoothing", &no_smoothing},
      {"static 2-ring XOR", &static_unit},
  };

  std::printf("%-26s %10s %10s\n", "variant", "h-mcv", "h-markov");
  for (const auto& v : variants) {
    const auto stream = generate_units(*v.params, units, bits, 42);
    std::printf("%-26s %10.4f %10.4f\n", v.name,
                dhtrng::stats::sp800_90b::mcv(stream).h_min,
                dhtrng::stats::sp800_90b::markov(stream).h_min);
  }
  dhtrng::bench::note("the full unit should lead; removing the holding-region"
                      " metastability costs the most (paper Table 2 margin)");
  return 0;
}
