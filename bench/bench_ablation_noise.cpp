// Ablation: noise-model knobs behind the Table 1 shape (DESIGN.md sec. 6).
// Sweeps the data-dependent supply kick and the per-instance period spread
// of the XOR-RO baseline and reports their effect on min-entropy at short
// and long ring orders — evidence for which mechanism limits which regime.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/baselines/xor_ro_trng.h"
#include "stats/sp800_90b.h"

namespace {

double h_overall(const dhtrng::support::BitStream& bits) {
  using namespace dhtrng::stats::sp800_90b;
  double h = 1.0;
  h = std::min(h, mcv(bits).h_min);
  h = std::min(h, markov(bits).h_min);
  h = std::min(h, lag(bits).h_min);
  h = std::min(h, multi_mmc(bits).h_min);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 150000));

  bench::header("Ablation - noise model mechanisms",
                "DESIGN.md section 6 (Table 1 calibration)");
  std::printf("config: 12 rings, 100 MHz, %zu bits per cell\n\n", bits);

  std::printf("A) data-dependent supply kick (common-mode, hurts short rings)\n");
  std::printf("%-12s %10s %10s\n", "kick (ps)", "h @ N=2", "h @ N=9");
  for (double kick : {0.0, 18.0, 60.0, 120.0}) {
    double h[2];
    int idx = 0;
    for (int stages : {2, 9}) {
      core::XorRoTrng trng({.seed = 77, .stages = stages, .rings = 12,
                            .clock_mhz = 100.0, .data_noise_ps = kick});
      h[idx++] = h_overall(trng.generate(bits));
    }
    std::printf("%-12.0f %10.4f %10.4f\n", kick, h[0], h[1]);
  }

  std::printf("\nB) period spread (decorrelates rings from sampling-clock "
              "resonances)\n");
  std::printf("%-12s %10s %10s\n", "spread", "h @ N=8", "h @ N=9");
  for (double tol : {0.005, 0.02, 0.05, 0.08}) {
    double h[2];
    int idx = 0;
    for (int stages : {8, 9}) {
      core::XorRoTrng trng({.seed = 78, .stages = stages, .rings = 12,
                            .clock_mhz = 100.0, .period_tolerance = tol});
      h[idx++] = h_overall(trng.generate(bits));
    }
    std::printf("%-12.3f %10.4f %10.4f\n", tol, h[0], h[1]);
  }
  bench::note("N=8/9 sit near the T_s/T_ro ~ 2 resonance; small spreads leave"
              " them locked to the sampling clock");
  return 0;
}
