// Ablation: the Section 3.2 reinforcement strategies.
//
// Three views, because the 12-channel XOR output is deliberately saturated
// (the full design has large entropy margin, so output-level statistics
// barely separate the variants — itself a reproduction of the paper's
// robustness claim):
//
//  A) output-level statistics per variant (bias / ACF / h-min / NIST);
//  B) channel-level entropy of a central ring with coupling on vs off —
//     the mechanism the coupling strategy exists for;
//  C) low-noise stress: with the physical noise scaled down 50x, the
//     architecture's chaos is all that is left; the feedback strategy's
//     de-periodization then becomes visible at the output.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/chaotic_ring.h"
#include "core/dhtrng.h"
#include "stats/correlation.h"
#include "stats/sp800_22.h"
#include "stats/sp800_90b.h"

namespace {

using namespace dhtrng;

double max_abs_acf(const support::BitStream& bits, std::size_t lags) {
  double m = 0.0;
  for (double a : stats::autocorrelation(bits, lags)) {
    m = std::max(m, std::abs(a));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 400000));

  bench::header("Ablation - coupling and feedback strategies",
                "DH-TRNG paper, Section 3.2 (design-choice ablation)");

  std::printf("A) output level (%zu bits per variant, Artix-7)\n", bits);
  std::printf("%-34s %9s %10s %10s %8s\n", "variant", "bias(%)", "max|ACF|",
              "h-min", "NIST");
  for (auto [coupling, feedback] :
       {std::pair{true, true}, {true, false}, {false, true}, {false, false}}) {
    core::DhTrng trng({.device = fpga::DeviceModel::artix7(),
                       .seed = 515,
                       .coupling = coupling,
                       .feedback = feedback});
    const auto stream = trng.generate(bits);
    double h = 1.0;
    h = std::min(h, stats::sp800_90b::mcv(stream).h_min);
    h = std::min(h, stats::sp800_90b::markov(stream).h_min);
    h = std::min(h, stats::sp800_90b::multi_mmc(stream).h_min);
    const bool nist = stats::sp800_22::frequency(stream).pass() &&
                      stats::sp800_22::runs(stream).pass() &&
                      stats::sp800_22::serial(stream).pass();
    std::printf("%-34s %9.4f %10.5f %10.4f %8s\n", trng.name().c_str(),
                stats::bias_percent(stream), max_abs_acf(stream, 50), h,
                nist ? "pass" : "FAIL");
  }
  std::printf("(output saturates: the margin hides single-strategy loss — "
              "the paper's robustness)\n\n");

  std::printf("B) central-ring channel entropy (the coupling mechanism)\n");
  {
    const noise::PvtScaling nominal{1.0, 1.0, 1.0};
    for (bool coupling : {true, false}) {
      core::ChaoticRing ring(core::ChaoticRingParams{}, 99);
      support::BitStream channel;
      double pa = 0.17, pb = 0.71;
      for (std::size_t i = 0; i < bits / 2; ++i) {
        pa += 0.311;
        pa -= std::floor(pa);
        pb += 0.477;
        pb -= std::floor(pb);
        ring.advance(1612.9, pa, pb, false, coupling, false, 0.0, nominal);
        channel.push_back(ring.level());
      }
      std::printf("  coupling %-3s : h-markov = %.4f, h-lag = %.4f\n",
                  coupling ? "on" : "off",
                  stats::sp800_90b::markov(channel).h_min,
                  stats::sp800_90b::lag(channel).h_min);
    }
  }
  std::printf("\nC) restart-state divergence (the feedback mechanism)\n");
  std::printf("   Power-on state is identical across restarts; only the\n");
  std::printf("   evolving noise separates runs.  Feedback re-randomizes the\n");
  std::printf("   initial state (Fig. 4b), so restarted streams must\n");
  std::printf("   decorrelate faster.  Noise scaled to 0.05 to expose it.\n");
  for (bool feedback : {true, false}) {
    core::DhTrng trng({.device = fpga::DeviceModel::artix7(),
                       .seed = 303,
                       .feedback = feedback,
                       .noise_scale = 0.05});
    constexpr std::size_t kRestarts = 60;
    constexpr std::size_t kBitsPerRestart = 128;
    std::vector<support::BitStream> runs;
    for (std::size_t r = 0; r < kRestarts; ++r) {
      trng.restart();
      runs.push_back(trng.generate(kBitsPerRestart));
    }
    // Agreement between consecutive restarts, by bit-position block.
    const auto agreement = [&](std::size_t begin) {
      double agree = 0.0;
      for (std::size_t r = 1; r < kRestarts; ++r) {
        const auto diff = support::BitStream::exclusive_or(
            runs[r].slice(begin, 32), runs[r - 1].slice(begin, 32));
        agree += 32.0 - static_cast<double>(diff.count_ones());
      }
      return agree / (32.0 * (kRestarts - 1));
    };
    std::printf("  feedback %-3s : agreement bits 0-31 = %.3f, bits 96-127 = "
                "%.3f (0.5 = fully diverged)\n",
                feedback ? "on" : "off", agreement(0), agreement(96));
  }
  return 0;
}
