// Extension experiment: machine-learning next-bit prediction attack
// (the threat model of the paper's reference [1]) mounted on DH-TRNG, its
// ablated variants and the baselines — a different adversary than the
// statistical batteries of Tables 3-5.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/baselines/coso_trng.h"
#include "core/baselines/latch_trng.h"
#include "core/baselines/msf_ro_trng.h"
#include "core/baselines/tero_trng.h"
#include "core/baselines/xor_ro_trng.h"
#include "core/dhtrng.h"
#include "stats/attack.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 200000));

  bench::header("Extension - ML next-bit prediction attack",
                "threat model of paper ref. [1] (Truong et al., TIFS'18)");
  std::printf("config: %zu bits per target, logistic regression, 24-bit "
              "window + transition features\n\n",
              bits);

  std::vector<std::pair<std::string, std::unique_ptr<core::TrngSource>>>
      targets;
  targets.emplace_back("DH-TRNG", std::make_unique<core::DhTrng>(
                                      core::DhTrngConfig{.seed = 1}));
  targets.emplace_back(
      "DH-TRNG low-noise",
      std::make_unique<core::DhTrng>(core::DhTrngConfig{
          .seed = 2, .noise_scale = 0.05}));
  targets.emplace_back("XOR-RO 9x12",
                       std::make_unique<core::XorRoTrng>(core::XorRoConfig{
                           .seed = 3, .stages = 9, .rings = 12}));
  targets.emplace_back("XOR-RO 9x2 (thin)",
                       std::make_unique<core::XorRoTrng>(core::XorRoConfig{
                           .seed = 4, .stages = 9, .rings = 2}));
  targets.emplace_back("MSFRO (single ring)",
                       std::make_unique<core::MsfRoTrng>(
                           core::MsfRoConfig{.seed = 5}));
  targets.emplace_back("Multiphase (DAC'23)",
                       std::make_unique<core::CosoTrng>(
                           core::CosoConfig{.seed = 6}));
  targets.emplace_back("Latched-RO",
                       std::make_unique<core::LatchTrng>(
                           core::LatchTrngConfig{.seed = 7}));
  targets.emplace_back("TERO (FPL'20)",
                       std::make_unique<core::TeroTrng>(
                           core::TeroConfig{.seed = 8}));

  std::printf("%-22s %12s %9s %s\n", "target", "accuracy", "z-score",
              "verdict");
  for (auto& [name, trng] : targets) {
    const auto result = stats::logistic_attack(trng->generate(bits));
    std::printf("%-22s %11.4f %9.1f  %s\n", name.c_str(),
                result.test_accuracy, result.z_score,
                result.predictable() ? "PREDICTABLE" : "resists");
  }
  bench::note("expected: DH-TRNG (even noise-starved) resists; thin XOR "
              "arrays and raw single-ring samplers leak");
  return 0;
}
