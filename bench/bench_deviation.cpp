// Section 4.3 deviation test: bias of 10 x 1 Mbit sets per device (Eq. 6).
// Paper: 0.0075% (Virtex-6) and 0.0069% (Artix-7).
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto sets = static_cast<std::size_t>(bench::flag(argc, argv, "sets", 10));
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 1000000));

  bench::header("Deviation (bias) test", "DH-TRNG paper, Section 4.3, Eq. 6");
  std::printf("config: %zu sets x %zu bits per device (paper: 10 x 1 Mbit)\n\n",
              sets, bits);

  for (const auto& device : bench::paper_devices()) {
    core::DhTrng trng({.device = device, .seed = 606});
    double total_ones = 0.0, total = 0.0;
    for (std::size_t s = 0; s < sets; ++s) {
      const auto stream = trng.generate(bits);
      total_ones += static_cast<double>(stream.count_ones());
      total += static_cast<double>(stream.size());
    }
    const double bias =
        std::abs(2.0 * total_ones - total) / total * 100.0;
    const double paper = device.process_nm == 45 ? 0.0075 : 0.0069;
    std::printf("%-10s measured bias = %.4f%%   (paper: %.4f%%)\n",
                device.name.c_str(), bias, paper);
  }
  bench::note("bias at this volume is sampling-noise dominated; the criterion"
              " is << 0.1%");
  return 0;
}
