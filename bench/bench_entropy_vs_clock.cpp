// Extension experiment: per-bit min-entropy vs sampling clock — the
// throughput/entropy trade-off every jitter TRNG faces and the design
// space behind the paper's headline claim.
//
// A plain XOR-RO design loses per-sample jitter accumulation as the clock
// rises (sigma_acc ~ kappa*sqrt(T_s)); DH-TRNG's holding-region
// metastability injects entropy per *sample* regardless of T_s, which is
// what lets it run at the PLL limit (620 MHz) with no entropy cliff.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/baselines/xor_ro_trng.h"
#include "core/dhtrng.h"
#include "stats/sp800_90b.h"

namespace {

double h_min(const dhtrng::support::BitStream& bits) {
  using namespace dhtrng::stats::sp800_90b;
  double h = 1.0;
  h = std::min(h, mcv(bits).h_min);
  h = std::min(h, markov(bits).h_min);
  h = std::min(h, lag(bits).h_min);
  h = std::min(h, multi_mmc(bits).h_min);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 200000));
  const auto a7 = fpga::DeviceModel::artix7();

  bench::header("Extension - min-entropy vs sampling clock",
                "design space behind the paper's 620 MHz operating point");
  std::printf("config: %zu bits per cell, Artix-7\n\n", bits);

  std::printf("%10s %12s %14s\n", "clock", "DH-TRNG", "XOR-RO 9x12");
  for (double clock : {25.0, 50.0, 100.0, 200.0, 400.0, 620.0}) {
    core::DhTrng dh({.device = a7, .seed = 21, .clock_mhz = clock});
    core::XorRoTrng ro({.device = a7, .seed = 21, .stages = 9, .rings = 12,
                        .clock_mhz = clock});
    std::printf("%7.0fMHz %12.4f %14.4f\n", clock,
                h_min(dh.generate(bits)), h_min(ro.generate(bits)));
  }
  bench::note("DH-TRNG should stay flat to the PLL limit; the plain RO "
              "array softens as the clock starves jitter accumulation");
  return 0;
}
