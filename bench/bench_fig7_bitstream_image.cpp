// Figure 7: bitstream image — 256x256 bits rendered as black/white pixels
// (and the inverted image).  A uniform pepper-and-salt field with no
// visible texture is the pass criterion; we also print quadrant counts and
// write the PBM files next to the binary.
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto side = static_cast<std::size_t>(bench::flag(argc, argv, "side", 256));

  bench::header("Figure 7 - bitstream image", "DH-TRNG paper, Section 4.3");

  core::DhTrng trng({.device = fpga::DeviceModel::artix7(), .seed = 7});
  const auto bits = trng.generate(side * side);

  for (bool invert : {false, true}) {
    const std::string path =
        std::string("fig7_bitstream") + (invert ? "_inverted" : "") + ".pbm";
    std::ofstream out(path);
    out << bits.to_pbm(side, side, invert);
    std::printf("wrote %s (%zux%zu)\n", path.c_str(), side, side);
  }

  // Uniformity evidence: ones density per quadrant and overall bias.
  std::printf("\nquadrant ones density (expect ~0.5 each):\n");
  const std::size_t half = side / 2;
  for (std::size_t qy = 0; qy < 2; ++qy) {
    for (std::size_t qx = 0; qx < 2; ++qx) {
      std::size_t ones = 0;
      for (std::size_t y = 0; y < half; ++y) {
        ones += bits.count_ones((qy * half + y) * side + qx * half, half);
      }
      std::printf("  Q(%zu,%zu): %.4f", qx, qy,
                  static_cast<double>(ones) / static_cast<double>(half * half));
    }
    std::printf("\n");
  }
  std::printf("overall bias: %.4f%% (uniform black/white as in the paper)\n",
              stats::bias_percent(bits));
  return 0;
}
