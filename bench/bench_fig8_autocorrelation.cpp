// Figure 8: autocorrelation function of 1 Mbit for lags 1..100, per device.
// Pass criterion (Karl Pearson, as cited by the paper): |ACF| < 0.3 at all
// lags; a healthy generator sits around |ACF| ~ 1/sqrt(n) ~ 0.001.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 1000000));
  const auto lags = static_cast<std::size_t>(bench::flag(argc, argv, "lags", 100));

  bench::header("Figure 8 - autocorrelation function test",
                "DH-TRNG paper, Section 4.4");
  std::printf("config: %zu bits, lags 1..%zu, criterion |ACF| < 0.3\n", bits,
              lags);

  for (const auto& device : bench::paper_devices()) {
    core::DhTrng trng({.device = device, .seed = 808});
    const auto stream = trng.generate(bits);
    const auto acf = stats::autocorrelation(stream, lags);
    double max_abs = 0.0;
    std::size_t worst = 1;
    for (std::size_t lag = 0; lag < acf.size(); ++lag) {
      if (std::abs(acf[lag]) > max_abs) {
        max_abs = std::abs(acf[lag]);
        worst = lag + 1;
      }
    }
    std::printf("\n--- %s ---\n", device.name.c_str());
    std::printf("lag:  1..10 = ");
    for (std::size_t lag = 0; lag < 10; ++lag) std::printf("%+.4f ", acf[lag]);
    std::printf("\nmax |ACF| = %.5f at lag %zu -> %s (criterion 0.3)\n",
                max_abs, worst, max_abs < 0.3 ? "PASS" : "FAIL");
  }
  return 0;
}
