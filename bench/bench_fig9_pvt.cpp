// Figure 9: PVT sweep — SP 800-90B min-entropy across temperature
// (-20..80 C) and core voltage (0.8..1.2 V) for both devices.
//
// Paper observation: maximum min-entropy at the nominal corner (20 C,
// 1.0 V); a slight decrease toward the corners but consistently high.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/sp800_90b.h"

namespace {

double corner_min_entropy(const dhtrng::support::BitStream& bits) {
  using namespace dhtrng::stats::sp800_90b;
  double h = 1.0;
  h = std::min(h, mcv(bits).h_min);
  h = std::min(h, markov(bits).h_min);
  h = std::min(h, multi_mmc(bits).h_min);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 300000));

  bench::header("Figure 9 - PVT test", "DH-TRNG paper, Section 4.5");
  std::printf("config: %zu bits per corner (paper: 100 x 1 Mbit per corner)\n",
              bits);

  const double temps[] = {-20.0, 0.0, 20.0, 40.0, 60.0, 80.0};
  const double volts[] = {0.8, 0.9, 1.0, 1.1, 1.2};

  for (const auto& device : bench::paper_devices()) {
    std::printf("\n--- %s : min-entropy surface ---\n", device.name.c_str());
    std::printf("  T\\V   ");
    for (double v : volts) std::printf("  %.1fV  ", v);
    std::printf("\n");
    double nominal = 0.0, worst = 1.0;
    for (double t : temps) {
      std::printf("%+5.0fC  ", t);
      for (double v : volts) {
        core::DhTrng trng({.device = device,
                           .pvt = {t, v},
                           .seed = 9000 + static_cast<std::uint64_t>(t + 100) * 13 +
                                   static_cast<std::uint64_t>(v * 10)});
        const double h = corner_min_entropy(trng.generate(bits));
        if (t == 20.0 && v == 1.0) nominal = h;
        worst = std::min(worst, h);
        std::printf(" %.4f ", h);
      }
      std::printf("\n");
    }
    std::printf("nominal (20C, 1.0V): %.4f   worst corner: %.4f\n", nominal,
                worst);
    std::printf("=> %s\n",
                worst > 0.9 ? "slight corner decrease, consistently high "
                              "(matches paper's qualitative claim)"
                            : "corner degradation larger than paper's");
  }
  return 0;
}
