// Bulk-generation microbenchmark: the bitsliced SoA backend (DhTrngSoA,
// 64 instances per 64-bit word) against the scalar per-instance path
// (DhTrngArray::generate_parallel on one thread), with machine-readable
// JSON output (BENCH_gen.json) and a perf-trajectory record so CI can
// track the numbers across commits.
//
// Like bench_sim_microbench, the CI regression gate compares the
// *speedup* (scalar ns/bit over SoA ns/bit) rather than absolute rates:
// both paths run on the same machine in the same process, so the ratio is
// stable across runners and the checked-in bench/BENCH_gen_baseline.json
// stays meaningful anywhere.
//
// Flags:
//   --quick               short run (CI); default sizes a longer run
//   --bits=<n>            bits generated per rep on each path
//   --seed=<n>            master seed (default 1)
//   --reps=<n>            best-of reps after one warmup rep (default 3)
//   --out=<path>          JSON output path (default BENCH_gen.json)
//   --trajectory=<path>   JSON-lines trajectory file to append to
//                         (default bench/trajectory/BENCH_gen_trajectory.jsonl)
//   --baseline=<path>     compare speedup against a baseline JSON;
//                         exit 1 on >--max-regress-pct regression
//   --max-regress-pct=<p> allowed speedup regression in percent (default 20)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dhtrng_array.h"
#include "core/dhtrng_soa.h"
#include "support/bitstream.h"

namespace {

double baseline_value(const std::string& json, const char* key) {
  const std::string tag = std::string("\"") + key + "\":";
  const std::size_t at = json.find(tag);
  if (at == std::string::npos) return -1.0;
  return std::atof(json.c_str() + at + tag.size());
}

}  // namespace

int main(int argc, char** argv) {
  using dhtrng::bench::flag;
  using dhtrng::bench::flag_set;
  using dhtrng::bench::flag_str;

  const bool quick = flag_set(argc, argv, "quick");
  const std::size_t nbits = static_cast<std::size_t>(
      flag(argc, argv, "bits", quick ? 256000 : 1024000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
  const int reps = static_cast<int>(flag(argc, argv, "reps", 3));
  const std::string out_path = flag_str(argc, argv, "out", "BENCH_gen.json");
  const std::string traj_path =
      flag_str(argc, argv, "trajectory",
               dhtrng::bench::trajectory_path("gen"));
  const std::string baseline_path = flag_str(argc, argv, "baseline", "");
  const double max_regress_pct =
      static_cast<double>(flag(argc, argv, "max-regress-pct", 20));

  dhtrng::bench::header(
      "gen microbench: bitsliced SoA backend vs scalar per-instance path",
      "bulk-generation speedup (repo infrastructure; not a paper table)");
  std::printf("config: %zu bits per rep, seed %llu, best of %d%s\n\n", nbits,
              static_cast<unsigned long long>(seed), reps,
              quick ? " (--quick)" : "");

  // Scalar path: one DH-TRNG instance advanced on one thread.  The SoA
  // acceptance metric is per-core, so the scalar side must not be allowed
  // to fan out.
  dhtrng::core::DhTrngArrayConfig scalar_cfg;
  scalar_cfg.core.seed = seed;
  scalar_cfg.cores = 1;
  dhtrng::core::DhTrngArray scalar(scalar_cfg);
  const double scalar_s = dhtrng::bench::best_of_seconds(reps, [&] {
    dhtrng::support::BitStream bits = scalar.generate_parallel(nbits, 1);
    if (bits.size() != nbits) std::abort();
  });

  // SoA path: 64 bitsliced instances per word, fast noise engine.
  dhtrng::core::DhTrngSoAConfig soa_cfg;
  soa_cfg.core.seed = seed;
  dhtrng::core::DhTrngSoA soa(soa_cfg);
  const std::size_t nwords = nbits / 64;
  std::vector<std::uint64_t> words(nwords);
  const double soa_s = dhtrng::bench::best_of_seconds(reps, [&] {
    soa.generate_words(words.data(), nwords);
  });

  const double scalar_ns_bit = scalar_s * 1e9 / static_cast<double>(nbits);
  const double soa_ns_bit =
      soa_s * 1e9 / static_cast<double>(nwords * 64);
  const double scalar_mbps = 1e3 / scalar_ns_bit;
  const double soa_mbps = 1e3 / soa_ns_bit;
  const double speedup = scalar_ns_bit / soa_ns_bit;

  std::printf("%-28s %10.1f ns/bit  %8.2f Mbit/s\n",
              "scalar (array, 1 thread)", scalar_ns_bit, scalar_mbps);
  std::printf("%-28s %10.1f ns/bit  %8.2f Mbit/s\n", "SoA (64 lanes)",
              soa_ns_bit, soa_mbps);
  std::printf("%-28s %9.2fx\n\n", "speedup", speedup);

  std::ostringstream json;
  json << "{\n  \"bench\": \"gen_soa\",\n";
  json << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  json << "  \"bits\": " << nbits << ",\n  \"seed\": " << seed << ",\n";
  json << "  \"scalar_ns_per_bit\": " << scalar_ns_bit << ",\n";
  json << "  \"soa_ns_per_bit\": " << soa_ns_bit << ",\n";
  json << "  \"scalar_mbit_per_s\": " << scalar_mbps << ",\n";
  json << "  \"soa_mbit_per_s\": " << soa_mbps << ",\n";
  json << "  \"speedup\": " << speedup << "\n}\n";
  {
    std::ofstream out(out_path);
    out << json.str();
  }
  dhtrng::bench::append_trajectory(
      traj_path, "gen_soa", soa_ns_bit, soa_mbps,
      "\"speedup_vs_scalar\": " + std::to_string(speedup));
  std::printf("wrote %s and appended %s\n", out_path.c_str(),
              traj_path.c_str());

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const double want = baseline_value(buf.str(), "speedup");
    if (want <= 0.0) {
      std::printf("FAIL: baseline has no \"speedup\" entry\n");
      return 1;
    }
    const double floor = want * (1.0 - max_regress_pct / 100.0);
    const bool pass = speedup >= floor;
    std::printf("baseline speedup %.2fx vs %.2fx (floor %.2fx): %s\n",
                speedup, want, floor, pass ? "ok" : "REGRESSION");
    if (!pass) return 1;
  }
  return 0;
}
