// Model-validation experiment: the gate-level engine's jitter statistics
// against the analytic noise model (paper Eq. 1 and the white-FM
// sqrt-accumulation law the phase-domain backends assume).
//
// For rings of order 3..11 it reports mean period, per-period jitter and
// the accumulated-jitter scaling exponent (0.5 = white FM); DESIGN.md's
// backend-equivalence argument rests on these matching.
#include <cstdio>

#include "bench_util.h"
#include "core/jitter_analysis.h"
#include "core/ro.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const double sim_us = static_cast<double>(bench::flag(argc, argv, "us", 4));

  bench::header("Model validation - gate-level oscillator jitter",
                "noise model behind paper Eq. 1 (DESIGN.md sec. 2)");
  const auto device = fpga::DeviceModel::artix7();
  std::printf("device %s, per-gate white sigma %.2f ps, %g us per ring\n\n",
              device.name.c_str(), device.gate_jitter.white_sigma_ps, sim_us);

  std::printf("%6s %12s %14s %16s %10s\n", "stages", "period(ps)",
              "jitter(ps)", "jitter/period", "exponent");
  for (int stages : {3, 5, 7, 9, 11}) {
    sim::Circuit c;
    const sim::NetId en = c.add_net("en");
    c.set_initial(en, true);
    const double element =
        device.lut_delay_ps + 0.35 * device.net_delay_ps;
    const sim::NetId out =
        core::build_ring_oscillator(c, "ro", stages, en, element);
    sim::SimConfig cfg;
    cfg.seed = 99;
    cfg.gate_jitter = device.gate_jitter;
    sim::Simulator sim(c, cfg);
    sim.record_edges(out);
    sim.run_until(sim_us * 1e6);
    const auto a = core::analyze_edge_times(sim.edge_times(out));
    std::printf("%6d %12.1f %14.3f %15.2e %10.2f\n", stages,
                a.mean_period_ps, a.period_jitter_ps,
                a.period_jitter_ps / a.mean_period_ps, a.scaling_exponent);
  }
  bench::note("expect period = 2*N*element, jitter growing with sqrt(N) per "
              "period, exponent ~0.5 (white FM; flicker pushes it up)");
  return 0;
}
