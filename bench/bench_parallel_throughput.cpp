// Parallel entropy service scaling: DhTrngArray::generate_parallel over a
// range of worker-thread counts (with a bit-identity check against the
// serial path on every run), and EntropyPool end-to-end service throughput
// as the producer count grows.
//
// The simulation cores are embarrassingly parallel — each DhTrng core owns
// its state — so on an N-way machine the parallel path approaches N x the
// serial throughput (minus the final interleave merge, which is serial).
// On a single-core container every row collapses to ~1x; the bit-identity
// column is still meaningful there.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/dhtrng_array.h"
#include "core/entropy_pool.h"
#include "support/thread_pool.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto cores =
      static_cast<std::size_t>(bench::flag(argc, argv, "cores", 8));
  const auto bits =
      static_cast<std::size_t>(bench::flag(argc, argv, "bits", 2000000));
  const auto max_threads = static_cast<std::size_t>(bench::flag(
      argc, argv, "max-threads",
      static_cast<long long>(support::ThreadPool::hardware_threads())));
  const auto pool_bytes =
      static_cast<std::size_t>(bench::flag(argc, argv, "pool-bytes", 16384));

  bench::header("Parallel generation throughput",
                "concurrency layer scaling (not a paper table)");
  std::printf("hardware threads: %zu; array: %zu cores; %zu bits per run\n",
              support::ThreadPool::hardware_threads(), cores, bits);

  // Serial reference (also the correctness oracle for every parallel run).
  core::DhTrngArray reference({.core = {.seed = 42}, .cores = cores});
  auto t0 = std::chrono::steady_clock::now();
  const auto serial_bits = reference.generate(bits);
  const double serial_s = seconds_since(t0);
  const double serial_mbps =
      static_cast<double>(bits) / serial_s / 1e6;
  std::printf("\n%-18s %10s %10s %9s %s\n", "path", "time [s]", "Mbit/s",
              "speedup", "bit-identical");
  std::printf("%-18s %10.3f %10.2f %9s %s\n", "serial", serial_s, serial_mbps,
              "1.00x", "-");

  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    core::DhTrngArray array({.core = {.seed = 42}, .cores = cores});
    t0 = std::chrono::steady_clock::now();
    const auto parallel_bits = array.generate_parallel(bits, threads);
    const double s = seconds_since(t0);
    char label[32];
    std::snprintf(label, sizeof label, "parallel t=%zu", threads);
    std::printf("%-18s %10.3f %10.2f %8.2fx %s\n", label, s,
                static_cast<double>(bits) / s / 1e6, serial_s / s,
                parallel_bits == serial_bits ? "yes" : "NO (BUG)");
  }

  std::printf("\nEntropyPool service throughput (%zu bytes per request):\n",
              pool_bytes);
  std::printf("%-18s %10s %10s\n", "producers", "time [s]", "Mbit/s");
  for (std::size_t producers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
    auto pool = core::EntropyPool::of_dhtrng(
        {.producers = producers, .buffer_bytes = 1u << 15, .block_bits = 4096},
        {.seed = 7});
    (void)pool.get_bytes(1024);  // warm-up: producers running, buffer primed
    t0 = std::chrono::steady_clock::now();
    (void)pool.get_bytes(pool_bytes);
    const double s = seconds_since(t0);
    std::printf("%-18zu %10.3f %10.2f\n", producers, s,
                static_cast<double>(pool_bytes) * 8.0 / s / 1e6);
  }
  return 0;
}
