// Section 4.2 restart test: power-cycle the generator six times, capture
// the first 32 bits each time; all captures must differ.
//
// Paper's captures: 0x8E8F7BE6 0xD448223A 0x2ED82918 0x79DA4E4B 0x51A602A9
// 0xDB9E49EC (all distinct).  Ours are different numbers (different noise),
// but the property under test is distinctness and near-chance pairwise
// agreement.
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/restart.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto restarts = static_cast<std::size_t>(bench::flag(argc, argv, "restarts", 6));

  bench::header("Restart test", "DH-TRNG paper, Section 4.2");

  for (const auto& device : bench::paper_devices()) {
    std::printf("\n--- %s (fast backend) ---\n", device.name.c_str());
    core::DhTrng trng({.device = device, .seed = 20260706});
    const auto result = stats::restart_test(trng, restarts, 32);
    for (std::size_t i = 0; i < result.first_words.size(); ++i) {
      std::printf("restart %zu: 0x%08X\n", i + 1, result.first_words[i]);
    }
    std::printf("all distinct: %s (paper: yes)   max pairwise agreement: %.2f\n",
                result.all_distinct ? "yes" : "NO",
                result.max_pairwise_agreement);
  }

  // Also exercise the gate-level backend (fewer restarts; it is slower).
  std::printf("\n--- Artix-7 (gate-level backend) ---\n");
  core::DhTrng gate({.device = fpga::DeviceModel::artix7(),
                     .seed = 99,
                     .backend = core::Backend::GateLevel});
  const auto result = stats::restart_test(gate, 3, 32);
  for (std::size_t i = 0; i < result.first_words.size(); ++i) {
    std::printf("restart %zu: 0x%08X\n", i + 1, result.first_words[i]);
  }
  std::printf("all distinct: %s\n", result.all_distinct ? "yes" : "NO");
  return 0;
}
