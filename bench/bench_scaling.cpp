// Extension experiment: multi-core DH-TRNG scaling (the paper's
// "application prospects" — confidential computing / TEE bandwidths).
// Because all cores share one PLL, whose power dominates the budget, the
// figure of merit improves with core count until the per-core terms catch
// up.
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng_array.h"
#include "fpga/power.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 100000));

  bench::header("Extension - multi-core DH-TRNG scaling",
                "paper Section 1 application scenarios (Artix-7)");

  const auto a7 = fpga::DeviceModel::artix7();
  std::printf("%5s %9s %7s %12s %9s %12s %9s\n", "cores", "Gbps", "slices",
              "power (W)", "FoM", "bias (%)", "mJ/Gbit");
  for (std::size_t cores : {1u, 2u, 4u, 8u, 16u}) {
    core::DhTrngArray array({.core = {.device = a7, .seed = 11},
                             .cores = cores});
    const auto power = fpga::estimate_power(a7, array.activity());
    const std::size_t slices = array.slice_report().slice_count();
    const double fom = array.throughput_mbps() /
                       (static_cast<double>(slices) * power.total_w());
    const auto stream = array.generate(bits);
    const double energy_mj_per_gbit =
        power.total_w() / array.throughput_mbps() * 1e3 * 1e3;
    std::printf("%5zu %9.3f %7zu %12.3f %9.1f %12.4f %9.2f\n", cores,
                array.throughput_mbps() / 1000.0, slices, power.total_w(),
                fom, stats::bias_percent(stream), energy_mj_per_gbit);
  }
  bench::note("single-core FoM reproduces Table 6's 'This work' row; the "
              "shared PLL amortizes *energy per bit* (last column, ~8x "
              "better at 16 cores) while the slice-normalized FoM slowly "
              "falls as per-core power terms accumulate");
  return 0;
}
