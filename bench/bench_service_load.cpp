// Entropy-service event-loop load generator: an in-process EntropyServer
// over fast PRNG-backed producers, driven closed-loop (one request in
// flight per connection) by non-blocking driver threads that reuse the
// server's own Poller abstraction.  Each phase holds N concurrent TCP
// connections (default 64, 512, 4096) and reports sustained throughput
// plus p50/p99/p999 request latency.
//
//   bench_service_load [--connections=64,512,4096] [--drivers=D]
//                      [--request-bytes=R] [--shards=S] [--window-ms=W]
//                      [--warmup-ms=U] [--quick]
//                      [--out=PATH] [--trajectory=PATH]
//                      [--baseline=PATH] [--max-regress-pct=P]
//
// The CI gate compares *scaling efficiency* — throughput at the largest
// connection count over throughput at the smallest — because the ratio is
// runner-independent (absolute rates are not): a healthy event loop keeps
// nearly flat throughput as connections fan out, a regressed one (per-
// connection allocations, O(conns) scans, thundering herds) decays.
// Checked-in baseline: bench/BENCH_service_baseline.json.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <sys/resource.h>
#include <sys/socket.h>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "core/trng.h"
#include "service/client.h"
#include "service/entropy_server.h"
#include "service/frame_assembler.h"
#include "service/poller.h"
#include "support/rng.h"

namespace {

using namespace dhtrng;

/// PRNG-backed TrngSource: buffers 64 bits per xoshiro draw so next_bit is
/// a shift, keeping the pool producers far faster than the socket path.
class FastSource final : public core::TrngSource {
 public:
  explicit FastSource(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "xoshiro-bench"; }
  bool next_bit() override {
    if (left_ == 0) {
      word_ = rng_();
      left_ = 64;
    }
    const bool bit = (word_ & 1u) != 0;
    word_ >>= 1;
    --left_;
    return bit;
  }
  void restart() override {}
  sim::ResourceCounts resources() const override { return {}; }
  double clock_mhz() const override { return 0.0; }
  fpga::ActivityEstimate activity() const override { return {}; }

 private:
  support::Xoshiro256 rng_;
  std::uint64_t word_ = 0;
  int left_ = 0;
};

double baseline_value(const std::string& json, const char* key) {
  const std::string tag = std::string("\"") + key + "\":";
  const std::size_t at = json.find(tag);
  if (at == std::string::npos) return -1.0;
  return std::atof(json.c_str() + at + tag.size());
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raise RLIMIT_NOFILE to hold `conns` client + `conns` server fds plus
/// headroom; returns the connection count the limit can actually carry.
std::size_t raise_fd_limit(std::size_t conns) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return conns;
  const rlim_t want = static_cast<rlim_t>(2 * conns + 1024);
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = std::min(want, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  if (rl.rlim_cur >= want) return conns;
  const std::size_t fit = (static_cast<std::size_t>(rl.rlim_cur) - 1024) / 2;
  std::printf("warning: RLIMIT_NOFILE=%llu caps connections at %zu\n",
              static_cast<unsigned long long>(rl.rlim_cur), fit);
  return fit;
}

/// One closed-loop connection: send the (constant) GET frame, read the
/// full response, record the round-trip, repeat.
struct LoadConn {
  service::Socket sock;
  service::FrameAssembler assembler;
  std::size_t sent = 0;         ///< bytes of the request frame written
  std::uint64_t t_start = 0;    ///< ns at request-send start
  bool awaiting = false;        ///< request fully sent, response pending
  bool want_write = false;

  explicit LoadConn(service::Socket s, std::size_t max_payload)
      : sock(std::move(s)), assembler(max_payload) {}
};

struct PhaseResult {
  std::size_t connections = 0;
  double throughput_mbit_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t completed = 0;
};

struct DriverStats {
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t completed = 0;
};

void driver_loop(std::vector<LoadConn>& conns,
                 const std::vector<std::uint8_t>& request,
                 std::uint64_t measure_start_ns, std::uint64_t deadline_ns,
                 DriverStats& stats) {
  service::Poller poller;
  for (LoadConn& c : conns) {
    poller.add(c.sock.fd(), /*want_read=*/true, /*want_write=*/false);
  }
  // fd -> connection for event dispatch.
  std::unordered_map<int, LoadConn*> by_fd;
  for (LoadConn& c : conns) by_fd.emplace(c.sock.fd(), &c);

  bool measuring = false;
  std::vector<std::uint8_t> payload;
  std::uint8_t buf[16384];

  const auto pump_send = [&](LoadConn& c) {
    while (c.sent < request.size()) {
      const ssize_t w = ::send(c.sock.fd(), request.data() + c.sent,
                               request.size() - c.sent, MSG_NOSIGNAL);
      if (w > 0) {
        c.sent += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          poller.mod(c.sock.fd(), true, true);
        }
        return;
      }
      return;  // peer reset; this connection goes idle
    }
    if (c.want_write) {
      c.want_write = false;
      poller.mod(c.sock.fd(), true, false);
    }
    c.awaiting = true;
  };
  const auto start_request = [&](LoadConn& c) {
    c.sent = 0;
    c.awaiting = false;
    c.t_start = now_ns();
    pump_send(c);
  };

  for (LoadConn& c : conns) start_request(c);

  std::vector<service::Poller::Event> events;
  while (true) {
    const std::uint64_t now = now_ns();
    if (now >= deadline_ns) break;
    if (!measuring && now >= measure_start_ns) {
      stats.latencies_ns.clear();
      stats.completed = 0;
      measuring = true;
    }
    const int timeout_ms = static_cast<int>(
        std::min<std::uint64_t>((deadline_ns - now) / 1000000u + 1, 100));
    poller.wait(events, timeout_ms);
    for (const auto& event : events) {
      auto it = by_fd.find(event.fd);
      if (it == by_fd.end()) continue;
      LoadConn& c = *it->second;
      if (event.writable && !c.awaiting) pump_send(c);
      if (!(event.readable || event.hangup)) continue;
      while (true) {
        const ssize_t r = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
        if (r > 0) {
          c.assembler.feed(buf, static_cast<std::size_t>(r));
          while (c.assembler.next(payload)) {
            const std::uint64_t rtt = now_ns() - c.t_start;
            if (measuring) {
              stats.latencies_ns.push_back(rtt);
              ++stats.completed;
            }
            start_request(c);
          }
          continue;
        }
        if (r < 0 && errno == EINTR) continue;
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // EOF or hard error (server stopping): retire the connection.
        poller.del(c.sock.fd());
        by_fd.erase(it);
        break;
      }
    }
    if (by_fd.empty()) break;
  }
}

double percentile_us(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]) / 1e3;
}

PhaseResult run_phase(service::EntropyServer& server, std::size_t conns,
                      std::size_t drivers, std::uint32_t request_bytes,
                      int warmup_ms, int window_ms) {
  const auto request =
      service::encode_get_request(service::Quality::Raw, request_bytes);
  const std::size_t max_payload = request_bytes + 64;

  // Establish every connection up front (the phase measures steady state,
  // not connect storms).
  std::vector<std::vector<LoadConn>> per_driver(drivers);
  for (std::size_t i = 0; i < conns; ++i) {
    service::Socket sock =
        service::connect_tcp("127.0.0.1", server.tcp_port());
    if (!sock.valid()) {
      std::printf("FAIL: connect %zu/%zu refused\n", i, conns);
      std::exit(1);
    }
    sock.set_nonblocking(true);
    sock.set_nodelay();
    per_driver[i % drivers].emplace_back(std::move(sock), max_payload);
  }

  const std::uint64_t t0 = now_ns();
  const std::uint64_t measure_start =
      t0 + static_cast<std::uint64_t>(warmup_ms) * 1000000u;
  const std::uint64_t deadline =
      measure_start + static_cast<std::uint64_t>(window_ms) * 1000000u;

  std::vector<DriverStats> stats(drivers);
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::size_t d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] {
      driver_loop(per_driver[d], request, measure_start, deadline, stats[d]);
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<std::uint64_t> all;
  std::uint64_t completed = 0;
  for (const DriverStats& s : stats) {
    all.insert(all.end(), s.latencies_ns.begin(), s.latencies_ns.end());
    completed += s.completed;
  }
  std::sort(all.begin(), all.end());

  PhaseResult result;
  result.connections = conns;
  result.completed = completed;
  const double window_s = static_cast<double>(window_ms) / 1e3;
  result.throughput_mbit_s = static_cast<double>(completed) *
                             static_cast<double>(request_bytes) * 8.0 /
                             window_s / 1e6;
  result.p50_us = percentile_us(all, 0.50);
  result.p99_us = percentile_us(all, 0.99);
  result.p999_us = percentile_us(all, 0.999);

  // Drop the connections and wait for the server to reap the slots so the
  // next phase starts clean.
  per_driver.clear();
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using dhtrng::bench::flag;
  using dhtrng::bench::flag_set;
  using dhtrng::bench::flag_str;

  const bool quick = flag_set(argc, argv, "quick");
  const std::string conn_list =
      flag_str(argc, argv, "connections", quick ? "64,256" : "64,512,4096");
  const auto drivers = static_cast<std::size_t>(
      std::max<long long>(1, flag(argc, argv, "drivers", 2)));
  const auto request_bytes = static_cast<std::uint32_t>(
      flag(argc, argv, "request-bytes", 256));
  const auto shards =
      static_cast<std::size_t>(flag(argc, argv, "shards", 4));
  const int warmup_ms =
      static_cast<int>(flag(argc, argv, "warmup-ms", quick ? 100 : 250));
  const int window_ms =
      static_cast<int>(flag(argc, argv, "window-ms", quick ? 400 : 1000));
  const std::string out_path =
      flag_str(argc, argv, "out", "BENCH_service_load.json");
  const std::string traj_path = flag_str(argc, argv, "trajectory",
                                         dhtrng::bench::trajectory_path("service"));
  const std::string baseline_path = flag_str(argc, argv, "baseline", "");
  const double max_regress_pct =
      static_cast<double>(flag(argc, argv, "max-regress-pct", 20));

  std::vector<std::size_t> conn_counts;
  {
    std::stringstream ss(conn_list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) conn_counts.push_back(std::stoull(item));
    }
  }
  if (conn_counts.empty()) conn_counts = {64};
  const std::size_t fit = raise_fd_limit(
      *std::max_element(conn_counts.begin(), conn_counts.end()));
  for (std::size_t& c : conn_counts) c = std::min(c, fit);

  dhtrng::bench::header(
      "service load: event-loop latency/throughput vs connection fan-out",
      "serving-layer scaling (repo infrastructure; not a paper table)");
  std::printf("config: connections {%s}, %zu drivers, %u-byte GETs, "
              "%zu shards, %d ms window%s\n\n",
              conn_list.c_str(), drivers, request_bytes, shards, window_ms,
              quick ? " (--quick)" : "");

  dhtrng::service::EntropyServerConfig cfg;
  cfg.shards = shards;
  cfg.max_connections =
      *std::max_element(conn_counts.begin(), conn_counts.end()) + 64;
  cfg.max_request_bytes = request_bytes;
  cfg.pool.producers = 4;
  cfg.pool.buffer_bytes = 1 << 20;
  cfg.pool.block_bits = 1 << 15;
  dhtrng::service::EntropyServer server(
      cfg, [](std::size_t, std::uint64_t seed) {
        return std::make_unique<FastSource>(seed);
      });

  std::printf("%12s %12s %10s %10s %10s %12s\n", "connections", "Mbit/s",
              "p50 us", "p99 us", "p999 us", "requests");
  std::vector<PhaseResult> results;
  for (std::size_t conns : conn_counts) {
    const PhaseResult r = run_phase(server, conns, drivers, request_bytes,
                                    warmup_ms, window_ms);
    std::printf("%12zu %12.1f %10.1f %10.1f %10.1f %12llu\n", r.connections,
                r.throughput_mbit_s, r.p50_us, r.p99_us, r.p999_us,
                static_cast<unsigned long long>(r.completed));
    results.push_back(r);
  }
  server.stop();

  const PhaseResult& base = results.front();
  const PhaseResult& top = results.back();
  const double scaling_efficiency =
      base.throughput_mbit_s > 0.0
          ? top.throughput_mbit_s / base.throughput_mbit_s
          : 0.0;
  std::printf("\nscaling efficiency (%zu conns vs %zu): %.3f\n",
              top.connections, base.connections, scaling_efficiency);

  std::ostringstream json;
  json << "{\n  \"bench\": \"service_load\",\n";
  json << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  json << "  \"request_bytes\": " << request_bytes << ",\n";
  json << "  \"shards\": " << shards << ",\n";
  json << "  \"epoll\": " << (server.using_epoll() ? 1 : 0) << ",\n";
  json << "  \"phases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PhaseResult& r = results[i];
    json << "    {\"connections\": " << r.connections
         << ", \"mbit_per_s\": " << r.throughput_mbit_s
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"p999_us\": " << r.p999_us
         << ", \"requests\": " << r.completed << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"scaling_efficiency\": " << scaling_efficiency << "\n}\n";
  {
    std::ofstream out(out_path);
    out << json.str();
  }
  dhtrng::bench::append_trajectory(
      traj_path, "service_load",
      top.p50_us * 1e3,  // ns per request at max fan-out
      top.throughput_mbit_s,
      "\"connections\": " + std::to_string(top.connections) +
          ", \"p99_us\": " + std::to_string(top.p99_us) +
          ", \"p999_us\": " + std::to_string(top.p999_us) +
          ", \"scaling_efficiency\": " + std::to_string(scaling_efficiency));
  std::printf("wrote %s and appended %s\n", out_path.c_str(),
              traj_path.c_str());

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const double want = baseline_value(buf.str(), "scaling_efficiency");
    if (want <= 0.0) {
      std::printf("FAIL: baseline has no \"scaling_efficiency\" entry\n");
      return 1;
    }
    const double floor = want * (1.0 - max_regress_pct / 100.0);
    const bool pass = scaling_efficiency >= floor;
    std::printf("gate: scaling_efficiency %.3f vs baseline %.3f "
                "(floor %.3f at -%.0f%%): %s\n",
                scaling_efficiency, want, floor, max_regress_pct,
                pass ? "PASS" : "FAIL");
    if (!pass) return 1;
  }
  return 0;
}
