// Entropy-service loopback throughput: an in-process EntropyServer over a
// pool of fast PRNG-backed producers (so the wire/protocol/worker path is
// the bottleneck, not the simulated noise source), hammered by K client
// threads over TCP loopback, one quality at a time.
//
//   bench_service_throughput [--clients=K] [--seconds-bytes=N]
//                            [--request-bytes=R] [--workers=W] [--quick]
//
// Reports MB/s and Mbit/s per quality.  --quick shrinks the transfer for
// CI smoke runs.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/trng.h"
#include "service/client.h"
#include "service/entropy_server.h"
#include "support/rng.h"

namespace {

using namespace dhtrng;

/// PRNG-backed TrngSource: buffers 64 bits per xoshiro draw so next_bit is
/// a shift, keeping the pool producers far faster than the socket path.
class FastSource final : public core::TrngSource {
 public:
  explicit FastSource(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "xoshiro-bench"; }
  bool next_bit() override {
    if (left_ == 0) {
      word_ = rng_();
      left_ = 64;
    }
    const bool bit = (word_ & 1u) != 0;
    word_ >>= 1;
    --left_;
    return bit;
  }
  void restart() override {}
  sim::ResourceCounts resources() const override { return {}; }
  double clock_mhz() const override { return 0.0; }
  fpga::ActivityEstimate activity() const override { return {}; }

 private:
  support::Xoshiro256 rng_;
  std::uint64_t word_ = 0;
  int left_ = 0;
};

struct RunResult {
  double seconds = 0.0;
  std::uint64_t bytes = 0;
};

RunResult run_quality(service::EntropyServer& server, service::Quality q,
                      std::size_t clients, std::uint64_t bytes_per_client,
                      std::uint32_t request_bytes) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&server, q, bytes_per_client, request_bytes] {
      auto client = service::EntropyClient::connect_tcp(
          "127.0.0.1", server.tcp_port());
      std::uint64_t got = 0;
      while (got < bytes_per_client) {
        const auto result = client.fetch(request_bytes, q);
        if (!result.ok()) break;  // pool stopped / server shutting down
        got += result.bytes.size();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stop = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.bytes = bytes_per_client * clients;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto clients = static_cast<std::size_t>(
      bench::flag(argc, argv, "clients", 4));
  const auto request_bytes = static_cast<std::uint32_t>(
      bench::flag(argc, argv, "request-bytes", 4096));
  const auto workers = static_cast<std::size_t>(
      bench::flag(argc, argv, "workers", 4));
  const bool quick = bench::flag_set(argc, argv, "quick");
  const auto bytes_per_client = static_cast<std::uint64_t>(bench::flag(
      argc, argv, "bytes-per-client", quick ? (1 << 20) : (16 << 20)));

  bench::header("Entropy service loopback throughput",
                "service layer (not from the paper): protocol + worker path");
  std::printf(
      "config: %zu clients x %llu MiB, %u-byte requests, %zu workers\n\n",
      clients,
      static_cast<unsigned long long>(bytes_per_client >> 20),
      request_bytes, workers);

  service::EntropyServerConfig cfg;
  cfg.worker_threads = workers;
  cfg.pool.producers = 4;
  cfg.pool.buffer_bytes = 1 << 20;
  cfg.pool.block_bits = 1 << 15;
  cfg.max_request_bytes = request_bytes;
  service::EntropyServer server(
      cfg, [](std::size_t, std::uint64_t seed) {
        return std::make_unique<FastSource>(seed);
      });

  std::printf("%-12s %10s %10s %10s\n", "quality", "seconds", "MB/s",
              "Mbit/s");
  for (const service::Quality q :
       {service::Quality::Raw, service::Quality::Conditioned,
        service::Quality::Drbg}) {
    const RunResult r =
        run_quality(server, q, clients, bytes_per_client, request_bytes);
    const double mbps = static_cast<double>(r.bytes) / 1e6 / r.seconds;
    std::printf("%-12s %10.2f %10.1f %10.1f\n", service::quality_name(q),
                r.seconds, mbps, mbps * 8.0);
  }
  return 0;
}
