// Gate-level event-engine microbenchmark: calendar queue vs the reference
// binary-heap scheduler on the DH-TRNG netlist and companions, with
// machine-readable JSON output (BENCH_sim.json) so CI can track the perf
// trajectory.
//
// For every netlist in core::golden_gate_netlists the bench runs the same
// (circuit, config, seed) on both schedulers, asserts the waveforms are
// bit-identical (event counts, per-net toggle counts, final net values),
// and reports events/second per engine plus the speedup.
//
// The CI regression gate compares *speedups*, not absolute rates: the
// ratio calendar/reference on the same machine in the same run is stable
// across hardware, so a checked-in baseline (bench/BENCH_sim_baseline.json)
// stays meaningful on any runner.
//
// Flags:
//   --quick              short run (CI); default is a longer horizon
//   --ns=<sim ns>        override the simulated horizon per engine
//   --seed=<n>           simulation seed (default 1)
//   --reps=<n>           repetitions per engine, best-of after one untimed
//                        warmup rep (default 3); wall time is min-of-reps
//                        so scheduling noise on busy runners doesn't
//                        fabricate regressions
//   --out=<path>         JSON output path (default BENCH_sim.json)
//   --trajectory=<path>  JSON-lines perf-trajectory file to append to
//                        (default bench/trajectory/BENCH_sim_trajectory.jsonl)
//   --baseline=<path>    compare speedups against a baseline JSON;
//                        exit 1 on >--max-regress-pct regression
//   --max-regress-pct=<p> allowed speedup regression in percent (default 20)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/netlist.h"
#include "sim/simulator.h"

namespace {

using dhtrng::sim::NetId;
using dhtrng::sim::Scheduler;
using dhtrng::sim::SimConfig;
using dhtrng::sim::Simulator;

struct EngineRun {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t toggles = 0;
  std::vector<std::uint64_t> per_net_toggles;
  std::vector<std::uint8_t> final_values;
};

EngineRun run_engine_once(const dhtrng::sim::Circuit& circuit,
                          Scheduler scheduler, std::uint64_t seed,
                          double horizon_ps,
                          dhtrng::noise::NoiseMode noise_mode =
                              dhtrng::noise::NoiseMode::Exact) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.scheduler = scheduler;
  cfg.noise_mode = noise_mode;
  // The reference engine is the historical scheduler, which drew noise
  // per call; the batched stream is bit-identical, so the waveform
  // comparison below is unaffected by the batch size.
  if (scheduler == Scheduler::ReferenceHeap) cfg.noise_batch = 1;
  Simulator sim(circuit, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(horizon_ps);
  const auto t1 = std::chrono::steady_clock::now();

  EngineRun r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = sim.events_processed();
  r.toggles = sim.total_toggles();
  r.per_net_toggles.reserve(circuit.net_count());
  r.final_values.reserve(circuit.net_count());
  for (NetId n = 0; n < static_cast<NetId>(circuit.net_count()); ++n) {
    r.per_net_toggles.push_back(sim.toggle_count(n));
    r.final_values.push_back(sim.net_value(n) ? 1 : 0);
  }
  return r;
}

/// Best-of-`reps` timing after one explicit warmup rep (the runs are
/// deterministic, so every rep reproduces the same waveform; only the wall
/// clock varies — min is the standard estimator for "time with the least
/// interference", and the warmup keeps cold caches and lazy CPU-dispatch
/// init out of every rep, not just the first).
EngineRun run_engine(const dhtrng::sim::Circuit& circuit, Scheduler scheduler,
                     std::uint64_t seed, double horizon_ps, int reps,
                     dhtrng::noise::NoiseMode noise_mode =
                         dhtrng::noise::NoiseMode::Exact) {
  run_engine_once(circuit, scheduler, seed, horizon_ps, noise_mode);
  EngineRun best =
      run_engine_once(circuit, scheduler, seed, horizon_ps, noise_mode);
  for (int i = 1; i < reps; ++i) {
    EngineRun r =
        run_engine_once(circuit, scheduler, seed, horizon_ps, noise_mode);
    if (r.wall_s < best.wall_s) best = std::move(r);
  }
  return best;
}

struct CaseResult {
  std::string name;
  std::uint64_t events = 0;
  double calendar_eps = 0.0;
  double reference_eps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

/// Extract `"key": <number>` occurrences following each `"name": "<case>"`
/// from our own JSON dialect — enough to read back a baseline file without
/// a JSON dependency.
double baseline_speedup(const std::string& json, const std::string& name) {
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(name_tag);
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"speedup\":";
  const std::size_t k = json.find(key, at);
  if (k == std::string::npos) return -1.0;
  return std::atof(json.c_str() + k + key.size());
}

}  // namespace

int main(int argc, char** argv) {
  using dhtrng::bench::flag;
  using dhtrng::bench::flag_set;
  using dhtrng::bench::flag_str;

  const bool quick = flag_set(argc, argv, "quick");
  const double horizon_ps =
      static_cast<double>(flag(argc, argv, "ns", quick ? 2000 : 20000)) * 1e3;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
  const int reps = static_cast<int>(flag(argc, argv, "reps", 3));
  const std::string out_path =
      flag_str(argc, argv, "out", "BENCH_sim.json");
  const std::string baseline_path = flag_str(argc, argv, "baseline", "");
  const double max_regress_pct = static_cast<double>(
      flag(argc, argv, "max-regress-pct", 20));

  dhtrng::bench::header(
      "sim microbench: calendar event engine vs reference heap",
      "event-engine speedup (repo infrastructure; not a paper table)");
  std::printf("config: horizon %.0f ns per engine, seed %llu, best of %d%s\n\n",
              horizon_ps / 1e3, static_cast<unsigned long long>(seed), reps,
              quick ? " (--quick)" : "");
  std::printf("%-18s %12s %14s %14s %9s %10s\n", "netlist", "events",
              "calendar ev/s", "reference ev/s", "speedup", "identical");

  std::vector<CaseResult> results;
  bool all_identical = true;
  for (auto& net : dhtrng::core::golden_gate_netlists(
           dhtrng::fpga::DeviceModel::artix7())) {
    const EngineRun cal =
        run_engine(net.circuit, Scheduler::Calendar, seed, horizon_ps, reps);
    const EngineRun ref = run_engine(net.circuit, Scheduler::ReferenceHeap,
                                     seed, horizon_ps, reps);

    CaseResult r;
    r.name = net.name;
    r.events = cal.events;
    r.identical = cal.events == ref.events && cal.toggles == ref.toggles &&
                  cal.per_net_toggles == ref.per_net_toggles &&
                  cal.final_values == ref.final_values;
    r.calendar_eps = static_cast<double>(cal.events) / cal.wall_s;
    r.reference_eps = static_cast<double>(ref.events) / ref.wall_s;
    r.speedup = r.calendar_eps / r.reference_eps;
    all_identical = all_identical && r.identical;

    std::printf("%-18s %12llu %14.3g %14.3g %8.2fx %10s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.calendar_eps,
                r.reference_eps, r.speedup, r.identical ? "yes" : "NO");
    results.push_back(r);

    // Fast-noise lane for the paper's core netlist: the calendar engine
    // with NoiseMode::Fast, reported as a speedup against the SAME
    // exact-noise reference run as the "dhtrng" row above (so the row
    // answers "how much faster is the optimised engine end to end").
    // The identity check compares fast-calendar against fast-reference:
    // fast noise is block-aligned (noise::kFastNoiseBlock), so the two
    // schedulers must still agree bit-for-bit *within* the mode — golden
    // digests of the exact mode do not apply here.
    if (r.name == "dhtrng") {
      const EngineRun fcal =
          run_engine(net.circuit, Scheduler::Calendar, seed, horizon_ps, reps,
                     dhtrng::noise::NoiseMode::Fast);
      const EngineRun fref =
          run_engine(net.circuit, Scheduler::ReferenceHeap, seed, horizon_ps,
                     1, dhtrng::noise::NoiseMode::Fast);
      CaseResult f;
      f.name = "dhtrng_fastnoise";
      f.events = fcal.events;
      f.identical = fcal.events == fref.events &&
                    fcal.toggles == fref.toggles &&
                    fcal.per_net_toggles == fref.per_net_toggles &&
                    fcal.final_values == fref.final_values;
      f.calendar_eps = static_cast<double>(fcal.events) / fcal.wall_s;
      f.reference_eps = r.reference_eps;
      f.speedup = f.calendar_eps / f.reference_eps;
      all_identical = all_identical && f.identical;
      std::printf("%-18s %12llu %14.3g %14.3g %8.2fx %10s\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.events), f.calendar_eps,
                  f.reference_eps, f.speedup, f.identical ? "yes" : "NO");
      results.push_back(f);
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"sim_microbench\",\n";
  json << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  json << "  \"horizon_ns\": " << horizon_ps / 1e3 << ",\n";
  json << "  \"seed\": " << seed << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"events\": " << r.events
         << ", \"events_per_sec_calendar\": " << r.calendar_eps
         << ", \"events_per_sec_reference\": " << r.reference_eps
         << ", \"speedup\": " << r.speedup << ", \"identical\": "
         << (r.identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  {
    std::ofstream out(out_path);
    out << json.str();
  }
  // Perf-trajectory record per case (JSON lines; Mbit/s is not meaningful
  // for an event-engine bench, so the field is 0 and ns/event carries the
  // signal — the speedup rides along in the extra field).
  const std::string traj_path =
      flag_str(argc, argv, "trajectory",
               dhtrng::bench::trajectory_path("sim"));
  for (const CaseResult& r : results) {
    dhtrng::bench::append_trajectory(
        traj_path, "sim_" + r.name, 1e9 / r.calendar_eps, 0.0,
        "\"speedup\": " + std::to_string(r.speedup));
  }
  std::printf("\nwrote %s and appended %s\n", out_path.c_str(),
              traj_path.c_str());

  if (!all_identical) {
    std::printf("FAIL: schedulers disagree — waveforms not bit-identical\n");
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string base = buf.str();
    bool ok = true;
    for (const CaseResult& r : results) {
      const double want = baseline_speedup(base, r.name);
      if (want <= 0.0) {
        std::printf("baseline: no entry for %s (skipped)\n", r.name.c_str());
        continue;
      }
      const double floor = want * (1.0 - max_regress_pct / 100.0);
      const bool pass = r.speedup >= floor;
      std::printf("baseline %-18s speedup %.2fx vs %.2fx (floor %.2fx): %s\n",
                  r.name.c_str(), r.speedup, want, floor,
                  pass ? "ok" : "REGRESSION");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
