// Statistical-engine microbenchmark: the Wordwise 64-bit kernels vs the
// Scalar bit-at-a-time oracle on SP 800-22 and SP 800-90B, with
// machine-readable JSON output (BENCH_stats.json) so CI can track the perf
// trajectory.
//
// The bench runs the full suites on the same stream under both engines,
// asserts the results are bit-identical (exact double equality on every
// p-value / h_min — the engines are required to match to the last ulp),
// and reports ns/bit per engine plus the speedup per test and per suite.
//
// The CI regression gate compares *speedups*, not absolute ns/bit: the
// ratio wordwise/scalar on the same machine in the same run is stable
// across hardware, so a checked-in baseline (bench/BENCH_stats_baseline.json)
// stays meaningful on any runner.  The committed baseline carries only the
// suite aggregates — per-test rows are sub-millisecond in --quick mode and
// too noisy to gate; cases missing from the baseline are skipped.
//
// Flags:
//   --quick              short run (CI); default is 1 Mbit
//   --kbits=<n>          override the stream length in kilobits
//   --seed=<n>           stream seed (default 1)
//   --reps=<n>           repetitions per engine, best-of (default 3);
//                        wall time is min-of-reps so scheduling noise on
//                        busy runners doesn't fabricate regressions
//   --out=<path>         JSON output path (default BENCH_stats.json)
//   --trajectory=<path>  JSONL perf-trajectory log to append the suite
//                        aggregates to (default
//                        bench/trajectory/BENCH_stats_trajectory.jsonl)
//   --baseline=<path>    compare speedups against a baseline JSON;
//                        exit 1 on >--max-regress-pct regression
//   --max-regress-pct=<p> allowed speedup regression in percent (default 20)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stats/sp800_22.h"
#include "stats/sp800_90b.h"
#include "stats/stats_config.h"
#include "support/bitstream.h"
#include "support/rng.h"

namespace {

using dhtrng::stats::Engine;
using dhtrng::stats::ScopedEngine;
using dhtrng::support::BitStream;

struct SuiteRun {
  double total_s = 0.0;                 ///< min-of-reps whole-suite wall
  std::vector<double> test_s;           ///< min-of-reps per-test wall
  std::vector<dhtrng::stats::sp800_22::TestResult> results;  ///< first rep
};

SuiteRun run_sp800_22(const BitStream& bits, Engine engine, int reps) {
  ScopedEngine guard(engine);
  SuiteRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto results = dhtrng::stats::sp800_22::run_all(bits);
    const auto t1 = std::chrono::steady_clock::now();
    const double total = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0) {
      run.total_s = total;
      run.test_s.reserve(results.size());
      for (const auto& r : results) run.test_s.push_back(r.wall_s);
      run.results = std::move(results);
    } else {
      run.total_s = std::min(run.total_s, total);
      for (std::size_t t = 0; t < results.size(); ++t) {
        run.test_s[t] = std::min(run.test_s[t], results[t].wall_s);
      }
    }
  }
  return run;
}

struct EstimatorRun {
  double total_s = 0.0;
  std::vector<dhtrng::stats::sp800_90b::EstimatorResult> results;
};

EstimatorRun run_sp800_90b(const BitStream& bits, Engine engine, int reps) {
  ScopedEngine guard(engine);
  EstimatorRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto results = dhtrng::stats::sp800_90b::run_all(bits);
    const auto t1 = std::chrono::steady_clock::now();
    const double total = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0) {
      run.total_s = total;
      run.results = std::move(results);
    } else {
      run.total_s = std::min(run.total_s, total);
    }
  }
  return run;
}

struct CaseResult {
  std::string name;
  double wordwise_ns_per_bit = 0.0;
  double scalar_ns_per_bit = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

CaseResult make_case(const std::string& name, std::size_t n, double word_s,
                     double scalar_s, bool identical) {
  CaseResult r;
  r.name = name;
  r.wordwise_ns_per_bit = word_s * 1e9 / static_cast<double>(n);
  r.scalar_ns_per_bit = scalar_s * 1e9 / static_cast<double>(n);
  r.speedup = scalar_s / word_s;
  r.identical = identical;
  return r;
}

/// Extract the `"speedup"` following `"name": "<case>"` from our own JSON
/// dialect — enough to read a baseline back without a JSON dependency.
double baseline_speedup(const std::string& json, const std::string& name) {
  const std::string name_tag = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(name_tag);
  if (at == std::string::npos) return -1.0;
  const std::string key = "\"speedup\":";
  const std::size_t k = json.find(key, at);
  if (k == std::string::npos) return -1.0;
  return std::atof(json.c_str() + k + key.size());
}

}  // namespace

int main(int argc, char** argv) {
  using dhtrng::bench::flag;
  using dhtrng::bench::flag_set;
  using dhtrng::bench::flag_str;

  const bool quick = flag_set(argc, argv, "quick");
  const std::size_t n = static_cast<std::size_t>(
      flag(argc, argv, "kbits", quick ? 200 : 1000)) * 1000;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
  const int reps = static_cast<int>(flag(argc, argv, "reps", 3));
  const std::string out_path = flag_str(argc, argv, "out", "BENCH_stats.json");
  const std::string traj_path = flag_str(argc, argv, "trajectory",
                                         dhtrng::bench::trajectory_path("stats"));
  const std::string baseline_path = flag_str(argc, argv, "baseline", "");
  const double max_regress_pct =
      static_cast<double>(flag(argc, argv, "max-regress-pct", 20));

  dhtrng::bench::header(
      "stats microbench: wordwise statistical engine vs scalar oracle",
      "statistics-engine speedup (repo infrastructure; not a paper table)");
  std::printf("config: %zu kbit stream, seed %llu, best of %d%s\n\n", n / 1000,
              static_cast<unsigned long long>(seed), reps,
              quick ? " (--quick)" : "");

  dhtrng::support::SplitMix64 rng(seed);
  BitStream bits;
  bits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.next() & 1);

  const SuiteRun word = run_sp800_22(bits, Engine::Wordwise, reps);
  const SuiteRun scalar = run_sp800_22(bits, Engine::Scalar, reps);
  const EstimatorRun word_90b = run_sp800_90b(bits, Engine::Wordwise, reps);
  const EstimatorRun scalar_90b = run_sp800_90b(bits, Engine::Scalar, reps);

  std::vector<CaseResult> results;
  bool all_identical = true;

  std::printf("%-26s %14s %14s %9s %10s\n", "test", "wordwise ns/b",
              "scalar ns/b", "speedup", "identical");
  for (std::size_t t = 0; t < word.results.size(); ++t) {
    const auto& w = word.results[t];
    const auto& s = scalar.results[t];
    const bool identical = w.name == s.name && w.applicable == s.applicable &&
                           w.p_values == s.p_values;
    CaseResult r =
        make_case(w.name, n, word.test_s[t], scalar.test_s[t], identical);
    std::printf("%-26s %14.3f %14.3f %8.2fx %10s\n", r.name.c_str(),
                r.wordwise_ns_per_bit, r.scalar_ns_per_bit, r.speedup,
                identical ? "yes" : "NO");
    all_identical = all_identical && identical;
    results.push_back(std::move(r));
  }
  results.push_back(make_case("sp800_22_total", n, word.total_s,
                              scalar.total_s, all_identical));

  bool identical_90b = word_90b.results.size() == scalar_90b.results.size();
  for (std::size_t t = 0; identical_90b && t < word_90b.results.size(); ++t) {
    const auto& w = word_90b.results[t];
    const auto& s = scalar_90b.results[t];
    identical_90b = w.name == s.name && w.p_max == s.p_max && w.h_min == s.h_min;
  }
  all_identical = all_identical && identical_90b;
  results.push_back(make_case("sp800_90b_total", n, word_90b.total_s,
                              scalar_90b.total_s, identical_90b));

  for (std::size_t t = results.size() - 2; t < results.size(); ++t) {
    const CaseResult& r = results[t];
    std::printf("%-26s %14.3f %14.3f %8.2fx %10s\n", r.name.c_str(),
                r.wordwise_ns_per_bit, r.scalar_ns_per_bit, r.speedup,
                r.identical ? "yes" : "NO");
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"stats_microbench\",\n";
  json << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  json << "  \"kbits\": " << n / 1000 << ",\n";
  json << "  \"seed\": " << seed << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json << "    {\"name\": \"" << r.name << "\", \"ns_per_bit_wordwise\": "
         << r.wordwise_ns_per_bit << ", \"ns_per_bit_scalar\": "
         << r.scalar_ns_per_bit << ", \"speedup\": " << r.speedup
         << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  {
    std::ofstream out(out_path);
    out << json.str();
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  for (std::size_t t = results.size() - 2; t < results.size(); ++t) {
    const CaseResult& r = results[t];
    std::ostringstream extra;
    extra << "\"case\": \"" << r.name << "\", \"speedup\": " << r.speedup
          << ", \"ns_per_bit_scalar\": " << r.scalar_ns_per_bit
          << ", \"kbits\": " << n / 1000;
    dhtrng::bench::append_trajectory(traj_path, "stats_microbench",
                                     r.wordwise_ns_per_bit,
                                     1000.0 / r.wordwise_ns_per_bit,
                                     extra.str());
  }

  if (!all_identical) {
    std::printf("FAIL: engines disagree — results not bit-identical\n");
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string base = buf.str();
    bool ok = true;
    for (const CaseResult& r : results) {
      const double want = baseline_speedup(base, r.name);
      if (want <= 0.0) continue;  // baseline gates aggregates only
      const double floor = want * (1.0 - max_regress_pct / 100.0);
      const bool pass = r.speedup >= floor;
      std::printf("baseline %-18s speedup %.2fx vs %.2fx (floor %.2fx): %s\n",
                  r.name.c_str(), r.speedup, want, floor,
                  pass ? "ok" : "REGRESSION");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
