// Streaming-certification microbenchmark: the stats::streaming
// SourceTracker feed path against the entropy pool's bulk generation, with
// machine-readable JSON output (BENCH_streaming.json) and a perf-trajectory
// record so CI can track the numbers across commits.
//
// The tracker rides the pool's producer loop — every byte a producer
// pushes is also fed through the incremental SP 800-22/90B accumulators —
// so the acceptance criterion is *overhead*: feeding a block must cost
// less than 10% of generating it.  The bench times three lanes on the
// same buffer:
//
//   generate  — the producer path's bulk generation (a DhTrng source
//               drained bit-by-bit and packed MSB-first into bytes,
//               exactly the shape of EntropyPool::producer_loop)
//   track     — SourceTracker::feed_bytes over the generated buffer
//   snapshot  — the CERT-verb cost: merge four per-producer trackers and
//               take the pool-wide snapshot (reported, not gated)
//
// Hard gate: track/generate < 10% or the bench exits 1.
//
// The CI regression gate additionally compares the *headroom ratio*
// (generate seconds over track seconds, reported under the "speedup" key
// like the other gated benches) against bench/BENCH_streaming_baseline.json:
// both lanes run on the same machine in the same process, so the ratio is
// stable across runners and a >20% drop means the tracker got slower
// relative to the path it shadows.
//
// Flags:
//   --quick               short run (CI); default sizes a longer run
//   --kbytes=<n>          buffer size in kilobytes per rep
//   --seed=<n>            source seed (default 1)
//   --reps=<n>            best-of reps after one warmup rep (default 3)
//   --out=<path>          JSON output path (default BENCH_streaming.json)
//   --trajectory=<path>   JSON-lines trajectory file to append to
//                         (default bench/trajectory/BENCH_streaming_trajectory.jsonl)
//   --baseline=<path>     compare headroom against a baseline JSON;
//                         exit 1 on >--max-regress-pct regression
//   --max-regress-pct=<p> allowed headroom regression in percent (default 20)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/streaming.h"

namespace {

double baseline_value(const std::string& json, const char* key) {
  const std::string tag = std::string("\"") + key + "\":";
  const std::size_t at = json.find(tag);
  if (at == std::string::npos) return -1.0;
  return std::atof(json.c_str() + at + tag.size());
}

}  // namespace

int main(int argc, char** argv) {
  using dhtrng::bench::flag;
  using dhtrng::bench::flag_set;
  using dhtrng::bench::flag_str;
  using dhtrng::stats::streaming::SourceTracker;
  using dhtrng::stats::streaming::TrackerConfig;

  const bool quick = flag_set(argc, argv, "quick");
  const std::size_t nbytes = static_cast<std::size_t>(
      flag(argc, argv, "kbytes", quick ? 64 : 512)) * 1024;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flag(argc, argv, "seed", 1));
  const int reps = static_cast<int>(flag(argc, argv, "reps", 3));
  const std::string out_path =
      flag_str(argc, argv, "out", "BENCH_streaming.json");
  const std::string traj_path =
      flag_str(argc, argv, "trajectory",
               dhtrng::bench::trajectory_path("streaming"));
  const std::string baseline_path = flag_str(argc, argv, "baseline", "");
  const double max_regress_pct =
      static_cast<double>(flag(argc, argv, "max-regress-pct", 20));

  dhtrng::bench::header(
      "streaming stats microbench: certification tracker vs bulk generation",
      "online-certification overhead (repo infrastructure; not a paper table)");
  std::printf("config: %zu KiB per rep, seed %llu, best of %d%s\n\n",
              nbytes / 1024, static_cast<unsigned long long>(seed), reps,
              quick ? " (--quick)" : "");

  const TrackerConfig cfg;  // pool defaults: 128-bit blocks, 1024-bit windows

  // Generation lane: drain a DhTrng source bit-by-bit and pack MSB-first,
  // exactly the byte-assembly shape of EntropyPool::producer_loop.  The
  // source is stateful across reps (each rep generates fresh bits), which
  // is also what the producer loop does.
  dhtrng::core::DhTrngConfig core_cfg;
  core_cfg.seed = seed;
  dhtrng::core::DhTrng source(core_cfg);
  std::vector<std::uint8_t> buf(nbytes);
  const double gen_s = dhtrng::bench::best_of_seconds(reps, [&] {
    for (std::size_t i = 0; i < nbytes; ++i) {
      std::uint8_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v = static_cast<std::uint8_t>((v << 1) | (source.next_bit() ? 1u : 0u));
      }
      buf[i] = v;
    }
  });

  // Tracker lane: a fresh tracker per rep fed the final buffer, so every
  // rep performs identical work.  The snapshot ones-count is folded into a
  // volatile sink so the feed cannot be dead-code-eliminated.
  volatile std::uint64_t sink = 0;
  const double track_s = dhtrng::bench::best_of_seconds(reps, [&] {
    SourceTracker tracker(cfg);
    tracker.feed_bytes(buf.data(), buf.size());
    sink = sink + tracker.snapshot().ones;
  });

  // Snapshot lane: the CERT-verb cost for a 4-producer pool — merge four
  // window-aligned per-producer trackers and snapshot the merged view.
  // Reported for visibility; not gated (it is per-request, not per-byte).
  const std::size_t quarter = (nbytes / 4) & ~std::size_t{cfg.window_bits / 8 - 1};
  std::vector<SourceTracker> producers(4, SourceTracker(cfg));
  for (std::size_t p = 0; p < producers.size(); ++p) {
    producers[p].feed_bytes(buf.data() + p * quarter, quarter);
  }
  const double snap_s = dhtrng::bench::best_of_seconds(reps, [&] {
    SourceTracker merged(cfg);
    for (const SourceTracker& p : producers) merged.merge(p);
    sink = sink + merged.snapshot().ones;
  });

  const double nbits = static_cast<double>(nbytes) * 8.0;
  const double gen_ns_byte = gen_s * 1e9 / static_cast<double>(nbytes);
  const double track_ns_byte = track_s * 1e9 / static_cast<double>(nbytes);
  const double gen_mbps = nbits / gen_s / 1e6;
  const double track_mbps = nbits / track_s / 1e6;
  const double overhead_pct = 100.0 * track_s / gen_s;
  const double headroom = gen_s / track_s;

  std::printf("%-30s %10.2f ns/byte  %9.1f Mbit/s\n",
              "generate (producer path)", gen_ns_byte, gen_mbps);
  std::printf("%-30s %10.2f ns/byte  %9.1f Mbit/s\n", "track (feed_bytes)",
              track_ns_byte, track_mbps);
  std::printf("%-30s %10.2f us per request (4 producers, %zu KiB each)\n",
              "snapshot (merge + CERT)", snap_s * 1e6, quarter / 1024);
  std::printf("%-30s %9.2f%%  (budget: <10%% of generation)\n",
              "tracker overhead", overhead_pct);
  std::printf("%-30s %9.2fx\n\n", "headroom (gen/track)", headroom);

  std::ostringstream json;
  json << "{\n  \"bench\": \"streaming_stats\",\n";
  json << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  json << "  \"kbytes\": " << nbytes / 1024 << ",\n  \"seed\": " << seed
       << ",\n";
  json << "  \"block_len\": " << cfg.block_len << ",\n";
  json << "  \"window_bits\": " << cfg.window_bits << ",\n";
  json << "  \"generate_ns_per_byte\": " << gen_ns_byte << ",\n";
  json << "  \"track_ns_per_byte\": " << track_ns_byte << ",\n";
  json << "  \"track_mbit_per_s\": " << track_mbps << ",\n";
  json << "  \"snapshot_us\": " << snap_s * 1e6 << ",\n";
  json << "  \"overhead_pct\": " << overhead_pct << ",\n";
  json << "  \"speedup\": " << headroom << "\n}\n";
  {
    std::ofstream out(out_path);
    out << json.str();
  }
  dhtrng::bench::append_trajectory(
      traj_path, "streaming_stats", track_ns_byte, track_mbps,
      "\"overhead_pct\": " + std::to_string(overhead_pct) +
          ", \"headroom\": " + std::to_string(headroom));
  std::printf("wrote %s and appended %s\n", out_path.c_str(),
              traj_path.c_str());

  if (overhead_pct >= 10.0) {
    std::printf(
        "FAIL: tracker overhead %.2f%% exceeds the 10%% budget — the "
        "certification path is no longer cheap enough to ride every block\n",
        overhead_pct);
    return 1;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf_in;
    buf_in << in.rdbuf();
    const double want = baseline_value(buf_in.str(), "speedup");
    if (want <= 0.0) {
      std::printf("FAIL: baseline has no \"speedup\" entry\n");
      return 1;
    }
    const double floor = want * (1.0 - max_regress_pct / 100.0);
    const bool pass = headroom >= floor;
    std::printf("baseline headroom %.1fx vs %.1fx (floor %.1fx): %s\n",
                headroom, want, floor, pass ? "ok" : "REGRESSION");
    if (!pass) return 1;
  }
  return 0;
}
