// Table 1: SP 800-90B min-entropy of parallel XORed ring oscillators of
// order 2..13, sampled at 100 MHz.
//
// Paper values: a shallow hump, 0.9737 at N=2 rising to 0.9871 at N=9 and
// falling back to 0.9735 at N=13.  Our model reproduces the *range*
// (0.97-0.99) and the qualitative mechanisms (common-mode data-dependent
// supply noise hurting short fast rings, rotation structure and resonance
// susceptibility hurting long slow ones); the exact argmax is within the
// run-to-run noise of the estimators, so the bench averages several seeds.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/baselines/xor_ro_trng.h"
#include "stats/sp800_90b.h"

namespace {

double measured_min_entropy(const dhtrng::support::BitStream& bits) {
  using namespace dhtrng::stats::sp800_90b;
  // The dominant estimators for this data class (full battery in Table 4's
  // bench); min over them approximates the 90B assessment.
  double h = 1.0;
  h = std::min(h, mcv(bits).h_min);
  h = std::min(h, markov(bits).h_min);
  h = std::min(h, lag(bits).h_min);
  h = std::min(h, multi_mmc(bits).h_min);
  h = std::min(h, multi_mcw(bits).h_min);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits_per_run =
      static_cast<std::size_t>(bench::flag(argc, argv, "bits", 200000));
  const auto seeds = static_cast<std::uint64_t>(bench::flag(argc, argv, "seeds", 4));

  bench::header("Table 1 - randomness of different-order oscillation rings",
                "DH-TRNG paper, Table 1 (Section 3.1)");
  std::printf("config: 12 XORed rings, 100 MHz sampling, %zu bits x %llu seeds\n\n",
              bits_per_run, static_cast<unsigned long long>(seeds));

  static constexpr double kPaper[12] = {0.9737, 0.9733, 0.9756, 0.9776,
                                        0.9783, 0.9831, 0.9860, 0.9871,
                                        0.9842, 0.9837, 0.9788, 0.9735};

  std::printf("stages | paper h-min | measured h-min\n");
  std::printf("-------+-------------+---------------\n");
  double best_h = 0.0;
  int best_n = 0;
  for (int stages = 2; stages <= 13; ++stages) {
    double sum = 0.0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      core::XorRoTrng trng({.device = fpga::DeviceModel::artix7(),
                            .seed = 1000 + s * 7919,
                            .stages = stages,
                            .rings = 12,
                            .clock_mhz = 100.0});
      sum += measured_min_entropy(trng.generate(bits_per_run));
    }
    const double h = sum / static_cast<double>(seeds);
    if (h > best_h) {
      best_h = h;
      best_n = stages;
    }
    std::printf("  %2d   |   %.4f    |    %.4f\n", stages,
                kPaper[stages - 2], h);
  }
  std::printf("\nmeasured argmax: N = %d (paper: N = 9); both trade ring\n",
              best_n);
  std::printf("order against sampling-relative jitter, see DESIGN.md sec. 6.\n");
  return 0;
}
