// Table 2: min-entropy of XORed dynamic hybrid entropy units vs XORed
// 9-stage ring oscillators at XOR fan-in 9..18 (100 MHz sampling).
//
// Paper claim: the hybrid units win at every fan-in, both rising toward 1
// with the XOR count (the Eq. 4 convergence).  The measured metric is the
// minimum over the bias- and serial-structure estimators (MCV, Markov,
// Lag, Multi-MMC): the hybrid units' holding-region metastability injects
// fresh per-sample entropy that removes the residual rotation structure a
// plain RO array keeps, and that structure is what these estimators see.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/baselines/xor_ro_trng.h"
#include "core/hybrid_array.h"
#include "stats/sp800_90b.h"

namespace {

double measured_min_entropy(const dhtrng::support::BitStream& bits) {
  using namespace dhtrng::stats::sp800_90b;
  return std::min({mcv(bits).h_min, markov(bits).h_min, lag(bits).h_min,
                   multi_mmc(bits).h_min});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 200000));
  const auto seeds = static_cast<std::uint64_t>(bench::flag(argc, argv, "seeds", 4));

  bench::header("Table 2 - hybrid entropy units vs 9-stage ROs",
                "DH-TRNG paper, Table 2 (Section 3.1)");
  std::printf("config: XOR fan-in sweep 9..18, 100 MHz, %zu bits x %llu seeds\n\n",
              bits, static_cast<unsigned long long>(seeds));

  static constexpr double kPaperHybrid[10] = {0.9765, 0.9803, 0.9830, 0.9836,
                                              0.9853, 0.9868, 0.9885, 0.9896,
                                              0.9903, 0.9912};
  static constexpr double kPaperRo[10] = {0.9705, 0.9751, 0.9779, 0.9801,
                                          0.9813, 0.9825, 0.9837, 0.9849,
                                          0.9856, 0.9863};

  // Estimator noise at these volumes is ~±0.005; rows inside that band are
  // statistical ties (both generators sit at the estimator ceiling at high
  // fan-in), so the verdict distinguishes win / tie / loss and the
  // aggregate mean margin is the headline number.
  constexpr double kTieBand = 0.005;
  std::printf("XOR n | paper hybrid / RO | measured hybrid / RO | verdict\n");
  std::printf("------+-------------------+----------------------+--------\n");
  int wins = 0, ties = 0;
  double margin_sum = 0.0;
  for (int n = 9; n <= 18; ++n) {
    double hybrid = 0.0, ro = 0.0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      core::HybridArrayTrng h({.seed = 10 + s, .units = n, .clock_mhz = 100.0});
      core::XorRoTrng r({.seed = 10 + s, .stages = 9, .rings = n,
                         .clock_mhz = 100.0});
      hybrid += measured_min_entropy(h.generate(bits));
      ro += measured_min_entropy(r.generate(bits));
    }
    hybrid /= static_cast<double>(seeds);
    ro /= static_cast<double>(seeds);
    margin_sum += hybrid - ro;
    const char* verdict;
    if (hybrid > ro + kTieBand) {
      verdict = "win";
      ++wins;
    } else if (hybrid >= ro - kTieBand) {
      verdict = "tie";
      ++ties;
    } else {
      verdict = "loss";
    }
    std::printf(" %2d   |  %.4f / %.4f  |   %.4f / %.4f    |  %s\n", n,
                kPaperHybrid[n - 9], kPaperRo[n - 9], hybrid, ro, verdict);
  }
  std::printf("\nhybrid wins %d / ties %d / loses %d of 10 fan-ins "
              "(paper: 10 wins, margins 0.005-0.006)\n",
              wins, ties, 10 - wins - ties);
  std::printf("mean margin: %+.4f (positive = hybrid ahead, as the paper "
              "finds)\n", margin_sum / 10.0);
  return 0;
}
