// Table 3: NIST SP 800-22 suite on DH-TRNG output for both devices.
//
// Paper setup: 30 sets of 1 Mbit per device; table reports the uniformity
// P-value (averaged over sub-tests for the * rows) and the pass proportion.
// Default here is 4 sets of 1 Mbit per device so the whole bench suite runs
// in minutes on one core; pass --sets=30 for the paper-exact volume.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/sp800_22.h"
#include "support/stats_util.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto sets = static_cast<std::size_t>(bench::flag(argc, argv, "sets", 4));
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 1000000));
  // --threads=0 -> hardware concurrency; sets are dispatched one per task,
  // so the report is identical for any worker count.
  const auto threads =
      static_cast<std::size_t>(bench::flag(argc, argv, "threads", 1));

  bench::header("Table 3 - NIST SP 800-22 test",
                "DH-TRNG paper, Table 3 (Section 4.1.1)");
  std::printf("config: %zu sets x %zu bits per device (paper: 30 x 1 Mbit)\n",
              sets, bits);

  for (const auto& device : bench::paper_devices()) {
    std::printf("\n--- %s (%s, %d nm) at %.0f MHz ---\n", device.name.c_str(),
                device.part.c_str(), device.process_nm,
                device.max_clock_mhz(2));
    std::vector<support::BitStream> streams;
    for (std::size_t s = 0; s < sets; ++s) {
      core::DhTrng trng({.device = device, .seed = 4000 + s});
      streams.push_back(trng.generate(bits));
    }
    const auto rows = stats::sp800_22::run_suite(streams, 0.01, threads);
    std::printf("%-26s %-10s %s\n", "NIST SP 800-22", "P-value", "Prop.");
    bool in_band = true;
    for (const auto& row : rows) {
      std::printf("%-26s %.6f   %zu/%zu\n", row.name.c_str(), row.p_value,
                  row.passed, row.total);
      // NIST acceptance: exact-binomial minimum pass count (valid at the
      // small default set counts, where the Gaussian band is not).  The
      // per-sequence pass probability is ~0.96 for the multi-subtest rows.
      if (row.total > 0 &&
          row.passed < support::min_pass_count(row.total, 0.96)) {
        in_band = false;
      }
    }
    std::printf("=> %s\n",
                in_band ? "all tests within the NIST acceptance band"
                        : "proportion below the NIST acceptance band");
  }
  return 0;
}
