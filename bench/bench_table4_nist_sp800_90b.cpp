// Table 4: NIST SP 800-90B non-IID estimator battery (p-max / h-min per
// estimator) plus the IID-track (MCV) min-entropy, per device.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/sp800_90b.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const auto bits = static_cast<std::size_t>(bench::flag(argc, argv, "bits", 1000000));

  bench::header("Table 4 - NIST SP 800-90B test",
                "DH-TRNG paper, Table 4 (Section 4.1.2)");
  std::printf("config: %zu bits per device (paper: 30 x 1 Mbit)\n", bits);

  // Paper values for reference (Virtex-6 / Artix-7 h-min columns).
  struct PaperRow { const char* name; double v6; double a7; };
  static constexpr PaperRow kPaper[] = {
      {"MCV", 0.994698, 0.995966},       {"Collision", 0.923184, 0.939304},
      {"Markov", 0.995748, 0.997594},    {"Compression", 1.0, 1.0},
      {"t-Tuple", 0.945111, 0.917726},   {"LRS", 0.945206, 0.991475},
      {"Multi-MCW", 0.998657, 0.996713}, {"Lag", 0.998567, 0.995153},
      {"Multi-MMC", 0.998183, 0.998368}, {"LZ78Y", 0.99509, 0.997038},
  };

  for (const auto& device : bench::paper_devices()) {
    const bool is_v6 = device.process_nm == 45;
    std::printf("\n--- %s ---\n", device.name.c_str());
    core::DhTrng trng({.device = device, .seed = 777});
    const auto stream = trng.generate(bits);
    const auto rows = stats::sp800_90b::run_all(stream);
    std::printf("%-12s %-10s %-10s %s\n", "estimator", "p-max", "h-min",
                "paper h-min");
    double overall = 1.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      overall = std::min(overall, rows[i].h_min);
      std::printf("%-12s %.6f   %.6f   %.6f\n", rows[i].name.c_str(),
                  rows[i].p_max, rows[i].h_min,
                  is_v6 ? kPaper[i].v6 : kPaper[i].a7);
    }
    std::printf("overall (min):      %.6f\n", overall);
    std::printf("IID track (MCV):    %.6f  (paper: %.6f)\n",
                stats::sp800_90b::iid_min_entropy(stream),
                is_v6 ? 0.994698 : 0.995966);
  }
  return 0;
}
