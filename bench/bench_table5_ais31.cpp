// Table 5: AIS-31 test battery (T0-T8) per device.
//
// The paper collects 7,200,000 bits per device; the full BSI reference
// procedure we implement (T0 on 2^16 48-bit blocks + 257 x 20 kbit
// sequences + procedure B) needs ~10.4 Mbit, so the bench generates
// ais31::required_bits() and reports the same nine rows.
#include <cstdio>

#include "bench_util.h"
#include "core/dhtrng.h"
#include "stats/ais31.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  (void)argc;
  (void)argv;

  bench::header("Table 5 - AIS-31 test", "DH-TRNG paper, Table 5 (4.1.3)");
  std::printf("config: %zu bits per device (paper: 7,200,000)\n",
              stats::ais31::required_bits());

  for (const auto& device : bench::paper_devices()) {
    std::printf("\n--- %s ---\n", device.name.c_str());
    core::DhTrng trng({.device = device, .seed = 31337});
    const auto stream = trng.generate(stats::ais31::required_bits());
    std::printf("%-34s %-8s %s\n", "AIS-31", "result", "pass rate");
    bool all = true;
    for (const auto& outcome : stats::ais31::run_all(stream)) {
      std::printf("%-34s %-8s %.1f%%  %s\n", outcome.name.c_str(),
                  outcome.pass ? "Pass" : "FAIL", outcome.pass_rate * 100.0,
                  outcome.detail.c_str());
      all = all && outcome.pass;
    }
    std::printf("=> %s (paper: all pass)\n",
                all ? "all items pass" : "FAILURES present");
  }
  return 0;
}
