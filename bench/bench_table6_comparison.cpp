// Table 6 + Figure 1(b): comparison with prior FPGA TRNGs on Artix-7 in
// LUTs / DFFs / slices / throughput / power and the figure of merit
// Throughput / (Slices * Power).
//
// Rows marked [model] are measured from our re-implemented behavioural
// baselines and the area/power models; rows marked [cited] carry the
// numbers published in the paper's Table 6 for designs we did not
// re-implement.  The quantity under test is the *ordering* and the ~2.6x
// FoM lead of DH-TRNG over the best prior art (DAC'23).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/baselines/coso_trng.h"
#include "core/baselines/latch_trng.h"
#include "core/baselines/tero_trng.h"
#include "core/dhtrng.h"
#include "core/zoo/zoo.h"
#include "fpga/power.h"
#include "fpga/slice_packer.h"

namespace {

struct Row {
  std::string design;
  std::string kind;  // "cited" or "model"
  std::size_t luts, dffs, slices;
  double throughput_mbps;
  double power_w;
  double fom() const {
    return throughput_mbps / (static_cast<double>(slices) * power_w);
  }
};

Row measure(dhtrng::core::TrngSource& trng, const std::string& name,
            const dhtrng::fpga::DeviceModel& device, std::size_t slices) {
  const auto rc = trng.resources();
  const auto power = dhtrng::fpga::estimate_power(device, trng.activity());
  return {name,      "model", rc.luts,        rc.dffs, slices,
          trng.throughput_mbps(), power.total_w()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtrng;
  (void)argc;
  (void)argv;

  bench::header("Table 6 / Figure 1(b) - comparison with prior art",
                "DH-TRNG paper, Table 6 (Section 4.6), all on Artix-7");

  const auto a7 = fpga::DeviceModel::artix7();
  std::vector<Row> rows;

  // Cited rows (values from the paper's Table 6).
  rows.push_back({"FPL'20 [12]", "cited", 40, 29, 10, 1.91, 0.043});
  rows.push_back({"TCASI'21 [14]", "cited", 56, 19, 18, 100.0, 0.068});
  rows.push_back({"TCASI'22 [15]", "cited", 32, 55, 33, 12.5, 0.063});
  rows.push_back({"TCASII'22 [16]", "cited", 38, 121, 38, 300.0, 0.119});
  rows.push_back({"TC'23 [17]", "cited", 152, 16, 40, 1.25, 0.023});

  // Modelled rows: behavioural re-implementations + our power model.
  {
    core::TeroTrng tero({.device = a7, .seed = 4});
    rows.push_back(measure(tero, "FPL'20 [12] (model)", a7, 10));
  }
  {
    core::LatchTrng latch({.device = a7, .seed = 1});
    rows.push_back(measure(latch, "TCASII'21 [13]", a7, 1));
  }
  {
    core::CosoTrng coso({.device = a7, .seed = 2});
    Row r = measure(coso, "DAC'23 [3]", a7, 13);
    rows.push_back(r);
    // Same design with its *published* power (0.049 W), the value the
    // paper's FoM 432.97 is computed from.
    r.design = "DAC'23 [3] pub-power";
    r.kind = "cited";
    r.power_w = 0.049;
    rows.push_back(r);
  }
  // Entropy-source zoo rows (core/zoo/): re-implemented alternative
  // front-ends at their default design points, same area/power models.
  // Marked "zoo" so they are excluded from the Figure 1(b) prior-art
  // comparison — they are our exploratory models, not published rows
  // (see `trng_tool compare` for the full cross-architecture report).
  {
    core::NeoTrng neo({.device = a7, .seed = 5});
    Row r = measure(neo, "neoTRNG (model)", a7,
                    neo.slice_report().slice_count());
    r.kind = "zoo";
    rows.push_back(r);
  }
  {
    core::KleinTrng klein({.device = a7, .seed = 6});
    Row r = measure(klein, "Klein-RO (model)", a7,
                    klein.slice_report().slice_count());
    r.kind = "zoo";
    rows.push_back(r);
  }
  {
    core::HbnTrng hbn({.device = a7, .seed = 7});
    Row r = measure(hbn, "HBN (model)", a7,
                    hbn.slice_report().slice_count());
    r.kind = "zoo";
    rows.push_back(r);
  }
  {
    core::DhTrng dh({.device = a7, .seed = 3});
    const std::size_t slices = dh.slice_report().slice_count();
    rows.push_back(measure(dh, "This work (DH-TRNG)", a7, slices));
  }

  std::printf("%-20s %-6s %5s %5s %7s %12s %8s %12s\n", "design", "kind",
              "LUTs", "DFFs", "slices", "thput(Mbps)", "power(W)",
              "FoM=T/(S*P)");
  const Row* best_prior = nullptr;
  const Row* this_work = nullptr;
  for (const Row& r : rows) {
    std::printf("%-20s %-6s %5zu %5zu %7zu %12.2f %8.3f %12.1f\n",
                r.design.c_str(), r.kind.c_str(), r.luts, r.dffs, r.slices,
                r.throughput_mbps, r.power_w, r.fom());
    if (r.design.find("This work") != std::string::npos) {
      this_work = &r;
    } else if (r.kind != "zoo" &&
               (best_prior == nullptr || r.fom() > best_prior->fom())) {
      best_prior = &r;
    }
  }
  std::printf("\npaper reference row: This work = 23 LUTs, 14 DFFs, 8 slices, "
              "620 Mbps, 0.068 W, FoM 1139.7\n");
  if (this_work != nullptr && best_prior != nullptr) {
    std::printf("figure 1(b): DH-TRNG FoM / best prior (%s) = %.2fx "
                "(paper: 2.63x over DAC'23)\n",
                best_prior->design.c_str(),
                this_work->fom() / best_prior->fom());
    std::printf("             against DAC'23 at its published power: %.2fx\n",
                this_work->fom() / (275.8 / (13.0 * 0.049)));
    std::printf("ordering check: DH-TRNG has the highest throughput (%s) and "
                "the highest FoM (%s)\n",
                this_work->throughput_mbps >= 300.0 ? "yes" : "NO",
                this_work->fom() > best_prior->fom() ? "yes" : "NO");
  }
  return 0;
}
