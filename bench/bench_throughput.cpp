// Throughput micro-benchmarks (google-benchmark): bit-generation rates of
// the two DH-TRNG backends and the baselines.  The paper's Mbps figures are
// *hardware clock* rates (one bit per cycle at 620/670 MHz); these numbers
// measure the simulation models' software speed, which is what bounds the
// statistical experiments above.
#include <benchmark/benchmark.h>

#include "core/baselines/coso_trng.h"
#include "core/baselines/xor_ro_trng.h"
#include "core/dhtrng.h"
#include "core/hybrid_array.h"

namespace {

using namespace dhtrng;

void BM_DhTrngFastBackend(benchmark::State& state) {
  core::DhTrng trng({.device = fpga::DeviceModel::artix7(), .seed = 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DhTrngFastBackend);

void BM_DhTrngGateLevelBackend(benchmark::State& state) {
  core::DhTrng trng({.device = fpga::DeviceModel::artix7(),
                     .seed = 2,
                     .backend = core::Backend::GateLevel});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DhTrngGateLevelBackend);

void BM_XorRoBaseline(benchmark::State& state) {
  core::XorRoTrng trng({.seed = 3, .stages = static_cast<int>(state.range(0)),
                        .rings = 12});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XorRoBaseline)->Arg(3)->Arg(9);

void BM_HybridArray(benchmark::State& state) {
  core::HybridArrayTrng trng({.seed = 4,
                              .units = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridArray)->Arg(9)->Arg(18);

void BM_CosoBaseline(benchmark::State& state) {
  core::CosoTrng trng({.seed = 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trng.next_bit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CosoBaseline);

void BM_BulkGenerateMbit(benchmark::State& state) {
  core::DhTrng trng({.device = fpga::DeviceModel::artix7(), .seed = 6});
  for (auto _ : state) {
    support::BitStream bs;
    trng.generate(bs, 1 << 20);
    benchmark::DoNotOptimize(bs.size());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_BulkGenerateMbit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
