// Shared helpers for the reproduction benches: flag parsing, table
// printing, and the device list the paper evaluates on.
//
// Every bench prints the paper's reported values next to the values
// measured from the simulation models, so bench_output.txt doubles as the
// paper-vs-measured record summarized in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fpga/device.h"

namespace dhtrng::bench {

/// Parse "--name=value" (integer) from argv, else return fallback.
inline long long flag(int argc, char** argv, const char* name,
                      long long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Parse "--name=value" (string) from argv, else return fallback.
inline std::string flag_str(int argc, char** argv, const char* name,
                            const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Parse a bare "--name" switch.
inline bool flag_set(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

inline void header(const char* experiment, const char* paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=============================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

inline std::vector<fpga::DeviceModel> paper_devices() {
  return {fpga::DeviceModel::virtex6(), fpga::DeviceModel::artix7()};
}

}  // namespace dhtrng::bench
