// Shared helpers for the reproduction benches: flag parsing, table
// printing, and the device list the paper evaluates on.
//
// Every bench prints the paper's reported values next to the values
// measured from the simulation models, so bench_output.txt doubles as the
// paper-vs-measured record summarized in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "fpga/device.h"

namespace dhtrng::bench {

/// Parse "--name=value" (integer) from argv, else return fallback.
inline long long flag(int argc, char** argv, const char* name,
                      long long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Parse "--name=value" (string) from argv, else return fallback.
inline std::string flag_str(int argc, char** argv, const char* name,
                            const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Parse a bare "--name" switch.
inline bool flag_set(int argc, char** argv, const char* name) {
  const std::string want = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

inline void header(const char* experiment, const char* paper_ref) {
  std::printf("=============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("=============================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

inline std::vector<fpga::DeviceModel> paper_devices() {
  return {fpga::DeviceModel::virtex6(), fpga::DeviceModel::artix7()};
}

/// Best-of-N timing with an explicit warmup rep.  Runs `fn` once untimed
/// (populates caches, faults in pages, triggers lazy CPU-dispatch init),
/// then `reps` timed runs and returns the minimum wall seconds — min, not
/// mean, because the workloads are deterministic and only scheduling noise
/// varies, so the minimum is the estimator with the least interference.
template <class F>
double best_of_seconds(int reps, F&& fn) {
  fn();  // warmup — never timed
  double best = -1.0;
  for (int i = 0; i < (reps > 0 ? reps : 1); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

/// UTC date as "YYYY-MM-DD" for trajectory entries.
inline std::string iso_date_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

/// Short git commit hash of the working tree, or "unknown" outside a
/// checkout (e.g. an installed bench binary run from a tarball).
inline std::string git_commit() {
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (!p) return "unknown";
  char buf[64] = {0};
  const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
  ::pclose(p);
  if (!got) return "unknown";
  std::string s(buf);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s.empty() ? "unknown" : s;
}

/// Default trajectory path for a bench: all benches share one directory so
/// the JSONL history accumulates in a predictable place (CI uploads the
/// whole directory as an artifact).
inline std::string trajectory_path(const std::string& bench) {
  return "bench/trajectory/BENCH_" + bench + "_trajectory.jsonl";
}

/// Append one machine-readable perf-trajectory record to `path` (JSON
/// Lines: one object per line, so appending never needs to parse what is
/// already there).  Creates the parent directory if needed and warns on
/// stderr instead of silently dropping the row — an empty trajectory
/// should never be a silent failure again.
inline void append_trajectory(const std::string& path,
                              const std::string& bench,
                              double ns_per_event, double mbit_per_s,
                              const std::string& extra_json = "") {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A failure here surfaces as the open failure below.
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot append trajectory row to %s\n",
                 path.c_str());
    return;
  }
  out << "{\"date\": \"" << iso_date_utc() << "\", \"commit\": \""
      << git_commit() << "\", \"bench\": \"" << bench
      << "\", \"ns_per_event\": " << ns_per_event
      << ", \"mbit_per_s\": " << mbit_per_s;
  if (!extra_json.empty()) out << ", " << extra_json;
  out << "}\n";
  if (!out.good()) {
    std::fprintf(stderr, "warning: short trajectory write to %s\n",
                 path.c_str());
  }
}

}  // namespace dhtrng::bench
