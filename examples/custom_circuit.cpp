// Building a custom circuit on the gate-level substrate: a 5-stage ring
// oscillator sampled by a flip-flop, i.e. the textbook jitter TRNG of the
// paper's Figure 2(a) — then measuring its waveform statistics and mapping
// it onto FPGA slices.
//
// This demonstrates the simulator API that the DH-TRNG netlist itself is
// built on (src/core/netlist.cpp).
#include <cstdio>

#include "core/ro.h"
#include "fpga/device.h"
#include "fpga/power.h"
#include "fpga/slice_packer.h"
#include "fpga/timing.h"
#include "sim/simulator.h"
#include "stats/correlation.h"
#include "support/bitstream.h"

int main() {
  using namespace dhtrng;
  const auto device = fpga::DeviceModel::artix7();

  // --- build the netlist --------------------------------------------------
  sim::Circuit circuit;
  const sim::NetId enable = circuit.add_net("enable");
  circuit.set_initial(enable, true);

  // 5-stage ring oscillator out of LUT inverters.
  const double element_delay = device.lut_delay_ps + 0.35 * device.net_delay_ps;
  const sim::NetId ring_out =
      core::build_ring_oscillator(circuit, "ro", 5, enable, element_delay);

  // 100 MHz sampling flip-flop (Figure 2(a): low-frequency clock samples
  // the high-frequency oscillation).
  const sim::NetId clk = circuit.add_net("clk");
  circuit.add_clock(clk, 10000.0);  // 10 ns period
  const sim::NetId q = circuit.add_net("q");
  const std::size_t sampler =
      circuit.add_dff(clk, ring_out, q, device.dff_timing());

  circuit.validate();

  // --- simulate -----------------------------------------------------------
  sim::SimConfig cfg;
  cfg.seed = 42;
  cfg.gate_jitter = device.gate_jitter;
  sim::Simulator sim(circuit, cfg);
  sim.record_dff(sampler);
  sim.run_until(20e6);  // 20 microseconds -> ~2000 samples

  const auto& samples = sim.samples(sampler);
  support::BitStream bits;
  for (std::uint8_t s : samples) bits.push_back(s != 0);

  const double ring_freq_ghz =
      static_cast<double>(sim.toggle_count(ring_out)) / 2.0 / sim.now() * 1e3;
  std::printf("simulated %.1f us: ring at %.0f MHz, %zu samples captured\n",
              sim.now() / 1e6, ring_freq_ghz * 1e3, bits.size());
  std::printf("events processed: %llu, metastable captures: %llu\n",
              static_cast<unsigned long long>(sim.events_processed()),
              static_cast<unsigned long long>(sim.metastable_samples()));
  std::printf("sampled-bit bias: %.2f%%, ACF(1): %+.3f\n",
              stats::bias_percent(bits),
              stats::autocorrelation(bits, 1)[0]);

  // --- map to the FPGA ----------------------------------------------------
  const auto report = fpga::SlicePacker{}.pack(circuit, "jitter-trng");
  std::printf("\nFPGA mapping:\n%s", report.to_string().c_str());

  fpga::ActivityEstimate activity;
  activity.clock_mhz = 100.0;
  activity.flip_flops = 1;
  activity.logic_toggle_ghz =
      static_cast<double>(sim.total_toggles()) / sim.now() * 1e3;
  const auto power = fpga::estimate_power(device, activity);
  std::printf("estimated power: %.3f W (static %.3f + PLL %.3f + logic %.4f)\n",
              power.total_w(), power.static_w, power.pll_w, power.logic_w);

  // Static timing: the ring is a cut loop, so the only register path here
  // is trivial — shown for the API; see tests/fpga/test_timing.cpp for the
  // DH-TRNG sampling-array path.
  const auto timing = fpga::analyze_timing(circuit, device);
  if (timing.critical.delay_ps > 0.0) {
    std::printf("%s", timing.to_string(circuit).c_str());
  } else {
    std::printf("no register-to-register path (the RO loop is an "
                "asynchronous source; STA cuts it)\n");
  }
  return 0;
}
