// Entropy analysis: run the SP 800-90B estimator battery and the
// autocorrelation analysis over every TRNG in the library and print a
// comparison — the workflow an evaluator would use to choose a design.
//
//   $ ./entropy_analysis [nbits]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/baselines/coso_trng.h"
#include "core/baselines/latch_trng.h"
#include "core/baselines/msf_ro_trng.h"
#include "core/baselines/tero_trng.h"
#include "core/baselines/xor_ro_trng.h"
#include "core/dhtrng.h"
#include "core/hybrid_array.h"
#include "stats/correlation.h"
#include "stats/sp800_90b.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const std::size_t nbits =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 300000;

  std::vector<std::unique_ptr<core::TrngSource>> sources;
  sources.push_back(std::make_unique<core::DhTrng>(
      core::DhTrngConfig{.device = fpga::DeviceModel::artix7(), .seed = 1}));
  sources.push_back(std::make_unique<core::HybridArrayTrng>(
      core::HybridArrayConfig{.seed = 2, .units = 12}));
  sources.push_back(std::make_unique<core::XorRoTrng>(
      core::XorRoConfig{.seed = 3, .stages = 9, .rings = 12}));
  sources.push_back(
      std::make_unique<core::MsfRoTrng>(core::MsfRoConfig{.seed = 4}));
  sources.push_back(
      std::make_unique<core::CosoTrng>(core::CosoConfig{.seed = 5}));
  sources.push_back(
      std::make_unique<core::LatchTrng>(core::LatchTrngConfig{.seed = 6}));
  sources.push_back(
      std::make_unique<core::TeroTrng>(core::TeroConfig{.seed = 7}));

  std::printf("analyzing %zu bits from each generator\n\n", nbits);
  std::printf("%-24s %8s %8s %8s %8s %9s %9s\n", "generator", "h-mcv",
              "h-markov", "h-lag", "overall", "bias(%)", "max|ACF|");

  for (const auto& source : sources) {
    const auto bits = source->generate(nbits);
    const auto rows = stats::sp800_90b::run_all(bits);
    double overall = 1.0, h_mcv = 0, h_markov = 0, h_lag = 0;
    for (const auto& r : rows) {
      overall = std::min(overall, r.h_min);
      if (r.name == "MCV") h_mcv = r.h_min;
      if (r.name == "Markov") h_markov = r.h_min;
      if (r.name == "Lag") h_lag = r.h_min;
    }
    double max_acf = 0.0;
    for (double a : stats::autocorrelation(bits, 50)) {
      max_acf = std::max(max_acf, std::abs(a));
    }
    std::printf("%-24s %8.4f %8.4f %8.4f %8.4f %9.4f %9.5f\n",
                source->name().c_str(), h_mcv, h_markov, h_lag, overall,
                stats::bias_percent(bits), max_acf);
  }

  std::printf("\n(overall = min over all ten SP 800-90B estimators; see "
              "bench_table4 for the full battery)\n");
  std::printf("note: MSFRO and the multiphase sampler are behavioural models "
              "of the *architectures*;\nthey emit raw samples without the "
              "originals' conversion/counting logic, so their\nmeasured "
              "entropy understates the published designs (DESIGN.md, "
              "substitution table).\nTheir Table 6 columns (area, throughput, "
              "power) are unaffected.\n");
  return 0;
}
