// Key generation backed by the health-gated entropy service — the paper's
// motivating use case (roots of trust for encryption systems).
//
// An EntropyPool runs several DH-TRNG producers on background threads,
// gates every block through the SP 800-90B continuous health tests
// (repetition count + adaptive proportion), and quarantines/reseeds any
// producer that alarms.  On top of that continuous gate this example adds
// an AIS-31 procedure-A screen on the drawn key material, the way a
// deployed TRNG peripheral layers a consumer-side acceptance test over the
// source-side online tests.
#include <cstdio>
#include <cstdlib>

#include "core/entropy_pool.h"
#include "stats/ais31.h"

namespace {

using namespace dhtrng;

/// Consumer-side screen: AIS-31 procedure-A statistical tests on a
/// 20000-bit block of drawn material.
bool block_is_healthy(const support::BitStream& block) {
  return stats::ais31::t1_monobit(block) && stats::ais31::t2_poker(block) &&
         stats::ais31::t4_long_run(block);
}

support::BitStream draw_bits(core::EntropyPool& pool, std::size_t nbits) {
  return support::BitStream::from_bytes(pool.get_bytes((nbits + 7) / 8))
      .slice(0, nbits);
}

void print_hex(const char* label, const support::BitStream& bits) {
  std::printf("%s", label);
  for (std::uint8_t b : bits.to_bytes()) std::printf("%02x", b);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int keys = argc > 1 ? std::atoi(argv[1]) : 4;

  auto pool = core::EntropyPool::of_dhtrng(
      {.producers = 2, .buffer_bytes = 8192, .block_bits = 4096},
      {.device = fpga::DeviceModel::artix7(), .seed = 0xC0FFEE});

  // Startup test: discard and verify the first block (AIS-31 requires the
  // startup sequence to be tested and thrown away).
  {
    const auto startup = draw_bits(pool, 20000);
    if (!block_is_healthy(startup)) {
      std::fprintf(stderr, "startup health test failed\n");
      return 1;
    }
    std::printf("startup health test: ok (20000 bits tested and discarded)\n\n");
  }

  support::BitStream material;
  std::size_t blocks_tested = 0, blocks_rejected = 0;
  const auto refill = [&](std::size_t needed) {
    while (material.size() < needed) {
      const auto block = draw_bits(pool, 20000);
      ++blocks_tested;
      if (block_is_healthy(block)) {
        material.append(block);
      } else {
        ++blocks_rejected;  // discard unhealthy block, keep drawing
      }
    }
  };

  std::size_t cursor = 0;
  for (int k = 0; k < keys; ++k) {
    refill(cursor + 256 + 96);
    const auto key = material.slice(cursor, 256);
    cursor += 256;
    const auto nonce = material.slice(cursor, 96);
    cursor += 96;
    std::printf("key %d\n", k + 1);
    print_hex("  AES-256 key : ", key);
    print_hex("  GCM nonce   : ", nonce);
  }

  std::printf("\n%zu producers, %zu healthy at exit; %zu source quarantine "
              "event(s)\n",
              pool.producers(), pool.healthy_producers(),
              pool.quarantine_events());
  std::printf("%zu blocks screened, %zu rejected; %zu bytes drawn from the "
              "pool in total\n",
              blocks_tested, blocks_rejected, pool.bytes_produced());
  return 0;
}
