// Key generation with online health tests — the paper's motivating use
// case (roots of trust for encryption systems).
//
// Generates AES-256 keys and 96-bit nonces from a DH-TRNG, gating every
// block of raw bits through AIS-31-style startup/online tests (monobit,
// poker, long-run) the way a deployed TRNG peripheral would.
#include <cstdio>
#include <cstdlib>

#include "core/dhtrng.h"
#include "stats/ais31.h"

namespace {

using namespace dhtrng;

/// Online health gate: run the AIS-31 procedure-A statistical tests on a
/// 20000-bit block before releasing it to the key pool.
bool block_is_healthy(const support::BitStream& block) {
  return stats::ais31::t1_monobit(block) && stats::ais31::t2_poker(block) &&
         stats::ais31::t4_long_run(block);
}

void print_hex(const char* label, const support::BitStream& bits) {
  std::printf("%s", label);
  for (std::uint8_t b : bits.to_bytes()) std::printf("%02x", b);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int keys = argc > 1 ? std::atoi(argv[1]) : 4;

  core::DhTrng trng({.device = fpga::DeviceModel::artix7(), .seed = 0xC0FFEE});

  // Startup test: discard and verify the first block (AIS-31 requires the
  // startup sequence to be tested and thrown away).
  {
    const auto startup = trng.generate(20000);
    if (!block_is_healthy(startup)) {
      std::fprintf(stderr, "startup health test failed\n");
      return 1;
    }
    std::printf("startup health test: ok (20000 bits tested and discarded)\n\n");
  }

  support::BitStream pool;
  std::size_t blocks_tested = 0, blocks_rejected = 0;
  const auto refill = [&](std::size_t needed) {
    while (pool.size() < needed) {
      const auto block = trng.generate(20000);
      ++blocks_tested;
      if (block_is_healthy(block)) {
        pool.append(block);
      } else {
        ++blocks_rejected;  // discard unhealthy block, keep generating
      }
    }
  };

  std::size_t cursor = 0;
  for (int k = 0; k < keys; ++k) {
    refill(cursor + 256 + 96);
    const auto key = pool.slice(cursor, 256);
    cursor += 256;
    const auto nonce = pool.slice(cursor, 96);
    cursor += 96;
    std::printf("key %d\n", k + 1);
    print_hex("  AES-256 key : ", key);
    print_hex("  GCM nonce   : ", nonce);
  }

  std::printf("\n%zu blocks health-tested, %zu rejected\n", blocks_tested,
              blocks_rejected);
  std::printf("at %.0f Mbps this key material takes %.1f microseconds of "
              "hardware time\n",
              trng.throughput_mbps(),
              static_cast<double>(cursor) / trng.throughput_mbps());
  return 0;
}
