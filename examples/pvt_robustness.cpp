// PVT robustness check: sweep a DH-TRNG across the paper's temperature and
// voltage envelope (-20..80 C, 0.8..1.2 V) and report the entropy margin
// against a deployment threshold — what a certification lab would script
// before fielding the design.
//
//   $ ./pvt_robustness [nbits_per_corner]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/dhtrng.h"
#include "stats/correlation.h"
#include "stats/sp800_90b.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const std::size_t nbits =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200000;
  constexpr double kThreshold = 0.90;  // deployment min-entropy floor

  const double temps[] = {-20.0, 20.0, 80.0};
  const double volts[] = {0.8, 1.0, 1.2};

  for (const auto& device :
       {fpga::DeviceModel::virtex6(), fpga::DeviceModel::artix7()}) {
    std::printf("=== %s ===\n", device.name.c_str());
    double worst_h = 1.0, worst_t = 0, worst_v = 0;
    for (double t : temps) {
      for (double v : volts) {
        core::DhTrng trng({.device = device, .pvt = {t, v}, .seed = 1234});
        const auto bits = trng.generate(nbits);
        double h = 1.0;
        h = std::min(h, stats::sp800_90b::mcv(bits).h_min);
        h = std::min(h, stats::sp800_90b::markov(bits).h_min);
        const double clock = trng.clock_mhz();
        std::printf("  %+4.0fC %.1fV: clock %.0f MHz, h-min %.4f, bias %.3f%%"
                    "  %s\n",
                    t, v, clock, h, stats::bias_percent(bits),
                    h >= kThreshold ? "ok" : "BELOW THRESHOLD");
        if (h < worst_h) {
          worst_h = h;
          worst_t = t;
          worst_v = v;
        }
      }
    }
    std::printf("  worst corner: %+.0fC %.1fV with h-min %.4f -> margin %+.4f"
                " over the %.2f floor\n\n",
                worst_t, worst_v, worst_h, worst_h - kThreshold, kThreshold);
  }
  return 0;
}
