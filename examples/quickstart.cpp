// Quickstart: build a DH-TRNG for an Artix-7 device, generate random bits,
// and print a hex dump plus basic health statistics.
//
//   $ ./quickstart [nbits]
#include <cstdio>
#include <cstdlib>

#include "core/dhtrng.h"
#include "stats/correlation.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const std::size_t nbits =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4096;

  // One line to get a generator: device model picks timing, noise and power
  // constants; the sampling clock defaults to the device maximum (the
  // paper's 620 MHz on Artix-7 -> 620 Mbps, one bit per cycle).
  core::DhTrng trng({.device = fpga::DeviceModel::artix7(), .seed = 1});

  std::printf("DH-TRNG on %s: %.0f MHz sampling clock, %.0f Mbps\n",
              trng.config().device.name.c_str(), trng.clock_mhz(),
              trng.throughput_mbps());
  const auto rc = trng.resources();
  std::printf("footprint: %zu LUTs, %zu MUXs, %zu DFFs in %zu slices\n\n",
              rc.luts, rc.muxes, rc.dffs, trng.slice_report().slice_count());

  const support::BitStream bits = trng.generate(nbits);

  std::printf("first 256 bits as hex:\n  ");
  const auto bytes = bits.to_bytes();
  for (std::size_t i = 0; i < 32 && i < bytes.size(); ++i) {
    std::printf("%02X", bytes[i]);
    if (i % 16 == 15) std::printf("\n  ");
  }
  std::printf("\n\nhealth:\n");
  std::printf("  bias            : %.4f%%\n", stats::bias_percent(bits));
  const auto acf = stats::autocorrelation(bits, 8);
  std::printf("  ACF lags 1..4   : %+.4f %+.4f %+.4f %+.4f\n", acf[0], acf[1],
              acf[2], acf[3]);
  std::printf("  metastable frac : %.2f (share of cycles harvesting "
              "metastability)\n",
              trng.metastable_fraction());
  return 0;
}
