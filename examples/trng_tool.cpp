// Command-line TRNG utility — generate random data and/or evaluate it.
//
//   trng_tool generate [--device=artix7|virtex6] [--bits=N] [--seed=S]
//                      [--backend=fast|gate|soa|neo|klein|hbn]
//                      [--format=hex|bin|bits]
//                      [--post=none|vn|peres|xor4|sha256]
//                      [--noise-mode=fast|exact]
//   trng_tool evaluate [--device=...] [--bits=N] [--seed=S] [--threads=T]
//                      [--noise-mode=...]
//   trng_tool report   [--device=...] [--bits=N] [--seed=S] [--noise-mode=...]
//   trng_tool compare  [--seed=S] [--bits=N] [--device=artix7|virtex6]
//                      [--archs=dhtrng,neo,klein,hbn]
//   trng_tool serve    [--port=P] [--unix=PATH] [--producers=N]
//                      [--workers=N] [--seed=S] [--device=] [--backend=]
//                      [--rate-mbps=R] [--max-request=N] [--noise-mode=...]
//   trng_tool fetch    [--host=H] [--port=P] [--unix=PATH] [--bytes=N]
//                      [--quality=raw|conditioned|drbg] [--format=hex|bin]
//   trng_tool subscribe [--host=H] [--port=P] [--unix=PATH] [--bytes=N]
//                      [--interval-ms=M] [--count=K] [--quality=...]
//                      [--format=hex|bin] [--noise-mode=...]
//   trng_tool stats    [--host=H] [--port=P] [--unix=PATH]
//   trng_tool cert     [--host=H] [--port=P] [--unix=PATH]
//
// `--noise-mode` selects the noise fidelity uniformly across the
// generator-side commands: `exact` (default; golden-digest-pinned streams)
// or `fast` (fused SIMD Box-Muller kernels, statistically equivalent,
// deterministic per (seed, mode) but a different bit stream).  For the
// `soa` backend the default is `fast` — its bulk engine.  `subscribe`
// takes the flag too as a client-side guard: it checks the server's
// advertised `noise_mode` (STATS) and refuses to stream when they differ.
//
// `generate` writes to stdout; `evaluate` runs the quick statistical
// screen (bias, ACF, core SP 800-90B estimators, IID permutation test);
// `report` renders the full characterization report (all suites);
// `serve` runs the entropy-as-a-service daemon until SIGINT/SIGTERM;
// `fetch`, `subscribe`, `stats` and `cert` are protocol clients against a
// running daemon (`subscribe` streams pushed chunks until --count pushes
// arrive or SIGINT, then unsubscribes cleanly; `cert` dumps the live
// streaming-certification snapshots — per-producer and merged
// SP 800-22/90B accumulators).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/dhtrng.h"
#include "core/dhtrng_soa.h"
#include "core/postprocess.h"
#include "core/zoo/compare.h"
#include "core/zoo/zoo.h"
#include "service/client.h"
#include "service/entropy_server.h"
#include "stats/correlation.h"
#include "stats/report.h"
#include "stats/sp800_90b.h"

namespace {

using namespace dhtrng;

std::string flag(int argc, char** argv, const char* name,
                 const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

/// Validated --noise-mode parse; `fallback` is the command's default
/// ("exact" everywhere except the soa backend's bulk engine).  Exits the
/// usual flag-error way (return via throw) on anything else.
noise::NoiseMode parse_noise_mode(int argc, char** argv,
                                  const std::string& fallback) {
  const std::string mode = flag(argc, argv, "noise-mode", fallback);
  if (mode == "fast") return noise::NoiseMode::Fast;
  if (mode == "exact") return noise::NoiseMode::Exact;
  throw std::runtime_error("unknown --noise-mode=" + mode +
                           " (expected fast|exact)");
}

/// The complete --backend vocabulary, for error messages: the DH-TRNG
/// backends plus every registered zoo architecture.
std::string valid_backends() {
  std::string names = "fast|gate|soa";
  for (const std::string& name : core::zoo_source_names()) {
    names += "|" + name;
  }
  return names;
}

[[noreturn]] void reject_backend(const std::string& backend) {
  throw std::runtime_error("unknown --backend=" + backend + " (expected " +
                           valid_backends() + ")");
}

core::DhTrngConfig make_core_config(int argc, char** argv) {
  core::DhTrngConfig cfg;
  if (flag(argc, argv, "device", "artix7") == "virtex6") {
    cfg.device = fpga::DeviceModel::virtex6();
  }
  cfg.seed = std::stoull(flag(argc, argv, "seed", "1"));
  if (flag(argc, argv, "backend", "fast") == "gate") {
    cfg.backend = core::Backend::GateLevel;
  }
  cfg.noise_mode = parse_noise_mode(argc, argv, "exact");
  return cfg;
}

// --backend selects the generator: `fast`/`gate` are the DH-TRNG's
// behavioral and event-simulated backends, `soa` the bitsliced
// 64-instance bulk backend (core::DhTrngSoA — ~an order of magnitude more
// bits per second, statistically equivalent but not bit-identical to a
// single DhTrng instance), and `neo`/`klein`/`hbn` the zoo architectures
// (core/zoo/zoo.h, behavioral models).  Anything else is rejected with
// the full vocabulary — no silent fallback to the default.
std::unique_ptr<core::TrngSource> make_trng(int argc, char** argv) {
  const std::string backend = flag(argc, argv, "backend", "fast");
  if (backend == "soa") {
    core::DhTrngSoAConfig cfg;
    cfg.core = make_core_config(argc, argv);
    cfg.noise_mode = parse_noise_mode(argc, argv, "fast");
    return std::make_unique<core::DhTrngSoA>(cfg);
  }
  if (backend == "fast" || backend == "gate") {
    return std::make_unique<core::DhTrng>(make_core_config(argc, argv));
  }
  core::ZooOptions opt;
  if (flag(argc, argv, "device", "artix7") == "virtex6") {
    opt.device = fpga::DeviceModel::virtex6();
  }
  opt.seed = std::stoull(flag(argc, argv, "seed", "1"));
  opt.noise_mode = parse_noise_mode(argc, argv, "exact");
  if (auto src = core::make_zoo_source(backend, opt)) return src;
  reject_backend(backend);
}

int cmd_generate(int argc, char** argv) {
  auto trng = make_trng(argc, argv);
  const auto nbits = std::stoull(flag(argc, argv, "bits", "8192"));
  auto bits = trng->generate(nbits);

  const std::string post = flag(argc, argv, "post", "none");
  if (post == "vn") {
    bits = core::von_neumann_extract(bits);
  } else if (post == "peres") {
    bits = core::peres_extract(bits);
  } else if (post == "xor4") {
    bits = core::xor_compress(bits, 4);
  } else if (post == "sha256") {
    bits = core::sha256_condition(bits, 1024);
  } else if (post != "none") {
    std::fprintf(stderr, "unknown --post=%s\n", post.c_str());
    return 2;
  }

  const std::string format = flag(argc, argv, "format", "hex");
  if (format == "bits") {
    std::fputs(bits.to_string().c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (format == "bin") {
    const auto bytes = bits.to_bytes();
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
  } else {
    const auto bytes = bits.to_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::printf("%02x", bytes[i]);
      if (i % 32 == 31) std::fputc('\n', stdout);
    }
    std::fputc('\n', stdout);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  auto trng = make_trng(argc, argv);
  const auto nbits = std::stoull(flag(argc, argv, "bits", "200000"));
  const auto bits = trng->generate(nbits);

  std::printf("generator : %s on %s at %.0f MHz\n", trng->name().c_str(),
              flag(argc, argv, "device", "artix7").c_str(),
              trng->clock_mhz());
  std::printf("sample    : %zu bits\n\n", bits.size());
  std::printf("bias      : %.4f%%\n", stats::bias_percent(bits));
  double max_acf = 0.0;
  for (double a : stats::autocorrelation(bits, 100)) {
    max_acf = std::max(max_acf, std::abs(a));
  }
  std::printf("max |ACF| : %.5f over lags 1..100\n\n", max_acf);
  std::printf("SP 800-90B estimators:\n");
  for (const auto& row : stats::sp800_90b::run_all(bits)) {
    std::printf("  %-12s h-min = %.4f\n", row.name.c_str(), row.h_min);
  }
  // --threads=0 -> hardware concurrency; the battery's rank counts are
  // thread-count invariant, so this only changes wall-clock time.
  const auto threads = std::stoull(flag(argc, argv, "threads", "1"));
  const auto iid = stats::sp800_90b::permutation_iid_test(
      bits.slice(0, std::min<std::size_t>(bits.size(), 20000)), 120, 3,
      threads);
  std::printf("\nIID permutation test (%zu shuffles): %s\n", iid.permutations,
              iid.iid_assumption_holds ? "assumption holds" : "REJECTED");
  return 0;
}

int cmd_report(int argc, char** argv) {
  auto trng = make_trng(argc, argv);
  stats::ReportOptions opts;
  opts.sample_bits = std::stoull(flag(argc, argv, "bits", "300000"));
  const auto report = stats::characterize(*trng, opts);
  std::fputs(report.text.c_str(), stdout);
  return report.all_clear ? 0 : 1;
}

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

int cmd_serve(int argc, char** argv) {
  service::EntropyServerConfig cfg;
  cfg.tcp_port = static_cast<std::uint16_t>(
      std::stoul(flag(argc, argv, "port", "7230")));
  cfg.unix_path = flag(argc, argv, "unix", "");
  cfg.pool.producers = std::stoull(flag(argc, argv, "producers", "4"));
  cfg.worker_threads = std::stoull(flag(argc, argv, "workers", "4"));
  cfg.pool.seed = std::stoull(flag(argc, argv, "seed", "1"));
  cfg.max_request_bytes =
      std::stoull(flag(argc, argv, "max-request", "1048576"));
  const double rate_mbps = std::stod(flag(argc, argv, "rate-mbps", "0"));
  cfg.global_rate_bytes_per_s =
      static_cast<std::uint64_t>(rate_mbps * 1e6 / 8.0);

  const std::string backend = flag(argc, argv, "backend", "fast");
  core::DhTrngConfig core_cfg;
  if (flag(argc, argv, "device", "artix7") == "virtex6") {
    core_cfg.device = fpga::DeviceModel::virtex6();
  }
  if (backend == "gate") core_cfg.backend = core::Backend::GateLevel;
  core_cfg.noise_mode = parse_noise_mode(argc, argv, "exact");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::unique_ptr<service::EntropyServer> server;
  if (backend == "fast" || backend == "gate") {
    server = service::EntropyServer::of_dhtrng(cfg, core_cfg);
  } else if (backend == "soa") {
    // A bitsliced 64-lane bulk generator per producer.
    core::DhTrngSoAConfig soa_cfg;
    soa_cfg.core = core_cfg;
    soa_cfg.noise_mode = parse_noise_mode(argc, argv, "fast");
    cfg.noise_mode_label =
        soa_cfg.noise_mode == noise::NoiseMode::Fast ? "fast" : "exact";
    server = std::make_unique<service::EntropyServer>(
        cfg, [soa_cfg](std::size_t, std::uint64_t seed) {
          core::DhTrngSoAConfig producer = soa_cfg;
          producer.core.seed = seed;
          return std::make_unique<core::DhTrngSoA>(producer);
        });
  } else {
    // Zoo architectures: the pool's producers are zoo sources.
    core::ZooOptions opt;
    opt.device = core_cfg.device;
    opt.noise_mode = core_cfg.noise_mode;
    opt.seed = cfg.pool.seed;
    if (!core::make_zoo_source(backend, opt)) reject_backend(backend);
    cfg.noise_mode_label =
        opt.noise_mode == noise::NoiseMode::Fast ? "fast" : "exact";
    server = std::make_unique<service::EntropyServer>(
        cfg, [backend, opt](std::size_t, std::uint64_t seed) {
          core::ZooOptions producer = opt;
          producer.seed = seed;
          return core::make_zoo_source(backend, producer);
        });
  }
  std::printf("entropy service listening on 127.0.0.1:%u%s%s\n",
              server->tcp_port(),
              cfg.unix_path.empty() ? "" : " and ",
              cfg.unix_path.c_str());
  std::fflush(stdout);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down (state %s)\n",
              service::service_state_name(server->state()));
  server->stop();
  return 0;
}

service::EntropyClient connect_client(int argc, char** argv) {
  const std::string unix_path = flag(argc, argv, "unix", "");
  if (!unix_path.empty()) {
    return service::EntropyClient::connect_unix(unix_path);
  }
  return service::EntropyClient::connect_tcp(
      flag(argc, argv, "host", "127.0.0.1"),
      static_cast<std::uint16_t>(
          std::stoul(flag(argc, argv, "port", "7230"))));
}

int cmd_fetch(int argc, char** argv) {
  auto client = connect_client(argc, argv);
  const auto n = static_cast<std::uint32_t>(
      std::stoul(flag(argc, argv, "bytes", "32")));
  const std::string quality_str = flag(argc, argv, "quality", "conditioned");
  const auto quality = service::quality_from_name(quality_str);
  if (!quality) {
    std::fprintf(stderr, "unknown --quality=%s\n", quality_str.c_str());
    return 2;
  }
  const auto result = client.fetch(n, *quality);
  if (!result.ok()) {
    std::fprintf(stderr, "fetch refused: %s (%s)\n",
                 service::status_name(result.status),
                 result.detail.c_str());
    return 1;
  }
  if (result.degraded) {
    std::fprintf(stderr,
                 "warning: service is DEGRADED (DRBG fallback output)\n");
  }
  if (flag(argc, argv, "format", "hex") == "bin") {
    std::fwrite(result.bytes.data(), 1, result.bytes.size(), stdout);
  } else {
    for (std::size_t i = 0; i < result.bytes.size(); ++i) {
      std::printf("%02x", result.bytes[i]);
      if (i % 32 == 31) std::fputc('\n', stdout);
    }
    if (result.bytes.size() % 32 != 0) std::fputc('\n', stdout);
  }
  return 0;
}

void write_bytes(const std::vector<std::uint8_t>& bytes, bool binary) {
  if (binary) {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    return;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::printf("%02x", bytes[i]);
    if (i % 32 == 31) std::fputc('\n', stdout);
  }
  if (bytes.size() % 32 != 0) std::fputc('\n', stdout);
}

int cmd_subscribe(int argc, char** argv) {
  auto client = connect_client(argc, argv);
  const auto chunk = static_cast<std::uint32_t>(
      std::stoul(flag(argc, argv, "bytes", "32")));
  const auto interval_ms = static_cast<std::uint32_t>(
      std::stoul(flag(argc, argv, "interval-ms", "1000")));
  const auto count = std::stoull(flag(argc, argv, "count", "0"));  // 0 = ∞
  const std::string quality_str = flag(argc, argv, "quality", "conditioned");
  const auto quality = service::quality_from_name(quality_str);
  if (!quality) {
    std::fprintf(stderr, "unknown --quality=%s\n", quality_str.c_str());
    return 2;
  }
  const bool binary = flag(argc, argv, "format", "hex") == "bin";

  // Client-side noise-mode guard: the stream's fidelity is fixed by the
  // server, so when the caller asked for a specific mode, check the
  // server's advertised `noise_mode` (STATS) before subscribing and
  // refuse a mismatched stream instead of silently delivering the other
  // grade.
  if (flag(argc, argv, "noise-mode", "") != "") {
    const noise::NoiseMode want = parse_noise_mode(argc, argv, "exact");
    const std::string stats = client.stats();
    std::string server_mode = "unknown";
    const std::string tag = "noise_mode ";
    const std::size_t at = stats.find(tag);
    if (at != std::string::npos) {
      const std::size_t end = stats.find('\n', at);
      server_mode = stats.substr(at + tag.size(), end - at - tag.size());
    }
    const std::string want_name =
        want == noise::NoiseMode::Fast ? "fast" : "exact";
    if (server_mode != want_name) {
      std::fprintf(stderr,
                   "noise-mode mismatch: requested %s, server serves %s\n",
                   want_name.c_str(), server_mode.c_str());
      return 1;
    }
  }

  const auto ack = client.subscribe(chunk, interval_ms, *quality);
  if (!ack.ok()) {
    std::fprintf(stderr, "subscribe refused: %s (%s)\n",
                 service::status_name(ack.status), ack.detail.c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::uint64_t received = 0;
  while (!g_stop.load(std::memory_order_acquire) &&
         (count == 0 || received < count)) {
    const auto push = client.try_next_push(200);
    if (!push) continue;  // poll timeout; check the stop flag again
    if (!push->ok()) {
      std::fprintf(stderr, "stream ended: %s (%s)\n",
                   service::status_name(push->status), push->detail.c_str());
      return 1;
    }
    if (push->degraded) {
      std::fprintf(stderr,
                   "warning: service is DEGRADED (DRBG fallback output)\n");
    }
    write_bytes(push->bytes, binary);
    std::fflush(stdout);
    ++received;
  }
  // Clean shutdown: drain in-flight pushes so none are silently dropped.
  for (const auto& push : client.unsubscribe()) {
    if (push.ok()) write_bytes(push.bytes, binary);
  }
  return 0;
}

// Table-6-style cross-architecture report (core/zoo/compare.h): every
// architecture (or --archs=a,b,c) characterized per device model on the
// same pinned seed.  The output is deterministic — CI pins it as an
// artifact, and identical flags reproduce it byte for byte.
int cmd_compare(int argc, char** argv) {
  core::CompareOptions opt;
  opt.seed = std::stoull(flag(argc, argv, "seed", "42"));
  opt.bits = std::stoull(flag(argc, argv, "bits", "131072"));
  const std::string device = flag(argc, argv, "device", "");
  if (device == "artix7") {
    opt.devices = {fpga::DeviceModel::artix7()};
  } else if (device == "virtex6") {
    opt.devices = {fpga::DeviceModel::virtex6()};
  } else if (!device.empty()) {
    throw std::runtime_error("unknown --device=" + device +
                             " (expected artix7|virtex6)");
  }
  std::string archs = flag(argc, argv, "archs", "");
  while (!archs.empty()) {
    const std::size_t comma = archs.find(',');
    opt.archs.push_back(archs.substr(0, comma));
    archs = comma == std::string::npos ? "" : archs.substr(comma + 1);
  }
  const auto report = core::compare_architectures(opt);
  std::fputs(report.text().c_str(), stdout);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  auto client = connect_client(argc, argv);
  std::fputs(client.stats().c_str(), stdout);
  return 0;
}

int cmd_cert(int argc, char** argv) {
  auto client = connect_client(argc, argv);
  std::fputs(client.cert().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s generate|evaluate|report|compare|serve|fetch|"
                 "subscribe|stats|cert "
                 "[--device=] [--bits=] [--seed=] [--backend=] [--format=] "
                 "[--post=] [--port=] [--unix=] [--bytes=] [--quality=] "
                 "[--interval-ms=] [--count=] [--noise-mode=fast|exact]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "evaluate") return cmd_evaluate(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "fetch") return cmd_fetch(argc, argv);
    if (cmd == "subscribe") return cmd_subscribe(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "cert") return cmd_cert(argc, argv);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(), ex.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
