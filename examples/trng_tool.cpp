// Command-line TRNG utility — generate random data and/or evaluate it.
//
//   trng_tool generate [--device=artix7|virtex6] [--bits=N] [--seed=S]
//                      [--backend=fast|gate] [--format=hex|bin|bits]
//                      [--post=none|vn|peres|xor4|sha256]
//   trng_tool evaluate [--device=...] [--bits=N] [--seed=S] [--threads=T]
//   trng_tool report   [--device=...] [--bits=N] [--seed=S]
//
// `generate` writes to stdout; `evaluate` runs the quick statistical
// screen (bias, ACF, core SP 800-90B estimators, IID permutation test);
// `report` renders the full characterization report (all suites).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/dhtrng.h"
#include "core/postprocess.h"
#include "stats/correlation.h"
#include "stats/report.h"
#include "stats/sp800_90b.h"

namespace {

using namespace dhtrng;

std::string flag(int argc, char** argv, const char* name,
                 const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

core::DhTrng make_trng(int argc, char** argv) {
  core::DhTrngConfig cfg;
  if (flag(argc, argv, "device", "artix7") == "virtex6") {
    cfg.device = fpga::DeviceModel::virtex6();
  }
  cfg.seed = std::stoull(flag(argc, argv, "seed", "1"));
  if (flag(argc, argv, "backend", "fast") == "gate") {
    cfg.backend = core::Backend::GateLevel;
  }
  return core::DhTrng(cfg);
}

int cmd_generate(int argc, char** argv) {
  core::DhTrng trng = make_trng(argc, argv);
  const auto nbits = std::stoull(flag(argc, argv, "bits", "8192"));
  auto bits = trng.generate(nbits);

  const std::string post = flag(argc, argv, "post", "none");
  if (post == "vn") {
    bits = core::von_neumann_extract(bits);
  } else if (post == "peres") {
    bits = core::peres_extract(bits);
  } else if (post == "xor4") {
    bits = core::xor_compress(bits, 4);
  } else if (post == "sha256") {
    bits = core::sha256_condition(bits, 1024);
  } else if (post != "none") {
    std::fprintf(stderr, "unknown --post=%s\n", post.c_str());
    return 2;
  }

  const std::string format = flag(argc, argv, "format", "hex");
  if (format == "bits") {
    std::fputs(bits.to_string().c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (format == "bin") {
    const auto bytes = bits.to_bytes();
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
  } else {
    const auto bytes = bits.to_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::printf("%02x", bytes[i]);
      if (i % 32 == 31) std::fputc('\n', stdout);
    }
    std::fputc('\n', stdout);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  core::DhTrng trng = make_trng(argc, argv);
  const auto nbits = std::stoull(flag(argc, argv, "bits", "200000"));
  const auto bits = trng.generate(nbits);

  std::printf("generator : %s on %s at %.0f MHz\n", trng.name().c_str(),
              trng.config().device.name.c_str(), trng.clock_mhz());
  std::printf("sample    : %zu bits\n\n", bits.size());
  std::printf("bias      : %.4f%%\n", stats::bias_percent(bits));
  double max_acf = 0.0;
  for (double a : stats::autocorrelation(bits, 100)) {
    max_acf = std::max(max_acf, std::abs(a));
  }
  std::printf("max |ACF| : %.5f over lags 1..100\n\n", max_acf);
  std::printf("SP 800-90B estimators:\n");
  for (const auto& row : stats::sp800_90b::run_all(bits)) {
    std::printf("  %-12s h-min = %.4f\n", row.name.c_str(), row.h_min);
  }
  // --threads=0 -> hardware concurrency; the battery's rank counts are
  // thread-count invariant, so this only changes wall-clock time.
  const auto threads = std::stoull(flag(argc, argv, "threads", "1"));
  const auto iid = stats::sp800_90b::permutation_iid_test(
      bits.slice(0, std::min<std::size_t>(bits.size(), 20000)), 120, 3,
      threads);
  std::printf("\nIID permutation test (%zu shuffles): %s\n", iid.permutations,
              iid.iid_assumption_holds ? "assumption holds" : "REJECTED");
  return 0;
}

int cmd_report(int argc, char** argv) {
  core::DhTrng trng = make_trng(argc, argv);
  stats::ReportOptions opts;
  opts.sample_bits = std::stoull(flag(argc, argv, "bits", "300000"));
  const auto report = stats::characterize(trng, opts);
  std::fputs(report.text.c_str(), stdout);
  return report.all_clear ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s generate|evaluate|report [--device=] [--bits=] "
                 "[--seed=] [--backend=] [--format=] [--post=]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc, argv);
  if (cmd == "evaluate") return cmd_evaluate(argc, argv);
  if (cmd == "report") return cmd_report(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
