// Waveform inspection: run the exact DH-TRNG gate-level netlist for a few
// microseconds and dump the interesting nets (hybrid-unit rings, central
// XOR rings, the sampled outputs) to a VCD file for GTKWave.
//
//   $ ./waveform_dump [nanoseconds]
//   $ gtkwave dhtrng_waves.vcd
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/netlist.h"
#include "sim/vcd.h"

int main(int argc, char** argv) {
  using namespace dhtrng;
  const double ns = argc > 1 ? std::atof(argv[1]) : 200.0;

  const auto device = fpga::DeviceModel::artix7();
  core::DhTrngNetlist netlist =
      core::build_dhtrng_netlist(device, device.max_clock_mhz(2));

  sim::SimConfig cfg;
  cfg.seed = 2024;
  cfg.gate_jitter = device.gate_jitter;
  sim::Simulator simulator(netlist.circuit, cfg);
  simulator.record_dff(netlist.out_dff);

  // Trace the first structure's rings plus clock and output.
  const std::vector<sim::NetId> nets = {
      netlist.clock_net,
      netlist.circuit.net("s0_a_r1"),  // RO1 (jitter ring)
      netlist.circuit.net("s0_a_r2"),  // RO2 (hold/oscillate ring)
      netlist.circuit.net("s0_b_r1"),
      netlist.circuit.net("s0_b_r2"),
      netlist.circuit.net("s0_c1_x1"),  // central XOR ring 1
      netlist.circuit.net("s0_c2_x1"),  // central XOR ring 2
      netlist.circuit.net("xt2"),       // XOR-tree root
      netlist.out_net,
  };
  sim::VcdTrace trace(netlist.circuit, simulator, nets, 20.0);
  trace.run_until(ns * 1000.0);

  const char* path = "dhtrng_waves.vcd";
  std::ofstream out(path);
  trace.write(out);

  std::printf("simulated %.0f ns of the gate-level DH-TRNG netlist\n", ns);
  std::printf("  events processed    : %llu\n",
              static_cast<unsigned long long>(simulator.events_processed()));
  std::printf("  value changes traced: %zu across %zu nets\n",
              trace.change_count(), nets.size());
  std::printf("  metastable captures : %llu\n",
              static_cast<unsigned long long>(simulator.metastable_samples()));
  std::printf("  output bits sampled : %zu\n",
              simulator.samples(netlist.out_dff).size());
  std::printf("wrote %s — open with GTKWave to see RO2's hold/oscillate\n"
              "switching driven by RO1 (the dynamic hybrid mechanism).\n",
              path);
  return 0;
}
