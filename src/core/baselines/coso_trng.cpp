#include "core/baselines/coso_trng.h"

#include <cmath>

#include "support/special_functions.h"

namespace dhtrng::core {

CosoTrng::CosoTrng(CosoConfig config)
    : config_(config),
      dt_ps_(1e6 / (config.clock_mhz * config.phases)),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0x3c3c3c3c3c3c3c3cULL),
      meta_rng_(config.seed ^ 0xc3c3c3c3c3c3c3c3ULL) {
  PhaseRoParams p;
  p.stages = 3;
  p.stage_delay_ps =
      config.device.lut_delay_ps + 0.35 * config.device.net_delay_ps;
  p.kappa_ps_per_sqrt_ps =
      0.035 * config.device.gate_jitter.white_sigma_ps / 1.2;
  p.flicker_sigma_ps = 3.0;
  ring_.emplace(p, config.seed);
  PhaseRoParams p2 = p;
  p2.stage_delay_ps *= 1.06;  // coherent second ring (beat sampling)
  ring2_.emplace(p2, config.seed ^ 0x77777777deadbeefULL);
}

bool CosoTrng::next_bit() {
  // One phase-shifted sample per call; the phase index only matters for the
  // activity bookkeeping (all samples are dt_ps_ apart in time).
  phase_index_ = (phase_index_ + 1) % config_.phases;
  const double shared = shared_noise_.step();
  // The coherent-sampling pair runs free between read-outs; the multiphase
  // capture effectively integrates several ring periods of jitter per
  // emitted bit, modelled as an accumulation gain.
  ring_->advance(dt_ps_, shared, scale_, 3.0);
  ring2_->advance(dt_ps_, shared, scale_, 3.0);
  // Coherent sampling: the slow beat between the two rings concentrates
  // samples near edges, raising the per-sample entropy.
  bool bit = ring_->level() ^ ring2_->level();
  const double dist =
      std::min(ring_->edge_distance_ps(scale_), ring2_->edge_distance_ps(scale_));
  const double sigma = config_.device.ff_aperture_sigma_ps * 2.0;
  if (dist < 4.0 * sigma) {
    if (!meta_rng_.bernoulli(support::normal_cdf(dist / sigma))) bit = !bit;
  }
  return bit;
}

void CosoTrng::restart() {
  ring_->reset();
  ring2_->reset();
  phase_index_ = 0;
}

sim::ResourceCounts CosoTrng::resources() const {
  // Matches the published implementation's inventory (DAC'23): the
  // multiphase clocking burns DFFs rather than LUTs.
  return {24, 0, 33};
}

fpga::ActivityEstimate CosoTrng::activity() const {
  fpga::ActivityEstimate a;
  // The MMCM generates `phases` equally spaced clock phases; the clock
  // manager and distribution burn power like a single network at the
  // aggregate (bit-rate) frequency.
  a.clock_mhz = config_.clock_mhz * config_.phases;
  a.flip_flops = 33;
  a.logic_toggle_ghz =
      2.0 * 3.0 * 1e3 / ring_->period_ps(scale_) +
      2.0 * 3.0 * 1e3 / ring2_->period_ps(scale_);
  return a;
}

}  // namespace dhtrng::core
