// Multiphase-sampler TRNG in the style of Lu et al., DAC'23 (reference [3],
// the strongest prior art in Table 6: 275.8 Mbps, 24 LUTs / 33 DFFs /
// 13 slices, 0.049 W on Artix-7).  A single ring oscillator is sampled by
// K equally spaced clock phases per cycle, producing K bits per sampling
// period with low logic overhead.
#pragma once

#include <cstdint>
#include <optional>

#include "core/ro.h"
#include "core/trng.h"
#include "noise/jitter.h"
#include "support/rng.h"

namespace dhtrng::core {

struct CosoConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  int phases = 8;            ///< sampling phases per clock cycle
  double clock_mhz = 34.475; ///< 8 phases * 34.475 MHz = 275.8 Mbps
};

class CosoTrng final : public TrngSource {
 public:
  explicit CosoTrng(CosoConfig config = {});

  std::string name() const override { return "Multiphase (DAC'23)"; }
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  double throughput_mbps() const override {
    return config_.clock_mhz * config_.phases;
  }
  fpga::ActivityEstimate activity() const override;

 private:
  CosoConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;
  std::optional<PhaseRo> ring_;
  std::optional<PhaseRo> ring2_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;
  int phase_index_ = 0;
};

}  // namespace dhtrng::core
