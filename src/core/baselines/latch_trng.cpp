#include "core/baselines/latch_trng.h"

#include <algorithm>

namespace dhtrng::core {

LatchTrng::LatchTrng(LatchTrngConfig config)
    : config_(config),
      rng_(config.seed ^ 0x1ee7c0defee1deadULL),
      imbalance_(0.0) {}

bool LatchTrng::next_bit() {
  // The cell's resolution probability wanders slowly around 1/2 (thermal
  // drift of the differential pair); each excite resolves per Eq. 2 with
  // delta = imbalance.
  imbalance_ = 0.999 * imbalance_ +
               rng_.gaussian(0.0, config_.imbalance_sigma * 0.045);
  imbalance_ = std::clamp(imbalance_, -0.2, 0.2);
  return rng_.bernoulli(0.5 + imbalance_);
}

void LatchTrng::restart() { imbalance_ = 0.0; }

fpga::ActivityEstimate LatchTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.bit_rate_mbps;  // excite clock ~ bit rate
  a.flip_flops = 3;
  a.logic_toggle_ghz = 4.0 * config_.bit_rate_mbps * 1e-3;
  return a;
}

}  // namespace dhtrng::core
