// Ultra-compact latched-ring-oscillator TRNG in the style of Della Sala et
// al., TCAS-II'21/22 (reference [13] of Table 6: 4 LUTs / 3 DFFs / 1 slice,
// 0.76 Mbps, 0.025 W).  A cross-coupled cell is repeatedly driven into
// metastability and its resolution is read out after a settle interval —
// high entropy per bit, but the excite/settle cycle caps throughput.
#pragma once

#include <cstdint>

#include "core/trng.h"
#include "support/rng.h"

namespace dhtrng::core {

struct LatchTrngConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  double bit_rate_mbps = 0.76;
  /// Residual imbalance of the cross-coupled cell (drift of the resolution
  /// probability); real latch cells need calibration to stay near 1/2.
  double imbalance_sigma = 0.02;
};

class LatchTrng final : public TrngSource {
 public:
  explicit LatchTrng(LatchTrngConfig config = {});

  std::string name() const override { return "Latched-RO (TCASII'21)"; }
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override { return {4, 0, 3}; }
  double clock_mhz() const override { return config_.bit_rate_mbps; }
  fpga::ActivityEstimate activity() const override;

 private:
  LatchTrngConfig config_;
  support::Xoshiro256 rng_;
  double imbalance_;  ///< slowly drifting bias of the cell
};

}  // namespace dhtrng::core
