#include "core/baselines/msf_ro_trng.h"

#include <cmath>

#include "support/special_functions.h"

namespace dhtrng::core {

MsfRoTrng::MsfRoTrng(MsfRoConfig config)
    : config_(config),
      dt_ps_(1e6 / config.clock_mhz),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0x5a5a5a5a5a5a5a5aULL),
      meta_rng_(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL) {
  PhaseRoParams p;
  // Loop period set by the feedback order (fast); jitter accumulation set
  // by the full chain (sqrt(stages / feedback_order) boost).
  p.stages = config.feedback_order;
  p.stage_delay_ps =
      config.device.lut_delay_ps + 0.35 * config.device.net_delay_ps;
  p.kappa_ps_per_sqrt_ps =
      0.035 * (config.device.gate_jitter.white_sigma_ps / 1.2) *
      std::sqrt(static_cast<double>(config.stages) /
                static_cast<double>(config.feedback_order));
  p.flicker_sigma_ps = 3.5;
  ring_.emplace(p, config.seed);
}

bool MsfRoTrng::next_bit() {
  const double shared = shared_noise_.step();
  // The feedback taps sustain several interacting wavefronts in the chain;
  // their collisions amplify the loop's effective white jitter (the
  // design's entropy advantage), modelled as a jitter gain proportional to
  // the chain/loop length ratio.
  const double chaos_gain =
      static_cast<double>(config_.stages) /
      static_cast<double>(config_.feedback_order) * 1.5;
  ring_->advance(dt_ps_, shared, scale_, chaos_gain);
  bool bit = ring_->level();
  const double dist = ring_->edge_distance_ps(scale_);
  const double sigma = config_.device.ff_aperture_sigma_ps;
  if (dist < 4.0 * sigma) {
    if (!meta_rng_.bernoulli(support::normal_cdf(dist / sigma))) bit = !bit;
  }
  return bit;
}

void MsfRoTrng::restart() { ring_->reset(); }

sim::ResourceCounts MsfRoTrng::resources() const {
  sim::ResourceCounts rc;
  rc.luts = static_cast<std::size_t>(config_.stages) + 3;  // chain + taps
  rc.dffs = 2;  // sampler + output
  return rc;
}

fpga::ActivityEstimate MsfRoTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.clock_mhz;
  a.flip_flops = 2;
  a.logic_toggle_ghz = 2.0 * static_cast<double>(config_.stages) * 1e3 /
                       ring_->period_ps(scale_);
  return a;
}

}  // namespace dhtrng::core
