// Multi-stage feedback ring-oscillator TRNG (Cui et al., TCAS-II'21 —
// reference [4] of the paper).  Feedback taps across the inverter chain
// raise the effective noise order N without lowering the oscillation
// frequency proportionally: the model uses a short ring's period with a
// long ring's accumulated jitter.
#pragma once

#include <cstdint>
#include <optional>

#include "core/ro.h"
#include "core/trng.h"
#include "noise/jitter.h"
#include "support/rng.h"

namespace dhtrng::core {

struct MsfRoConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  int stages = 15;          ///< physical chain length (noise order)
  int feedback_order = 3;   ///< effective ring length seen by the loop
  double clock_mhz = 100.0;
};

class MsfRoTrng final : public TrngSource {
 public:
  explicit MsfRoTrng(MsfRoConfig config = {});

  std::string name() const override { return "MSFRO"; }
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  fpga::ActivityEstimate activity() const override;

 private:
  MsfRoConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;
  std::optional<PhaseRo> ring_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;
};

}  // namespace dhtrng::core
