#include "core/baselines/tero_trng.h"

#include <algorithm>
#include <cmath>

namespace dhtrng::core {

TeroTrng::TeroTrng(TeroConfig config)
    : config_(config),
      scale_(config.device.scaling(config.pvt)),
      rng_(config.seed ^ 0x7e707e707e707e7ULL) {}

bool TeroTrng::next_bit() {
  // The branch mismatch drifts slowly (temperature/bias wander), moving
  // the mean decay count; the per-excitation count adds white jitter
  // accumulated over ~mean_count swings.
  mismatch_drift_ = 0.998 * mismatch_drift_ +
                    rng_.gaussian(0.0, 0.05 * config_.mean_count *
                                           scale_.correlated_noise * 0.063);
  const double mean = config_.mean_count + mismatch_drift_;
  const double sigma = config_.count_sigma * scale_.white_jitter;
  const double count = std::max(1.0, rng_.gaussian(mean, sigma));
  last_count_ = count;
  // Counter LSB: with sigma >> 1 the parity is near-fair; residual bias
  // ~ exp(-2 pi^2 sigma^2) is negligible, but the drift couples weakly
  // into serial statistics (the documented TERO weakness).
  return static_cast<long long>(std::llround(count)) & 1;
}

void TeroTrng::restart() {
  mismatch_drift_ = 0.0;
  last_count_ = 0.0;
}

fpga::ActivityEstimate TeroTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.bit_rate_mbps;  // control FSM runs at the bit rate
  a.flip_flops = 29;
  // During each bit period the cell oscillates mean_count times at a few
  // hundred MHz, but only for a small duty fraction.
  a.logic_toggle_ghz = 2.0 * config_.mean_count * config_.bit_rate_mbps * 1e-3;
  return a;
}

}  // namespace dhtrng::core
