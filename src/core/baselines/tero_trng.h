// TERO (transition-effect ring oscillator) TRNG in the style of Fujieda,
// FPL'20 — reference [12] of Table 6 (40 LUTs / 29 DFFs / 10 slices,
// 1.91 Mbps, 0.043 W).
//
// A TERO cell is two cross-coupled branches kicked into temporary
// oscillation by an excitation pulse; mismatch makes the oscillation decay
// after a random number of swings, and the parity (or LSB of a counter) of
// that count is the output bit.  Entropy comes from the jitter-driven
// variance of the decay count; throughput is limited by the
// excite-oscillate-settle cycle.
#pragma once

#include <cstdint>

#include "core/trng.h"
#include "support/rng.h"

namespace dhtrng::core {

struct TeroConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  /// Mean number of transient oscillations before the cell collapses;
  /// set by the branch mismatch (calibration constant).
  double mean_count = 60.0;
  /// Relative sigma of the count (jitter-to-mismatch ratio).  Counts with
  /// sigma >> 1 LSB give a near-fair parity bit.
  double count_sigma = 9.0;
  double bit_rate_mbps = 1.91;  ///< excite/settle cycle rate (FPL'20)
};

class TeroTrng final : public TrngSource {
 public:
  explicit TeroTrng(TeroConfig config = {});

  std::string name() const override { return "TERO (FPL'20)"; }
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override { return {40, 0, 29}; }
  double clock_mhz() const override { return config_.bit_rate_mbps; }
  fpga::ActivityEstimate activity() const override;

  /// Transient oscillation count of the most recent excitation (telemetry
  /// an evaluator would monitor; also used by the unit tests).
  double last_count() const { return last_count_; }

 private:
  TeroConfig config_;
  noise::PvtScaling scale_;
  support::Xoshiro256 rng_;
  double mismatch_drift_ = 0.0;
  double last_count_ = 0.0;
};

}  // namespace dhtrng::core
