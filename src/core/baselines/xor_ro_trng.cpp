#include "core/baselines/xor_ro_trng.h"

#include <cmath>
#include <numbers>

#include "support/special_functions.h"

namespace dhtrng::core {

XorRoTrng::XorRoTrng(XorRoConfig config)
    : config_(config),
      dt_ps_(1e6 / config.clock_mhz),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0x1234abcd5678ef09ULL),
      meta_rng_(config.seed ^ 0x0f0f0f0f0f0f0f0fULL) {
  support::SplitMix64 seeder(config.seed);
  rings_.reserve(static_cast<std::size_t>(config.rings));
  for (int r = 0; r < config.rings; ++r) {
    PhaseRoParams p;
    p.stages = config.stages;
    p.stage_delay_ps =
        (config.device.lut_delay_ps + 0.35 * config.device.net_delay_ps);
    p.kappa_ps_per_sqrt_ps =
        0.035 * config.device.gate_jitter.white_sigma_ps / 1.2;
    p.flicker_sigma_ps = 3.0;
    p.period_tolerance = config.period_tolerance;
    rings_.emplace_back(p, seeder.next());
  }
}

std::string XorRoTrng::name() const {
  return "XOR-RO(" + std::to_string(config_.stages) + "-stage x" +
         std::to_string(config_.rings) + ")";
}

bool XorRoTrng::next_bit() {
  // The previous output bit's switching current disturbs the supply; all
  // rings receive the same displacement, which is what survives the XOR
  // reduction as serial correlation (see header).
  const double data_kick =
      config_.data_noise_ps * (prev_bit_ ? 0.5 : -0.5) *
      scale_.correlated_noise;
  const double shared = shared_noise_.step() + data_kick;
  bool out = false;
  for (PhaseRo& ring : rings_) {
    ring.advance(dt_ps_, shared, scale_);
    bool bit = ring.level();
    // Flip-flop aperture (Eq. 2) on samples landing near a transition.
    const double dist = ring.edge_distance_ps(scale_);
    const double sigma = config_.device.ff_aperture_sigma_ps;
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      if (!meta_rng_.bernoulli(p_keep)) bit = !bit;
    }
    out ^= bit;
  }
  prev_bit_ = out;
  return out;
}

void XorRoTrng::restart() {
  for (PhaseRo& ring : rings_) ring.reset();
}

sim::ResourceCounts XorRoTrng::resources() const {
  sim::ResourceCounts rc;
  // Each ring: `stages` inverting elements (LUTs, one with enable).
  rc.luts = static_cast<std::size_t>(config_.stages) *
            static_cast<std::size_t>(config_.rings);
  // XOR tree over `rings` inputs with LUT6s.
  std::size_t fan = static_cast<std::size_t>(config_.rings);
  while (fan > 1) {
    const std::size_t gates = (fan + 5) / 6;
    rc.luts += gates;
    fan = gates;
  }
  rc.dffs = static_cast<std::size_t>(config_.rings) + 1;  // samplers + output
  return rc;
}

fpga::ActivityEstimate XorRoTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.clock_mhz;
  a.flip_flops = static_cast<std::size_t>(config_.rings) + 1;
  double total = 0.0;
  for (const PhaseRo& ring : rings_) {
    total += 2.0 * static_cast<double>(config_.stages) * 1e3 /
             ring.period_ps(scale_);
  }
  a.logic_toggle_ghz = total;
  return a;
}

}  // namespace dhtrng::core
