// Classic parallel-XOR ring-oscillator TRNG (Wold & Tan style) — the
// baseline entropy unit the paper sweeps in Table 1 ("parallel XORed ROs"
// of order 2..13 sampled at 100 MHz) and compares against in Table 2
// ("9-stage ROs" at XOR fan-in 9..18).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ro.h"
#include "core/trng.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::core {

struct XorRoConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  int stages = 9;         ///< ring order N
  int rings = 12;         ///< number of parallel rings XORed
  double clock_mhz = 100; ///< sampling clock (paper Table 1 uses 100 MHz)
  /// Data-dependent supply disturbance: the switching current of the
  /// sampling array kicks every ring's phase by +-kick/2 ps depending on
  /// the previous output bit.  The kick is common-mode (it survives the
  /// XOR reduction as genuine serial correlation) and, measured in phase,
  /// hits short fast rings hardest — the dominant entropy spoiler at low
  /// ring order (the rising side of the paper's Table 1).  Set 0 to
  /// disable (ablation).
  double data_noise_ps = 18.0;
  /// Per-instance period spread; FPGA placement typically gives a few %.
  double period_tolerance = 0.08;
};

class XorRoTrng final : public TrngSource {
 public:
  explicit XorRoTrng(XorRoConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  fpga::ActivityEstimate activity() const override;

  const XorRoConfig& config() const { return config_; }

 private:
  XorRoConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;
  bool prev_bit_ = false;
  std::vector<PhaseRo> rings_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;
};

}  // namespace dhtrng::core
