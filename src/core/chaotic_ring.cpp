#include "core/chaotic_ring.h"

#include <cmath>
#include <numbers>

namespace dhtrng::core {

namespace {

PhaseRoParams central_ring_params(const ChaoticRingParams& p) {
  PhaseRoParams rp;
  rp.stages = 2;  // 2-stage XOR ring
  rp.stage_delay_ps = p.xor_delay_ps;
  rp.kappa_ps_per_sqrt_ps = p.kappa_ps_per_sqrt_ps;
  rp.flicker_sigma_ps = p.flicker_sigma_ps;
  rp.duty_sigma = 0.03;
  // Central rings are not classic ROs; their supply coupling is modest
  // because the chaotic mode switching decorrelates them from the rail.
  rp.shared_coupling = 0.15;
  return rp;
}

}  // namespace

PhaseRoParams central_ring_phase_params(const ChaoticRingParams& p) {
  return central_ring_params(p);
}

ChaoticRing::ChaoticRing(const ChaoticRingParams& params, std::uint64_t seed)
    : params_(params),
      ring_(central_ring_params(params), seed),
      rng_(seed ^ 0x94d049bb133111ebULL) {}

void ChaoticRing::advance(double dt_ps, double phase_a, double phase_b,
                          bool feedback_bit, bool coupling_enabled,
                          bool feedback_enabled, double shared_noise_ps,
                          const noise::PvtScaling& scale) {
  double jitter_gain = 1.0;
  if (coupling_enabled) {
    // Disorderly mode switching: the edge rings' oscillations modulate the
    // loop's effective delay.  The modulation is deterministic in the
    // neighbour phases (it is logic, not noise) but, because the phases are
    // jittered and incommensurate, it de-periodizes the central ring; the
    // chaos also multiplies the loop's own white jitter.
    const double mod =
        params_.mode_mod_depth *
        (std::sin(2.0 * std::numbers::pi * phase_a) +
         std::sin(2.0 * std::numbers::pi * (phase_b + 0.25)));
    ring_.inject_phase(mod * dt_ps / ring_.period_ps(scale) * 0.5);
    jitter_gain = params_.chaos_gain;
  }
  if (feedback_enabled && feedback_bit != last_feedback_) {
    // Fig. 4(b): the registered output re-enters the central ring through a
    // feedback XOR input.  A static level does not move the loop; an *edge*
    // on the feedback line flips the XOR's logic mode and displaces the
    // loop state by about one gate delay.  Keying the injection on
    // transitions (which occur with probability 1/2 regardless of the
    // output's value) randomizes the ring without imprinting the output's
    // sign onto it as serial correlation.
    ring_.inject_phase(params_.xor_delay_ps / ring_.period_ps(scale));
  }
  last_feedback_ = feedback_bit;
  ring_.advance(dt_ps, shared_noise_ps, scale, jitter_gain);
}

}  // namespace dhtrng::core
