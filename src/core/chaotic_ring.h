// Central XOR-ring model for the coupling strategy (Section 3.2, Fig. 4a).
//
// A central ring is a loop of two XOR gates whose free inputs are driven by
// the edge rings on both sides (and, with the feedback strategy of Fig. 4b,
// by the registered final output).  Because an XOR ring's logic mode flips
// with its inputs, the loop switches disorderly between buffering and
// inverting configurations: its gate-level signal performs non-periodic
// random flips and its effective oscillation is chaos that *amplifies* the
// phase noise entering from the edge rings.
//
// Fast model: a phase accumulator at the 2-XOR loop frequency whose phase
// increment is modulated by the neighbouring edge-ring phases (the
// disorderly mode switching) and whose white jitter is amplified by a
// chaos gain.  With coupling disabled it degenerates to a plain rotation
// (a fixed-mode XOR ring = an ordinary oscillator) — which is exactly what
// the ablation bench measures.
#pragma once

#include <cstdint>

#include "core/ro.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::core {

struct ChaoticRingParams {
  double xor_delay_ps = 350.0;   ///< per-XOR-stage delay incl. routing
  double chaos_gain = 8.0;       ///< white-jitter amplification when coupled
  double mode_mod_depth = 0.35;  ///< phase-increment modulation by neighbours
  double kappa_ps_per_sqrt_ps = 0.035;
  double flicker_sigma_ps = 3.0;
};

/// The PhaseRo parameterization of the central 2-XOR loop (stage count,
/// delay, duty mismatch, supply coupling).  This is the ring ChaoticRing
/// advances internally; exposed so the bitsliced SoA backend builds its
/// central-ring lanes from the identical parameters.
PhaseRoParams central_ring_phase_params(const ChaoticRingParams& p);

class ChaoticRing {
 public:
  ChaoticRing(const ChaoticRingParams& params, std::uint64_t seed);

  /// Advance one sampling interval.  `phase_a` / `phase_b` are the current
  /// fractional phases of the two neighbouring edge rings; `feedback_bit`
  /// is the registered final output (feedback strategy), ignored when
  /// feedback is disabled by the caller passing `feedback_enabled=false`.
  void advance(double dt_ps, double phase_a, double phase_b,
               bool feedback_bit, bool coupling_enabled,
               bool feedback_enabled, double shared_noise_ps,
               const noise::PvtScaling& scale);

  /// Level sampled by the multistage sampling array.
  bool level() const { return ring_.level(); }
  double phase() const { return ring_.phase(); }

  /// The underlying phase accumulator (edge distance, period) — used by
  /// samplers that apply their own flip-flop aperture model, e.g. the
  /// hybrid-Boolean-network source (zoo/hbn_trng.h).
  const PhaseRo& ring() const { return ring_; }

  void reset() {
    ring_.reset();
    last_feedback_ = false;
  }

 private:
  ChaoticRingParams params_;
  PhaseRo ring_;
  support::Xoshiro256 rng_;
  bool last_feedback_ = false;
};

}  // namespace dhtrng::core
