#include "core/conditioned_source.h"

#include <algorithm>
#include <cmath>

namespace dhtrng::core {

ConditionedSource::ConditionedSource(TrngSource& raw,
                                     ConditionedSourceConfig config)
    : raw_(raw), config_(config), monitor_(config.claimed_min_entropy) {
  // Startup sequence: health-test and discard.
  for (std::size_t i = 0; i < config_.startup_bits; ++i) {
    if (!monitor_.feed(raw_.next_bit())) {
      throw EntropySourceFailure("startup health test failed");
    }
  }
}

void ConditionedSource::refill() {
  support::BitStream chunk;
  chunk.reserve(config_.chunk_bits);
  for (std::size_t i = 0; i < config_.chunk_bits; ++i) {
    const bool bit = raw_.next_bit();
    if (!monitor_.feed(bit)) {
      throw EntropySourceFailure("continuous health test alarmed");
    }
    chunk.push_back(bit);
  }
  stats_.raw_bits += chunk.size();

  support::BitStream out;
  switch (config_.conditioning) {
    case Conditioning::None:
      out = std::move(chunk);
      break;
    case Conditioning::VonNeumann:
      out = von_neumann_extract(chunk);
      break;
    case Conditioning::Xor4:
      out = xor_compress(chunk, 4);
      break;
    case Conditioning::Sha256: {
      // Full-entropy output needs >= 2 x 256 bits of min-entropy per input
      // block (SP 800-90B 3.1.5.1): block = ceil(512 / h).
      const auto block = static_cast<std::size_t>(
          std::ceil(512.0 / std::max(config_.claimed_min_entropy, 0.01)));
      out = sha256_condition(chunk, std::min(block, chunk.size()));
      break;
    }
  }
  stats_.output_bits += out.size();
  buffer_ = std::move(out);
  cursor_ = 0;
}

bool ConditionedSource::next_bit() {
  while (cursor_ >= buffer_.size()) refill();
  return buffer_[cursor_++];
}

support::BitStream ConditionedSource::generate(std::size_t nbits) {
  support::BitStream out;
  out.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) out.push_back(next_bit());
  return out;
}

}  // namespace dhtrng::core
