// Deployment pipeline around a raw TRNG: startup testing, continuous
// health monitoring (SP 800-90B 4.4) and optional conditioning — the
// envelope a DH-TRNG would ship inside when used as a root of trust.
//
//   raw TRNG -> [startup test] -> [RCT + APT online] -> [conditioner] -> out
//
// The paper's design needs no conditioning to pass the statistical suites;
// the pipeline therefore defaults to Conditioning::None and exists so that
// (a) deployments get the mandatory health tests, and (b) the cost of
// conditioning that *other* designs need is measurable (see
// PostProcessStats and the entropy_analysis example).
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "core/postprocess.h"
#include "core/trng.h"
#include "stats/health.h"

namespace dhtrng::core {

enum class Conditioning { None, VonNeumann, Xor4, Sha256 };

struct ConditionedSourceConfig {
  /// Claimed per-bit min-entropy of the raw source (drives the health-test
  /// cutoffs and the SHA-256 input block size).
  double claimed_min_entropy = 0.9;
  Conditioning conditioning = Conditioning::None;
  /// Bits consumed per internal refill chunk.
  std::size_t chunk_bits = 4096;
  /// Startup: bits tested and discarded before the first output (AIS-31 /
  /// 90B both require a tested, discarded startup sequence).
  std::size_t startup_bits = 4096;
};

/// Thrown when the continuous health tests alarm: the consumer must stop
/// using the output and re-validate the source.
class EntropySourceFailure : public std::runtime_error {
 public:
  explicit EntropySourceFailure(const std::string& what)
      : std::runtime_error(what) {}
};

class ConditionedSource {
 public:
  /// The source keeps a reference to `raw`; it must outlive this object.
  ConditionedSource(TrngSource& raw, ConditionedSourceConfig config = {});

  /// Next conditioned output bit; throws EntropySourceFailure on a health
  /// alarm.
  bool next_bit();

  /// Fill a stream with `nbits` conditioned bits.
  support::BitStream generate(std::size_t nbits);

  /// Raw-to-output rate statistics so far.
  PostProcessStats stats() const { return stats_; }
  bool healthy() const { return monitor_.healthy(); }
  const stats::HealthMonitor& monitor() const { return monitor_; }

 private:
  void refill();

  TrngSource& raw_;
  ConditionedSourceConfig config_;
  stats::HealthMonitor monitor_;
  support::BitStream buffer_;
  std::size_t cursor_ = 0;
  PostProcessStats stats_;
};

}  // namespace dhtrng::core
