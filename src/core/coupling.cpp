#include "core/coupling.h"

#include "support/rng.h"

namespace dhtrng::core {

CouplingStructureParams default_coupling_params() {
  CouplingStructureParams p;
  p.unit_a = default_hybrid_params();
  p.unit_b = default_hybrid_params();
  // Unit B's rings are sized slightly differently so the two units are
  // frequency-diverse (mirrors the reversed insertion of Fig. 4a).
  p.unit_b.ro1.stage_delay_ps = 450.0;
  p.unit_b.ro2.stage_delay_ps = 310.0;
  return p;
}

CouplingStructure::CouplingStructure(const CouplingStructureParams& params,
                                     std::uint64_t seed)
    : unit_a_(params.unit_a, seed),
      unit_b_(params.unit_b, seed ^ 0xbf58476d1ce4e5b9ULL),
      central_1_(params.central_1, seed ^ 0x2545f4914f6cdd1dULL),
      central_2_(params.central_2, seed ^ 0x9e3779b97f4a7c15ULL) {}

void CouplingStructure::reset() {
  unit_a_.reset();
  unit_b_.reset();
  central_1_.reset();
  central_2_.reset();
}

CouplingSample CouplingStructure::sample(double dt_ps, bool feedback_bit,
                                         bool coupling_enabled,
                                         bool feedback_enabled,
                                         double shared_noise_ps,
                                         const noise::PvtScaling& scale,
                                         double aperture_sigma_ps) {
  CouplingSample s;
  const HybridSample a =
      unit_a_.sample(dt_ps, shared_noise_ps, scale, aperture_sigma_ps);
  const HybridSample b =
      unit_b_.sample(dt_ps, shared_noise_ps, scale, aperture_sigma_ps);

  // Central ring 1 sits between RO1a and RO1b; central ring 2 between RO2a
  // and RO2b (the nested/reversed insertion).
  central_1_.advance(dt_ps, unit_a_.ro1().phase(), unit_b_.ro1().phase(),
                     feedback_bit, coupling_enabled, feedback_enabled,
                     shared_noise_ps, scale);
  central_2_.advance(dt_ps, unit_a_.ro2().phase(), unit_b_.ro2().phase(),
                     feedback_bit, coupling_enabled, feedback_enabled,
                     shared_noise_ps, scale);

  s.bits = {a.q1, a.q2, b.q1, b.q2, central_1_.level(), central_2_.level()};
  s.any_metastable = a.q2_metastable || b.q2_metastable;
  return s;
}

}  // namespace dhtrng::core
