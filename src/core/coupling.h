// Nested coupling structure (Section 3.2, Figure 4a).
//
// Two dynamic hybrid entropy units are reversely inserted into two 2-stage
// XOR rings, giving two central rings and four edge rings.  The six ring
// signals are each sampled by the multistage sampling array; the chaotic
// central rings amplify and mix the edge-ring phase noise.
#pragma once

#include <array>
#include <cstdint>

#include "core/chaotic_ring.h"
#include "core/hybrid_unit.h"
#include "noise/pvt.h"

namespace dhtrng::core {

struct CouplingStructureParams {
  HybridUnitParams unit_a;
  HybridUnitParams unit_b;
  ChaoticRingParams central_1;
  ChaoticRingParams central_2;
};

CouplingStructureParams default_coupling_params();

/// The six sampled ring bits of one structure, in sampling-array order:
/// {R1a, R2a, R1b, R2b, C1, C2}.
struct CouplingSample {
  std::array<bool, 6> bits{};
  bool any_metastable = false;
};

class CouplingStructure {
 public:
  CouplingStructure(const CouplingStructureParams& params, std::uint64_t seed);

  CouplingSample sample(double dt_ps, bool feedback_bit,
                        bool coupling_enabled, bool feedback_enabled,
                        double shared_noise_ps,
                        const noise::PvtScaling& scale,
                        double aperture_sigma_ps);

  void reset();

  HybridUnit& unit_a() { return unit_a_; }
  HybridUnit& unit_b() { return unit_b_; }

 private:
  HybridUnit unit_a_;
  HybridUnit unit_b_;
  ChaoticRing central_1_;
  ChaoticRing central_2_;
};

}  // namespace dhtrng::core
