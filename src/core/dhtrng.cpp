#include "core/dhtrng.h"

#include <cmath>

#include "support/rng.h"

namespace dhtrng::core {

namespace {

// Corner penalty on the metastability mechanisms: away from the nominal
// bias point the sub-threshold holding window narrows and the pulse
// smoothing weakens (transistor operating point moves), which is the main
// reason measured min-entropy dips slightly at the PVT corners (Figure 9).
double corner_penalty(const noise::PvtCondition& pvt) {
  const double dv = (pvt.voltage_v - 1.0) / 0.2;
  const double dt = (pvt.temperature_c - 20.0) / 50.0;
  return 0.10 * dv * dv + 0.06 * dt * dt;
}

CouplingStructureParams tuned_params(const fpga::DeviceModel& device,
                                     const noise::PvtCondition& pvt,
                                     double noise_scale) {
  CouplingStructureParams p = default_coupling_params();
  // Device-specific noise levels: per-edge jitter scales into the phase
  // models' kappa; the 45 nm Virtex-6 cells are a bit noisier and slower.
  const double kappa_scale =
      device.gate_jitter.white_sigma_ps / 1.2 * noise_scale;
  const double delay_scale = device.lut_delay_ps / 150.0;
  for (HybridUnitParams* u : {&p.unit_a, &p.unit_b}) {
    u->ro1.kappa_ps_per_sqrt_ps *= kappa_scale;
    u->ro2.kappa_ps_per_sqrt_ps *= kappa_scale;
    u->ro1.flicker_sigma_ps *= noise_scale;
    u->ro2.flicker_sigma_ps *= noise_scale;
    u->ro1.stage_delay_ps *= delay_scale;
    u->ro2.stage_delay_ps *= delay_scale;
  }
  p.central_1.kappa_ps_per_sqrt_ps *= kappa_scale;
  p.central_2.kappa_ps_per_sqrt_ps *= kappa_scale;
  p.central_1.flicker_sigma_ps *= noise_scale;
  p.central_2.flicker_sigma_ps *= noise_scale;
  p.central_1.xor_delay_ps *= delay_scale;
  p.central_2.xor_delay_ps *= delay_scale;
  // PVT corner effects on the metastability mechanisms.  The sub-threshold
  // capture probability is itself thermal-noise driven, so it also scales
  // (capped at 1) with the stress knob.
  const double penalty = corner_penalty(pvt);
  const double factor = std::max(1.0 - 0.6 * penalty, 0.2) *
                        std::min(noise_scale, 1.0);
  p.unit_a.hold_capture_prob *= factor;
  p.unit_b.hold_capture_prob *= factor;
  p.unit_a.pulse_smoothing = 1.0 + (p.unit_a.pulse_smoothing - 1.0) * factor;
  p.unit_b.pulse_smoothing = 1.0 + (p.unit_b.pulse_smoothing - 1.0) * factor;
  return p;
}

}  // namespace

CouplingStructureParams tuned_coupling_params(const fpga::DeviceModel& device,
                                              const noise::PvtCondition& pvt,
                                              double noise_scale) {
  return tuned_params(device, pvt, noise_scale);
}

DhTrng::DhTrng(DhTrngConfig config)
    : config_(config),
      clock_mhz_(config.clock_mhz > 0.0
                     ? config.clock_mhz
                     : config.device.max_clock_mhz(2, config.pvt)),
      dt_ps_(1e6 / clock_mhz_),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0xc0ffee1234567890ULL) {
  if (config_.backend == Backend::Fast) {
    const CouplingStructureParams params =
        tuned_params(config_.device, config_.pvt, config_.noise_scale);
    structure_a_.emplace(params, config_.seed);
    structure_b_.emplace(params, config_.seed ^ 0x7f4a7c159e3779b9ULL);
  } else {
    netlist_ = std::make_unique<DhTrngNetlist>(build_dhtrng_netlist(
        config_.device, clock_mhz_, config_.coupling, config_.feedback));
    sim::SimConfig sc;
    sc.seed = config_.seed;
    sc.gate_jitter = config_.device.gate_jitter;
    sc.scaling = scale_;
    sc.noise_mode = config_.noise_mode;
    sim_ = std::make_unique<sim::Simulator>(netlist_->circuit, sc);
    sim_->record_dff(netlist_->out_dff);
  }
}

std::string DhTrng::name() const {
  std::string n = "DH-TRNG";
  if (!config_.coupling) n += "/no-coupling";
  if (!config_.feedback) n += "/no-feedback";
  return n;
}

bool DhTrng::next_bit() {
  return config_.backend == Backend::Fast ? next_bit_fast()
                                          : next_bit_gate_level();
}

bool DhTrng::next_bit_fast() {
  // Data-dependent supply disturbance (see DhTrngConfig::data_noise_ps);
  // the quartic PVT scaling makes it a corner effect.
  const double corr = scale_.correlated_noise;
  const double data_kick = config_.data_noise_ps *
                           (out_reg_ ? 0.5 : -0.5) * corr * corr * corr * corr;
  const double shared = shared_noise_.step() + data_kick;
  // The flip-flop aperture is a thermal-noise window: it narrows with the
  // stress knob.
  const double aperture = config_.device.ff_aperture_sigma_ps *
                          std::min(config_.noise_scale, 1.0);
  const bool fb = out_reg_;  // feedback register: previous output bit
  const CouplingSample a =
      structure_a_->sample(dt_ps_, fb, config_.coupling, config_.feedback,
                           shared, scale_, aperture);
  const CouplingSample b =
      structure_b_->sample(dt_ps_, fb, config_.coupling, config_.feedback,
                           shared, scale_, aperture);
  bool bit = false;
  for (bool v : a.bits) bit ^= v;
  for (bool v : b.bits) bit ^= v;
  out_reg_ = bit;
  ++bits_emitted_;
  if (a.any_metastable || b.any_metastable) ++metastable_bits_;
  return bit;
}

bool DhTrng::next_bit_gate_level() {
  const auto& samples = sim_->samples(netlist_->out_dff);
  while (samples.size() <= sample_cursor_) {
    sim_->run_until(sim_->now() + dt_ps_);
  }
  return samples[sample_cursor_++] != 0;
}

void DhTrng::restart() {
  ++restart_count_;
  if (config_.backend == Backend::Fast) {
    // Power cycle: circuit state returns to power-on values, the physical
    // noise keeps evolving (the RNG streams are not rewound).
    structure_a_->reset();
    structure_b_->reset();
    out_reg_ = false;
  } else {
    // Rebuild the simulator with a fresh noise continuation: the netlist is
    // identical, the noise processes are re-drawn (a power cycle does not
    // replay the same thermal noise).
    support::SplitMix64 mix(config_.seed + restart_count_);
    sim::SimConfig sc;
    sc.seed = mix.next();
    sc.gate_jitter = config_.device.gate_jitter;
    sc.scaling = scale_;
    sc.noise_mode = config_.noise_mode;
    sim_ = std::make_unique<sim::Simulator>(netlist_->circuit, sc);
    sim_->record_dff(netlist_->out_dff);
    sample_cursor_ = 0;
  }
}

sim::ResourceCounts DhTrng::resources() const {
  // 23 LUTs, 4 MUXs, 14 DFFs (Section 3.3); the gate-level netlist is the
  // source of truth and the tests assert both agree.
  if (netlist_) return netlist_->circuit.resources();
  return {23, 4, 14};
}

fpga::SliceReport DhTrng::slice_report() const {
  const std::vector<fpga::PackGroup> groups =
      netlist_ ? netlist_->pack_groups
               : build_dhtrng_netlist(config_.device, clock_mhz_).pack_groups;
  return fpga::SlicePacker{}.pack(groups);
}

fpga::ActivityEstimate DhTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = clock_mhz_;
  a.flip_flops = 14;
  // Analytic toggle estimate: each ring node toggles at twice the ring
  // frequency; RO2 oscillates only ~half the time (holding region).
  const CouplingStructureParams p = tuned_params(config_.device, config_.pvt, config_.noise_scale);
  const auto ring_toggle_ghz = [&](const PhaseRoParams& rp, double act) {
    const double period_ps =
        2.0 * rp.stages * rp.stage_delay_ps * scale_.delay;
    return act * 2.0 * static_cast<double>(rp.stages) * 1e3 / period_ps;
  };
  double total = 0.0;
  for (const HybridUnitParams* u : {&p.unit_a, &p.unit_b}) {
    total += ring_toggle_ghz(u->ro1, 1.0);
    total += ring_toggle_ghz(u->ro2, 0.5);
  }
  // Central rings: chaotic switching near the 2-XOR loop rate.
  total += 2.0 * (2.0 * 2.0 * 1e3 /
                  (2.0 * 2.0 * p.central_1.xor_delay_ps * scale_.delay));
  total *= 2.0;  // two coupling structures
  // Sampling array: 14 FFs + tree toggling at ~clock/2 each.
  total += 17.0 * clock_mhz_ * 0.5e-3;
  a.logic_toggle_ghz = total;
  return a;
}

double DhTrng::metastable_fraction() const {
  if (bits_emitted_ == 0) return 0.0;
  return static_cast<double>(metastable_bits_) /
         static_cast<double>(bits_emitted_);
}

}  // namespace dhtrng::core
