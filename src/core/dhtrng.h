// DH-TRNG top level (Figure 5a): two nested coupling structures, a
// 12-flip-flop multistage sampling array with an XOR tree, an output
// register, and the feedback register closing the loop into the central
// XOR rings.  One true random bit per sampling-clock cycle.
//
// Two interchangeable backends:
//  * Backend::Fast      — phase-domain models (src/core/*.h); used for the
//                         multi-megabit statistical experiments.
//  * Backend::GateLevel — the event-driven simulator running the exact
//                         23-LUT / 4-MUX / 14-DFF netlist (netlist.h); used
//                         for waveform-accurate studies and to validate the
//                         fast backend (tests/core/test_backend_equivalence).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/coupling.h"
#include "core/netlist.h"
#include "core/trng.h"
#include "fpga/device.h"
#include "fpga/slice_packer.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/simulator.h"

namespace dhtrng::core {

enum class Backend { Fast, GateLevel };

struct DhTrngConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  Backend backend = Backend::Fast;
  /// Section 3.2 reinforcement strategies (ablation switches).
  bool coupling = true;
  bool feedback = true;
  /// Sampling clock in MHz; 0 selects the device maximum over the 2-LUT
  /// sampling-array path (the paper's PLL setting: 670 / 620 MHz).
  double clock_mhz = 0.0;
  /// Multiplies every white/flicker noise magnitude in the phase models —
  /// a sensitivity knob for stress tests (noise_scale << 1 approximates a
  /// cold, quiet die where only the architecture's chaos is left).
  double noise_scale = 1.0;
  /// Data-dependent supply disturbance (ps): the output register's load
  /// current displaces all ring phases coherently.  Negligible at the
  /// nominal corner, but it scales with the fourth power of the correlated-
  /// noise PVT factor, which is what makes measured min-entropy dip at the
  /// corners of Figure 9.  Set 0 to disable.
  double data_noise_ps = 10.0;
  /// Noise fidelity (see noise::NoiseMode).  Applies to the gate-level
  /// backend's event simulator; the phase-domain Fast backend has a single
  /// exact-grade stream and ignores it.  The bitsliced bulk backend
  /// carries its own knob (DhTrngSoAConfig::noise_mode).
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
};

/// The device/PVT-tuned phase-model parameter set DhTrng's fast backend is
/// built from (kappa, stage delays, hold-capture probability etc. scaled to
/// the device and corner).  Exposed so the bitsliced SoA backend
/// (dhtrng_soa.h) instantiates lanes from exactly the same parameters.
CouplingStructureParams tuned_coupling_params(const fpga::DeviceModel& device,
                                              const noise::PvtCondition& pvt,
                                              double noise_scale);

class DhTrng final : public TrngSource {
 public:
  explicit DhTrng(DhTrngConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return clock_mhz_; }
  fpga::ActivityEstimate activity() const override;

  /// Slice packing report in the paper's type-constrained layout
  /// (Figure 5b); 8 slices for the full design.
  fpga::SliceReport slice_report() const;

  const DhTrngConfig& config() const { return config_; }

  /// Fraction of emitted bits during which at least one hybrid unit's RO2
  /// sample was metastable (fast backend health indicator).
  double metastable_fraction() const;

  /// Gate-level backend only: access to the underlying simulator.
  const sim::Simulator* simulator() const { return sim_.get(); }

 private:
  bool next_bit_fast();
  bool next_bit_gate_level();

  DhTrngConfig config_;
  double clock_mhz_;
  double dt_ps_;
  noise::PvtScaling scale_;

  // Fast backend state.
  std::optional<CouplingStructure> structure_a_;
  std::optional<CouplingStructure> structure_b_;
  noise::SharedSupplyNoise shared_noise_;
  bool out_reg_ = false;       ///< output register
  bool feedback_reg_ = false;  ///< feedback register (out delayed one cycle)
  std::uint64_t bits_emitted_ = 0;
  std::uint64_t metastable_bits_ = 0;

  // Gate-level backend state.
  std::unique_ptr<DhTrngNetlist> netlist_;
  std::unique_ptr<sim::Simulator> sim_;
  std::size_t sample_cursor_ = 0;
  std::uint64_t restart_count_ = 0;
};

}  // namespace dhtrng::core
