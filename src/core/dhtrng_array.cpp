#include "core/dhtrng_array.h"

#include <stdexcept>

#include "fpga/slice_packer.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace dhtrng::core {

DhTrngArray::DhTrngArray(DhTrngArrayConfig config) : config_(config) {
  if (config.cores == 0) {
    throw std::invalid_argument("DhTrngArray: cores == 0");
  }
  support::SplitMix64 seeder(config.core.seed);
  cores_.reserve(config.cores);
  for (std::size_t c = 0; c < config.cores; ++c) {
    DhTrngConfig per_core = config.core;
    per_core.seed = seeder.next();
    cores_.emplace_back(per_core);
  }
}

std::string DhTrngArray::name() const {
  return "DH-TRNG x" + std::to_string(cores_.size());
}

bool DhTrngArray::next_bit() {
  const bool bit = cores_[next_core_].next_bit();
  next_core_ = (next_core_ + 1) % cores_.size();
  return bit;
}

support::BitStream DhTrngArray::generate_parallel(std::size_t nbits,
                                                  std::size_t n_threads) {
  const std::size_t k = cores_.size();
  if (n_threads == 0) n_threads = support::ThreadPool::hardware_threads();

  // Output position i draws from core (next_core_ + i) % k, so core c owes
  // ceil((nbits - offset_c) / k) bits where offset_c is c's first turn.
  std::vector<support::BitStream> per_core(k);
  const std::size_t start = next_core_;
  const auto bits_for = [&](std::size_t c) {
    const std::size_t first = (c + k - start % k) % k;  // c's first position
    return first >= nbits ? std::size_t{0} : (nbits - first - 1) / k + 1;
  };

  {
    support::ThreadPool pool(std::min(n_threads, k));
    pool.parallel_for(0, k, [&](std::size_t c) {
      cores_[c].generate(per_core[c], bits_for(c));
    });
  }

  support::BitStream out;
  out.reserve(nbits);
  std::vector<std::size_t> cursor(k, 0);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t c = (start + i) % k;
    out.push_back(per_core[c][cursor[c]++]);
  }
  next_core_ = (start + nbits) % k;
  return out;
}

void DhTrngArray::restart() {
  for (DhTrng& core : cores_) core.restart();
  next_core_ = 0;
}

sim::ResourceCounts DhTrngArray::resources() const {
  const sim::ResourceCounts one = cores_.front().resources();
  return {one.luts * cores_.size(), one.muxes * cores_.size(),
          one.dffs * cores_.size()};
}

double DhTrngArray::clock_mhz() const { return cores_.front().clock_mhz(); }

double DhTrngArray::throughput_mbps() const {
  return clock_mhz() * static_cast<double>(cores_.size());
}

fpga::ActivityEstimate DhTrngArray::activity() const {
  // One shared PLL/clock network; per-core flip-flops and logic add up.
  fpga::ActivityEstimate total = cores_.front().activity();
  total.flip_flops *= cores_.size();
  total.logic_toggle_ghz *= static_cast<double>(cores_.size());
  return total;
}

fpga::SliceReport DhTrngArray::slice_report() const {
  std::vector<fpga::PackGroup> groups;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    for (fpga::PackGroup g :
         build_dhtrng_netlist(config_.core.device, clock_mhz()).pack_groups) {
      g.name = "core" + std::to_string(c) + "/" + g.name;
      groups.push_back(std::move(g));
    }
  }
  return fpga::SlicePacker{}.pack(groups);
}

}  // namespace dhtrng::core
