#include "core/dhtrng_array.h"

#include <stdexcept>

#include "fpga/slice_packer.h"
#include "support/rng.h"

namespace dhtrng::core {

DhTrngArray::DhTrngArray(DhTrngArrayConfig config) : config_(config) {
  if (config.cores == 0) {
    throw std::invalid_argument("DhTrngArray: cores == 0");
  }
  support::SplitMix64 seeder(config.core.seed);
  cores_.reserve(config.cores);
  for (std::size_t c = 0; c < config.cores; ++c) {
    DhTrngConfig per_core = config.core;
    per_core.seed = seeder.next();
    cores_.emplace_back(per_core);
  }
}

std::string DhTrngArray::name() const {
  return "DH-TRNG x" + std::to_string(cores_.size());
}

bool DhTrngArray::next_bit() {
  const bool bit = cores_[next_core_].next_bit();
  next_core_ = (next_core_ + 1) % cores_.size();
  return bit;
}

void DhTrngArray::restart() {
  for (DhTrng& core : cores_) core.restart();
  next_core_ = 0;
}

sim::ResourceCounts DhTrngArray::resources() const {
  const sim::ResourceCounts one = cores_.front().resources();
  return {one.luts * cores_.size(), one.muxes * cores_.size(),
          one.dffs * cores_.size()};
}

double DhTrngArray::clock_mhz() const { return cores_.front().clock_mhz(); }

double DhTrngArray::throughput_mbps() const {
  return clock_mhz() * static_cast<double>(cores_.size());
}

fpga::ActivityEstimate DhTrngArray::activity() const {
  // One shared PLL/clock network; per-core flip-flops and logic add up.
  fpga::ActivityEstimate total = cores_.front().activity();
  total.flip_flops *= cores_.size();
  total.logic_toggle_ghz *= static_cast<double>(cores_.size());
  return total;
}

fpga::SliceReport DhTrngArray::slice_report() const {
  std::vector<fpga::PackGroup> groups;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    for (fpga::PackGroup g :
         build_dhtrng_netlist(config_.core.device, clock_mhz()).pack_groups) {
      g.name = "core" + std::to_string(c) + "/" + g.name;
      groups.push_back(std::move(g));
    }
  }
  return fpga::SlicePacker{}.pack(groups);
}

}  // namespace dhtrng::core
