// Multi-core DH-TRNG array — the scaling path for the "substantial amounts
// of encrypted data" scenarios the paper's introduction motivates
// (confidential computing, TEEs, blockchain signing).  k independent
// DH-TRNG cores share one PLL/clock network and interleave their output
// for k bits per clock cycle.
//
// Because the clock manager dominates the power budget (see fpga/power.h)
// and is shared, the *energy per generated bit* improves steeply with k —
// quantified in bench_scaling.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dhtrng.h"
#include "core/trng.h"

namespace dhtrng::core {

struct DhTrngArrayConfig {
  DhTrngConfig core;      ///< per-core configuration (seed is re-derived)
  std::size_t cores = 4;  ///< parallel DH-TRNG instances
};

class DhTrngArray final : public TrngSource {
 public:
  explicit DhTrngArray(DhTrngArrayConfig config);

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override;
  double throughput_mbps() const override;
  fpga::ActivityEstimate activity() const override;

  /// Multi-threaded generation with the *same* output as the serial path:
  /// each core's simulation is an independent stream, so workers advance
  /// cores concurrently and the per-core sub-streams are merged round-robin
  /// in core order afterwards.  For a given master seed and starting state
  /// the result is bit-identical to calling generate(nbits) — for any
  /// n_threads (0 picks the hardware concurrency).  The array's round-robin
  /// cursor advances exactly as in the serial path, so serial and parallel
  /// calls can be mixed freely.
  support::BitStream generate_parallel(std::size_t nbits,
                                       std::size_t n_threads = 0);

  std::size_t cores() const { return cores_.size(); }
  fpga::SliceReport slice_report() const;

 private:
  DhTrngArrayConfig config_;
  std::vector<DhTrng> cores_;
  std::size_t next_core_ = 0;
};

}  // namespace dhtrng::core
