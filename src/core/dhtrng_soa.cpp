#include "core/dhtrng_soa.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/chaotic_ring.h"
#include "core/coupling.h"
#include "core/dhtrng_soa_engine.h"
#include "core/hybrid_unit.h"
#include "core/ro.h"
#include "support/rng.h"
#include "support/simd_noise.h"

namespace dhtrng::core {

namespace {

// Seed-mixing constants of the scalar object tree, so lane l of the fast
// engine is the *same physical instance* (same period/duty/phase mismatch)
// as lane l of the exact engine.  See DhTrng/CouplingStructure/HybridUnit
// constructors.
constexpr std::uint64_t kStructBSeed = 0x7f4a7c159e3779b9ULL;   // DhTrng
constexpr std::uint64_t kUnitBSeed = 0xbf58476d1ce4e5b9ULL;     // Coupling
constexpr std::uint64_t kCentral1Seed = 0x2545f4914f6cdd1dULL;  // Coupling
constexpr std::uint64_t kCentral2Seed = 0x9e3779b97f4a7c15ULL;  // Coupling
constexpr std::uint64_t kRo2Seed = 0xd2b74407b1ce6e93ULL;       // HybridUnit
constexpr std::uint64_t kEngineRngSeed = 0x3c6ef372fe94f82aULL; // SoA stream

/// Per-ring seed for ring slot k in {0..5} of the structure seeded `ss`
/// (0 = RO1a, 1 = RO2a, 2 = RO1b, 3 = RO2b, 4 = C1, 5 = C2).
std::uint64_t ring_seed(std::uint64_t ss, int k) {
  switch (k) {
    case 0: return ss;
    case 1: return ss ^ kRo2Seed;
    case 2: return ss ^ kUnitBSeed;
    case 3: return ss ^ kUnitBSeed ^ kRo2Seed;
    case 4: return ss ^ kCentral1Seed;
    default: return ss ^ kCentral2Seed;
  }
}

struct RingStructural {
  double base_period_ps = 0.0;
  double duty = 0.5;
  double initial_phase = 0.0;
};

/// Replays PhaseRo's constructor draws (period mismatch, duty error,
/// power-on phase — in this order, before the flicker init) so the fast
/// engine's lanes carry identical structural mismatch to the exact
/// engine's PhaseRo instances.
RingStructural ring_structural(const PhaseRoParams& rp, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  const double n = static_cast<double>(rp.stages);
  RingStructural rs;
  const double nominal = 2.0 * n * rp.stage_delay_ps;
  rs.base_period_ps =
      nominal * (1.0 + rng.gaussian(0.0, rp.period_tolerance));
  rs.duty = std::clamp(0.5 + rng.gaussian(0.0, rp.duty_sigma / std::sqrt(n)),
                       0.2, 0.8);
  rs.initial_phase = rng.uniform();
  return rs;
}

void init_engine(soa::EngineState& st, const DhTrngSoAConfig& cfg,
                 double clock_mhz) {
  const DhTrngConfig& core = cfg.core;
  const noise::PvtScaling scale = core.device.scaling(core.pvt);
  const CouplingStructureParams params =
      tuned_coupling_params(core.device, core.pvt, core.noise_scale);
  st.coupling_enabled = core.coupling;
  st.feedback_enabled = core.feedback;
  st.dt_ps = 1e6 / clock_mhz;

  // Ring slot k -> phase-model parameters (identical for both structures).
  const PhaseRoParams ring_params[6] = {
      params.unit_a.ro1,
      params.unit_a.ro2,
      params.unit_b.ro1,
      params.unit_b.ro2,
      central_ring_phase_params(params.central_1),
      central_ring_phase_params(params.central_2),
  };
  const ChaoticRingParams* central_params[2] = {&params.central_1,
                                                &params.central_2};
  // Supply coupling is a pure function of the parameters; probe one
  // PhaseRo per slot rather than duplicating the derivation formula.
  double slot_coupling[6];
  for (int k = 0; k < 6; ++k) {
    slot_coupling[k] = PhaseRo(ring_params[k], 0).shared_coupling();
  }

  const double sqrt_dt = std::sqrt(st.dt_ps);
  for (int r = 0; r < soa::kRings; ++r) {
    const int k = r % 6;
    const PhaseRoParams& rp = ring_params[k];
    // Chaos gain amplifies the central rings' own white jitter whenever the
    // coupling strategy is on (ChaoticRing::advance's extra_jitter).
    const double gain = (k >= 4 && st.coupling_enabled)
                            ? central_params[k - 4]->chaos_gain
                            : 1.0;
    st.white_sigma[r] =
        rp.kappa_ps_per_sqrt_ps * sqrt_dt * scale.white_jitter * gain;
    st.flick_gain[r] =
        rp.flicker_sigma_ps / std::sqrt(12.0) * scale.correlated_noise;
    st.shared_gain[r] = slot_coupling[k] * scale.correlated_noise;
    st.mod_gain[r] =
        k >= 4 ? central_params[k - 4]->mode_mod_depth * st.dt_ps * 0.5 : 0.0;
  }

  // Per-lane structural mismatch: replay the exact engine's constructor
  // draws lane by lane (same SplitMix64 lane seeds as DhTrngArray).
  support::SplitMix64 seeder(core.seed);
  for (int l = 0; l < soa::kLanes; ++l) {
    const std::uint64_t lane_seed = seeder.next();
    st.rng.seed_lane(static_cast<std::size_t>(l),
                     lane_seed ^ kEngineRngSeed);
    for (int s = 0; s < 2; ++s) {
      const std::uint64_t ss = s == 0 ? lane_seed : lane_seed ^ kStructBSeed;
      for (int k = 0; k < 6; ++k) {
        const int r = s * 6 + k;
        const RingStructural rs =
            ring_structural(ring_params[k], ring_seed(ss, k));
        const double p_eff = rs.base_period_ps * scale.delay;
        st.period[r][l] = p_eff;
        st.inv_period[r][l] = 1.0 / p_eff;
        st.duty[r][l] = rs.duty;
        st.initial_phase[r][l] = rs.initial_phase;
        st.phase[r][l] = rs.initial_phase;
      }
      for (int c = 0; c < 2; ++c) {
        st.fb_inject[s][c][l] = central_params[c]->xor_delay_ps *
                                st.inv_period[s * 6 + 4 + c][l];
      }
    }
  }

  // Hybrid-unit constants.  The aperture sigma is the flip-flop's thermal
  // window, narrowed by the stress knob (see DhTrng::next_bit_fast).
  const double aperture =
      core.device.ff_aperture_sigma_ps * std::min(core.noise_scale, 1.0);
  const HybridUnitParams* unit_params[2] = {&params.unit_a, &params.unit_b};
  for (int u = 0; u < soa::kUnits; ++u) {
    const int s = u / 2;
    const int j = u % 2;
    const HybridUnitParams& up = *unit_params[j];
    const int r1 = s * 6 + j * 2;
    const int r2 = r1 + 1;
    st.sigma_q1[u] = std::max(aperture, up.ro1.edge_width_ps);
    st.sigma_q2[u] =
        std::max(aperture, up.ro2.edge_width_ps * up.pulse_smoothing);
    st.w_full[u] =
        up.ro2.kappa_ps_per_sqrt_ps * sqrt_dt * scale.white_jitter;
    for (int l = 0; l < soa::kLanes; ++l) {
      const double osc_fraction = 1.0 - st.duty[r1][l];
      st.dt_osc[u][l] = st.dt_ps * osc_fraction;
      st.w_osc[u][l] = up.ro2.kappa_ps_per_sqrt_ps *
                       std::sqrt(st.dt_osc[u][l]) * scale.white_jitter;
      const double edge_frac =
          up.ro2.edge_width_ps * up.pulse_smoothing / st.period[r2][l];
      st.p_sub[u][l] =
          std::min(up.hold_capture_prob + 2.0 * edge_frac, 0.95);
    }
  }

  // Chip-wide shared supply AR(1), one independent chip per lane.
  const double shared_sigma =
      core.device.gate_jitter.correlated_sigma_ps * 2.0;
  st.shared_inn_sigma =
      std::sqrt(1.0 - st.shared_rho * st.shared_rho) * shared_sigma;
  const double corr = scale.correlated_noise;
  st.data_kick = core.data_noise_ps * 0.5 * corr * corr * corr * corr;

  // Flicker lattice start: fill every octave row with unit normals from the
  // engine stream via the fused gaussian fill (the scalar FlickerNoise
  // constructor draws its rows the same way, just from per-ring
  // generators).
  {
    const std::size_t n = static_cast<std::size_t>(
        soa::kRings * soa::kOctaves * soa::kLanes);
    std::vector<double> g0(n);
    st.rng.gaussian_fill(g0.data(), n);
    std::size_t at = 0;
    for (int r = 0; r < soa::kRings; ++r) {
      for (int o = 0; o < soa::kOctaves; ++o) {
        for (int l = 0; l < soa::kLanes; ++l) {
          st.flick_row[r][o][l] = g0[at++];
        }
      }
    }
  }
  for (int r = 0; r < soa::kRings; ++r) {
    for (int l = 0; l < soa::kLanes; ++l) {
      double sum = 0.0;
      for (int o = 0; o < soa::kOctaves; ++o) sum += st.flick_row[r][o][l];
      st.flick_sum[r][l] = sum;
      st.last_flick[r][l] = sum * st.flick_gain[r];
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FastEngine: heap home of the (large, POD) bitsliced state.
// ---------------------------------------------------------------------------

struct DhTrngSoA::FastEngine {
  soa::EngineState st;

  void power_cycle() {
    // Circuit state back to power-on values; the noise processes (flicker
    // lattice, supply AR(1), RNG streams) keep evolving — the semantics of
    // the paper's restart test, matching the scalar fast backend.
    std::memcpy(st.phase, st.initial_phase, sizeof(st.phase));
    for (int u = 0; u < soa::kUnits; ++u) {
      st.frozen[u] = st.frozen_meta[u] = st.frozen_level[u] = 0;
    }
    for (int s = 0; s < 2; ++s) st.last_fb[s][0] = st.last_fb[s][1] = 0;
    st.out_reg = 0;
  }
};

// ---------------------------------------------------------------------------
// DhTrngSoA
// ---------------------------------------------------------------------------

DhTrngSoA::DhTrngSoA(DhTrngSoAConfig config) : config_(config) {
  config_.core.backend = Backend::Fast;  // phase-domain lanes only
  if (config_.noise_mode == noise::NoiseMode::Exact) {
    support::SplitMix64 seeder(config_.core.seed);
    exact_lanes_.reserve(kSoaLanes);
    for (std::size_t l = 0; l < kSoaLanes; ++l) {
      DhTrngConfig per_lane = config_.core;
      per_lane.seed = seeder.next();
      exact_lanes_.emplace_back(per_lane);
    }
  } else {
    fast_ = std::make_unique<FastEngine>();
    const double clock =
        config_.core.clock_mhz > 0.0
            ? config_.core.clock_mhz
            : config_.core.device.max_clock_mhz(2, config_.core.pvt);
    init_engine(fast_->st, config_, clock);
  }
}

DhTrngSoA::~DhTrngSoA() = default;
DhTrngSoA::DhTrngSoA(DhTrngSoA&&) noexcept = default;
DhTrngSoA& DhTrngSoA::operator=(DhTrngSoA&&) noexcept = default;

std::string DhTrngSoA::name() const {
  std::string n = "DH-TRNG SoA x64";
  if (config_.noise_mode == noise::NoiseMode::Exact) n += "/exact";
  if (!config_.core.coupling) n += "/no-coupling";
  if (!config_.core.feedback) n += "/no-feedback";
  return n;
}

std::uint64_t DhTrngSoA::next_word_exact() {
  std::uint64_t w = 0;
  for (std::size_t l = 0; l < kSoaLanes; ++l) {
    w |= static_cast<std::uint64_t>(exact_lanes_[l].next_bit()) << l;
  }
  return w;
}

std::uint64_t DhTrngSoA::next_word() {
  return fast_ ? soa::step(fast_->st) : next_word_exact();
}

void DhTrngSoA::generate_words(std::uint64_t* out, std::size_t n) {
  if (fast_) {
    for (std::size_t i = 0; i < n; ++i) out[i] = soa::step(fast_->st);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = next_word_exact();
  }
}

bool DhTrngSoA::next_bit() {
  if (word_pos_ >= kSoaLanes) {
    word_ = next_word();
    word_pos_ = 0;
  }
  return ((word_ >> word_pos_++) & 1u) != 0;
}

void DhTrngSoA::generate(support::BitStream& out, std::size_t nbits) {
  out.reserve(out.size() + nbits);
  std::size_t left = nbits;
  // Drain the buffered word first so generate() and next_bit() interleave
  // into one consistent stream.
  while (left > 0 && word_pos_ < kSoaLanes) {
    out.push_back(next_bit());
    --left;
  }
  while (left >= kSoaLanes) {
    const std::uint64_t w = next_word();
    for (unsigned b = 0; b < kSoaLanes; ++b) {
      out.push_back(((w >> b) & 1u) != 0);
    }
    left -= kSoaLanes;
  }
  while (left > 0) {
    out.push_back(next_bit());
    --left;
  }
}

void DhTrngSoA::restart() {
  if (fast_) {
    fast_->power_cycle();
  } else {
    for (DhTrng& lane : exact_lanes_) lane.restart();
  }
  word_ = 0;
  word_pos_ = kSoaLanes;
}

sim::ResourceCounts DhTrngSoA::resources() const {
  const sim::ResourceCounts one =
      exact_lanes_.empty() ? sim::ResourceCounts{23, 4, 14}
                           : exact_lanes_.front().resources();
  return {one.luts * kSoaLanes, one.muxes * kSoaLanes, one.dffs * kSoaLanes};
}

double DhTrngSoA::clock_mhz() const {
  if (!exact_lanes_.empty()) return exact_lanes_.front().clock_mhz();
  return 1e6 / fast_->st.dt_ps;
}

double DhTrngSoA::throughput_mbps() const {
  return clock_mhz() * static_cast<double>(kSoaLanes);
}

fpga::ActivityEstimate DhTrngSoA::activity() const {
  // One shared clock network, 64 instances of logic — same accounting as
  // DhTrngArray.
  fpga::ActivityEstimate one = DhTrng(config_.core).activity();
  one.flip_flops *= kSoaLanes;
  one.logic_toggle_ghz *= static_cast<double>(kSoaLanes);
  return one;
}

double DhTrngSoA::metastable_fraction() const {
  if (fast_) {
    if (fast_->st.bits_emitted == 0) return 0.0;
    return static_cast<double>(fast_->st.metastable_bits) /
           static_cast<double>(fast_->st.bits_emitted);
  }
  double sum = 0.0;
  for (const DhTrng& lane : exact_lanes_) sum += lane.metastable_fraction();
  return sum / static_cast<double>(kSoaLanes);
}

}  // namespace dhtrng::core
