// Bitsliced structure-of-arrays DH-TRNG backend: 64 independent instances
// advanced per 64-bit word — the lane-parallel trick the word-parallel
// statistical engine uses for analysis, applied to *generation*.
//
// Layout: every piece of per-instance state becomes a 64-wide array (one
// slot per lane) or one bit of a packed std::uint64_t word (boolean state:
// freeze flags, latched levels, the output register).  The twelve phase
// rings of one DH-TRNG (2 structures x {RO1a, RO2a, RO1b, RO2b, C1, C2})
// become twelve rows of 64 phase accumulators; one step advances all rows
// and emits one output word, bit l being lane l's bit for that clock cycle.
//
// Two engines behind one interface, selected by DhTrngSoAConfig::noise_mode:
//
//  * Exact — a vector of 64 ordinary DhTrng fast-backend instances, seeded
//    with the same SplitMix64 lane-seed derivation DhTrngArray uses.  Output
//    is bit-identical to DhTrngArray{cores = 64} round-robin interleaving;
//    tests/core/test_dhtrng_soa*.cpp enforce it lane by lane.  This engine
//    exists as the differential oracle; it is no faster than the array.
//
//  * Fast — the bitsliced engine.  All randomness comes from the dispatched
//    SIMD kernels (support/simd_noise.h): a XoshiroSoA raw stream feeding
//    batched Box-Muller normals, Abramowitz-Stegun normal CDFs for the
//    flip-flop apertures, sin2pi for the chaotic-ring mode modulation, and
//    packed-mask Bernoulli draws for the hold-capture and metastable coins.
//    Per-lane *structural* constants (period mismatch, duty error, power-on
//    phase) replicate the exact engine's constructor draws, so every lane
//    is the same physical instance in both modes; the *noise stream* is a
//    different (batched, branch-free) one — statistically equivalent but
//    NOT bit-compatible with Exact, same contract as noise::NoiseMode::Fast
//    in the event-driven simulator.  Deterministic per (seed, mode) and
//    bit-identical across dispatch tiers.
//
// The fast engine is the bulk-generation path: one EntropyPool producer
// block (4096 bits) is exactly 64 steps, and trng_tool --backend=soa uses
// it for `generate`.  bench_gen_soa measures its throughput against the
// scalar array baseline and CI gates the speedup.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dhtrng.h"
#include "core/trng.h"
#include "noise/jitter.h"

namespace dhtrng::core {

/// Lane count of the bitsliced backend (one bit of a machine word each).
inline constexpr std::size_t kSoaLanes = 64;

struct DhTrngSoAConfig {
  /// Per-lane configuration; `seed` is the master seed, per-lane seeds are
  /// SplitMix64-derived from it exactly like DhTrngArray derives per-core
  /// seeds.  `backend` is ignored (the SoA engines are phase-domain only).
  DhTrngConfig core;
  /// Exact = 64 scalar DhTrng lanes (the oracle); Fast = bitsliced SIMD
  /// engine (the production path).  See the header comment.
  noise::NoiseMode noise_mode = noise::NoiseMode::Fast;
};

class DhTrngSoA final : public TrngSource {
 public:
  explicit DhTrngSoA(DhTrngSoAConfig config);
  ~DhTrngSoA() override;

  DhTrngSoA(DhTrngSoA&&) noexcept;
  DhTrngSoA& operator=(DhTrngSoA&&) noexcept;

  std::string name() const override;

  /// One step of all 64 lanes: bit l is lane l's output bit this cycle.
  std::uint64_t next_word();

  /// `n` consecutive steps into `out[0..n)`.
  void generate_words(std::uint64_t* out, std::size_t n);

  /// Bits in DhTrngArray round-robin order: bit i of the stream is lane
  /// (i mod 64)'s bit for cycle (i div 64) — served from a buffered word.
  bool next_bit() override;

  /// Word-at-a-time fast path with the same stream as repeated next_bit().
  void generate(support::BitStream& out, std::size_t nbits) override;
  using TrngSource::generate;  // keep the BitStream-returning convenience

  /// Power-cycle every lane: phases and registers return to power-on
  /// values, the noise processes keep evolving (RNG streams not rewound).
  void restart() override;

  sim::ResourceCounts resources() const override;  ///< 64x one instance
  double clock_mhz() const override;
  double throughput_mbps() const override;  ///< clock * 64 lanes
  fpga::ActivityEstimate activity() const override;

  /// Fraction of emitted bits during which at least one hybrid unit's RO2
  /// sample was metastable (health indicator, averaged over lanes).
  double metastable_fraction() const;

  const DhTrngSoAConfig& config() const { return config_; }

 private:
  struct FastEngine;  // bitsliced state, defined in dhtrng_soa.cpp

  std::uint64_t next_word_exact();

  DhTrngSoAConfig config_;
  std::vector<DhTrng> exact_lanes_;      // Exact engine (empty in Fast mode)
  std::unique_ptr<FastEngine> fast_;     // Fast engine (null in Exact mode)

  // next_bit() buffer: the unread tail of the most recent word.
  std::uint64_t word_ = 0;
  unsigned word_pos_ = kSoaLanes;
};

}  // namespace dhtrng::core
