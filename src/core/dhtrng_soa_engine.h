// Internal state of DhTrngSoA's bitsliced fast engine + the per-tier step
// kernel entry points.  Not part of the public API — included only by
// dhtrng_soa.cpp (construction, dispatch) and the kernel translation units
// (dhtrng_soa_kernel*.cpp, which compile dhtrng_soa_engine.inc).
//
// Tier model: the step kernel is ONE source file compiled once at the
// baseline architecture (`scalar_k`) and, on x86-64, once more with
// -mavx2 -mfma (`avx2_k`).  Both TUs build with -ffp-contract=off, so the
// floating-point operation sequence per lane is identical and the tiers
// are bit-identical by construction (the same argument as the support
// SIMD kernels; on aarch64 the baseline TU already vectorizes with NEON).
// Guarded intrinsic fast paths inside the kernel are restricted to *exact*
// operations — comparisons, sign-bit gathers, mask expansion — which
// cannot round differently.  Dispatch keys off support::simd::active_tier()
// so DHTRNG_FORCE_SCALAR and force_tier() cover the engine too.
#pragma once

#include <cstdint>

#include "support/simd_noise.h"

namespace dhtrng::core::soa {

inline constexpr int kLanes = 64;
inline constexpr int kRings = 12;    // 2 structures x {RO1a,RO2a,RO1b,RO2b,C1,C2}
inline constexpr int kUnits = 4;     // 2 structures x {unit a, unit b}
inline constexpr int kOctaves = 12;  // PhaseRo's flicker lattice depth

struct alignas(64) EngineState {
  // --- per-ring, per-lane constants (frozen structural mismatch) ----------
  double inv_period[kRings][kLanes];  ///< 1 / (base_period * scale.delay)
  double period[kRings][kLanes];      ///< base_period * scale.delay (ps)
  double duty[kRings][kLanes];
  double initial_phase[kRings][kLanes];

  // --- per-ring, per-lane evolving state -----------------------------------
  double phase[kRings][kLanes];
  double flick_row[kRings][kOctaves][kLanes];  ///< unit-normal octave rows
  double flick_sum[kRings][kLanes];            ///< sum of rows (unit scale)
  double last_flick[kRings][kLanes];           ///< last applied value (ps)

  // --- per-ring scalars ----------------------------------------------------
  double white_sigma[kRings];  ///< kappa*sqrt(dt)*white_scale[*chaos gain]
  double flick_gain[kRings];   ///< per-octave sigma * correlated_noise scale
  double shared_gain[kRings];  ///< supply coupling * correlated_noise scale
  double mod_gain[kRings];     ///< centrals: depth * dt * 0.5 (0 elsewhere)

  // --- hybrid-unit state (u = structure*2 + {a,b}) -------------------------
  std::uint64_t frozen[kUnits] = {};
  std::uint64_t frozen_meta[kUnits] = {};
  std::uint64_t frozen_level[kUnits] = {};
  double p_sub[kUnits][kLanes];   ///< hold-capture probability per lane
  double dt_osc[kUnits][kLanes];  ///< dt * (1 - duty of the unit's RO1)
  double w_osc[kUnits][kLanes];   ///< kappa2*sqrt(dt_osc)*white_scale
  double w_full[kUnits];          ///< kappa2*sqrt(dt)*white_scale
  double sigma_q1[kUnits];        ///< RO1 sampling aperture sigma (ps)
  double sigma_q2[kUnits];        ///< RO2 oscillating aperture sigma (ps)

  // --- chip-wide state -----------------------------------------------------
  double shared_value[kLanes] = {};  ///< per-lane supply AR(1) state
  double shared_rho = 0.995;
  double shared_inn_sigma = 0.0;
  double data_kick = 0.0;            ///< +/- displacement from the out reg
  double fb_inject[2][2][kLanes];    ///< [structure][central] phase jump
  std::uint64_t last_fb[2][2] = {};  ///< per-central feedback edge detector
  std::uint64_t out_reg = 0;
  bool coupling_enabled = true;
  bool feedback_enabled = true;
  double dt_ps = 0.0;

  std::uint64_t flick_counter = 0;
  std::uint64_t bits_emitted = 0;
  std::uint64_t metastable_bits = 0;

  support::simd::XoshiroSoA rng;

  // --- per-step scratch ----------------------------------------------------
  // Normals come straight from the fused XoshiroSoA::gaussian_fill (two
  // per raw word, never staged here); `raw` holds only the uniform words,
  // each sliced into two 32-bit coins: per-unit aperture words (high half
  // the Q1 coin, low half the Q2 coin — a lane consumes Q2's coin only
  // when oscillating) and per-unit sub-threshold words (high half the
  // hold-capture draw, bit 31 the metastable-latch fair coin — capture is
  // consumed on freeze transitions, the fair coin on held lanes, disjoint
  // within a step).
  static constexpr int kNormWhiteOff = 0;                 // 12*64 normals
  static constexpr int kNormSharedOff = kRings * kLanes;  // 64 normals
  static constexpr int kNormFlickOff = kNormSharedOff + kLanes;
  static constexpr int kNormMax = kNormFlickOff + kRings * kLanes;
  static constexpr int kRawUniform = 8 * kLanes;
  std::uint64_t raw[kRawUniform];
  double norm[kNormMax];
  double shared_eff[kLanes];
  double x[kLanes], pk[kLanes];
  double sin_a[kLanes], sin_b[kLanes], turns[kLanes];
  double rm[kLanes], om[kLanes], em[kLanes];
  std::uint64_t unit_q1[kUnits], unit_q2[kUnits];
};

// Step kernels, one per tier; identical outputs (see header comment).
namespace scalar_k {
std::uint64_t soa_step(EngineState& st);
}
#if defined(__x86_64__) || defined(_M_X64)
namespace avx2_k {
std::uint64_t soa_step(EngineState& st);
}
#endif

/// One step of all 64 lanes through the tier support::simd::active_tier()
/// selects: advances the 12 ring rows, resolves the hybrid units' sampling
/// and hold machines, the central chaotic rings, and returns the packed
/// output word (bit l = lane l's bit).
inline std::uint64_t step(EngineState& st) {
#if defined(__x86_64__) || defined(_M_X64)
  if (support::simd::active_tier() == support::simd::Tier::Avx2) {
    return avx2_k::soa_step(st);
  }
#endif
  return scalar_k::soa_step(st);
}

}  // namespace dhtrng::core::soa
