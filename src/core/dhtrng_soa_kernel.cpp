// Baseline tier of the SoA step kernel (scalar on x86-64 without AVX2;
// NEON-autovectorized on aarch64, where NEON is baseline).  See
// dhtrng_soa_engine.h for the tier contract.

#define DHTRNG_KERNEL_NS scalar_k
#include "core/dhtrng_soa_engine.inc"
#undef DHTRNG_KERNEL_NS
