// AVX2 tier of the SoA step kernel: the same shared source as the baseline
// tier (dhtrng_soa_engine.inc), recompiled with -mavx2 -mfma so the
// elementwise lane loops vectorize 4 doubles wide and the guarded
// mask-packing intrinsics activate.  -ffp-contract=off keeps the per-lane
// arithmetic bit-identical to the baseline tier; only reached after the
// runtime CPU check behind support::simd::active_tier().
#if defined(__x86_64__) || defined(_M_X64)

#define DHTRNG_KERNEL_NS avx2_k
#include "core/dhtrng_soa_engine.inc"
#undef DHTRNG_KERNEL_NS

#endif
