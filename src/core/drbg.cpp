#include "core/drbg.h"

#include <algorithm>

namespace dhtrng::core {

namespace {

std::vector<std::uint8_t> digest_to_vec(const support::Sha256::Digest& d) {
  return std::vector<std::uint8_t>(d.begin(), d.end());
}

}  // namespace

HmacDrbg::HmacDrbg(TrngSource& entropy_source, HmacDrbgConfig config,
                   const std::vector<std::uint8_t>& personalization)
    : source_(entropy_source),
      config_(config),
      key_(32, 0x00),
      v_(32, 0x01) {
  // Instantiate (10.1.2.3): seed_material = entropy || nonce || pers.
  std::vector<std::uint8_t> seed = pull_entropy(config_.entropy_input_bits);
  const std::vector<std::uint8_t> nonce = pull_entropy(config_.nonce_bits);
  seed.insert(seed.end(), nonce.begin(), nonce.end());
  seed.insert(seed.end(), personalization.begin(), personalization.end());
  hmac_update(seed);
  reseed_counter_ = 1;
}

std::vector<std::uint8_t> HmacDrbg::pull_entropy(std::size_t bits) {
  const support::BitStream raw = source_.generate(bits);
  return raw.to_bytes();
}

void HmacDrbg::hmac_update(const std::vector<std::uint8_t>& provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V).
  {
    support::HmacSha256 mac(key_);
    mac.update(v_);
    mac.update(std::uint8_t{0x00});
    mac.update(provided);
    key_ = digest_to_vec(mac.finish());
  }
  {
    support::HmacSha256 mac(key_);
    mac.update(v_);
    v_ = digest_to_vec(mac.finish());
  }
  if (provided.empty()) return;
  // K = HMAC(K, V || 0x01 || provided); V = HMAC(K, V).
  {
    support::HmacSha256 mac(key_);
    mac.update(v_);
    mac.update(std::uint8_t{0x01});
    mac.update(provided);
    key_ = digest_to_vec(mac.finish());
  }
  {
    support::HmacSha256 mac(key_);
    mac.update(v_);
    v_ = digest_to_vec(mac.finish());
  }
}

void HmacDrbg::reseed(const std::vector<std::uint8_t>& additional_input) {
  std::vector<std::uint8_t> seed = pull_entropy(config_.entropy_input_bits);
  seed.insert(seed.end(), additional_input.begin(), additional_input.end());
  hmac_update(seed);
  reseed_counter_ = 1;
  ++reseeds_;
}

void HmacDrbg::generate(std::uint8_t* out, std::size_t len,
                        const std::vector<std::uint8_t>& additional_input) {
  if (reseed_counter_ > config_.reseed_interval) reseed(additional_input);
  if (!additional_input.empty()) hmac_update(additional_input);

  std::size_t produced = 0;
  while (produced < len) {
    support::HmacSha256 mac(key_);
    mac.update(v_);
    v_ = digest_to_vec(mac.finish());
    const std::size_t take = std::min<std::size_t>(32, len - produced);
    std::copy(v_.begin(), v_.begin() + static_cast<long>(take),
              out + produced);
    produced += take;
  }
  hmac_update(additional_input);
  ++reseed_counter_;
}

std::vector<std::uint8_t> HmacDrbg::generate(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  generate(out.data(), len);
  return out;
}

// --- CTR_DRBG ---------------------------------------------------------------

CtrDrbg::CtrDrbg(TrngSource& entropy_source, CtrDrbgConfig config)
    : source_(entropy_source), config_(config), key_(32, 0x00) {
  // Instantiate (10.2.1.3.1, no df): Key = 0, V = 0, then
  // CTR_DRBG_Update(entropy_input).
  update(source_.generate(kSeedLen * 8).to_bytes());
  reseed_counter_ = 1;
}

void CtrDrbg::increment_v() {
  for (std::size_t i = v_.size(); i-- > 0;) {
    if (++v_[i] != 0) break;
  }
}

void CtrDrbg::update(const std::vector<std::uint8_t>& provided) {
  support::Aes cipher(key_);
  std::vector<std::uint8_t> temp;
  temp.reserve(kSeedLen);
  while (temp.size() < kSeedLen) {
    increment_v();
    std::uint8_t block[16];
    std::copy(v_.begin(), v_.end(), block);
    cipher.encrypt_block(block);
    temp.insert(temp.end(), block, block + 16);
  }
  temp.resize(kSeedLen);
  for (std::size_t i = 0; i < kSeedLen && i < provided.size(); ++i) {
    temp[i] ^= provided[i];
  }
  key_.assign(temp.begin(), temp.begin() + 32);
  std::copy(temp.begin() + 32, temp.end(), v_.begin());
}

void CtrDrbg::reseed() {
  update(source_.generate(kSeedLen * 8).to_bytes());
  reseed_counter_ = 1;
  ++reseeds_;
}

void CtrDrbg::generate(std::uint8_t* out, std::size_t len) {
  if (reseed_counter_ > config_.reseed_interval) reseed();
  support::Aes cipher(key_);
  std::size_t produced = 0;
  while (produced < len) {
    increment_v();
    std::uint8_t block[16];
    std::copy(v_.begin(), v_.end(), block);
    cipher.encrypt_block(block);
    const std::size_t take = std::min<std::size_t>(16, len - produced);
    std::copy(block, block + take, out + produced);
    produced += take;
  }
  update({});
  ++reseed_counter_;
}

std::vector<std::uint8_t> CtrDrbg::generate(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  generate(out.data(), len);
  return out;
}

}  // namespace dhtrng::core
