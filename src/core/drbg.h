// Deterministic random bit generators (SP 800-90A) seeded from a
// TrngSource — completing the root-of-trust stack the paper motivates:
//
//   DH-TRNG (entropy source) -> health tests -> DRBG -> applications
//
// Two constructions: HMAC_DRBG (10.1.2, over HMAC-SHA256) and CTR_DRBG
// (10.2.1, over AES-256, no derivation function — legal because the
// entropy input comes from a conditioned full-entropy source).  Both
// stretch the physical entropy to arbitrary volumes with prediction and
// backtracking resistance; reseeding pulls fresh TRNG output on demand or
// automatically every `reseed_interval` generate calls.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/trng.h"
#include "support/aes.h"
#include "support/hmac.h"

namespace dhtrng::core {

struct HmacDrbgConfig {
  std::size_t entropy_input_bits = 384;   ///< seed entropy (>= 1.5x security)
  std::size_t nonce_bits = 128;
  std::uint64_t reseed_interval = 10000;  ///< generate calls between reseeds
};

class HmacDrbg {
 public:
  /// Instantiate from the entropy source (keeps the reference; the source
  /// must outlive the DRBG).  `personalization` is mixed into the seed.
  HmacDrbg(TrngSource& entropy_source, HmacDrbgConfig config = {},
           const std::vector<std::uint8_t>& personalization = {});

  /// Fill `out` with pseudorandom bytes.
  void generate(std::uint8_t* out, std::size_t len,
                const std::vector<std::uint8_t>& additional_input = {});
  std::vector<std::uint8_t> generate(std::size_t len);

  /// Pull fresh entropy from the source and re-key.
  void reseed(const std::vector<std::uint8_t>& additional_input = {});

  std::uint64_t reseed_counter() const { return reseed_counter_; }
  std::uint64_t reseed_count() const { return reseeds_; }

 private:
  void hmac_update(const std::vector<std::uint8_t>& provided);
  std::vector<std::uint8_t> pull_entropy(std::size_t bits);

  TrngSource& source_;
  HmacDrbgConfig config_;
  std::vector<std::uint8_t> key_;  // K
  std::vector<std::uint8_t> v_;    // V
  std::uint64_t reseed_counter_ = 0;
  std::uint64_t reseeds_ = 0;
};

struct CtrDrbgConfig {
  std::uint64_t reseed_interval = 10000;
};

/// CTR_DRBG with AES-256, no derivation function: seedlen = 48 bytes of
/// (conditioned) entropy per (re)seed.
class CtrDrbg {
 public:
  explicit CtrDrbg(TrngSource& entropy_source, CtrDrbgConfig config = {});

  void generate(std::uint8_t* out, std::size_t len);
  std::vector<std::uint8_t> generate(std::size_t len);
  void reseed();

  std::uint64_t reseed_count() const { return reseeds_; }

 private:
  static constexpr std::size_t kSeedLen = 48;  // 32 key + 16 block

  void update(const std::vector<std::uint8_t>& provided);
  void increment_v();

  TrngSource& source_;
  CtrDrbgConfig config_;
  std::vector<std::uint8_t> key_;
  std::array<std::uint8_t, 16> v_{};
  std::uint64_t reseed_counter_ = 0;
  std::uint64_t reseeds_ = 0;
};

}  // namespace dhtrng::core
