#include "core/entropy_pool.h"

#include <algorithm>
#include <utility>

#include "core/dhtrng.h"
#include "support/rng.h"

namespace dhtrng::core {

EntropyPool::EntropyPool(EntropyPoolConfig config, SourceFactory factory)
    : config_(config),
      factory_(std::move(factory)),
      buffer_(config.buffer_bytes) {
  if (config_.producers == 0) {
    throw std::invalid_argument("EntropyPool: producers == 0");
  }
  if (config_.block_bits == 0 || config_.block_bits % 8 != 0) {
    throw std::invalid_argument("EntropyPool: block_bits must be a positive "
                                "multiple of 8");
  }
  // Clamp the tracker geometry to the largest power of two dividing
  // block_bits (>= 8 since block_bits is a multiple of 8): producers feed
  // whole blocks, so this keeps every tracker permanently block- and
  // window-aligned and the pool-wide merge exact.
  tracker_config_ = config_.tracker;
  const std::size_t pow2_divisor =
      config_.block_bits & (~config_.block_bits + 1);
  tracker_config_.block_len =
      std::min(tracker_config_.block_len, pow2_divisor);
  tracker_config_.window_bits =
      std::min(tracker_config_.window_bits, pow2_divisor);
  states_.reserve(config_.producers);
  for (std::size_t i = 0; i < config_.producers; ++i) {
    auto state = std::make_unique<ProducerState>(config_.min_entropy_per_bit,
                                                 tracker_config_);
    state->source = factory_(i, derived_seed(i, 0));
    states_.push_back(std::move(state));
  }
  // Start threads only once every state slot exists (producers index into
  // states_ concurrently).
  for (std::size_t i = 0; i < config_.producers; ++i) {
    states_[i]->thread = std::thread([this, i] { producer_loop(i); });
  }
}

EntropyPool EntropyPool::of_dhtrng(EntropyPoolConfig config, DhTrngConfig core) {
  return EntropyPool(config, [core](std::size_t, std::uint64_t seed) {
    DhTrngConfig per_producer = core;
    per_producer.seed = seed;
    return std::make_unique<DhTrng>(per_producer);
  });
}

EntropyPool EntropyPool::of_dhtrng_soa(EntropyPoolConfig config,
                                       DhTrngSoAConfig core) {
  return EntropyPool(config, [core](std::size_t, std::uint64_t seed) {
    DhTrngSoAConfig per_producer = core;
    per_producer.core.seed = seed;
    return std::make_unique<DhTrngSoA>(per_producer);
  });
}

EntropyPool::~EntropyPool() { stop(); }

std::uint64_t EntropyPool::derived_seed(std::size_t index,
                                        std::uint64_t sequence) const {
  // One SplitMix64 stream per pool; producer `index` owns the stream
  // positions index, producers+index, 2*producers+index, ... so initial and
  // reseed seeds never collide across producers.
  support::SplitMix64 sm(config_.seed);
  std::uint64_t value = 0;
  const std::uint64_t steps = sequence * config_.producers + index + 1;
  for (std::uint64_t i = 0; i < steps; ++i) value = sm.next();
  return value;
}

void EntropyPool::producer_loop(std::size_t index) {
  ProducerState& st = *states_[index];
  std::vector<std::uint8_t> block(config_.block_bits / 8);

  while (!stopping_.load(std::memory_order_acquire)) {
    // Generate and health-test one block.  The monitor is sticky once
    // alarmed, so `healthy` reflects the whole block.  Bits are batched
    // into 64-sample words (LSB-first emission order) so the RCT/APT run
    // their word-parallel feed path; the alarm decisions are identical to
    // per-bit feeding.
    bool healthy = true;
    std::uint64_t health_acc = 0;
    std::size_t health_n = 0;
    for (std::size_t byte = 0; byte < block.size(); ++byte) {
      std::uint8_t v = 0;
      for (int b = 0; b < 8; ++b) {
        const bool bit = st.source->next_bit();
        v = static_cast<std::uint8_t>((v << 1) | (bit ? 1u : 0u));
        if (bit) health_acc |= std::uint64_t{1} << health_n;
        ++health_n;
      }
      block[byte] = v;
      if (health_n == 64) {
        healthy = st.monitor.feed_word(health_acc, 64) && healthy;
        health_acc = 0;
        health_n = 0;
      }
    }
    if (health_n != 0) {
      healthy = st.monitor.feed_word(health_acc, health_n) && healthy;
    }

    if (!healthy) {
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      if (++st.consecutive_alarms > config_.max_reseeds) {
        // Reseeding did not cure it: the physical source is gone.  Retire;
        // the last producer standing closes the buffer so consumers can
        // observe exhaustion instead of blocking forever.
        st.retired.store(true, std::memory_order_release);
        if (retired_count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            states_.size()) {
          buffer_.close();
        }
        return;
      }
      st.source = factory_(index, derived_seed(index, ++st.reseed_sequence));
      st.monitor.reset();
      reseeds_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    st.consecutive_alarms = 0;
    if (config_.certify) {
      // The block passed the health gate, so it is part of the served
      // stream — exactly what the online certification tracks.  Whole
      // blocks only, under the lock, so cert_snapshot() always observes
      // block-aligned tracker state.
      std::lock_guard<std::mutex> lock(st.tracker_mutex);
      st.tracker.feed_bytes(block.data(), block.size());
    }
    for (std::uint8_t v : block) {
      if (!buffer_.push(v)) return;  // pool stopped while we were blocked
    }
    bytes_produced_.fetch_add(block.size(), std::memory_order_relaxed);
  }
}

std::vector<std::uint8_t> EntropyPool::get_bytes(std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    std::optional<std::uint8_t> byte = buffer_.pop();
    if (!byte) throw EntropyExhausted();  // closed and drained
    out.push_back(*byte);
  }
  return out;
}

void EntropyPool::stop() {
  stopping_.store(true, std::memory_order_release);
  buffer_.close();
  for (auto& st : states_) {
    if (st->thread.joinable()) st->thread.join();
  }
}

std::size_t EntropyPool::healthy_producers() const {
  std::size_t healthy = 0;
  for (const auto& st : states_) {
    if (!st->retired.load(std::memory_order_acquire)) ++healthy;
  }
  return healthy;
}

std::size_t EntropyPool::retired_producers() const {
  return retired_count_.load(std::memory_order_acquire);
}

bool EntropyPool::exhausted() const {
  return retired_producers() == states_.size();
}

std::uint64_t EntropyPool::quarantine_events() const {
  return quarantines_.load(std::memory_order_relaxed);
}

std::uint64_t EntropyPool::reseed_events() const {
  return reseeds_.load(std::memory_order_relaxed);
}

std::uint64_t EntropyPool::bytes_produced() const {
  return bytes_produced_.load(std::memory_order_relaxed);
}

PoolCertSnapshot EntropyPool::cert_snapshot() const {
  PoolCertSnapshot snap;
  snap.enabled = config_.certify;
  snap.tracker = tracker_config_;
  if (!config_.certify) return snap;
  stats::streaming::SourceTracker merged(tracker_config_);
  snap.producers.reserve(states_.size());
  for (const auto& st : states_) {
    std::lock_guard<std::mutex> lock(st->tracker_mutex);
    snap.producers.push_back(st->tracker.snapshot());
    // Exact merge: every tracker holds whole blocks, and the clamped
    // geometry divides block_bits, so the alignment precondition always
    // holds.
    merged.merge(st->tracker);
  }
  snap.merged = merged.snapshot();
  return snap;
}

PoolHealthSnapshot EntropyPool::snapshot() const {
  PoolHealthSnapshot snap;
  snap.producers = states_.size();
  snap.retired = retired_producers();
  snap.healthy = snap.producers - snap.retired;
  snap.quarantines = quarantine_events();
  snap.reseeds = reseed_events();
  snap.bytes_produced = bytes_produced();
  snap.exhausted = snap.retired == snap.producers;
  return snap;
}

}  // namespace dhtrng::core
