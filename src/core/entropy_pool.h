// Health-gated parallel entropy service: N producer threads each drive an
// independent TrngSource, run the SP 800-90B continuous health tests
// (stats/health.h RCT + APT) over every bit they emit, and feed a bounded
// shared buffer that consumers drain via get_bytes().
//
// Failure policy (the deployment behaviour SP 800-90B section 4.3 asks an
// entropy source to document):
//  * a block during which a producer's health monitor alarms is discarded
//    in full — no bit of it reaches the buffer;
//  * the alarming producer is quarantined: its source is rebuilt through
//    the factory with a fresh derived seed and its monitors reset;
//  * a producer that alarms on `max_reseeds` consecutive blocks is retired
//    permanently (a genuinely stuck source keeps failing after reseeding);
//  * get_bytes() keeps serving from the remaining healthy producers and
//    only throws EntropyExhausted once every producer has been retired and
//    the buffer has drained.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/dhtrng.h"
#include "core/dhtrng_soa.h"
#include "core/trng.h"
#include "stats/health.h"
#include "stats/streaming.h"
#include "support/ring_buffer.h"

namespace dhtrng::core {

struct EntropyPoolConfig {
  std::size_t producers = 4;
  /// Bounded buffer capacity; full buffer backpressures the producers.
  std::size_t buffer_bytes = 1 << 16;
  /// Production granularity: bits generated and health-tested per push.
  /// Must be a multiple of 8.
  std::size_t block_bits = 4096;
  /// H-claim for the RCT/APT cutoffs (per-bit min-entropy).
  double min_entropy_per_bit = 0.9;
  /// Consecutive alarmed blocks before a producer is retired for good.
  std::size_t max_reseeds = 3;
  /// Master seed; per-producer seeds are SplitMix64-derived from it.
  std::uint64_t seed = 1;
  /// Run a stats::streaming::SourceTracker per producer over every block
  /// that passes the health gate (i.e. the exact served stream), powering
  /// cert_snapshot() and the service CERT verb.
  bool certify = true;
  /// Tracker geometry.  block_len/window_bits are clamped down to the
  /// largest power of two dividing block_bits, so per-block feeding keeps
  /// every tracker block/window-aligned and the merged pool view exact.
  stats::streaming::TrackerConfig tracker;
};

/// Thrown by get_bytes() when every producer has been retired.
struct EntropyExhausted : std::runtime_error {
  EntropyExhausted() : std::runtime_error(
      "EntropyPool: all producers unhealthy, refusing to emit bytes") {}
};

/// One coherent view of the pool's failure-policy counters, for consumers
/// that gate their own behaviour on pool health (service::EntropyServer's
/// degradation ladder, the STATS admin command).  Counters are sampled
/// individually from atomics — the snapshot is eventually consistent, not
/// a transaction.
struct PoolHealthSnapshot {
  std::size_t producers = 0;        ///< configured producer count
  std::size_t healthy = 0;          ///< producers not permanently retired
  std::size_t retired = 0;          ///< producers retired for good
  std::uint64_t quarantines = 0;    ///< health alarms (block discarded)
  std::uint64_t reseeds = 0;        ///< quarantines cured by a rebuild
  std::uint64_t bytes_produced = 0; ///< bytes that passed the health gate
  bool exhausted = false;           ///< every producer retired
};

/// Live streaming-certification view: one tracker snapshot per producer
/// (over exactly the health-gated bits that producer contributed) plus
/// the pool-wide merge.  Producers feed their trackers whole blocks under
/// a per-producer lock, so every snapshot observes block-aligned state
/// and the merge is exact (see stats/streaming.h).
struct PoolCertSnapshot {
  bool enabled = false;                       ///< config.certify
  stats::streaming::TrackerConfig tracker;    ///< effective (clamped) config
  std::vector<stats::streaming::Snapshot> producers;
  stats::streaming::Snapshot merged;
};

class EntropyPool {
 public:
  /// Builds the TrngSource for producer `index`; called again with a fresh
  /// derived seed each time that producer is reseeded out of quarantine.
  using SourceFactory = std::function<std::unique_ptr<TrngSource>(
      std::size_t index, std::uint64_t seed)>;

  EntropyPool(EntropyPoolConfig config, SourceFactory factory);

  /// Convenience: a pool of DhTrng producers with the given per-core config
  /// (seeds are re-derived per producer).
  static EntropyPool of_dhtrng(EntropyPoolConfig config,
                               DhTrngConfig core = {});

  /// Convenience: a pool of DhTrngSoA producers — each producer is a
  /// bitsliced 64-instance block, so one producer thread feeds the buffer
  /// at bulk-generation rather than single-instance rate.  Seeds are
  /// re-derived per producer exactly as in of_dhtrng.
  static EntropyPool of_dhtrng_soa(EntropyPoolConfig config,
                                   DhTrngSoAConfig core = {});

  ~EntropyPool();

  EntropyPool(const EntropyPool&) = delete;
  EntropyPool& operator=(const EntropyPool&) = delete;
  EntropyPool(EntropyPool&&) = delete;

  /// Blocks until `n` health-tested bytes are available (FIFO across
  /// producers).  Throws EntropyExhausted once all producers are retired
  /// and the buffered remainder cannot cover the request.
  std::vector<std::uint8_t> get_bytes(std::size_t n);

  /// Stop producers and wake blocked consumers; idempotent (the destructor
  /// calls it).  After stop(), get_bytes() drains the buffer then throws.
  void stop();

  std::size_t producers() const { return states_.size(); }
  /// Producers not permanently retired.
  std::size_t healthy_producers() const;
  /// Producers permanently retired.
  std::size_t retired_producers() const;
  /// True once every producer has been retired (get_bytes() will throw as
  /// soon as the buffered remainder drains).
  bool exhausted() const;
  /// Total health alarms observed (each triggers a quarantine + reseed,
  /// or the retirement once `max_reseeds` is exceeded).
  std::uint64_t quarantine_events() const;
  /// Quarantines that ended in a rebuild (quarantines minus retirements).
  std::uint64_t reseed_events() const;
  /// Bytes that passed the health gate into the buffer.
  std::uint64_t bytes_produced() const;
  /// All of the above in one struct (see PoolHealthSnapshot).
  PoolHealthSnapshot snapshot() const;
  /// Per-producer + merged streaming-certification snapshots (empty with
  /// certify = false).
  PoolCertSnapshot cert_snapshot() const;
  /// The tracker geometry actually in use (after block_bits clamping).
  const stats::streaming::TrackerConfig& tracker_config() const {
    return tracker_config_;
  }

 private:
  struct ProducerState {
    std::unique_ptr<TrngSource> source;
    stats::HealthMonitor monitor;
    /// Streaming certification over this producer's health-gated output;
    /// fed whole blocks under tracker_mutex after the health decision, so
    /// snapshots always observe block-aligned state.
    stats::streaming::SourceTracker tracker;
    mutable std::mutex tracker_mutex;
    std::uint64_t reseed_sequence = 0;  ///< seeds consumed by this producer
    std::size_t consecutive_alarms = 0;
    std::atomic<bool> retired{false};
    std::thread thread;

    ProducerState(double h_claim, stats::streaming::TrackerConfig tracker_cfg)
        : monitor(h_claim), tracker(tracker_cfg) {}
  };

  void producer_loop(std::size_t index);
  std::uint64_t derived_seed(std::size_t index, std::uint64_t sequence) const;

  EntropyPoolConfig config_;
  stats::streaming::TrackerConfig tracker_config_;  ///< clamped to block_bits
  SourceFactory factory_;
  support::RingBuffer<std::uint8_t> buffer_;
  std::vector<std::unique_ptr<ProducerState>> states_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> retired_count_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> reseeds_{0};
  std::atomic<std::uint64_t> bytes_produced_{0};
};

}  // namespace dhtrng::core
