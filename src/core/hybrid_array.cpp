#include "core/hybrid_array.h"

#include "support/rng.h"

namespace dhtrng::core {

HybridArrayTrng::HybridArrayTrng(HybridArrayConfig config)
    : config_(config),
      dt_ps_(1e6 / config.clock_mhz),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0xfeedfacecafebeefULL) {
  support::SplitMix64 seeder(config.seed);
  HybridUnitParams params = default_hybrid_params();
  const double delay_scale = config.device.lut_delay_ps / 150.0;
  params.ro1.stage_delay_ps *= delay_scale;
  params.ro2.stage_delay_ps *= delay_scale;
  units_.reserve(static_cast<std::size_t>(config.units));
  for (int u = 0; u < config.units; ++u) {
    units_.emplace_back(params, seeder.next());
  }
}

std::string HybridArrayTrng::name() const {
  return "HybridArray(x" + std::to_string(config_.units) + ")";
}

bool HybridArrayTrng::next_bit() {
  const double shared = shared_noise_.step();
  bool out = false;
  for (HybridUnit& unit : units_) {
    out ^= unit.sample(dt_ps_, shared, scale_,
                       config_.device.ff_aperture_sigma_ps)
               .out;
  }
  return out;
}

void HybridArrayTrng::restart() {
  for (HybridUnit& unit : units_) unit.reset();
}

sim::ResourceCounts HybridArrayTrng::resources() const {
  sim::ResourceCounts rc;
  // Per unit: RO1 = 2 LUTs, RO2 = 1 LUT + 1 MUX; plus an XOR tree and two
  // DFF samplers per unit feeding it.
  rc.luts = 3 * static_cast<std::size_t>(config_.units);
  rc.muxes = static_cast<std::size_t>(config_.units);
  std::size_t fan = 2 * static_cast<std::size_t>(config_.units);
  while (fan > 1) {
    const std::size_t gates = (fan + 5) / 6;
    rc.luts += gates;
    fan = gates;
  }
  rc.dffs = 2 * static_cast<std::size_t>(config_.units) + 1;
  return rc;
}

fpga::ActivityEstimate HybridArrayTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.clock_mhz;
  a.flip_flops = 2 * static_cast<std::size_t>(config_.units) + 1;
  double total = 0.0;
  for (const HybridUnit& unit : units_) {
    const auto& p = unit.params();
    total += 2.0 * p.ro1.stages * 1e3 /
             (2.0 * p.ro1.stages * p.ro1.stage_delay_ps * scale_.delay);
    total += 0.5 * 2.0 * p.ro2.stages * 1e3 /
             (2.0 * p.ro2.stages * p.ro2.stage_delay_ps * scale_.delay);
  }
  a.logic_toggle_ghz = total;
  return a;
}

}  // namespace dhtrng::core
