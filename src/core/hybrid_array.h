// Array of n dynamic hybrid entropy units XORed into one bit per sample —
// the configuration the paper sweeps in Table 2 ("XOR number" 9..18)
// against arrays of 9-stage ROs, and the n-way XOR whose expected value is
// Eq. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hybrid_unit.h"
#include "core/trng.h"
#include "noise/jitter.h"

namespace dhtrng::core {

struct HybridArrayConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  int units = 12;          ///< XOR fan-in n
  double clock_mhz = 100;  ///< Table 2 uses the Table 1 sampling setup
};

class HybridArrayTrng final : public TrngSource {
 public:
  explicit HybridArrayTrng(HybridArrayConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  fpga::ActivityEstimate activity() const override;

 private:
  HybridArrayConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;
  std::vector<HybridUnit> units_;
  noise::SharedSupplyNoise shared_noise_;
};

}  // namespace dhtrng::core
