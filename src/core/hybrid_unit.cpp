#include "core/hybrid_unit.h"

#include <cmath>

#include "support/special_functions.h"

namespace dhtrng::core {

HybridUnitParams default_hybrid_params() {
  HybridUnitParams p;
  p.ro1.stages = 3;
  p.ro1.stage_delay_ps = 420.0;
  p.ro1.kappa_ps_per_sqrt_ps = 0.035;
  p.ro1.flicker_sigma_ps = 3.0;
  p.ro2.stages = 3;
  p.ro2.stage_delay_ps = 330.0;  // MUX path is faster than a full LUT stage
  p.ro2.kappa_ps_per_sqrt_ps = 0.035;
  p.ro2.flicker_sigma_ps = 3.0;
  p.ro2.edge_width_ps = 30.0;
  return p;
}

HybridUnit::HybridUnit(const HybridUnitParams& params, std::uint64_t seed)
    : params_(params),
      ro1_(params.ro1, seed),
      ro2_(params.ro2, seed ^ 0xd2b74407b1ce6e93ULL),
      rng_(seed ^ 0x8f462907535ecb47ULL) {}

void HybridUnit::reset() {
  ro1_.reset();
  ro2_.reset();
  frozen_ = false;
  frozen_level_ = false;
  frozen_meta_ = false;
}

HybridSample HybridUnit::sample(double dt_ps, double shared_noise_ps,
                                const noise::PvtScaling& scale,
                                double aperture_sigma_ps) {
  HybridSample s;

  // --- RO1: plain jitter source -------------------------------------------
  ro1_.advance(dt_ps, shared_noise_ps, scale);
  s.r1 = ro1_.level();
  // The flip-flop samples R1; if the sampling edge lands within the
  // metastability aperture of a transition edge, Eq. 2 applies.
  {
    const double dist = ro1_.edge_distance_ps(scale);
    const double sigma =
        std::max(aperture_sigma_ps, params_.ro1.edge_width_ps);
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      s.q1 = rng_.bernoulli(p_keep) ? s.r1 : !s.r1;
    } else {
      s.q1 = s.r1;
    }
  }

  // --- RO2: dynamically switched hold / oscillate loop ---------------------
  // R1's level over the past interval decides RO2's mode.  We use the
  // sampled level: a fraction of the interval equal to RO1's duty was spent
  // holding; phase advances only during oscillation.
  const bool hold_now = s.r1;  // R1 = 1 -> holding region
  if (hold_now) {
    if (!frozen_) {
      // Freeze happens at R1's rising edge somewhere inside the interval.
      // Advance RO2 by the oscillating fraction first.
      const double osc_fraction = 1.0 - ro1_.duty();
      ro2_.advance(dt_ps * osc_fraction, shared_noise_ps, scale);
      frozen_ = true;
      // Did the freeze catch RO2 mid-transition?  The probability grows
      // with the (smoothed) edge width relative to the period.
      const double period = ro2_.period_ps(scale);
      const double edge_frac = params_.ro2.edge_width_ps *
                               params_.pulse_smoothing / period;
      const double p_subthreshold =
          std::min(params_.hold_capture_prob + 2.0 * edge_frac, 0.95);
      frozen_meta_ = rng_.bernoulli(p_subthreshold);
      frozen_level_ = ro2_.level();
    }
    if (frozen_meta_) {
      // Sub-threshold latch: delta = 0 in Eq. 2 -> near-fair coin.
      s.q2 = rng_.bernoulli(0.5);
      s.q2_metastable = true;
    } else {
      s.q2 = frozen_level_;
    }
  } else {
    if (frozen_) {
      frozen_ = false;
      // Release: resolve the held node and resume oscillation for the
      // oscillating remainder of the interval.
      const double osc_fraction = 1.0 - ro1_.duty();
      ro2_.advance(dt_ps * osc_fraction, shared_noise_ps, scale);
    } else {
      ro2_.advance(dt_ps, shared_noise_ps, scale);
    }
    // Oscillation region: pulse smoothing widens the transition edges, so
    // the sampler sees a metastable window more often (the 2*eps*f term of
    // Eq. 5).
    const double dist = ro2_.edge_distance_ps(scale);
    const double sigma = std::max(
        aperture_sigma_ps, params_.ro2.edge_width_ps * params_.pulse_smoothing);
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      const bool lvl = ro2_.level();
      s.q2 = rng_.bernoulli(p_keep) ? lvl : !lvl;
      s.q2_metastable = dist < sigma;
    } else {
      s.q2 = ro2_.level();
    }
  }

  s.out = s.q1 ^ s.q2;
  return s;
}

}  // namespace dhtrng::core
