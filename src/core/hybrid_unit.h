// The paper's dynamic hybrid entropy unit (Section 3.1, Figure 3).
//
// RO1 free-runs and is sampled by a flip-flop (jitter entropy -> Q1).  Its
// ring node R1 also drives the select input of a MUX inside RO2's loop:
//
//   R1 = 0  ->  RO2 loops through an inverter  ->  oscillation region.
//               High-frequency oscillation smooths the square wave into
//               short pulses, widening the transition edges in time, so
//               sampling Q2 often violates the flip-flop aperture.
//   R1 = 1  ->  RO2 loops through itself       ->  holding region.
//               The loop freezes mid-transition with some probability tau,
//               latching an uncertain sub-threshold level; Eq. 2 with
//               delta = 0 then makes Q2 a near-fair coin.
//
// Out = Q1 XOR Q2 combines jitter and metastability entropy dynamically —
// the "hybrid" of the title.
//
// The fast model below advances both rings in the phase domain once per
// sampling interval and applies the two mechanisms probabilistically; the
// corresponding gate-level netlist lives in netlist.h and is validated to
// produce statistically equivalent output in the tests.
#pragma once

#include <cstdint>

#include "core/ro.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::core {

struct HybridUnitParams {
  PhaseRoParams ro1;          ///< jitter ring (short and fast)
  PhaseRoParams ro2;          ///< switched hold/oscillate ring
  /// Probability that freezing RO2 catches the loop mid-transition and
  /// latches a sub-threshold level (tau in Eq. 5).  The paper's holding
  /// mechanism is designed to make this large.
  double hold_capture_prob = 0.40;
  /// Extra widening of RO2's transition edges by pulse smoothing while in
  /// the oscillation region (multiplies ro2.edge_width_ps).
  double pulse_smoothing = 3.0;
};

/// Default parameter set used throughout (3-stage RO1, 3-stage RO2);
/// stage delays follow the device via scale factors at sample time.
HybridUnitParams default_hybrid_params();

struct HybridSample {
  bool q1 = false;
  bool q2 = false;
  bool r1 = false;       ///< RO1 level at the sample (the MUX select)
  bool out = false;      ///< q1 ^ q2
  bool q2_metastable = false;
};

class HybridUnit {
 public:
  HybridUnit(const HybridUnitParams& params, std::uint64_t seed);

  /// Advance by one sampling interval and sample both flip-flops.
  /// `shared_noise_ps` is the chip-wide supply displacement for this step.
  HybridSample sample(double dt_ps, double shared_noise_ps,
                      const noise::PvtScaling& scale,
                      double aperture_sigma_ps);

  PhaseRo& ro1() { return ro1_; }
  PhaseRo& ro2() { return ro2_; }
  const HybridUnitParams& params() const { return params_; }

  void reset();

 private:
  HybridUnitParams params_;
  PhaseRo ro1_;
  PhaseRo ro2_;
  support::Xoshiro256 rng_;
  bool frozen_ = false;       ///< RO2 currently held
  bool frozen_level_ = false; ///< latched RO2 level while held
  bool frozen_meta_ = false;  ///< latched level is sub-threshold
};

}  // namespace dhtrng::core
