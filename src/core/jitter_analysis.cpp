#include "core/jitter_analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dhtrng::core {

JitterAnalysis analyze_edge_times(const std::vector<double>& edges,
                                  std::vector<std::size_t> horizons) {
  if (edges.size() < 16) {
    throw std::invalid_argument("analyze_edge_times: need >= 16 edges");
  }
  JitterAnalysis out;
  out.cycles = edges.size() - 1;

  // Periods.
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const double p = edges[i] - edges[i - 1];
    sum += p;
    sum2 += p * p;
  }
  const double n = static_cast<double>(out.cycles);
  out.mean_period_ps = sum / n;
  out.period_jitter_ps =
      std::sqrt(std::max(sum2 / n - out.mean_period_ps * out.mean_period_ps, 0.0));

  if (horizons.empty()) {
    for (std::size_t m = 1; m <= out.cycles / 4; m *= 2) horizons.push_back(m);
  }
  out.horizons = horizons;

  // Accumulated error over m cycles: t[i+m] - t[i] - m * mean_period, over
  // non-overlapping windows.
  for (std::size_t m : horizons) {
    double s = 0.0, s2 = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i + m < edges.size(); i += m) {
      const double err = edges[i + m] - edges[i] -
                         static_cast<double>(m) * out.mean_period_ps;
      s += err;
      s2 += err * err;
      ++count;
    }
    if (count < 2) {
      out.accumulated_sigma_ps.push_back(0.0);
      continue;
    }
    const double c = static_cast<double>(count);
    const double mean = s / c;
    out.accumulated_sigma_ps.push_back(
        std::sqrt(std::max(s2 / c - mean * mean, 0.0)));
  }

  // Log-log least-squares fit of sigma(m) ~ a m^b over the valid points.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t pts = 0;
  for (std::size_t i = 0; i < out.horizons.size(); ++i) {
    if (out.accumulated_sigma_ps[i] <= 0.0) continue;
    const double x = std::log(static_cast<double>(out.horizons[i]));
    const double y = std::log(out.accumulated_sigma_ps[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++pts;
  }
  if (pts >= 2) {
    const double p = static_cast<double>(pts);
    out.scaling_exponent = (p * sxy - sx * sy) / (p * sxx - sx * sx);
  }
  return out;
}

}  // namespace dhtrng::core
