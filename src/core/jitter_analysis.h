// Oscillator jitter analysis from edge timestamps.
//
// Given the rising-edge times of a simulated ring node, this module
// extracts the quantities the noise model is calibrated in: mean period,
// cycle-to-cycle (period) jitter, and the accumulated-jitter curve
// sigma(m) over m cycles.  For white-FM noise sigma(m) grows as sqrt(m)
// (the law behind the paper's Eq. 1); the measured scaling exponent
// validates the gate-level engine against the phase-domain models
// (bench_jitter_validation, tests/core/test_jitter_analysis.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace dhtrng::core {

struct JitterAnalysis {
  std::size_t cycles = 0;
  double mean_period_ps = 0.0;
  double period_jitter_ps = 0.0;  ///< sigma of single-period durations
  /// Accumulated timing-error sigma over m cycles, for each probed m.
  std::vector<std::size_t> horizons;
  std::vector<double> accumulated_sigma_ps;
  /// Fitted exponent b of sigma(m) ~ a * m^b (white FM -> b ~ 0.5).
  double scaling_exponent = 0.0;
};

/// Analyze rising-edge timestamps (ps).  Horizons default to powers of two
/// up to a quarter of the available cycles.
JitterAnalysis analyze_edge_times(const std::vector<double>& edges,
                                  std::vector<std::size_t> horizons = {});

}  // namespace dhtrng::core
