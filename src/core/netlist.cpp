#include "core/netlist.h"

#include <string>

#include "core/ro.h"

namespace dhtrng::core {

namespace {

struct StructureNets {
  sim::NetId r1a, r2a, r1b, r2b, c1, c2;
};

// One nested coupling structure: 10 LUTs + 2 MUXs (see header inventory).
StructureNets build_structure(sim::Circuit& c, const std::string& prefix,
                              const fpga::DeviceModel& dev, sim::NetId en,
                              sim::NetId fb, bool coupling, bool feedback) {
  const double ring_delay = dev.lut_delay_ps + 0.35 * dev.net_delay_ps;
  const double mux_delay = dev.mux_delay_ps + 0.2 * dev.net_delay_ps;
  const double xor_delay = dev.lut_delay_ps + 0.45 * dev.net_delay_ps;

  const auto unit = [&](const std::string& u, double skew) {
    // RO1: NAND(en, r1) -> BUF -> r1 (single inverting element + buffer).
    const sim::NetId n0 = c.add_net(prefix + u + "_n0");
    const sim::NetId r1 = c.add_net(prefix + u + "_r1");
    c.add_gate(sim::GateKind::Nand, {en, r1}, n0, ring_delay * skew);
    c.add_gate(sim::GateKind::Buf, {n0}, r1, ring_delay * skew);
    // RO2: MUX2(sel=r1, in0=INV(r2), in1=r2) -> r2.
    const sim::NetId inv = c.add_net(prefix + u + "_inv");
    const sim::NetId r2 = c.add_net(prefix + u + "_r2");
    c.add_gate(sim::GateKind::Inv, {r2}, inv, ring_delay * 0.8 * skew);
    c.add_gate(sim::GateKind::Mux2, {r1, inv, r2}, r2, mux_delay * skew);
    return std::pair{r1, r2};
  };

  const auto [r1a, r2a] = unit("_a", 1.0);
  const auto [r1b, r2b] = unit("_b", 1.07);  // frequency-diverse mirror unit

  // Central XOR rings.  With coupling on, each ring's two XORs take the
  // edge-ring signals (and the feedback line) as free inputs; with coupling
  // off the loop is a fixed-mode 2-inverter chain of the same LUT count.
  const auto central = [&](const std::string& ring, sim::NetId ea,
                           sim::NetId eb) {
    const sim::NetId x0 = c.add_net(prefix + ring + "_x0");
    const sim::NetId x1 = c.add_net(prefix + ring + "_x1");
    if (coupling) {
      std::vector<sim::NetId> in0{x1, ea};
      if (feedback) in0.push_back(fb);
      c.add_gate(sim::GateKind::Xor, in0, x0, xor_delay);
      c.add_gate(sim::GateKind::Xnor, {x0, eb}, x1, xor_delay);
    } else {
      c.add_gate(sim::GateKind::Inv, {x1}, x0, xor_delay);
      c.add_gate(sim::GateKind::Buf, {x0}, x1, xor_delay);
    }
    return x1;
  };
  const sim::NetId c1 = central("_c1", r1a, r1b);
  const sim::NetId c2 = central("_c2", r2a, r2b);

  return {r1a, r2a, r1b, r2b, c1, c2};
}

}  // namespace

DhTrngNetlist build_dhtrng_netlist(const fpga::DeviceModel& device,
                                   double clock_mhz, bool coupling,
                                   bool feedback) {
  DhTrngNetlist n;
  sim::Circuit& c = n.circuit;

  n.enable_net = c.add_net("en");
  c.set_initial(n.enable_net, true);
  n.clock_net = c.add_net("clk");
  c.add_clock(n.clock_net, 1e6 / clock_mhz);

  const sim::NetId fb = c.add_net("fb");

  const StructureNets s0 =
      build_structure(c, "s0", device, n.enable_net, fb, coupling, feedback);
  const StructureNets s1 =
      build_structure(c, "s1", device, n.enable_net, fb, coupling, feedback);

  // Multistage sampling array: 12 DFFs on the ring signals.
  const sim::DffTiming ff = device.dff_timing();
  const sim::NetId ring_nets[12] = {s0.r1a, s0.r2a, s0.r1b, s0.r2b,
                                    s0.c1,  s0.c2,  s1.r1a, s1.r2a,
                                    s1.r1b, s1.r2b, s1.c1,  s1.c2};
  std::vector<sim::NetId> q(12);
  for (int i = 0; i < 12; ++i) {
    q[static_cast<std::size_t>(i)] = c.add_net("q" + std::to_string(i));
    n.sample_dffs.push_back(
        c.add_dff(n.clock_net, ring_nets[i], q[static_cast<std::size_t>(i)], ff));
  }

  // XOR tree: two XOR6 + one XOR2 = 3 LUTs.  Tree nets cross between the
  // sampling-array slices, so they carry the full average routed-net delay
  // (this is the register-to-register critical path that sets the paper's
  // 620/670 MHz clocks — see fpga/timing.h).
  const double tree_delay = device.lut_delay_ps + device.net_delay_ps;
  const sim::NetId t0 = c.add_net("xt0");
  const sim::NetId t1 = c.add_net("xt1");
  const sim::NetId t2 = c.add_net("xt2");
  c.add_gate(sim::GateKind::Xor, {q[0], q[1], q[2], q[3], q[4], q[5]}, t0,
             tree_delay);
  c.add_gate(sim::GateKind::Xor, {q[6], q[7], q[8], q[9], q[10], q[11]}, t1,
             tree_delay);
  c.add_gate(sim::GateKind::Xor, {t0, t1}, t2, tree_delay);

  // Output and feedback registers.
  n.out_net = c.add_net("out");
  n.out_dff = c.add_dff(n.clock_net, t2, n.out_net, ff);
  n.feedback_dff = c.add_dff(n.clock_net, n.out_net, fb, ff);

  n.pack_groups = {
      fpga::PackGroup{"entropy-source-0", 10, 2, 0},
      fpga::PackGroup{"entropy-source-1", 10, 2, 0},
      fpga::PackGroup{"sampling-array", 3, 0, 14},
  };
  return n;
}

XorRoNetlist build_xor_ro_netlist(const fpga::DeviceModel& device,
                                  int stages, int rings, double clock_mhz) {
  XorRoNetlist n;
  sim::Circuit& c = n.circuit;

  const sim::NetId en = c.add_net("en");
  c.set_initial(en, true);
  n.clock_net = c.add_net("clk");
  c.add_clock(n.clock_net, 1e6 / clock_mhz);

  const double element_delay =
      device.lut_delay_ps + 0.35 * device.net_delay_ps;
  const sim::DffTiming ff = device.dff_timing();

  std::vector<sim::NetId> q;
  for (int r = 0; r < rings; ++r) {
    const sim::NetId ring = build_ring_oscillator(
        c, "ro" + std::to_string(r), stages, en,
        // +-1% per-instance mismatch, deterministic in the ring index.
        element_delay * (1.0 + 0.01 * ((r % 3) - 1)));
    const sim::NetId qn = c.add_net("q" + std::to_string(r));
    n.sampler_dffs.push_back(c.add_dff(n.clock_net, ring, qn, ff));
    q.push_back(qn);
  }

  // XOR reduction with LUT6s.
  const double tree_delay = device.lut_delay_ps + 0.3 * device.net_delay_ps;
  int level = 0;
  while (q.size() > 1) {
    std::vector<sim::NetId> next;
    for (std::size_t i = 0; i < q.size(); i += 6) {
      const std::size_t take = std::min<std::size_t>(6, q.size() - i);
      if (take == 1) {
        next.push_back(q[i]);
        continue;
      }
      const sim::NetId out = c.add_net("xt" + std::to_string(level) + "_" +
                                       std::to_string(i / 6));
      c.add_gate(sim::GateKind::Xor,
                 std::vector<sim::NetId>(q.begin() + static_cast<long>(i),
                                         q.begin() + static_cast<long>(i + take)),
                 out, tree_delay);
      next.push_back(out);
    }
    q = std::move(next);
    ++level;
  }

  n.out_net = c.add_net("out");
  n.out_dff = c.add_dff(n.clock_net, q.front(), n.out_net, ff);
  return n;
}

std::vector<NamedGateNetlist> golden_gate_netlists(
    const fpga::DeviceModel& device) {
  std::vector<NamedGateNetlist> out;

  {
    DhTrngNetlist n = build_dhtrng_netlist(device, 600.0);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "dhtrng";
    g.watch = {n.out_net,          c.net("fb"),       c.net("s0_a_r1"),
               c.net("s0_a_r2"),   c.net("s0_c1_x1"), c.net("s1_c2_x1"),
               c.net("xt2")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  {
    DhTrngNetlist n = build_dhtrng_netlist(device, 600.0, /*coupling=*/false,
                                           /*feedback=*/false);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "dhtrng_uncoupled";
    g.watch = {n.out_net, c.net("s0_a_r1"), c.net("s0_c1_x1"), c.net("xt2")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  {
    XorRoNetlist n = build_xor_ro_netlist(device, 3, 8, 600.0);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "xor_ro";
    g.watch = {n.out_net, c.net("ro0_n2"), c.net("ro7_n2"), c.net("xt0_0")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace dhtrng::core
