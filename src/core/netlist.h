// Gate-level netlist of the full DH-TRNG (Figure 5a), built for the
// event-driven simulator and consumed by the FPGA area/power models.
//
// Inventory (matches the paper's Section 3.3 exactly):
//   entropy source: 20 LUTs + 4 MUXs
//     per coupling structure (x2):
//       RO1 of unit A/B:    NAND(en) + BUF        = 2 LUTs each
//       RO2 of unit A/B:    INV + MUX2 loop       = 1 LUT + 1 MUX each
//       central ring 1/2:   2 XOR gates each      = 4 LUTs
//   sampling array: 3 LUTs + 14 DFFs
//     12 sampling DFFs, XOR tree (XOR6 + XOR6 + XOR2 = 3 LUTs),
//     output DFF, feedback DFF.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "fpga/slice_packer.h"
#include "sim/circuit.h"

namespace dhtrng::core {

struct DhTrngNetlist {
  sim::Circuit circuit;
  std::vector<std::size_t> sample_dffs;  ///< the 12 ring-sampling DFFs
  std::size_t out_dff = 0;               ///< final output register
  std::size_t feedback_dff = 0;          ///< feedback register
  sim::NetId out_net = sim::kInvalidNet;
  sim::NetId enable_net = sim::kInvalidNet;
  sim::NetId clock_net = sim::kInvalidNet;
  /// Packing groups in the paper's type-constrained layout.
  std::vector<fpga::PackGroup> pack_groups;
};

/// Build the DH-TRNG netlist for `device` with sampling clock `clock_mhz`.
/// `coupling` / `feedback` correspond to the Section 3.2 strategies and are
/// exposed for the ablation experiments (disabling coupling turns the
/// central rings into fixed-mode oscillators; disabling feedback ties the
/// feedback line low).
DhTrngNetlist build_dhtrng_netlist(const fpga::DeviceModel& device,
                                   double clock_mhz, bool coupling = true,
                                   bool feedback = true);

/// Gate-level netlist of the classic parallel-XOR RO TRNG (the Table 1
/// baseline): `rings` ring oscillators of `stages` elements, each sampled
/// by a DFF, XOR-reduced into an output register.
struct XorRoNetlist {
  sim::Circuit circuit;
  std::vector<std::size_t> sampler_dffs;
  std::size_t out_dff = 0;
  sim::NetId out_net = sim::kInvalidNet;
  sim::NetId clock_net = sim::kInvalidNet;
};

XorRoNetlist build_xor_ro_netlist(const fpga::DeviceModel& device,
                                  int stages, int rings, double clock_mhz);

/// A named gate-level netlist plus a curated set of nets to trace — the
/// shared inventory behind the golden-waveform digest tests
/// (tests/sim/test_golden_waveforms.cpp) and `bench_sim_microbench`.
/// Changing any of these circuits invalidates the pinned digests; see
/// docs/architecture.md ("Regenerating golden digests").
struct NamedGateNetlist {
  std::string name;
  sim::Circuit circuit;
  std::vector<sim::NetId> watch;  ///< nets traced into the golden VCD
};

/// The DH-TRNG netlist (full and with the Section 3.2 strategies ablated)
/// and the parallel-XOR RO baseline, all built for `device` at a 600 MHz
/// sampling clock.
std::vector<NamedGateNetlist> golden_gate_netlists(
    const fpga::DeviceModel& device);

}  // namespace dhtrng::core
