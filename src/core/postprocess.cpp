#include "core/postprocess.h"

#include <stdexcept>

#include "support/sha256.h"

namespace dhtrng::core {

support::BitStream von_neumann_extract(const support::BitStream& raw) {
  support::BitStream out;
  out.reserve(raw.size() / 4);
  for (std::size_t i = 0; i + 1 < raw.size(); i += 2) {
    const bool a = raw[i];
    const bool b = raw[i + 1];
    if (a != b) out.push_back(a);  // 01 -> 0, 10 -> 1
  }
  return out;
}

support::BitStream peres_extract(const support::BitStream& raw,
                                 std::size_t depth) {
  if (depth == 0 || raw.size() < 2) return {};
  support::BitStream out;
  support::BitStream xors;       // a_i ^ b_i per pair (recursed)
  support::BitStream discards;   // value of each equal pair (recursed)
  out.reserve(raw.size() / 4);
  xors.reserve(raw.size() / 2);
  for (std::size_t i = 0; i + 1 < raw.size(); i += 2) {
    const bool a = raw[i];
    const bool b = raw[i + 1];
    xors.push_back(a != b);
    if (a != b) {
      out.push_back(a);
    } else {
      discards.push_back(a);
    }
  }
  out.append(peres_extract(xors, depth - 1));
  out.append(peres_extract(discards, depth - 1));
  return out;
}

support::BitStream xor_compress(const support::BitStream& raw,
                                std::size_t fold) {
  if (fold == 0) throw std::invalid_argument("xor_compress: fold == 0");
  support::BitStream out;
  out.reserve(raw.size() / fold);
  for (std::size_t i = 0; i + fold <= raw.size(); i += fold) {
    bool acc = false;
    for (std::size_t j = 0; j < fold; ++j) acc ^= raw[i + j];
    out.push_back(acc);
  }
  return out;
}

support::BitStream sha256_condition(const support::BitStream& raw,
                                    std::size_t input_block_bits) {
  if (input_block_bits == 0) {
    throw std::invalid_argument("sha256_condition: empty input block");
  }
  support::BitStream out;
  for (std::size_t begin = 0; begin + input_block_bits <= raw.size();
       begin += input_block_bits) {
    const auto block = raw.slice(begin, input_block_bits);
    const auto digest = support::Sha256::hash(block.to_bytes());
    for (std::uint8_t byte : digest) {
      for (int bit = 7; bit >= 0; --bit) out.push_back((byte >> bit) & 1);
    }
  }
  return out;
}

}  // namespace dhtrng::core
