// Post-processing / conditioning components.
//
// The paper's headline is that DH-TRNG passes the suites *without* any
// post-processing; prior designs often need one of these stages.  The
// library ships the three standard ones so users (and the ablation benches)
// can quantify the throughput cost the DH-TRNG design avoids:
//
//  * von Neumann extractor — unbiases at the cost of a 4x+ (input-dependent)
//    rate loss;
//  * XOR compressor — folds n raw bits into 1 (Eq. 4's bias reduction in
//    time instead of area);
//  * SHA-256 conditioner — the vetted conditioning component of
//    SP 800-90B 3.1.5.1 (full-entropy output blocks from > 2x entropy in).
#pragma once

#include <cstddef>

#include "support/bitstream.h"

namespace dhtrng::core {

/// Von Neumann extractor: consume bit pairs; 01 -> 0, 10 -> 1, 00/11 -> no
/// output.  Output is exactly unbiased for independent input bits.
support::BitStream von_neumann_extract(const support::BitStream& raw);

/// Peres (iterated von Neumann) extractor: recursively re-extracts from
/// the XOR sequence and the discarded equal pairs, approaching the input's
/// Shannon entropy rate (vs von Neumann's p(1-p) ceiling).  `depth` bounds
/// the recursion; 16 is effectively unbounded for practical inputs.
support::BitStream peres_extract(const support::BitStream& raw,
                                 std::size_t depth = 16);

/// XOR compressor: each output bit is the XOR of `fold` consecutive raw
/// bits (fold >= 1).  Reduces bias per the piling-up lemma at a fixed
/// fold-to-1 rate cost.
support::BitStream xor_compress(const support::BitStream& raw,
                                std::size_t fold);

/// SHA-256 conditioner: hash `input_block_bits` of raw input into 256-bit
/// output blocks.  For full-entropy output per SP 800-90B the input block
/// must carry at least 2x256 bits of assessed min-entropy — the caller
/// picks input_block_bits = ceil(512 / h_in).
support::BitStream sha256_condition(const support::BitStream& raw,
                                    std::size_t input_block_bits);

/// Rate cost summary of a post-processing configuration.
struct PostProcessStats {
  std::size_t raw_bits = 0;
  std::size_t output_bits = 0;
  double rate() const {
    return raw_bits == 0 ? 0.0
                         : static_cast<double>(output_bits) /
                               static_cast<double>(raw_bits);
  }
};

}  // namespace dhtrng::core
