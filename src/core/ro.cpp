#include "core/ro.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dhtrng::core {

namespace {

double derive_shared_coupling(int stages) {
  // Injection locking / supply coupling is strongest for short fast rings;
  // rolls off roughly with the square of the ring order.
  const double n = static_cast<double>(stages);
  return 1.0 / (1.0 + (n / 4.0) * (n / 4.0));
}

}  // namespace

PhaseRo::PhaseRo(const PhaseRoParams& params, std::uint64_t seed)
    : params_(params), rng_(seed),
      flicker_(params.flicker_sigma_ps / std::sqrt(12.0), 12,
               seed ^ 0x6a09e667f3bcc908ULL) {
  if (params.stages < 2) throw std::invalid_argument("PhaseRo: stages < 2");
  const double n = static_cast<double>(params_.stages);
  // Per-instance process variation: period and duty offsets are frozen at
  // construction (they model mismatch, not noise).
  const double period_nominal = 2.0 * n * params_.stage_delay_ps;
  base_period_ps_ =
      period_nominal * (1.0 + rng_.gaussian(0.0, params_.period_tolerance));
  // Stage-mismatch duty error: independent per-stage offsets accumulate as
  // sqrt(N) in absolute time, so the *relative* duty error goes as
  // 1/sqrt(N) for longer rings.
  duty_ = 0.5 + rng_.gaussian(0.0, params_.duty_sigma / std::sqrt(n));
  duty_ = std::clamp(duty_, 0.2, 0.8);
  coupling_ = params_.shared_coupling >= 0.0
                  ? params_.shared_coupling
                  : derive_shared_coupling(params_.stages);
  initial_phase_ = rng_.uniform();  // power-on phase is arbitrary but fixed
  phase_ = initial_phase_;
  last_flicker_ = flicker_.next();
}

void PhaseRo::advance(double dt_ps, double shared_noise_ps,
                      const noise::PvtScaling& scale, double extra_jitter) {
  const double period = base_period_ps_ * scale.delay;
  // Deterministic rotation.
  double delta_t = dt_ps;
  // White (entropy-bearing) accumulated jitter: kappa * sqrt(dt).
  const double white_sigma = params_.kappa_ps_per_sqrt_ps * std::sqrt(dt_ps) *
                             scale.white_jitter * extra_jitter;
  delta_t += rng_.gaussian(0.0, white_sigma);
  // Flicker phase wander: correlated, low-entropy; we add the *increment*
  // of the flicker process so the walk stays bounded in distribution.
  const double flicker_now = flicker_.next() * scale.correlated_noise;
  delta_t += flicker_now - last_flicker_;
  last_flicker_ = flicker_now;
  // Shared supply displacement, weighted by this ring's coupling.
  delta_t += shared_noise_ps * coupling_ * scale.correlated_noise;

  phase_ += delta_t / period;
  phase_ -= std::floor(phase_);
}

double PhaseRo::edge_distance_ps(const noise::PvtScaling& scale) const {
  const double period = period_ps(scale);
  // Edges at phase 0 and phase duty_ (wrapping at 1).
  const double p = phase_;
  double d = std::min({std::abs(p - 0.0), std::abs(p - duty_),
                       std::abs(p - 1.0)});
  return d * period;
}

sim::NetId build_ring_oscillator(sim::Circuit& circuit,
                                 const std::string& prefix, int stages,
                                 sim::NetId enable, double element_delay_ps) {
  if (stages < 2) throw std::invalid_argument("build_ring_oscillator: stages < 2");
  if (stages % 2 == 0) {
    throw std::invalid_argument(
        "build_ring_oscillator: stages must be odd for an inverting loop");
  }
  // stages inverting elements: 1 NAND (with enable) + (stages-1) inverters.
  std::vector<sim::NetId> nodes;
  nodes.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    nodes.push_back(circuit.add_net(prefix + "_n" + std::to_string(i)));
    // Alternating initial pattern: consistent with every inverter, so the
    // only start-up violation is at the enable NAND and exactly one
    // wavefront circulates (an all-zero start would launch N wavefronts and
    // the ring would "oscillate" at N times its physical frequency).
    circuit.set_initial(nodes.back(), i % 2 == 0);
  }
  const sim::NetId out = nodes.back();
  circuit.add_gate(sim::GateKind::Nand, {enable, out}, nodes[0],
                   element_delay_ps);
  for (int i = 1; i < stages; ++i) {
    circuit.add_gate(sim::GateKind::Inv, {nodes[static_cast<std::size_t>(i) - 1]},
                     nodes[static_cast<std::size_t>(i)], element_delay_ps);
  }
  return out;
}

}  // namespace dhtrng::core
