// Ring-oscillator models.
//
// Two views of the same physical object:
//
//  * PhaseRo — the fast phase-domain model used for bulk bitstream
//    generation.  The oscillator is a phase accumulator advanced once per
//    sampling interval; the advance carries the deterministic increment
//    dt/T plus accumulated white jitter (sigma = kappa*sqrt(dt), the
//    standard white-FM random-walk law implied by the paper's Eq. 1),
//    a flicker component, and the device-wide shared supply noise.
//    Per-instance process variation perturbs period and duty cycle.
//
//  * build_ring_oscillator — the gate-level netlist (enable NAND plus a
//    chain of inverters) for the event-driven simulator, used by tests,
//    examples and the backend-equivalence validation.
//
// Entropy phenomenology captured here (calibrated against paper Table 1):
//  - relative accumulated jitter per sample ~ kappa*sqrt(Ts)/T_ro shrinks
//    as the ring gets longer -> long rings give more structured (rotation-
//    like) bit sequences;
//  - fast short rings couple more strongly into the shared supply/substrate
//    noise and injection-lock to each other, so parallel "independent"
//    rings are less independent -> XOR reduction works less well;
//  - static duty-cycle error from stage mismatch ~ 1/sqrt(N) biases bits.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "noise/flicker.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/circuit.h"
#include "support/rng.h"

namespace dhtrng::core {

struct PhaseRoParams {
  int stages = 3;
  double stage_delay_ps = 400.0;  ///< inverter + routed-net delay per stage
  /// White-jitter accumulation constant at 1 stage-delay reference:
  /// sigma(dt) = kappa_ps_sqrt * sqrt(dt / 1 ps) * 1e-? ... in ps per sqrt(ps).
  double kappa_ps_per_sqrt_ps = 0.035;
  double flicker_sigma_ps = 3.0;      ///< marginal sigma of 1/f phase wander
  double duty_sigma = 0.04;           ///< stage-mismatch duty error at N=1
  double period_tolerance = 0.01;     ///< per-instance period variation
  /// Coupling of the ring into the device-wide shared noise (injection
  /// locking / supply).  Scales like 1/(1 + (N/4)^2): strong for short
  /// fast rings.  Set explicitly if nonzero-default behaviour is unwanted.
  double shared_coupling = -1.0;      ///< -1 = derive from stages
  double edge_width_ps = 25.0;        ///< sampling transition width (Eq. 2)
};

class PhaseRo {
 public:
  PhaseRo(const PhaseRoParams& params, std::uint64_t seed);

  /// Advance simulated time by dt_ps.  `shared_noise_ps` is the common
  /// supply-noise displacement for this step (one value per chip per step);
  /// `scale` applies PVT factors.  `extra_jitter` multiplies the white
  /// component (used by chaotic rings).
  void advance(double dt_ps, double shared_noise_ps,
               const noise::PvtScaling& scale, double extra_jitter = 1.0);

  /// Fractional phase in [0, 1).  Phase 0 is the rising edge.
  double phase() const { return phase_; }

  /// Square-wave level at the current phase (duty-corrected).
  bool level() const { return phase_ < duty_; }

  /// Distance (in ps) from the current phase to the nearest transition
  /// edge of the square wave.
  double edge_distance_ps(const noise::PvtScaling& scale) const;

  /// Nominal oscillation period at the given PVT corner (ps).
  double period_ps(const noise::PvtScaling& scale) const {
    return base_period_ps_ * scale.delay;
  }

  double duty() const { return duty_; }
  int stages() const { return params_.stages; }
  double shared_coupling() const { return coupling_; }
  const PhaseRoParams& params() const { return params_; }

  /// Power-on reset: phase back to the startup value; noise continues.
  void reset() { phase_ = initial_phase_; }

  /// Deterministic phase injection (used by the feedback strategy).
  void inject_phase(double delta) {
    phase_ += delta;
    phase_ -= std::floor(phase_);
  }

 private:
  PhaseRoParams params_;
  double base_period_ps_;
  double duty_;
  double coupling_;
  double initial_phase_;
  double phase_;
  support::Xoshiro256 rng_;
  noise::FlickerNoise flicker_;
  double last_flicker_ = 0.0;
};

/// Gate-level ring oscillator: NAND(en, last) -> inv -> ... -> inv, loop.
/// Returns the id of the ring output net ("<prefix>_r").  `stages` counts
/// the inverting elements including the enable NAND (must be odd and >= 1 is
/// not enough: >= 2 total elements are created for stages >= 2; stages must
/// make the loop inverting, i.e. odd).
sim::NetId build_ring_oscillator(sim::Circuit& circuit,
                                 const std::string& prefix, int stages,
                                 sim::NetId enable, double element_delay_ps);

}  // namespace dhtrng::core
