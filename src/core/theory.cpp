#include "core/theory.h"

#include <algorithm>
#include <cmath>

namespace dhtrng::core::theory {

double xor_expected_value(double mu1, double mu2) {
  return 0.5 - 2.0 * (mu1 - 0.5) * (mu2 - 0.5);
}

double xor_expected_value_n(double mu1, double mu2, std::size_t n) {
  const double prod = (1.0 - 2.0 * mu1) * (1.0 - 2.0 * mu2);
  return 0.5 * (1.0 + std::pow(prod, static_cast<double>(n) / 2.0));
}

double xor_expected_value(const std::vector<double>& mus) {
  // Piling-up lemma: E[XOR] = 1/2 - 1/2 * prod(1 - 2 mu_i)... with sign
  // convention E = 1/2 (1 - prod(1 - 2 mu_i)).
  double prod = 1.0;
  for (double mu : mus) prod *= (1.0 - 2.0 * mu);
  return 0.5 * (1.0 - prod);
}

double randomness_coverage(const std::vector<CoverageTerm>& units) {
  double prod = 1.0;
  for (const CoverageTerm& u : units) {
    const double jitter_term =
        1.0 - 2.0 * u.jitter_probability * u.jitter_width_ps / u.ro_period_ps;
    const double meta_term =
        1.0 - (u.hold_capture_prob +
               2.0 * u.edge_width_ps * 1e-3 * u.osc_frequency_ghz);
    prod *= std::clamp(jitter_term, 0.0, 1.0) * std::clamp(meta_term, 0.0, 1.0);
  }
  return 1.0 - prod;
}

double bernoulli_min_entropy(double p_one) {
  const double p = std::max(p_one, 1.0 - p_one);
  return -std::log2(std::min(std::max(p, 1e-12), 1.0));
}

}  // namespace dhtrng::core::theory
