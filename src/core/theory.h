// The paper's analytical randomness results (Section 3.1, Eqs. 3-5),
// implemented directly so benches and tests can check the simulated
// circuits against the theory.
#pragma once

#include <cstddef>
#include <vector>

namespace dhtrng::core::theory {

/// Eq. (3): expected value of Q1 XOR Q2 for independent bits with expected
/// values mu1, mu2:  E = 1/2 - 2 (mu1 - 1/2)(mu2 - 1/2).
double xor_expected_value(double mu1, double mu2);

/// Eq. (4): expected value of the n-way XOR of independent bit pairs with
/// expected values mu1, mu2:
///   E_n = 1/2 (1 + ((1-2mu1)(1-2mu2))^(n/2)).
double xor_expected_value_n(double mu1, double mu2, std::size_t n);

/// Generic XOR-of-independent-bits bias composition (Piling-up): the
/// expected value of XOR_i b_i where E[b_i] = mu_i.
double xor_expected_value(const std::vector<double>& mus);

/// Parameters of one entropy unit for the randomness-coverage bound.
struct CoverageTerm {
  double jitter_probability;   ///< a   — probability a jitter event occurs
  double jitter_width_ps;      ///< w_i — width of the jitter region
  double ro_period_ps;         ///< T_ro_i
  double hold_capture_prob;    ///< tau — sub-threshold sampling probability
  double edge_width_ps;        ///< eps — transition-edge width
  double osc_frequency_ghz;    ///< f_i — oscillation frequency (1/ps units ok)
};

/// Eq. (5): randomness coverage of n XORed dynamic hybrid entropy units,
///   P_rand = 1 - prod_i (1 - 2 a w_i / T_ro_i) (1 - (tau + 2 eps f_i)).
double randomness_coverage(const std::vector<CoverageTerm>& units);

/// Min-entropy of a Bernoulli(p) bit: -log2(max(p, 1-p)).
double bernoulli_min_entropy(double p_one);

}  // namespace dhtrng::core::theory
