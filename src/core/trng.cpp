#include "core/trng.h"

namespace dhtrng::core {

void TrngSource::generate(support::BitStream& out, std::size_t nbits) {
  out.reserve(out.size() + nbits);
  for (std::size_t i = 0; i < nbits; ++i) out.push_back(next_bit());
}

support::BitStream TrngSource::generate(std::size_t nbits) {
  support::BitStream bs;
  generate(bs, nbits);
  return bs;
}

}  // namespace dhtrng::core
