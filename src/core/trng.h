// Common interface of every random-number generator model in the library:
// the DH-TRNG itself and the re-implemented baselines it is compared
// against in Table 6.  A TrngSource produces one bit per sampling-clock
// cycle and knows its own FPGA resource/activity footprint so the area,
// power and figure-of-merit columns can be derived from the same object
// that generated the bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

#include "fpga/power.h"
#include "sim/circuit.h"
#include "support/bitstream.h"

namespace dhtrng::core {

class TrngSource {
 public:
  virtual ~TrngSource() = default;

  virtual std::string name() const = 0;

  /// One sampled output bit (one sampling-clock cycle).
  virtual bool next_bit() = 0;

  /// Append `nbits` bits to `out` (default: repeated next_bit()).
  virtual void generate(support::BitStream& out, std::size_t nbits);

  /// Convenience wrapper returning a fresh stream.
  support::BitStream generate(std::size_t nbits);

  /// Power-cycle: reset all circuit state (ring phases, registers) to the
  /// power-on values while the physical noise processes keep evolving —
  /// the semantics of the paper's restart test (Section 4.2).
  virtual void restart() = 0;

  /// FPGA resource inventory of the design (LUT / MUX / DFF).
  virtual sim::ResourceCounts resources() const = 0;

  /// Sampling clock in MHz (= output bit rate in Mbps for 1-bit designs).
  virtual double clock_mhz() const = 0;

  /// Output throughput in Mbps (bits per cycle * clock).
  virtual double throughput_mbps() const { return clock_mhz(); }

  /// Switching-activity estimate for the power model.
  virtual fpga::ActivityEstimate activity() const = 0;
};

}  // namespace dhtrng::core
