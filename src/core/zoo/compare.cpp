#include "core/zoo/compare.h"

#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/dhtrng.h"
#include "core/zoo/zoo.h"
#include "fpga/power.h"
#include "fpga/slice_packer.h"
#include "stats/ais31.h"
#include "stats/fips140.h"
#include "stats/sp800_22.h"
#include "stats/sp800_90b.h"
#include "support/bitstream.h"
#include "support/rng.h"

namespace dhtrng::core {

namespace {

struct Entry {
  std::unique_ptr<TrngSource> source;
  std::size_t slices = 0;
};

Entry make_entry(const std::string& arch, const fpga::DeviceModel& device,
                 std::uint64_t seed) {
  if (arch == "dhtrng") {
    DhTrngConfig cfg;
    cfg.device = device;
    cfg.seed = seed;
    auto src = std::make_unique<DhTrng>(cfg);
    const std::size_t slices = src->slice_report().slice_count();
    return {std::move(src), slices};
  }
  if (arch == "neo") {
    NeoTrngConfig cfg;
    cfg.device = device;
    cfg.seed = seed;
    auto src = std::make_unique<NeoTrng>(cfg);
    const std::size_t slices = src->slice_report().slice_count();
    return {std::move(src), slices};
  }
  if (arch == "klein") {
    KleinTrngConfig cfg;
    cfg.device = device;
    cfg.seed = seed;
    auto src = std::make_unique<KleinTrng>(cfg);
    const std::size_t slices = src->slice_report().slice_count();
    return {std::move(src), slices};
  }
  if (arch == "hbn") {
    HbnTrngConfig cfg;
    cfg.device = device;
    cfg.seed = seed;
    auto src = std::make_unique<HbnTrng>(cfg);
    const std::size_t slices = src->slice_report().slice_count();
    return {std::move(src), slices};
  }
  throw std::invalid_argument("unknown architecture: " + arch);
}

}  // namespace

CompareReport compare_architectures(const CompareOptions& options) {
  CompareOptions opt = options;
  if (opt.bits < 20000) {
    throw std::invalid_argument(
        "compare_architectures: bits must be >= 20000");
  }
  if (opt.devices.empty()) {
    opt.devices = {fpga::DeviceModel::artix7(), fpga::DeviceModel::virtex6()};
  }
  if (opt.archs.empty()) {
    opt.archs.push_back("dhtrng");
    for (const std::string& name : zoo_source_names()) {
      opt.archs.push_back(name);
    }
  }

  CompareReport report;
  report.options = opt;
  // Per-entry seeds come off one SplitMix64 in fixed (device, arch)
  // iteration order — the report is a pure function of the options.
  support::SplitMix64 seeder(opt.seed);
  for (const fpga::DeviceModel& device : opt.devices) {
    for (const std::string& arch : opt.archs) {
      Entry entry = make_entry(arch, device, seeder.next());
      TrngSource& src = *entry.source;

      const support::BitStream bits = src.generate(opt.bits);
      const support::BitStream head = bits.slice(0, 20000);

      CompareRow row;
      row.arch = src.name();
      row.device = device.name;
      row.clock_mhz = src.clock_mhz();
      row.throughput_mbps = src.throughput_mbps();
      const sim::ResourceCounts rc = src.resources();
      row.luts = rc.luts;
      row.muxes = rc.muxes;
      row.dffs = rc.dffs;
      row.slices = entry.slices;
      row.power_mw =
          fpga::estimate_power(device, src.activity()).total_w() * 1e3;
      row.min_entropy = stats::sp800_90b::overall_min_entropy(bits);
      for (const auto& r : stats::sp800_22::run_all(bits)) {
        if (!r.applicable) continue;
        ++row.sp800_22_applicable;
        if (r.pass()) ++row.sp800_22_passed;
      }
      row.fips_pass = stats::fips140::power_up_ok(head);
      row.ais31_pass = stats::ais31::t1_monobit(head) &&
                       stats::ais31::t2_poker(head) &&
                       stats::ais31::t3_runs(head) &&
                       stats::ais31::t4_long_run(head) &&
                       stats::ais31::t5_autocorrelation(head);
      report.rows.push_back(std::move(row));
    }
  }
  return report;
}

std::string CompareReport::text() const {
  std::ostringstream out;
  out << "Cross-architecture comparison (Table 6 style)\n"
      << "seed " << options.seed << ", " << options.bits
      << " bits per entry, behavioral backends\n\n";
  out << std::left << std::setw(10) << "device" << std::setw(22) << "arch"
      << std::right << std::setw(9) << "clk MHz" << std::setw(9) << "Mbps"
      << std::setw(6) << "LUT" << std::setw(5) << "MUX" << std::setw(5)
      << "DFF" << std::setw(7) << "slice" << std::setw(8) << "P mW"
      << std::setw(7) << "Hmin" << std::setw(8) << "SP22" << std::setw(6)
      << "FIPS" << std::setw(7) << "AIS31" << std::setw(9) << "FoM"
      << "\n";
  for (const CompareRow& r : rows) {
    out << std::left << std::setw(10) << r.device << std::setw(22) << r.arch
        << std::right << std::fixed << std::setprecision(1) << std::setw(9)
        << r.clock_mhz << std::setw(9) << r.throughput_mbps << std::setw(6)
        << r.luts << std::setw(5) << r.muxes << std::setw(5) << r.dffs
        << std::setw(7) << r.slices << std::setw(8) << std::setprecision(1)
        << r.power_mw << std::setw(7) << std::setprecision(3)
        << r.min_entropy << std::setw(8)
        << (std::to_string(r.sp800_22_passed) + "/" +
            std::to_string(r.sp800_22_applicable))
        << std::setw(6) << (r.fips_pass ? "pass" : "FAIL") << std::setw(7)
        << (r.ais31_pass ? "pass" : "FAIL") << std::setw(9)
        << std::setprecision(3) << r.fom() << "\n";
  }
  return out.str();
}

}  // namespace dhtrng::core
