// Cross-architecture Table-6-style comparison: every zoo architecture plus
// the DH-TRNG itself, characterized per device model from the same
// TrngSource objects that generate the bits — throughput, slice-packed
// area, modeled power, SP 800-90B min-entropy and suite pass rates, and
// the throughput/(area*power) figure of merit the paper's Table 6 argues
// with.  Deterministic under a pinned seed: the report text contains no
// wall times and every per-entry generator seed is derived from
// CompareOptions::seed in a fixed order, so the same options produce the
// identical report byte for byte (the CI artifact / regression contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.h"

namespace dhtrng::core {

struct CompareRow {
  std::string arch;    ///< TrngSource::name() of the entry
  std::string device;  ///< DeviceModel::name
  double clock_mhz = 0.0;
  double throughput_mbps = 0.0;
  std::size_t luts = 0;
  std::size_t muxes = 0;
  std::size_t dffs = 0;
  std::size_t slices = 0;
  double power_mw = 0.0;
  double min_entropy = 0.0;  ///< SP 800-90B overall estimate (per bit)
  int sp800_22_passed = 0;   ///< tests passed at alpha = 0.01
  int sp800_22_applicable = 0;
  bool fips_pass = false;    ///< FIPS 140-2 power-up battery
  bool ais31_pass = false;   ///< AIS-31 T1-T5 on the first 20000 bits
  /// Table 6 figure of merit: Mbps per slice per mW.
  double fom() const {
    const double denom =
        static_cast<double>(slices ? slices : 1) * (power_mw > 0.0 ? power_mw : 1.0);
    return throughput_mbps / denom;
  }
};

struct CompareOptions {
  std::uint64_t seed = 42;
  /// Bits generated and characterized per (architecture, device) entry.
  /// Must be >= 20000 (the FIPS/AIS-31 block size).
  std::size_t bits = 1u << 17;
  /// Device models to sweep; empty selects {artix7, virtex6}.
  std::vector<fpga::DeviceModel> devices;
  /// Architectures by name ("dhtrng" plus zoo_source_names()); empty
  /// selects all of them.
  std::vector<std::string> archs;
};

struct CompareReport {
  CompareOptions options;
  std::vector<CompareRow> rows;
  /// The rendered table (deterministic; see header comment).
  std::string text() const;
};

/// Throws std::invalid_argument on an unknown architecture name or
/// `bits` < 20000.
CompareReport compare_architectures(const CompareOptions& options = {});

}  // namespace dhtrng::core
