#include "core/zoo/hbn_trng.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/rng.h"
#include "support/special_functions.h"

namespace dhtrng::core {

namespace {

// +-6% node-delay heterogeneity, deterministic in the node index.  The
// spread is what keeps the autonomous network from settling into a
// periodic travelling-wave mode (Rosin et al. attribute the broadband
// dynamics to exactly this delay disorder).
double node_skew(int i) { return 1.0 + 0.02 * ((i % 7) - 3); }

bool is_xnor_node(int i, int nodes) { return i == 0 || i == nodes / 2; }

int tap_index(int t, int nodes, int taps) {
  // Offset by one so the XNOR bootstrap nodes themselves are not sampled.
  return (t * nodes / taps + 1) % nodes;
}

std::vector<fpga::PackGroup> hbn_pack_groups(int nodes, int taps) {
  return {
      fpga::PackGroup{"hbn-core", static_cast<std::size_t>(nodes), 0, 0},
      fpga::PackGroup{"hbn-sampler", 1, 0,
                      static_cast<std::size_t>(taps) + 1},
  };
}

}  // namespace

HbnTrngNetlist build_hbn_trng_netlist(const fpga::DeviceModel& device,
                                      double clock_mhz, int nodes,
                                      int taps) {
  HbnTrngNetlist n;
  sim::Circuit& c = n.circuit;

  n.clock_net = c.add_net("clk");
  c.add_clock(n.clock_net, 1e6 / clock_mhz);

  // Autonomous core: node i's gate reads its ring neighbours and drives
  // net n<i>.  All nets power up at 0; the two XNOR nodes then output 1,
  // which launches the transition fronts that the delay disorder breaks
  // into chaos.
  const double xor_delay = device.lut_delay_ps + 0.45 * device.net_delay_ps;
  std::vector<sim::NetId> node_nets;
  node_nets.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    node_nets.push_back(c.add_net("n" + std::to_string(i)));
  }
  for (int i = 0; i < nodes; ++i) {
    const sim::NetId prev = node_nets[static_cast<std::size_t>(
        (i + nodes - 1) % nodes)];
    const sim::NetId next =
        node_nets[static_cast<std::size_t>((i + 1) % nodes)];
    c.add_gate(is_xnor_node(i, nodes) ? sim::GateKind::Xnor
                                      : sim::GateKind::Xor,
               {prev, next}, node_nets[static_cast<std::size_t>(i)],
               xor_delay * node_skew(i));
  }

  // Clocked boundary: sample `taps` spread nodes, XOR, register.
  const sim::DffTiming ff = device.dff_timing();
  std::vector<sim::NetId> q;
  for (int t = 0; t < taps; ++t) {
    const sim::NetId tapped =
        node_nets[static_cast<std::size_t>(tap_index(t, nodes, taps))];
    const sim::NetId qn = c.add_net("q" + std::to_string(t));
    n.tap_dffs.push_back(c.add_dff(n.clock_net, tapped, qn, ff));
    q.push_back(qn);
  }
  const double tree_delay = device.lut_delay_ps + 0.3 * device.net_delay_ps;
  const sim::NetId xnet = c.add_net("xtap");
  c.add_gate(sim::GateKind::Xor, q, xnet, tree_delay);
  n.out_net = c.add_net("out");
  n.out_dff = c.add_dff(n.clock_net, xnet, n.out_net, ff);

  n.pack_groups = hbn_pack_groups(nodes, taps);
  return n;
}

HbnTrng::HbnTrng(HbnTrngConfig config)
    : config_(config),
      clock_mhz_(config.clock_mhz > 0.0
                     ? config.clock_mhz
                     : std::min(config.device.max_clock_mhz(1, config.pvt),
                                config.device.pll_max_mhz)),
      dt_ps_(1e6 / clock_mhz_),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0xb5297a4d3f84d5b5ULL),
      meta_rng_(config.seed ^ 0x0f0f0f0f0f0f0f0fULL) {
  if (config_.backend == Backend::Fast) {
    support::SplitMix64 seeder(config_.seed);
    nodes_.reserve(static_cast<std::size_t>(config_.nodes));
    for (int i = 0; i < config_.nodes; ++i) {
      ChaoticRingParams p;
      p.xor_delay_ps = (config_.device.lut_delay_ps +
                        0.45 * config_.device.net_delay_ps) *
                       node_skew(i);
      p.kappa_ps_per_sqrt_ps =
          0.035 * config_.device.gate_jitter.white_sigma_ps / 1.2;
      p.flicker_sigma_ps = 3.0;
      // A network node sees chaotic drive from both sides all the time —
      // stronger modulation than the DH-TRNG's edge-driven central rings.
      p.mode_mod_depth = 0.5;
      p.chaos_gain = 10.0;
      nodes_.emplace_back(p, seeder.next());
    }
  } else {
    netlist_ = std::make_unique<HbnTrngNetlist>(build_hbn_trng_netlist(
        config_.device, clock_mhz_, config_.nodes, config_.taps));
    rebuild_simulator(config_.seed);
  }
}

void HbnTrng::rebuild_simulator(std::uint64_t seed) {
  sim::SimConfig sc;
  sc.seed = seed;
  sc.gate_jitter = config_.device.gate_jitter;
  sc.scaling = scale_;
  sc.noise_mode = config_.noise_mode;
  sim_ = std::make_unique<sim::Simulator>(netlist_->circuit, sc);
  sim_->record_dff(netlist_->out_dff);
  sample_cursor_ = 0;
}

std::string HbnTrng::name() const {
  return "HBN(" + std::to_string(config_.nodes) + "n/" +
         std::to_string(config_.taps) + "t)";
}

bool HbnTrng::next_bit() {
  if (config_.backend == Backend::GateLevel) {
    const auto& samples = sim_->samples(netlist_->out_dff);
    while (samples.size() <= sample_cursor_) {
      sim_->run_until(sim_->now() + dt_ps_);
    }
    return samples[sample_cursor_++] != 0;
  }
  return next_bit_fast();
}

bool HbnTrng::next_bit_fast() {
  const double shared = shared_noise_.step();
  // Snapshot all phases first: the network update is simultaneous (every
  // node reads its neighbours' pre-step state through its gate delay).
  std::vector<double> phases;
  phases.reserve(nodes_.size());
  for (const ChaoticRing& node : nodes_) phases.push_back(node.phase());
  const int nn = config_.nodes;
  for (int i = 0; i < nn; ++i) {
    nodes_[static_cast<std::size_t>(i)].advance(
        dt_ps_, phases[static_cast<std::size_t>((i + nn - 1) % nn)],
        phases[static_cast<std::size_t>((i + 1) % nn)],
        /*feedback_bit=*/false, /*coupling_enabled=*/true,
        /*feedback_enabled=*/false, shared, scale_);
  }
  bool out = false;
  for (int t = 0; t < config_.taps; ++t) {
    const ChaoticRing& node =
        nodes_[static_cast<std::size_t>(tap_index(t, nn, config_.taps))];
    bool bit = node.level();
    // Tap-DFF aperture (Eq. 2) near a node transition.
    const double dist = node.ring().edge_distance_ps(scale_);
    const double sigma = config_.device.ff_aperture_sigma_ps;
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      if (!meta_rng_.bernoulli(p_keep)) bit = !bit;
    }
    out ^= bit;
  }
  return out;
}

void HbnTrng::restart() {
  ++restart_count_;
  if (config_.backend == Backend::Fast) {
    for (ChaoticRing& node : nodes_) node.reset();
  } else {
    support::SplitMix64 mix(config_.seed + restart_count_);
    rebuild_simulator(mix.next());
  }
}

sim::ResourceCounts HbnTrng::resources() const {
  sim::ResourceCounts rc;
  for (const fpga::PackGroup& g :
       hbn_pack_groups(config_.nodes, config_.taps)) {
    rc.luts += g.luts;
    rc.muxes += g.muxes;
    rc.dffs += g.dffs;
  }
  return rc;
}

fpga::SliceReport HbnTrng::slice_report() const {
  const std::vector<fpga::PackGroup> groups =
      netlist_ ? netlist_->pack_groups
               : hbn_pack_groups(config_.nodes, config_.taps);
  return fpga::SlicePacker{}.pack(groups);
}

fpga::ActivityEstimate HbnTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = clock_mhz_;
  a.flip_flops = static_cast<std::size_t>(config_.taps) + 1;
  // Every node transitions at roughly the 2-XOR loop rate — the autonomous
  // core is the power story of this design (all nodes, all the time).
  const double loop_period_ps = 2.0 * 2.0 *
                                (config_.device.lut_delay_ps +
                                 0.45 * config_.device.net_delay_ps) *
                                scale_.delay;
  double total = static_cast<double>(config_.nodes) * 2.0 * 1e3 /
                 loop_period_ps;
  total += static_cast<double>(a.flip_flops + 1) * clock_mhz_ * 0.5e-3;
  a.logic_toggle_ghz = total;
  return a;
}

}  // namespace dhtrng::core
