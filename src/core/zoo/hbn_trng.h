// Rosin-style hybrid Boolean network generator (after Rosin, Rontani &
// Gauthier, "Ultra-Fast Physical Generation of Random Numbers Using Hybrid
// Boolean Networks" — PAPERS.md).  An autonomous network of XOR nodes wired
// in a ring executes unclocked Boolean dynamics: every node continuously
// evaluates the XOR of its two neighbours through its own gate delay, and
// because the delays are heterogeneous the network never settles — it
// performs broadband chaotic transitions whose bandwidth is set by the gate
// delay, not by a sampling clock.  Two nodes are XNORs so the all-zeros /
// all-ones states are not fixed points (an XNOR of equal inputs is 1,
// which boots the network from the reset state).  The "hybrid" part is the
// clocked boundary: a handful of nodes are sampled into DFFs at the system
// clock and XOR-ed into one output bit per cycle — the asynchronous core
// runs orders of magnitude faster than the clock, so consecutive samples
// decorrelate within a cycle and the design yields 1 bit/cycle at whatever
// clock the fabric carries.  That makes it the highest-throughput,
// smallest-area entry in the zoo's Table-6-style comparison.
//
// Backends: the Fast model runs one ChaoticRing per node, each advanced
// with its neighbours' phases as the chaotic mode-switching drive (the same
// machinery that models the DH-TRNG's central XOR rings); the GateLevel
// backend elaborates the actual XOR/XNOR net through the event simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/chaotic_ring.h"
#include "core/dhtrng.h"  // core::Backend
#include "core/trng.h"
#include "fpga/device.h"
#include "fpga/slice_packer.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/simulator.h"

namespace dhtrng::core {

/// Gate-level netlist: `nodes` XOR/XNOR gates in a ring (net n<i> driven by
/// the gate reading n<i-1> and n<i+1>), `taps` sampling DFFs on spread
/// nodes, an XOR reduction and the output register.
struct HbnTrngNetlist {
  sim::Circuit circuit;
  std::vector<std::size_t> tap_dffs;
  std::size_t out_dff = 0;
  sim::NetId out_net = sim::kInvalidNet;
  sim::NetId clock_net = sim::kInvalidNet;
  std::vector<fpga::PackGroup> pack_groups;
};

HbnTrngNetlist build_hbn_trng_netlist(const fpga::DeviceModel& device,
                                      double clock_mhz, int nodes = 16,
                                      int taps = 4);

struct HbnTrngConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  Backend backend = Backend::Fast;
  /// XOR nodes in the autonomous ring (nodes 0 and nodes/2 are XNORs).
  int nodes = 16;
  /// Sampled nodes (DFF taps), spread evenly around the ring.
  int taps = 4;
  /// Sampling clock in MHz; 0 selects the device maximum over the 1-LUT
  /// tap-to-output path, capped at the PLL limit — the design's point is
  /// that the asynchronous core imposes no clock ceiling of its own.
  double clock_mhz = 0.0;
  /// Gate-level backend noise fidelity (Fast backend ignores it).
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
};

class HbnTrng final : public TrngSource {
 public:
  explicit HbnTrng(HbnTrngConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return clock_mhz_; }
  fpga::ActivityEstimate activity() const override;

  fpga::SliceReport slice_report() const;

  const HbnTrngConfig& config() const { return config_; }

  /// Gate-level backend only: the underlying simulator.
  const sim::Simulator* simulator() const { return sim_.get(); }

 private:
  bool next_bit_fast();
  void rebuild_simulator(std::uint64_t seed);

  HbnTrngConfig config_;
  double clock_mhz_;
  double dt_ps_;
  noise::PvtScaling scale_;

  // Fast backend state.
  std::vector<ChaoticRing> nodes_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;

  // Gate-level backend state.
  std::unique_ptr<HbnTrngNetlist> netlist_;
  std::unique_ptr<sim::Simulator> sim_;
  std::size_t sample_cursor_ = 0;
  std::uint64_t restart_count_ = 0;
};

}  // namespace dhtrng::core
