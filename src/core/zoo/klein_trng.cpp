#include "core/zoo/klein_trng.h"

#include <string>

#include "support/rng.h"
#include "support/special_functions.h"

namespace dhtrng::core {

namespace {

int ring_length(int r) { return kKleinRingLengths[r % 4]; }

// +-1.3% element mismatch, deterministic in the ring index (same role as
// the XorRo netlist's skew: keep equal-length rings from locking in the
// noiseless-mean simulator).
double ring_skew(int r) { return 1.0 + 0.013 * ((r % 5) - 2); }

std::size_t xor_tree_luts(int rings) {
  std::size_t luts = 0;
  std::size_t fan = static_cast<std::size_t>(rings);
  while (fan > 1) {
    const std::size_t gates = (fan + 5) / 6;
    luts += gates;
    fan = gates;
  }
  return luts;
}

std::vector<fpga::PackGroup> klein_pack_groups(int rings) {
  std::size_t ring_luts = 0;
  for (int r = 0; r < rings; ++r) {
    ring_luts += static_cast<std::size_t>(ring_length(r));
  }
  return {
      fpga::PackGroup{"klein-rings", ring_luts, 0, 0},
      fpga::PackGroup{"klein-sampler", xor_tree_luts(rings), 0,
                      static_cast<std::size_t>(rings) + 1},
      // XOR fold: accumulator LUT + folded-bit register + phase toggle.
      fpga::PackGroup{"klein-fold", 1, 0, 2},
  };
}

}  // namespace

KleinTrngNetlist build_klein_trng_netlist(const fpga::DeviceModel& device,
                                          double clock_mhz, int rings) {
  KleinTrngNetlist n;
  sim::Circuit& c = n.circuit;

  const sim::NetId en = c.add_net("en");
  c.set_initial(en, true);
  n.clock_net = c.add_net("clk");
  c.add_clock(n.clock_net, 1e6 / clock_mhz);

  const double element_delay =
      device.lut_delay_ps + 0.35 * device.net_delay_ps;
  const sim::DffTiming ff = device.dff_timing();

  std::vector<sim::NetId> q;
  for (int r = 0; r < rings; ++r) {
    const sim::NetId ring = build_ring_oscillator(
        c, "ro" + std::to_string(r), ring_length(r), en,
        element_delay * ring_skew(r));
    const sim::NetId qn = c.add_net("q" + std::to_string(r));
    n.sampler_dffs.push_back(c.add_dff(n.clock_net, ring, qn, ff));
    q.push_back(qn);
  }

  // XOR reduction with LUT6s (same shape as build_xor_ro_netlist).
  const double tree_delay = device.lut_delay_ps + 0.3 * device.net_delay_ps;
  int level = 0;
  while (q.size() > 1) {
    std::vector<sim::NetId> next;
    for (std::size_t i = 0; i < q.size(); i += 6) {
      const std::size_t take = std::min<std::size_t>(6, q.size() - i);
      if (take == 1) {
        next.push_back(q[i]);
        continue;
      }
      const sim::NetId out = c.add_net("xt" + std::to_string(level) + "_" +
                                       std::to_string(i / 6));
      c.add_gate(
          sim::GateKind::Xor,
          std::vector<sim::NetId>(q.begin() + static_cast<long>(i),
                                  q.begin() + static_cast<long>(i + take)),
          out, tree_delay);
      next.push_back(out);
    }
    q = std::move(next);
    ++level;
  }

  n.out_net = c.add_net("raw");
  n.out_dff = c.add_dff(n.clock_net, q.front(), n.out_net, ff);
  n.pack_groups = klein_pack_groups(rings);
  return n;
}

KleinTrng::KleinTrng(KleinTrngConfig config)
    : config_(config),
      dt_ps_(1e6 / config.clock_mhz),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0x9e3779b97f4a7c15ULL),
      meta_rng_(config.seed ^ 0x0f0f0f0f0f0f0f0fULL) {
  if (config_.backend == Backend::Fast) {
    support::SplitMix64 seeder(config_.seed);
    rings_.reserve(static_cast<std::size_t>(config_.rings));
    for (int r = 0; r < config_.rings; ++r) {
      PhaseRoParams p;
      p.stages = ring_length(r);
      p.stage_delay_ps = (config_.device.lut_delay_ps +
                          0.35 * config_.device.net_delay_ps) *
                         ring_skew(r);
      p.kappa_ps_per_sqrt_ps =
          0.035 * config_.device.gate_jitter.white_sigma_ps / 1.2;
      p.flicker_sigma_ps = 3.0;
      p.period_tolerance = 0.04;
      rings_.emplace_back(p, seeder.next());
    }
  } else {
    netlist_ = std::make_unique<KleinTrngNetlist>(build_klein_trng_netlist(
        config_.device, config_.clock_mhz, config_.rings));
    rebuild_simulator(config_.seed);
  }
}

void KleinTrng::rebuild_simulator(std::uint64_t seed) {
  sim::SimConfig sc;
  sc.seed = seed;
  sc.gate_jitter = config_.device.gate_jitter;
  sc.scaling = scale_;
  sc.noise_mode = config_.noise_mode;
  sim_ = std::make_unique<sim::Simulator>(netlist_->circuit, sc);
  sim_->record_dff(netlist_->out_dff);
  sample_cursor_ = 0;
}

std::string KleinTrng::name() const {
  std::string n = "Klein-RO(x" + std::to_string(config_.rings) + ")";
  if (!config_.raw && config_.fold > 1) {
    n += "/fold" + std::to_string(config_.fold);
  }
  return n;
}

bool KleinTrng::raw_bit() {
  if (config_.backend == Backend::GateLevel) {
    const auto& samples = sim_->samples(netlist_->out_dff);
    while (samples.size() <= sample_cursor_) {
      sim_->run_until(sim_->now() + dt_ps_);
    }
    return samples[sample_cursor_++] != 0;
  }
  const double shared = shared_noise_.step();
  bool out = false;
  for (PhaseRo& ring : rings_) {
    ring.advance(dt_ps_, shared, scale_);
    bool bit = ring.level();
    // Sampler-DFF aperture (Eq. 2) near a ring transition.
    const double dist = ring.edge_distance_ps(scale_);
    const double sigma = config_.device.ff_aperture_sigma_ps;
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      if (!meta_rng_.bernoulli(p_keep)) bit = !bit;
    }
    out ^= bit;
  }
  return out;
}

bool KleinTrng::next_bit() {
  if (config_.raw) return raw_bit();
  bool out = false;
  for (int i = 0; i < config_.fold; ++i) out ^= raw_bit();
  return out;
}

void KleinTrng::restart() {
  ++restart_count_;
  if (config_.backend == Backend::Fast) {
    for (PhaseRo& ring : rings_) ring.reset();
  } else {
    support::SplitMix64 mix(config_.seed + restart_count_);
    rebuild_simulator(mix.next());
  }
}

sim::ResourceCounts KleinTrng::resources() const {
  sim::ResourceCounts rc;
  for (const fpga::PackGroup& g : klein_pack_groups(config_.rings)) {
    rc.luts += g.luts;
    rc.muxes += g.muxes;
    rc.dffs += g.dffs;
  }
  return rc;
}

fpga::SliceReport KleinTrng::slice_report() const {
  const std::vector<fpga::PackGroup> groups =
      netlist_ ? netlist_->pack_groups : klein_pack_groups(config_.rings);
  return fpga::SlicePacker{}.pack(groups);
}

fpga::ActivityEstimate KleinTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.clock_mhz;
  a.flip_flops = static_cast<std::size_t>(config_.rings) + 3;
  double total = 0.0;
  for (int r = 0; r < config_.rings; ++r) {
    const double len = static_cast<double>(ring_length(r));
    const double period_ps = 2.0 * len *
                             (config_.device.lut_delay_ps +
                              0.35 * config_.device.net_delay_ps) *
                             ring_skew(r) * scale_.delay;
    total += 2.0 * len * 1e3 / period_ps;
  }
  total += static_cast<double>(a.flip_flops + xor_tree_luts(config_.rings)) *
           config_.clock_mhz * 0.5e-3;
  a.logic_toggle_ghz = total;
  return a;
}

}  // namespace dhtrng::core
