// Klein-style high-throughput RO sampler (after Klein et al., "Design and
// Implementation of a High Quality and High Throughput TRNG in FPGA" —
// PAPERS.md).  A bank of short free-running ring oscillators is sampled at
// a fast system clock, XOR-reduced, and lightly post-processed by XOR-
// folding consecutive samples — trading half the sample rate for the
// squared-bias suppression that lets the design pass the batteries at
// clocks where a single RO sample would still be structured.  Throughput
// comes from clocking the sampler near the fabric limit rather than from
// waiting out full jitter accumulation, which is exactly the design point
// the DH-TRNG paper's Table 6 positions itself against.
//
// Same dual-backend split as DhTrng/NeoTrng: the Fast backend runs one
// PhaseRo per ring; the GateLevel backend elaborates
// build_klein_trng_netlist through the event simulator.  The XOR fold is
// behavioral in both backends (it is one LUT + one FF of clocked logic on
// the raw sample stream; the backend swaps only the entropy source).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dhtrng.h"  // core::Backend
#include "core/ro.h"
#include "core/trng.h"
#include "fpga/device.h"
#include "fpga/slice_packer.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/simulator.h"

namespace dhtrng::core {

/// Gate-level netlist: ring bank + per-ring sampler DFF + XOR6 reduction
/// tree + raw output register.  The XOR fold stage is accounted in
/// `pack_groups` ("klein-fold") but runs behaviorally.
struct KleinTrngNetlist {
  sim::Circuit circuit;
  std::vector<std::size_t> sampler_dffs;
  std::size_t out_dff = 0;
  sim::NetId out_net = sim::kInvalidNet;
  sim::NetId clock_net = sim::kInvalidNet;
  std::vector<fpga::PackGroup> pack_groups;
};

KleinTrngNetlist build_klein_trng_netlist(const fpga::DeviceModel& device,
                                          double clock_mhz, int rings = 16);

struct KleinTrngConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  Backend backend = Backend::Fast;
  /// Parallel rings in the bank.  Ring r has kKleinRingLengths[r % 4]
  /// inverting elements — mixed short lengths so nominally related
  /// frequencies do not lock.
  int rings = 16;
  /// Sampling clock; Klein's design point is "as fast as the fabric
  /// carries the XOR reduction", i.e. a couple hundred MHz.
  double clock_mhz = 200.0;
  /// XOR-fold factor: output bit = XOR of `fold` consecutive raw samples
  /// (>= 1; 1 disables folding).  Output rate = clock / fold.
  int fold = 2;
  /// Emit raw (unfolded) samples — differential-battery hook.
  bool raw = false;
  /// Gate-level backend noise fidelity (Fast backend ignores it).
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
};

/// Mixed ring lengths of the bank (inverting elements, all odd).
inline constexpr int kKleinRingLengths[4] = {3, 5, 7, 9};

class KleinTrng final : public TrngSource {
 public:
  explicit KleinTrng(KleinTrngConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  double throughput_mbps() const override {
    return config_.raw ? config_.clock_mhz
                       : config_.clock_mhz / config_.fold;
  }
  fpga::ActivityEstimate activity() const override;

  fpga::SliceReport slice_report() const;

  const KleinTrngConfig& config() const { return config_; }

  /// Gate-level backend only: the underlying simulator.
  const sim::Simulator* simulator() const { return sim_.get(); }

 private:
  bool raw_bit();
  void rebuild_simulator(std::uint64_t seed);

  KleinTrngConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;

  // Fast backend state.
  std::vector<PhaseRo> rings_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;

  // Gate-level backend state.
  std::unique_ptr<KleinTrngNetlist> netlist_;
  std::unique_ptr<sim::Simulator> sim_;
  std::size_t sample_cursor_ = 0;
  std::uint64_t restart_count_ = 0;
};

}  // namespace dhtrng::core
