#include "core/zoo/neo_trng.h"

#include <bit>
#include <string>

#include "support/rng.h"
#include "support/special_functions.h"

namespace dhtrng::core {

namespace {

// Post-processing inventory, accounted in area/power but not elaborated as
// simulator gates (see NeoTrngNetlist doc): von Neumann pair register
// (2 FF) + phase toggle (1 FF) + valid decode (1 LUT); LFSR state (8 FF) +
// feedback XOR (1 LUT); 6-bit fold counter (6 FF, 2 LUTs of increment
// logic) + byte-ready strobe (1 LUT).
constexpr std::size_t kPostLuts = 5;
constexpr std::size_t kPostDffs = 17;

std::size_t cell_chain_length(const NeoTrngConfig& cfg, int cell) {
  return static_cast<std::size_t>(cfg.chain_base + cfg.chain_step * cell);
}

std::vector<fpga::PackGroup> neo_pack_groups(int cells, int chain_base,
                                             int chain_step) {
  std::vector<fpga::PackGroup> groups;
  for (int i = 0; i < cells; ++i) {
    const std::size_t len =
        static_cast<std::size_t>(chain_base + chain_step * i);
    // Chain: enable NAND + (len-1) inverters + len decoupling latches
    // (latches occupy LUT/latch sites) = 2*len LUT sites; 2 sync DFFs.
    groups.push_back(fpga::PackGroup{"neo-cell" + std::to_string(i), 2 * len,
                                     0, 2});
  }
  groups.push_back(fpga::PackGroup{"neo-combine", 1, 0, 1});
  groups.push_back(fpga::PackGroup{"neo-postproc", kPostLuts, 0, kPostDffs});
  return groups;
}

}  // namespace

support::BitStream neo_von_neumann(const support::BitStream& raw,
                                   VonNeumannStats* stats) {
  support::BitStream out;
  VonNeumannStats local;
  for (std::size_t i = 0; i + 1 < raw.size(); i += 2) {
    const bool first = raw[i];
    const bool second = raw[i + 1];
    ++local.pairs;
    if (first != second) {
      ++local.accepted;
      out.push_back(second);  // 01 -> 1 (rising edge), 10 -> 0 (falling)
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::optional<std::uint8_t> NeoLfsrCombiner::feed(bool bit) {
  const bool feedback =
      (std::popcount(static_cast<unsigned>(state_ & kTaps)) & 1) != 0;
  state_ = static_cast<std::uint8_t>((state_ << 1) |
                                     ((feedback != bit) ? 1u : 0u));
  if (++fed_ < kBitsPerByte) return std::nullopt;
  fed_ = 0;
  return state_;
}

NeoTrngNetlist build_neo_trng_netlist(const fpga::DeviceModel& device,
                                      double clock_mhz, int cells,
                                      int chain_base, int chain_step) {
  NeoTrngNetlist n;
  sim::Circuit& c = n.circuit;

  const sim::NetId en = c.add_net("en");
  c.set_initial(en, true);
  n.clock_net = c.add_net("clk");
  c.add_clock(n.clock_net, 1e6 / clock_mhz);

  const double element_delay =
      device.lut_delay_ps + 0.35 * device.net_delay_ps;
  const sim::DffTiming ff = device.dff_timing();

  std::vector<sim::NetId> synced;
  for (int i = 0; i < cells; ++i) {
    const std::string prefix = "cell" + std::to_string(i);
    const int len = chain_base + chain_step * i;
    // +-1.3% per-cell element mismatch, deterministic in the cell index —
    // keeps nominally related chain frequencies from locking in the
    // (noiseless-mean) simulator the way real process spread would.
    const double skew = 1.0 + 0.013 * ((i % 5) - 2);
    // Inverting chain with a decoupling latch after every stage: NAND(en)
    // then alternating latch (BUF) / inverter elements.  `len` counts the
    // inverting elements, so the loop inverts iff len is odd.
    sim::NetId prev = c.add_net(prefix + "_n0");
    const sim::NetId first = prev;
    const sim::NetId ring = c.add_net(prefix + "_r");
    for (int s = 1; s < 2 * len; ++s) {
      const sim::NetId next =
          s == 2 * len - 1 ? ring : c.add_net(prefix + "_n" + std::to_string(s));
      // Odd positions are the latches (delay-equivalent BUFs), even
      // positions the inverters.
      c.add_gate(s % 2 == 1 ? sim::GateKind::Buf : sim::GateKind::Inv,
                 {prev}, next, element_delay * skew);
      prev = next;
    }
    c.add_gate(sim::GateKind::Nand, {en, ring}, first, element_delay * skew);

    // Two-stage synchronizer into the sampling clock domain.
    const sim::NetId s0 = c.add_net(prefix + "_s0");
    const sim::NetId s1 = c.add_net(prefix + "_s1");
    n.sync_dffs.push_back(c.add_dff(n.clock_net, ring, s0, ff));
    n.sync_dffs.push_back(c.add_dff(n.clock_net, s0, s1, ff));
    synced.push_back(s1);
  }

  // XOR combine (cells <= 6 fits one LUT6) and raw-bit register.
  const double tree_delay = device.lut_delay_ps + device.net_delay_ps;
  const sim::NetId xnet = c.add_net("xcomb");
  c.add_gate(sim::GateKind::Xor, synced, xnet, tree_delay);
  n.out_net = c.add_net("raw");
  n.out_dff = c.add_dff(n.clock_net, xnet, n.out_net, ff);

  n.pack_groups = neo_pack_groups(cells, chain_base, chain_step);
  return n;
}

NeoTrng::NeoTrng(NeoTrngConfig config)
    : config_(config),
      dt_ps_(1e6 / config.clock_mhz),
      scale_(config.device.scaling(config.pvt)),
      shared_noise_(config.device.gate_jitter.correlated_sigma_ps * 2.0,
                    config.seed ^ 0x5eedfacecafe1234ULL),
      meta_rng_(config.seed ^ 0x0f0f0f0f0f0f0f0fULL) {
  if (config_.backend == Backend::Fast) {
    support::SplitMix64 seeder(config_.seed);
    cells_.reserve(static_cast<std::size_t>(config_.cells));
    for (int i = 0; i < config_.cells; ++i) {
      PhaseRoParams p;
      p.stages = static_cast<int>(cell_chain_length(config_, i));
      // Each inverting stage carries its decoupling latch, so one "stage"
      // of the phase model is two fabric elements deep — matches the
      // gate-level chain period of 2*len*(2*element_delay).
      p.stage_delay_ps =
          2.0 * (config_.device.lut_delay_ps +
                 0.35 * config_.device.net_delay_ps);
      p.kappa_ps_per_sqrt_ps =
          0.035 * config_.device.gate_jitter.white_sigma_ps / 1.2;
      p.flicker_sigma_ps = 3.0;
      // The latches decouple the chain from the shared supply: the jitter
      // each stage accumulates is re-timed locally instead of riding the
      // rail — neoTRNG's design argument, modeled as near-zero coupling.
      p.shared_coupling = 0.05;
      cells_.emplace_back(p, seeder.next());
    }
  } else {
    netlist_ = std::make_unique<NeoTrngNetlist>(
        build_neo_trng_netlist(config_.device, config_.clock_mhz,
                               config_.cells, config_.chain_base,
                               config_.chain_step));
    rebuild_simulator(config_.seed);
  }
}

void NeoTrng::rebuild_simulator(std::uint64_t seed) {
  sim::SimConfig sc;
  sc.seed = seed;
  sc.gate_jitter = config_.device.gate_jitter;
  sc.scaling = scale_;
  sc.noise_mode = config_.noise_mode;
  sim_ = std::make_unique<sim::Simulator>(netlist_->circuit, sc);
  sim_->record_dff(netlist_->out_dff);
  sample_cursor_ = 0;
}

std::string NeoTrng::name() const {
  return "neoTRNG(" + std::to_string(config_.cells) + "x" +
         std::to_string(config_.chain_base) + "+" +
         std::to_string(config_.chain_step) + ")" +
         (config_.raw ? "/raw" : "");
}

bool NeoTrng::raw_bit() {
  if (config_.backend == Backend::GateLevel) {
    const auto& samples = sim_->samples(netlist_->out_dff);
    while (samples.size() <= sample_cursor_) {
      sim_->run_until(sim_->now() + dt_ps_);
    }
    return samples[sample_cursor_++] != 0;
  }
  const double shared = shared_noise_.step();
  bool out = false;
  for (PhaseRo& cell : cells_) {
    cell.advance(dt_ps_, shared, scale_);
    bool bit = cell.level();
    // Synchronizer aperture (Eq. 2) on samples landing near a transition.
    const double dist = cell.edge_distance_ps(scale_);
    const double sigma = config_.device.ff_aperture_sigma_ps;
    if (dist < 4.0 * sigma) {
      const double p_keep = support::normal_cdf(dist / sigma);
      if (!meta_rng_.bernoulli(p_keep)) bit = !bit;
    }
    out ^= bit;
  }
  return out;
}

bool NeoTrng::next_bit() {
  if (config_.raw) return raw_bit();
  while (byte_bits_left_ == 0) {
    // Fill the von Neumann pair, then run acceptance and the combiner.
    const bool sample = raw_bit();
    if (!have_first_) {
      pair_first_ = sample;
      have_first_ = true;
      continue;
    }
    have_first_ = false;
    ++vn_stats_.pairs;
    if (pair_first_ == sample) continue;
    ++vn_stats_.accepted;
    if (const auto byte = combiner_.feed(sample)) {
      byte_ = *byte;
      byte_bits_left_ = 8;
    }
  }
  --byte_bits_left_;
  return ((byte_ >> byte_bits_left_) & 1u) != 0;  // MSB first
}

void NeoTrng::restart() {
  ++restart_count_;
  if (config_.backend == Backend::Fast) {
    for (PhaseRo& cell : cells_) cell.reset();
  } else {
    // Power cycle: identical netlist, fresh noise continuation.
    support::SplitMix64 mix(config_.seed + restart_count_);
    rebuild_simulator(mix.next());
  }
  // The extractor and combiner registers reset with the fabric.
  vn_stats_ = {};
  combiner_.reset();
  have_first_ = false;
  byte_bits_left_ = 0;
}

sim::ResourceCounts NeoTrng::resources() const {
  if (netlist_) {
    sim::ResourceCounts rc = netlist_->circuit.resources();
    rc.luts += kPostLuts;
    rc.dffs += kPostDffs;
    return rc;
  }
  sim::ResourceCounts rc;
  for (int i = 0; i < config_.cells; ++i) {
    rc.luts += 2 * cell_chain_length(config_, i);
  }
  rc.luts += 1 + kPostLuts;  // XOR combine + post-processing
  rc.dffs = 2 * static_cast<std::size_t>(config_.cells) + 1 + kPostDffs;
  return rc;
}

fpga::SliceReport NeoTrng::slice_report() const {
  const std::vector<fpga::PackGroup> groups =
      netlist_ ? netlist_->pack_groups
               : neo_pack_groups(config_.cells, config_.chain_base,
                                 config_.chain_step);
  return fpga::SlicePacker{}.pack(groups);
}

fpga::ActivityEstimate NeoTrng::activity() const {
  fpga::ActivityEstimate a;
  a.clock_mhz = config_.clock_mhz;
  a.flip_flops = 2 * static_cast<std::size_t>(config_.cells) + 1 + kPostDffs;
  double total = 0.0;
  for (int i = 0; i < config_.cells; ++i) {
    // 2*len fabric elements toggling at twice the chain frequency.
    const double len = static_cast<double>(cell_chain_length(config_, i));
    const double period_ps =
        2.0 * len * 2.0 *
        (config_.device.lut_delay_ps + 0.35 * config_.device.net_delay_ps) *
        scale_.delay;
    total += 2.0 * 2.0 * len * 1e3 / period_ps;
  }
  // Synchronizers, combiner and post-processing toggle at ~clock/2.
  total += static_cast<double>(a.flip_flops + 2) * config_.clock_mhz * 0.5e-3;
  a.logic_toggle_ghz = total;
  return a;
}

}  // namespace dhtrng::core
