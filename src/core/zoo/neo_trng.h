// neoTRNG-style generator: latch-decoupled inverter-chain cells, a 2-bit
// John von Neumann extractor and an LFSR byte combiner (after Nolting's
// neoTRNG; see SNIPPETS.md).  Each cell is a free-running inverter chain
// whose stages are separated by transparent latches — the latches chop the
// chain's supply coupling and let every stage accumulate jitter
// independently, which is what lets the design live entirely in plain
// fabric logic.  The cell outputs are synchronized (2 FF) into the sampling
// clock domain and XOR-ed into one raw bit per cycle; raw bits feed the
// von Neumann extractor ("edge extraction": a 01 pair emits 1, a 10 pair
// emits 0, 00/11 pairs are dropped), and 64 de-biased bits are folded
// through an 8-bit LFSR whose state is emitted as one output byte.
//
// Two backends, same split as DhTrng:
//  * Backend::Fast      — one PhaseRo per cell (latch decoupling modeled as
//                         near-zero shared supply coupling), aperture
//                         metastability on the synchronizer sample.
//  * Backend::GateLevel — the event-driven simulator running the cell
//                         netlist (build_neo_trng_netlist); latches appear
//                         as BUF elements since the simulator has no latch
//                         primitive and a free-running latch chain is
//                         delay-equivalent to a buffer chain.
// In BOTH backends the von Neumann extractor and LFSR combiner run
// behaviorally on the raw sample stream — the backend swaps only the
// entropy source, so the differential tests compare like with like and the
// extractor KATs (tests/core/test_zoo.cpp) pin the post-processing exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dhtrng.h"  // core::Backend
#include "core/ro.h"
#include "core/trng.h"
#include "fpga/device.h"
#include "fpga/slice_packer.h"
#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/simulator.h"
#include "support/bitstream.h"

namespace dhtrng::core {

/// Acceptance accounting of the 2-bit von Neumann extractor: `pairs` input
/// pairs consumed, `accepted` de-biased bits emitted.  For an unbiased
/// independent input the acceptance rate converges to 1/2 (2p(1-p) at
/// bias p), which is where neoTRNG's nominal clock/32 byte rate comes from.
struct VonNeumannStats {
  std::uint64_t pairs = 0;
  std::uint64_t accepted = 0;
  double rate() const {
    return pairs == 0 ? 0.0
                      : static_cast<double>(accepted) /
                            static_cast<double>(pairs);
  }
};

/// Stateless 2-bit von Neumann extraction over non-overlapping pairs
/// (bit 2k first, bit 2k+1 second; a trailing odd bit is ignored).
/// neoTRNG's "edge" convention: emit the *second* bit of a discordant
/// pair, so 01 -> 1 (rising edge) and 10 -> 0 (falling edge).  Note the
/// opposite convention from core::von_neumann_extract (postprocess.h),
/// which emits classic 01 -> 0 / 10 -> 1; both de-bias i.i.d. inputs.
support::BitStream neo_von_neumann(const support::BitStream& raw,
                                   VonNeumannStats* stats = nullptr);

/// 8-bit Fibonacci LFSR byte combiner: every de-biased input bit is XOR-ed
/// into the feedback (taps x^8 + x^6 + x^5 + x^4 + 1), and after every 64
/// fed bits the current state is emitted as one output byte.  The state is
/// never reset between bytes — each byte mixes the entire history.
class NeoLfsrCombiner {
 public:
  /// Feedback tap mask over state bits 7,5,4,3 (x^8 + x^6 + x^5 + x^4 + 1,
  /// a primitive polynomial over GF(2)).
  static constexpr std::uint8_t kTaps = 0xB8;
  /// De-biased bits folded per emitted byte (neoTRNG's 64:8 compression).
  static constexpr int kBitsPerByte = 64;

  /// Shift one de-biased bit in; returns the output byte when this feed
  /// completes a 64-bit fold, std::nullopt otherwise.
  std::optional<std::uint8_t> feed(bool bit);

  std::uint8_t state() const { return state_; }
  void reset() {
    state_ = 0;
    fed_ = 0;
  }

 private:
  std::uint8_t state_ = 0;
  int fed_ = 0;
};

/// Gate-level netlist of the neoTRNG front end (cells + synchronizers +
/// XOR combine + raw-bit register).  The von Neumann extractor and LFSR
/// combiner are sequential byte-domain logic that the event simulator has
/// nothing to say about; they are accounted in `pack_groups` (the
/// "postproc" group) but not elaborated as gates.
struct NeoTrngNetlist {
  sim::Circuit circuit;
  std::vector<std::size_t> sync_dffs;  ///< 2 synchronizer DFFs per cell
  std::size_t out_dff = 0;             ///< raw-bit output register
  sim::NetId out_net = sim::kInvalidNet;
  sim::NetId clock_net = sim::kInvalidNet;
  std::vector<fpga::PackGroup> pack_groups;
};

NeoTrngNetlist build_neo_trng_netlist(const fpga::DeviceModel& device,
                                      double clock_mhz, int cells = 3,
                                      int chain_base = 5, int chain_step = 2);

struct NeoTrngConfig {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  Backend backend = Backend::Fast;
  /// Number of inverter-chain cells XOR-ed together.
  int cells = 3;
  /// Inverting elements in cell 0's chain; cell i has base + step*i (both
  /// must keep every chain length odd so the loops oscillate).
  int chain_base = 5;
  int chain_step = 2;
  double clock_mhz = 100.0;
  /// Emit the raw synchronized XOR samples (skip von Neumann + LFSR) —
  /// used by the differential battery to compare backends pre-extraction.
  bool raw = false;
  /// Gate-level backend noise fidelity (Fast backend ignores it).
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
};

class NeoTrng final : public TrngSource {
 public:
  explicit NeoTrng(NeoTrngConfig config = {});

  std::string name() const override;
  bool next_bit() override;
  void restart() override;

  sim::ResourceCounts resources() const override;
  double clock_mhz() const override { return config_.clock_mhz; }
  /// Nominal output rate: 1/2 pair rate * 1/2 acceptance * 8/64 combiner.
  double throughput_mbps() const override {
    return config_.raw ? config_.clock_mhz : config_.clock_mhz / 32.0;
  }
  fpga::ActivityEstimate activity() const override;

  fpga::SliceReport slice_report() const;

  const NeoTrngConfig& config() const { return config_; }
  /// von Neumann acceptance accounting since construction/restart.
  const VonNeumannStats& von_neumann_stats() const { return vn_stats_; }

  /// Gate-level backend only: the underlying simulator.
  const sim::Simulator* simulator() const { return sim_.get(); }

 private:
  bool raw_bit();
  void rebuild_simulator(std::uint64_t seed);

  NeoTrngConfig config_;
  double dt_ps_;
  noise::PvtScaling scale_;

  // Fast backend state.
  std::vector<PhaseRo> cells_;
  noise::SharedSupplyNoise shared_noise_;
  support::Xoshiro256 meta_rng_;

  // Gate-level backend state.
  std::unique_ptr<NeoTrngNetlist> netlist_;
  std::unique_ptr<sim::Simulator> sim_;
  std::size_t sample_cursor_ = 0;
  std::uint64_t restart_count_ = 0;

  // Post-processing state (both backends).
  VonNeumannStats vn_stats_;
  NeoLfsrCombiner combiner_;
  bool pair_first_ = false;
  bool have_first_ = false;
  std::uint8_t byte_ = 0;
  int byte_bits_left_ = 0;
};

}  // namespace dhtrng::core
