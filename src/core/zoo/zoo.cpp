#include "core/zoo/zoo.h"

namespace dhtrng::core {

const std::vector<std::string>& zoo_source_names() {
  static const std::vector<std::string> names{"neo", "klein", "hbn"};
  return names;
}

std::unique_ptr<TrngSource> make_zoo_source(std::string_view name,
                                            const ZooOptions& options) {
  if (name == "neo") {
    NeoTrngConfig cfg;
    cfg.device = options.device;
    cfg.pvt = options.pvt;
    cfg.seed = options.seed;
    cfg.backend = options.backend;
    cfg.noise_mode = options.noise_mode;
    cfg.raw = options.raw;
    return std::make_unique<NeoTrng>(cfg);
  }
  if (name == "klein") {
    KleinTrngConfig cfg;
    cfg.device = options.device;
    cfg.pvt = options.pvt;
    cfg.seed = options.seed;
    cfg.backend = options.backend;
    cfg.noise_mode = options.noise_mode;
    cfg.raw = options.raw;
    return std::make_unique<KleinTrng>(cfg);
  }
  if (name == "hbn") {
    HbnTrngConfig cfg;
    cfg.device = options.device;
    cfg.pvt = options.pvt;
    cfg.seed = options.seed;
    cfg.backend = options.backend;
    cfg.noise_mode = options.noise_mode;
    return std::make_unique<HbnTrng>(cfg);
  }
  return nullptr;
}

std::vector<NamedGateNetlist> zoo_gate_netlists(
    const fpga::DeviceModel& device) {
  std::vector<NamedGateNetlist> out;

  {
    // Default design point: 3 cells of 5/7/9 elements at 100 MHz.
    NeoTrngNetlist n = build_neo_trng_netlist(device, 100.0);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "neo";
    g.watch = {n.out_net, c.net("cell0_r"), c.net("cell2_r"),
               c.net("cell0_s1"), c.net("xcomb")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  {
    // Default design point: 16 mixed-length rings sampled at 200 MHz.
    KleinTrngNetlist n = build_klein_trng_netlist(device, 200.0);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "klein";
    // Ring outputs are the last chain node of each loop (ro<r>_n<len-1>;
    // ring 0 has 3 elements, ring 15 has 9 — kKleinRingLengths).
    g.watch = {n.out_net, c.net("ro0_n2"), c.net("ro15_n8"), c.net("xt0_0")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  {
    // Default design point: 16-node ring, 4 taps, 600 MHz boundary clock.
    HbnTrngNetlist n = build_hbn_trng_netlist(device, 600.0);
    const sim::Circuit& c = n.circuit;
    NamedGateNetlist g;
    g.name = "hbn";
    g.watch = {n.out_net, c.net("n1"), c.net("n8"), c.net("xtap")};
    g.circuit = std::move(n.circuit);
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace dhtrng::core
