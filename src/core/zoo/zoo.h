// The entropy-source zoo: alternative TRNG front-ends (neoTRNG, Klein-style
// RO sampler, hybrid Boolean network) behind the common TrngSource
// interface, registered by name so the pool, the service and trng_tool can
// swap architectures without knowing any of them.  zoo_gate_netlists()
// exposes the gate-level builds for the golden-waveform digest battery,
// parallel to core::golden_gate_netlists().
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/netlist.h"  // NamedGateNetlist
#include "core/trng.h"
#include "core/zoo/hbn_trng.h"
#include "core/zoo/klein_trng.h"
#include "core/zoo/neo_trng.h"
#include "fpga/device.h"
#include "noise/jitter.h"
#include "noise/pvt.h"

namespace dhtrng::core {

struct ZooOptions {
  fpga::DeviceModel device = fpga::DeviceModel::artix7();
  noise::PvtCondition pvt{};
  std::uint64_t seed = 1;
  Backend backend = Backend::Fast;
  /// Gate-level backend noise fidelity.
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
  /// Emit raw pre-postprocessing samples where the architecture has a
  /// post-processing stage (neo: von Neumann + LFSR; klein: XOR fold).
  bool raw = false;
};

/// Registered zoo architecture names: {"neo", "klein", "hbn"}.
const std::vector<std::string>& zoo_source_names();

/// Instantiate a zoo source by name at its default design point, or
/// nullptr if `name` is not registered.
std::unique_ptr<TrngSource> make_zoo_source(std::string_view name,
                                            const ZooOptions& options = {});

/// Gate-level builds of every zoo architecture for `device` (named "neo",
/// "klein", "hbn"), each with a curated watch-net set — the inventory
/// behind the zoo golden-waveform digests
/// (tests/core/test_zoo_differential.cpp).
std::vector<NamedGateNetlist> zoo_gate_netlists(
    const fpga::DeviceModel& device);

}  // namespace dhtrng::core
