#include "fpga/device.h"

#include <algorithm>

namespace dhtrng::fpga {

double DeviceModel::max_clock_mhz(int logic_levels,
                                  const noise::PvtCondition& pvt) const {
  const double scale = scaling(pvt).delay;
  const double path_ps =
      (ff_clk_to_q_ps +
       static_cast<double>(logic_levels) * (lut_delay_ps + net_delay_ps) +
       ff_setup_ps) *
      scale;
  return std::min(1e6 / path_ps, pll_max_mhz);
}

DeviceModel DeviceModel::virtex6() {
  DeviceModel d;
  d.name = "Virtex-6";
  d.part = "xc6vlx240t";
  d.process_nm = 45;
  // Calibrated so the 2-LUT-level sampling path gives ~670 MHz (paper 4.6).
  d.lut_delay_ps = 180.0;
  d.mux_delay_ps = 110.0;
  d.net_delay_ps = 375.0;
  d.ff_clk_to_q_ps = 300.0;
  d.ff_setup_ps = 80.0;
  d.ff_aperture_sigma_ps = 15.0;
  d.ff_resolution_mean_ps = 80.0;
  d.nominal_voltage_v = 1.0;
  d.vth_v = 0.42;
  d.alpha = 1.35;
  // 45 nm: larger devices, slightly more thermal jitter per cell.
  d.gate_jitter = {1.5, 0.6, 0.45};
  // Power: V6 static + MMCM-dominated dynamic; total ~0.126 W for DH-TRNG.
  d.static_power_w = 0.025;
  d.pll_power_w_per_mhz = 1.40e-4;
  d.node_cap_pf = 0.16;
  d.clock_cap_pf_per_ff = 0.10;
  d.pll_max_mhz = 900.0;
  return d;
}

DeviceModel DeviceModel::artix7() {
  DeviceModel d;
  d.name = "Artix-7";
  d.part = "xc7a100t";
  d.process_nm = 28;
  // Calibrated so the 2-LUT-level sampling path gives ~620 MHz (paper 4.6).
  d.lut_delay_ps = 150.0;
  d.mux_delay_ps = 90.0;
  d.net_delay_ps = 480.0;
  d.ff_clk_to_q_ps = 280.0;
  d.ff_setup_ps = 70.0;
  d.ff_aperture_sigma_ps = 12.0;
  d.ff_resolution_mean_ps = 60.0;
  d.nominal_voltage_v = 1.0;
  d.vth_v = 0.38;
  d.alpha = 1.30;
  d.gate_jitter = {1.2, 0.5, 0.4};
  // Power: total ~0.068 W for DH-TRNG at 620 MHz.
  d.static_power_w = 0.012;
  d.pll_power_w_per_mhz = 8.0e-5;
  d.node_cap_pf = 0.12;
  d.clock_cap_pf_per_ff = 0.08;
  d.pll_max_mhz = 800.0;
  return d;
}

}  // namespace dhtrng::fpga
