// FPGA device models.
//
// The paper implements DH-TRNG on a Xilinx Virtex-6 xc6vlx240t (45 nm) and
// an Artix-7 xc7a100t (28 nm); portability across the two processes is one
// of its claims.  We reproduce the devices as parameter sets: cell and
// routing delays, flip-flop timing (including the metastability aperture of
// Eq. 2), noise coefficients for the jitter model, and power-model
// constants.  Timing constants are calibrated so that the maximum sampling
// clock of the DH-TRNG netlist matches the paper's headline rates
// (670 MHz on Virtex-6, 620 MHz on Artix-7 — one bit per cycle), and power
// constants so the measured totals match Table 6 / Section 4.6
// (0.126 W and 0.068 W).  EXPERIMENTS.md flags these as model-calibrated.
#pragma once

#include <string>

#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/circuit.h"

namespace dhtrng::fpga {

struct DeviceModel {
  std::string name;
  std::string part;
  int process_nm = 28;

  // Timing (ps, nominal corner).
  double lut_delay_ps = 150.0;
  double mux_delay_ps = 90.0;   ///< MUXF7 local mux, faster than a LUT
  double net_delay_ps = 480.0;  ///< average routed-net delay
  double carry_delay_ps = 40.0;
  double ff_clk_to_q_ps = 280.0;
  double ff_setup_ps = 70.0;
  double ff_aperture_sigma_ps = 12.0;
  double ff_resolution_mean_ps = 60.0;

  // Supply / process.
  double nominal_voltage_v = 1.0;
  double vth_v = 0.4;
  double alpha = 1.3;  ///< alpha-power law exponent

  // Noise (nominal corner, per ~100 ps cell).
  noise::JitterParams gate_jitter{1.2, 0.5, 0.4};

  // Power model constants (see power.h).
  double static_power_w = 0.012;
  double pll_power_w_per_mhz = 8.0e-5;
  double node_cap_pf = 0.12;      ///< effective switched C per net toggle
  double clock_cap_pf_per_ff = 0.08;

  double pll_max_mhz = 800.0;

  /// PVT scale factors for a given operating condition.
  noise::PvtScaling scaling(const noise::PvtCondition& pvt) const {
    return noise::pvt_scaling(pvt, vth_v, alpha);
  }

  /// Flip-flop timing for the simulator, at this device's constants.
  sim::DffTiming dff_timing() const {
    return {ff_clk_to_q_ps, ff_aperture_sigma_ps, ff_resolution_mean_ps};
  }

  /// Maximum sampling clock of a register-to-register path crossing
  /// `logic_levels` LUTs (each followed by a routed net), in MHz.
  double max_clock_mhz(int logic_levels, const noise::PvtCondition& pvt =
                                             noise::PvtCondition::nominal()) const;

  static DeviceModel virtex6();
  static DeviceModel artix7();
};

}  // namespace dhtrng::fpga
