#include "fpga/power.h"

#include <cmath>

namespace dhtrng::fpga {

PowerBreakdown estimate_power(const DeviceModel& device,
                              const ActivityEstimate& activity,
                              const noise::PvtCondition& pvt) {
  PowerBreakdown p;
  const double v = pvt.voltage_v;
  const double v_ratio2 = (v * v) / (device.nominal_voltage_v *
                                     device.nominal_voltage_v);
  // Leakage: linear in V, ~1.5x per 50 degC (very first-order).
  const double leak_t = std::pow(1.5, (pvt.temperature_c - 20.0) / 50.0);
  p.static_w = device.static_power_w * (v / device.nominal_voltage_v) * leak_t;

  p.pll_w = device.pll_power_w_per_mhz * activity.clock_mhz * v_ratio2;

  // C (pF) * V^2 * f (MHz) => W * 1e-6.
  p.clock_tree_w = device.clock_cap_pf_per_ff * v * v *
                   activity.clock_mhz *
                   static_cast<double>(activity.flip_flops) * 1e-6;

  // C (pF) * V^2 * toggles (GHz) => W * 1e-3.
  p.logic_w = device.node_cap_pf * v * v * activity.logic_toggle_ghz * 1e-3;

  return p;
}

ActivityEstimate activity_from_simulation(const sim::Simulator& simulator,
                                          double clock_mhz,
                                          std::size_t flip_flops) {
  ActivityEstimate a;
  a.clock_mhz = clock_mhz;
  a.flip_flops = flip_flops;
  const double elapsed_ps = simulator.now();
  if (elapsed_ps > 0.0) {
    // toggles per ps == THz; scale to GHz.
    a.logic_toggle_ghz =
        static_cast<double>(simulator.total_toggles()) / elapsed_ps * 1e3;
  }
  return a;
}

}  // namespace dhtrng::fpga
