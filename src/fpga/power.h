// First-order FPGA power model.
//
// Measured TRNG power on real boards (Table 6) is dominated by the clock
// generator (PLL/MMCM running at hundreds of MHz) and device static power,
// with ring-oscillator switching a few mW on top.  The model therefore has
// four terms:
//
//   P = P_static
//     + k_pll * f_clk                          (clock manager)
//     + C_clk * V^2 * f_clk * n_ff             (clock tree into the FFs)
//     + C_node * V^2 * sum_i toggle_rate_i     (logic & ring switching)
//
// Toggle rates come either from an event-driven simulation (exact counts /
// simulated time) or from an analytic activity estimate supplied by the
// TRNG model (ring frequencies are known).  Constants live in DeviceModel
// and are calibrated against the paper's measured totals; EXPERIMENTS.md
// marks every power figure as model-derived.
#pragma once

#include "fpga/device.h"
#include "sim/simulator.h"

namespace dhtrng::fpga {

struct ActivityEstimate {
  double clock_mhz = 0.0;          ///< sampling clock frequency
  std::size_t flip_flops = 0;      ///< clock loads
  double logic_toggle_ghz = 0.0;   ///< sum of all net toggle rates (GHz)
};

struct PowerBreakdown {
  double static_w = 0.0;
  double pll_w = 0.0;
  double clock_tree_w = 0.0;
  double logic_w = 0.0;
  double total_w() const { return static_w + pll_w + clock_tree_w + logic_w; }
};

/// Power at a given operating condition (voltage scales the dynamic terms
/// quadratically and leakage ~exponentially-ish first order linearly).
PowerBreakdown estimate_power(const DeviceModel& device,
                              const ActivityEstimate& activity,
                              const noise::PvtCondition& pvt =
                                  noise::PvtCondition::nominal());

/// Exact activity from an event-driven simulation run: total toggle counts
/// divided by simulated time.  This is how the gate-level backend feeds the
/// power model without analytic estimates.
ActivityEstimate activity_from_simulation(const sim::Simulator& simulator,
                                          double clock_mhz,
                                          std::size_t flip_flops);

}  // namespace dhtrng::fpga
