#include "fpga/slice_packer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dhtrng::fpga {

std::size_t SliceReport::total_luts() const {
  std::size_t n = 0;
  for (const auto& s : slices_) n += s.luts_used;
  return n;
}

std::size_t SliceReport::total_muxes() const {
  std::size_t n = 0;
  for (const auto& s : slices_) n += s.muxes_used;
  return n;
}

std::size_t SliceReport::total_dffs() const {
  std::size_t n = 0;
  for (const auto& s : slices_) n += s.dffs_used;
  return n;
}

std::string SliceReport::to_string() const {
  std::ostringstream os;
  os << "slice  (x,y)  group                 LUT MUX FF\n";
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    const auto& s = slices_[i];
    os << "  " << i << "     (" << s.x << "," << s.y << ")  ";
    os.width(22);
    os << std::left << s.group << std::right
       << (s.luts_used - s.mux_luts_used) << "   " << s.muxes_used << "   "
       << s.dffs_used << "\n";
  }
  os << "total slices: " << slices_.size() << "\n";
  return os.str();
}

SliceReport SlicePacker::pack(const std::vector<PackGroup>& groups,
                              int origin_x, int origin_y) const {
  SliceReport report;
  for (const PackGroup& g : groups) {
    std::size_t luts = g.luts;
    std::size_t muxes = g.muxes;
    std::size_t dffs = g.dffs;
    while (luts > 0 || muxes > 0 || dffs > 0) {
      PackedSlice s;
      s.group = g.name;
      // MUXF7s first: each must be co-located with the two LUT6s of the
      // group that drive it, so it pins two of the group's LUTs into this
      // slice's LUT positions.
      const std::size_t take_mux = std::min(muxes, limits_.muxf7_per_slice);
      s.muxes_used = take_mux;
      s.mux_luts_used = std::min(2 * take_mux, luts);
      s.luts_used = s.mux_luts_used;
      luts -= s.mux_luts_used;
      muxes -= take_mux;
      // Fill remaining LUT positions with the group's other LUTs.
      const std::size_t lut_room = limits_.luts_per_slice - s.luts_used;
      const std::size_t take_lut = std::min(luts, lut_room);
      s.luts_used += take_lut;
      luts -= take_lut;
      // Flip-flops.
      const std::size_t take_ff = std::min(dffs, limits_.ffs_per_slice);
      s.dffs_used = take_ff;
      dffs -= take_ff;
      report.slices_.push_back(s);
    }
  }
  // Near-square placement: side = ceil(sqrt(n)), row-major from the origin.
  const std::size_t n = report.slices_.size();
  if (n > 0) {
    const int side = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    for (std::size_t i = 0; i < n; ++i) {
      report.slices_[i].x = origin_x + static_cast<int>(i) % side;
      report.slices_[i].y = origin_y + static_cast<int>(i) / side;
    }
  }
  return report;
}

SliceReport SlicePacker::pack(const sim::Circuit& circuit,
                              const std::string& name, int origin_x,
                              int origin_y) const {
  const sim::ResourceCounts rc = circuit.resources();
  return pack({PackGroup{name, rc.luts, rc.muxes, rc.dffs}}, origin_x,
              origin_y);
}

}  // namespace dhtrng::fpga
