// Slice packing and placement for Xilinx 6/7-series CLBs.
//
// A slice provides four 6-input LUTs, three local multiplexers (two MUXF7
// plus one MUXF8) and eight flip-flops.  A generic 2:1 mux is implemented as
// a MUXF7, which combines the outputs of the two LUT6s *in the same slice* —
// so each mux consumes one F7 slot and two co-located LUT slots.  This is
// the constraint that makes the paper's inventory (23 LUTs + 4 MUXs +
// 14 DFFs) pack into exactly 8 slices (Section 3.3, Figure 5(b)).
//
// The packer works on *groups* (the paper constrains cells "by type to an
// appropriate position in a compact square slice array"): each group packs
// into its own whole slices, then the slices are placed on a near-square
// grid anchored at a caller-supplied origin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/circuit.h"

namespace dhtrng::fpga {

struct PackGroup {
  std::string name;
  std::size_t luts = 0;
  std::size_t muxes = 0;
  std::size_t dffs = 0;
};

struct PackedSlice {
  std::string group;
  std::size_t luts_used = 0;       ///< total LUT slots in use
  std::size_t mux_luts_used = 0;   ///< LUT slots consumed by MUXF7 pairing
  std::size_t muxes_used = 0;
  std::size_t dffs_used = 0;
  int x = 0;  ///< placement coordinates on the square array
  int y = 0;
};

struct SliceLimits {
  std::size_t luts_per_slice = 4;
  std::size_t muxf7_per_slice = 2;
  std::size_t ffs_per_slice = 8;
};

class SliceReport {
 public:
  const std::vector<PackedSlice>& slices() const { return slices_; }
  std::size_t slice_count() const { return slices_.size(); }
  std::size_t total_luts() const;
  std::size_t total_muxes() const;
  std::size_t total_dffs() const;
  /// Human-readable placement table (Figure 5(b) style).
  std::string to_string() const;

  friend class SlicePacker;

 private:
  std::vector<PackedSlice> slices_;
};

class SlicePacker {
 public:
  explicit SlicePacker(SliceLimits limits = {}) : limits_(limits) {}

  /// Pack each group into fresh slices (greedy, maximal fill) and place the
  /// result on a near-square grid anchored at (origin_x, origin_y).
  SliceReport pack(const std::vector<PackGroup>& groups, int origin_x = 0,
                   int origin_y = 0) const;

  /// Convenience: pack a whole netlist as a single unconstrained group.
  SliceReport pack(const sim::Circuit& circuit, const std::string& name,
                   int origin_x = 0, int origin_y = 0) const;

 private:
  SliceLimits limits_;
};

}  // namespace dhtrng::fpga
