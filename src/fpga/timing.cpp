#include "fpga/timing.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace dhtrng::fpga {

namespace {

struct Arrival {
  double delay = -1.0;  // longest combinational delay to this net
  std::size_t levels = 0;
  sim::NetId from = sim::kInvalidNet;  // predecessor net on the longest path
};

}  // namespace

namespace {

/// Nets on combinational cycles (the oscillator loops).  Real STA treats
/// loops as cut/false paths — they are asynchronous sources, not
/// register-to-register timing arcs.  Detected by iteratively peeling
/// nets with no remaining combinational fan-in (Kahn); leftovers are
/// cyclic.
std::vector<bool> cyclic_nets(const sim::Circuit& circuit) {
  const auto& gates = circuit.gates();
  const std::size_t nets = circuit.net_count();
  // In-degree of each gate = number of its inputs that are gate-driven and
  // not yet resolved; a net is "resolved" when its driver (if any) is.
  std::vector<int> driver_gate(nets, -1);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    driver_gate[gates[g].output] = static_cast<int>(g);
  }
  std::vector<bool> gate_done(gates.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t g = 0; g < gates.size(); ++g) {
      if (gate_done[g]) continue;
      bool ready = true;
      for (sim::NetId in : gates[g].inputs) {
        const int d = driver_gate[in];
        if (d >= 0 && !gate_done[static_cast<std::size_t>(d)]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        gate_done[g] = true;
        progress = true;
      }
    }
  }
  std::vector<bool> cyclic(nets, false);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (!gate_done[g]) cyclic[gates[g].output] = true;
  }
  return cyclic;
}

}  // namespace

TimingReport analyze_timing(const sim::Circuit& circuit,
                            const DeviceModel& device) {
  const auto& gates = circuit.gates();
  const std::size_t nets = circuit.net_count();
  const std::vector<bool> cyclic = cyclic_nets(circuit);

  // Longest-path DP over the acyclic combinational subgraph, seeded at
  // flip-flop outputs; gates inside loops are cut.
  std::vector<Arrival> arrival(nets);
  for (const sim::Dff& ff : circuit.dffs()) {
    arrival[ff.q].delay = 0.0;
  }

  for (std::size_t iter = 0; iter < gates.size() + 1; ++iter) {
    bool changed = false;
    for (const sim::Gate& g : gates) {
      if (cyclic[g.output]) continue;  // loop gate: cut
      double best = -1.0;
      std::size_t best_levels = 0;
      sim::NetId best_from = sim::kInvalidNet;
      for (sim::NetId in : g.inputs) {
        if (cyclic[in] || arrival[in].delay < 0.0) continue;
        if (arrival[in].delay > best) {
          best = arrival[in].delay;
          best_levels = arrival[in].levels;
          best_from = in;
        }
      }
      if (best < 0.0) continue;
      const double out_delay = best + g.delay_ps;
      if (out_delay > arrival[g.output].delay + 1e-12) {
        arrival[g.output] = {out_delay, best_levels + 1, best_from};
        changed = true;
      }
    }
    if (!changed) break;
  }

  TimingReport report;
  for (const sim::Dff& ff : circuit.dffs()) {
    if (cyclic[ff.d] || arrival[ff.d].delay < 0.0) continue;
    const double total =
        device.ff_clk_to_q_ps + arrival[ff.d].delay + device.ff_setup_ps;
    if (total > report.critical.delay_ps) {
      report.critical.delay_ps = total;
      report.critical.logic_levels = arrival[ff.d].levels;
      // Reconstruct the net chain.
      report.critical.nets.clear();
      sim::NetId net = ff.d;
      while (net != sim::kInvalidNet) {
        report.critical.nets.push_back(net);
        net = arrival[net].from;
      }
      std::reverse(report.critical.nets.begin(), report.critical.nets.end());
    }
  }
  if (report.critical.delay_ps > 0.0) {
    report.max_clock_mhz =
        std::min(1e6 / report.critical.delay_ps, device.pll_max_mhz);
  }
  return report;
}

std::string TimingReport::to_string(const sim::Circuit& circuit) const {
  std::ostringstream os;
  os << "critical path: " << critical.delay_ps << " ps across "
     << critical.logic_levels << " logic levels -> max clock "
     << max_clock_mhz << " MHz\n  ";
  for (std::size_t i = 0; i < critical.nets.size(); ++i) {
    if (i != 0) os << " -> ";
    os << circuit.net_name(critical.nets[i]);
  }
  os << "\n";
  return os.str();
}

}  // namespace dhtrng::fpga
