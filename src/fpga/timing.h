// Static timing analysis (STA-lite) over the simulator netlist.
//
// Finds the slowest register-to-register path: clk-to-Q at a launching
// flip-flop, the longest combinational gate chain (each gate's nominal
// delay plus a routed-net delay per hop), and setup at the capturing
// flip-flop.  This replaces the hand-assumed "2 LUT levels" figure in
// DeviceModel::max_clock_mhz with a number derived from the actual
// circuit, and the tests pin the DH-TRNG sampling array to exactly the
// 2-level structure the paper's 620/670 MHz clocks imply.
//
// Combinational loops (the rings!) are excluded by construction: paths are
// only traced from flip-flop outputs to flip-flop data inputs, and a
// depth-first search that re-enters a net on the current path stops there
// (a looped net can never be part of a register-to-register timing path).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "sim/circuit.h"

namespace dhtrng::fpga {

struct TimingPath {
  double delay_ps = 0.0;          ///< total clk-to-q + logic + setup
  std::size_t logic_levels = 0;   ///< gates on the path
  std::vector<sim::NetId> nets;   ///< launching Q ... capturing D
};

struct TimingReport {
  TimingPath critical;
  double max_clock_mhz = 0.0;
  std::string to_string(const sim::Circuit& circuit) const;
};

/// Analyze register-to-register paths of `circuit` on `device`.
/// Gate delays are taken from the netlist (they already encode the device's
/// cell + local-net delays); the flip-flop clk-to-q / setup come from the
/// device model.
TimingReport analyze_timing(const sim::Circuit& circuit,
                            const DeviceModel& device);

}  // namespace dhtrng::fpga
