#include "noise/flicker.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dhtrng::noise {

FlickerNoise::FlickerNoise(double amplitude, int octaves, std::uint64_t seed)
    : amplitude_(amplitude), rng_(seed) {
  if (octaves < 1 || octaves > 62) {
    throw std::invalid_argument("FlickerNoise: octaves out of range");
  }
  rows_.resize(static_cast<std::size_t>(octaves));
  for (auto& r : rows_) r = rng_.gaussian(0.0, amplitude_);
}

double FlickerNoise::next() {
  // Row k is refreshed when bit k is the lowest set bit of the counter, so
  // row k changes once every 2^(k+1) samples: the classic pink-noise lattice.
  ++counter_;
  const int row = std::countr_zero(counter_);
  if (row < static_cast<int>(rows_.size())) {
    rows_[static_cast<std::size_t>(row)] = rng_.gaussian(0.0, amplitude_);
  }
  double sum = 0.0;
  for (double r : rows_) sum += r;
  return sum;
}

double FlickerNoise::marginal_sigma() const {
  return amplitude_ * std::sqrt(static_cast<double>(rows_.size()));
}

}  // namespace dhtrng::noise
