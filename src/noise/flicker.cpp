#include "noise/flicker.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace dhtrng::noise {

FlickerNoise::FlickerNoise(double amplitude, int octaves, std::uint64_t seed)
    : amplitude_(amplitude), rng_(seed) {
  if (octaves < 1 || octaves > 62) {
    throw std::invalid_argument("FlickerNoise: octaves out of range");
  }
  rows_.resize(static_cast<std::size_t>(octaves));
  for (auto& r : rows_) r = rng_.gaussian(0.0, amplitude_);
}

double FlickerNoise::next() {
  // Row k is refreshed when bit k is the lowest set bit of the counter, so
  // row k changes once every 2^(k+1) samples: the classic pink-noise lattice.
  // The left-to-right summation order is part of the determinism contract
  // (golden bitstreams pin the exact doubles).
  ++counter_;
  const int row = std::countr_zero(counter_);
  if (row < static_cast<int>(rows_.size())) {
    rows_[static_cast<std::size_t>(row)] = rng_.gaussian(0.0, amplitude_);
  }
  double sum = 0.0;
  for (double r : rows_) sum += r;
  return sum;
}

void FlickerNoise::fill(double* out, std::size_t n) {
  const int octaves = static_cast<int>(rows_.size());
  std::size_t done = 0;
  double draws[64];
  while (done < n) {
    const std::size_t chunk = std::min<std::size_t>(64, n - done);
    // Row k is refreshed when countr_zero(counter) == k < octaves; count
    // the refreshes in this chunk, pre-draw exactly that many gaussians
    // (same stream, same order as per-call next()), then replay the
    // lattice consuming them.
    std::size_t need = 0;
    for (std::size_t i = 0; i < chunk; ++i) {
      if (std::countr_zero(counter_ + 1 + i) < octaves) ++need;
    }
    rng_.gaussian_fill(draws, need);
    std::size_t used = 0;
    for (std::size_t i = 0; i < chunk; ++i) {
      ++counter_;
      const int row = std::countr_zero(counter_);
      if (row < octaves) {
        // Identical arithmetic to rng_.gaussian(0.0, amplitude_).
        rows_[static_cast<std::size_t>(row)] = 0.0 + amplitude_ * draws[used++];
      }
      double sum = 0.0;
      for (double r : rows_) sum += r;
      out[done + i] = sum;
    }
    done += chunk;
  }
}

void FlickerNoise::fill_fast(double* out, std::size_t n) {
  const int octaves = static_cast<int>(rows_.size());
  std::size_t done = 0;
  double draws[64];
  while (done < n) {
    const std::size_t chunk = std::min<std::size_t>(64, n - done);
    // One gaussian per sample, consumed only when the sample refreshes a
    // row (countr_zero < octaves; with the default 12 octaves ~1.6% of
    // draws go unused).  Trading those draws for the skipped pre-count
    // pass is a net win, and it keeps the stream chunk-aligned: filling
    // 128 samples in one call or two draws the same sequence.
    rng_.gaussian_fill_fast(draws, chunk);
    // Fresh sum per chunk bounds running-sum drift to ~64 updates.
    double sum = 0.0;
    for (double r : rows_) sum += r;
    for (std::size_t i = 0; i < chunk; ++i) {
      ++counter_;
      const int row = std::countr_zero(counter_);
      if (row < octaves) {
        const double nv = amplitude_ * draws[i];
        sum += nv - rows_[static_cast<std::size_t>(row)];
        rows_[static_cast<std::size_t>(row)] = nv;
      }
      out[done + i] = sum;
    }
    done += chunk;
  }
}

double FlickerNoise::marginal_sigma() const {
  return amplitude_ * std::sqrt(static_cast<double>(rows_.size()));
}

}  // namespace dhtrng::noise
