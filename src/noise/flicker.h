// 1/f (flicker) noise process.
//
// Ring-oscillator jitter has two components: white (thermal / shot) noise,
// whose phase contribution accumulates as sqrt(time), and flicker noise,
// which is strongly correlated across edges and accumulates faster.  The
// flicker component matters for the reproduction because its correlation
// makes it *non-entropic* over short horizons — attackers can track it — so
// the entropy model must separate it from the white component.
//
// Implemented as the Voss–McCartney algorithm: the sum of `octaves`
// independent white sources, source k being resampled every 2^k steps.
// The spectrum approximates 1/f over ~`octaves` decades of frequency.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace dhtrng::noise {

class FlickerNoise {
 public:
  /// `amplitude` is the standard deviation of each octave source; the total
  /// sample std-dev is amplitude * sqrt(octaves).
  FlickerNoise(double amplitude, int octaves, std::uint64_t seed);

  /// Next correlated sample.
  double next();

  /// Fill `out[0..n)` with the next `n` samples — bit-identical to n
  /// successive next() calls, but the row-update gaussians are drawn in
  /// blocks so the batched noise path pays one call per block instead of
  /// one per sample.
  void fill(double* out, std::size_t n);

  /// Fast-noise variant: same lattice, same per-row draw count, but the
  /// gaussians come from gaussian_fill_fast and the octave sum is kept as
  /// a running total (re-summed once per 64-sample chunk to bound FP
  /// drift) instead of re-added per sample.  NOT bit-compatible with
  /// next()/fill(); statistically identical.
  void fill_fast(double* out, std::size_t n);

  /// Std-dev of the marginal distribution of samples.
  double marginal_sigma() const;

  int octaves() const { return static_cast<int>(rows_.size()); }

 private:
  double amplitude_;
  std::vector<double> rows_;
  std::uint64_t counter_ = 0;
  support::Xoshiro256 rng_;
};

}  // namespace dhtrng::noise
