#include "noise/jitter.h"

#include <cmath>

namespace dhtrng::noise {

SharedSupplyNoise::SharedSupplyNoise(double sigma_ps, std::uint64_t seed,
                                     double correlation)
    : sigma_(sigma_ps),
      rho_(correlation),
      innovation_sigma_(std::sqrt(1.0 - correlation * correlation) * sigma_ps),
      rng_(seed) {}

double SharedSupplyNoise::step_uncached() {
  // AR(1) with stationary sigma equal to sigma_: x' = rho x + sqrt(1-rho^2) w.
  value_ = rho_ * value_ + rng_.gaussian(0.0, innovation_sigma_);
  return value_;
}

void SharedSupplyNoise::refill() {
  // Fast mode refills in fixed kFastNoiseBlock-step blocks so the value
  // stream — and therefore fast-mode waveforms — is independent of
  // set_batch().  Exact mode honours batch_; its gaussian_fill stream is
  // chunking-invariant by construction, so any batch is bit-identical.
  const std::size_t n = mode_ == NoiseMode::Fast ? kFastNoiseBlock : batch_;
  block_.resize(n);
  if (mode_ == NoiseMode::Fast) {
    rng_.gaussian_fill_fast(block_.data(), n);
  } else {
    rng_.gaussian_fill(block_.data(), n);
  }
  // Run the recurrence over the pre-drawn innovations; arithmetic is
  // identical to n successive step_uncached() calls
  // (gaussian(0, s) == 0.0 + s * gaussian()).
  double v = value_;
  for (std::size_t i = 0; i < n; ++i) {
    v = rho_ * v + (0.0 + innovation_sigma_ * block_[i]);
    block_[i] = v;
  }
  block_pos_ = 0;
}

EdgeJitterSource::EdgeJitterSource(const JitterParams& params,
                                   std::uint64_t seed,
                                   SharedSupplyNoise* shared)
    : params_(params),
      rng_(seed),
      // 12 octaves spans ~4 decades of 1/f; amplitude chosen so the marginal
      // sigma equals flicker_sigma_ps.
      flicker_(params.flicker_sigma_ps / std::sqrt(12.0), 12, seed ^ 0x9e3779b97f4a7c15ULL),
      shared_(shared) {}

void EdgeJitterSource::set_batch(std::size_t n) {
  // Takes effect at the next refill; draws already in the block are
  // consumed first, so the per-stream sequence never skips or repeats.
  batch_ = n > 1 ? n : 1;
}

void EdgeJitterSource::refill() {
  white_block_.resize(batch_);
  flicker_block_.resize(batch_);
  // The white and flicker components come from independent streams, so
  // filling one whole block and then the other consumes each stream in
  // exactly the per-call order.
  rng_.gaussian_fill(white_block_.data(), batch_);
  flicker_.fill(flicker_block_.data(), batch_);
  block_pos_ = 0;
}

void EdgeJitterSource::enable_fast_delay(double base_delay_ps, double floor_ps,
                                         const PvtScaling& scale) {
  fast_base_ = base_delay_ps;
  fast_floor_ = floor_ps;
  fast_white_gain_ = params_.white_sigma_ps * scale.white_jitter;
  fast_flicker_gain_ = scale.correlated_noise;
  // Mirrors combine(): the shared term is gated on correlated_sigma_ps but
  // shared_->step() is still consumed whenever a supply is attached, so
  // the global AR(1) consumption order matches the structure of the exact
  // path.
  fast_shared_gain_ =
      params_.correlated_sigma_ps > 0.0 ? scale.correlated_noise : 0.0;
  delay_block_.clear();
  delay_pos_ = 0;
}

void EdgeJitterSource::refill_fast() {
  // Fixed-size blocks: every fast-mode component is chunk-aligned at
  // kFastNoiseBlock, so fast waveforms do not depend on set_batch().
  constexpr std::size_t n = kFastNoiseBlock;
  double white[n];
  double flicker[n];
  delay_block_.resize(n);
  rng_.gaussian_fill_fast(white, n);
  flicker_.fill_fast(flicker, n);
  for (std::size_t i = 0; i < n; ++i) {
    delay_block_[i] =
        std::fma(fast_white_gain_, white[i],
                 std::fma(fast_flicker_gain_, flicker[i], fast_base_));
  }
  delay_pos_ = 0;
}

double EdgeJitterSource::next_edge_jitter_slow(const PvtScaling& scale) {
  if (batch_ > 1) {
    // Block exhausted: refill and consume the first draw.  (A
    // set_batch(1) downgrade drains leftovers through the inline path
    // first, so the per-stream sequence never skips or repeats.)
    refill();
    const double white = white_block_[block_pos_];
    const double flicker = flicker_block_[block_pos_];
    ++block_pos_;
    return combine(white, flicker, scale);
  }
  // Historical per-call draws.
  const double white = rng_.gaussian();
  const double flicker = flicker_.next();
  return combine(white, flicker, scale);
}

}  // namespace dhtrng::noise
