#include "noise/jitter.h"

#include <cmath>

namespace dhtrng::noise {

SharedSupplyNoise::SharedSupplyNoise(double sigma_ps, std::uint64_t seed,
                                     double correlation)
    : sigma_(sigma_ps), rho_(correlation), rng_(seed) {}

double SharedSupplyNoise::step() {
  // AR(1) with stationary sigma equal to sigma_: x' = rho x + sqrt(1-rho^2) w.
  const double innovation = std::sqrt(1.0 - rho_ * rho_) * sigma_;
  value_ = rho_ * value_ + rng_.gaussian(0.0, innovation);
  return value_;
}

EdgeJitterSource::EdgeJitterSource(const JitterParams& params,
                                   std::uint64_t seed,
                                   SharedSupplyNoise* shared)
    : params_(params),
      rng_(seed),
      // 12 octaves spans ~4 decades of 1/f; amplitude chosen so the marginal
      // sigma equals flicker_sigma_ps.
      flicker_(params.flicker_sigma_ps / std::sqrt(12.0), 12, seed ^ 0x9e3779b97f4a7c15ULL),
      shared_(shared) {}

double EdgeJitterSource::next_edge_jitter(const PvtScaling& scale) {
  double jitter = rng_.gaussian(0.0, params_.white_sigma_ps * scale.white_jitter);
  jitter += flicker_.next() * scale.correlated_noise;
  if (shared_ != nullptr) {
    jitter += shared_->step() * scale.correlated_noise *
              (params_.correlated_sigma_ps > 0.0 ? 1.0 : 0.0);
  }
  return jitter;
}

}  // namespace dhtrng::noise
