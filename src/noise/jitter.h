// Per-edge jitter model for gates and ring oscillators.
//
// Each logic transition in the event-driven simulator (and each accumulated
// sampling interval in the fast phase-domain models) receives a delay
// perturbation with three components:
//
//   * white:      independent Gaussian per edge — the entropy-bearing part;
//   * flicker:    1/f-correlated across edges — slow wander, low entropy;
//   * correlated: shared across *all* sources of a device (supply ripple,
//                 substrate coupling) — adversarially observable, zero
//                 entropy, and the main randomness spoiler at PVT corners.
//
// Sigmas are in picoseconds at the nominal corner; a PvtScaling rescales
// them per experiment.
#pragma once

#include <cstdint>
#include <memory>

#include "noise/flicker.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::noise {

struct JitterParams {
  double white_sigma_ps = 1.0;      ///< per-edge white jitter sigma
  double flicker_sigma_ps = 0.5;    ///< marginal sigma of the flicker process
  double correlated_sigma_ps = 0.3; ///< sigma of the shared supply component
};

/// The device-wide shared noise source (one per simulated "chip").
/// Sources sample it once per edge; it evolves as a slow AR(1) process.
class SharedSupplyNoise {
 public:
  SharedSupplyNoise(double sigma_ps, std::uint64_t seed,
                    double correlation = 0.995);

  /// Advance one step and return the current value (ps).
  double step();
  double current() const { return value_; }

 private:
  double sigma_;
  double rho_;
  double value_ = 0.0;
  support::Xoshiro256 rng_;
};

/// Per-source edge jitter generator.
class EdgeJitterSource {
 public:
  EdgeJitterSource(const JitterParams& params, std::uint64_t seed,
                   SharedSupplyNoise* shared = nullptr);

  /// Delay perturbation (ps) for the next transition, with PVT scaling
  /// applied to the component sigmas.
  double next_edge_jitter(const PvtScaling& scale);

  /// Same at the nominal corner.
  double next_edge_jitter() { return next_edge_jitter({1.0, 1.0, 1.0}); }

  const JitterParams& params() const { return params_; }

 private:
  JitterParams params_;
  support::Xoshiro256 rng_;
  FlickerNoise flicker_;
  SharedSupplyNoise* shared_;
};

}  // namespace dhtrng::noise
