// Per-edge jitter model for gates and ring oscillators.
//
// Each logic transition in the event-driven simulator (and each accumulated
// sampling interval in the fast phase-domain models) receives a delay
// perturbation with three components:
//
//   * white:      independent Gaussian per edge — the entropy-bearing part;
//   * flicker:    1/f-correlated across edges — slow wander, low entropy;
//   * correlated: shared across *all* sources of a device (supply ripple,
//                 substrate coupling) — adversarially observable, zero
//                 entropy, and the main randomness spoiler at PVT corners.
//
// Sigmas are in picoseconds at the nominal corner; a PvtScaling rescales
// them per experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "noise/flicker.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::noise {

struct JitterParams {
  double white_sigma_ps = 1.0;      ///< per-edge white jitter sigma
  double flicker_sigma_ps = 0.5;    ///< marginal sigma of the flicker process
  double correlated_sigma_ps = 0.3; ///< sigma of the shared supply component
};

/// The device-wide shared noise source (one per simulated "chip").
/// Sources sample it once per edge; it evolves as a slow AR(1) process.
///
/// The AR(1) trajectory depends only on this object's private RNG stream,
/// not on which source calls step() — the global cross-source call order
/// decides who *receives* the k-th value, and consumption order equals
/// call order either way.  So the trajectory can be precomputed in blocks
/// (set_batch) with a bit-identical value stream.
class SharedSupplyNoise {
 public:
  SharedSupplyNoise(double sigma_ps, std::uint64_t seed,
                    double correlation = 0.995);

  /// Advance one step and return the current value (ps).
  double step() {
    if (block_pos_ < block_.size()) {
      value_ = block_[block_pos_++];
      return value_;
    }
    if (batch_ > 1) {
      refill();
      value_ = block_[block_pos_++];
      return value_;
    }
    return step_uncached();
  }
  double current() const { return value_; }

  /// Precompute the trajectory `n` steps at a time (n <= 1 restores
  /// per-call stepping; buffered values are always drained first).
  void set_batch(std::size_t n) { batch_ = n > 1 ? n : 1; }

 private:
  double step_uncached();
  void refill();

  double sigma_;
  double rho_;
  double innovation_sigma_;  ///< sqrt(1 - rho^2) * sigma, loop-invariant
  double value_ = 0.0;
  support::Xoshiro256 rng_;
  std::vector<double> block_;
  std::size_t block_pos_ = 0;
  std::size_t batch_ = 1;
};

/// Per-source edge jitter generator.
class EdgeJitterSource {
 public:
  EdgeJitterSource(const JitterParams& params, std::uint64_t seed,
                   SharedSupplyNoise* shared = nullptr);

  /// Delay perturbation (ps) for the next transition, with PVT scaling
  /// applied to the component sigmas.  The batched fast path (block
  /// already filled) is inline; refills and per-call draws go out of
  /// line.
  double next_edge_jitter(const PvtScaling& scale) {
    if (block_pos_ < white_block_.size()) {
      const double white = white_block_[block_pos_];
      const double flicker = flicker_block_[block_pos_];
      ++block_pos_;
      return combine(white, flicker, scale);
    }
    return next_edge_jitter_slow(scale);
  }

  /// Same at the nominal corner.
  double next_edge_jitter() { return next_edge_jitter({1.0, 1.0, 1.0}); }

  /// Draw the white and flicker components in blocks of `n` instead of one
  /// pair per call (the event engine's hot path).  The per-call value
  /// stream is bit-identical for every batch size — each component comes
  /// from its own RNG stream, so pre-drawing a block does not reorder
  /// anything; only the shared supply component, whose AR(1) state is
  /// stepped in global cross-source order, stays per-call.  `n <= 1`
  /// restores unbatched per-call draws.
  void set_batch(std::size_t n);

  const JitterParams& params() const { return params_; }

 private:
  void refill();
  double next_edge_jitter_slow(const PvtScaling& scale);

  /// Identical arithmetic to the historical per-call path:
  /// gaussian(0, sigma) == 0.0 + sigma * gaussian().
  double combine(double white, double flicker, const PvtScaling& scale) {
    double jitter = 0.0 + params_.white_sigma_ps * scale.white_jitter * white;
    jitter += flicker * scale.correlated_noise;
    if (shared_ != nullptr) {
      jitter += shared_->step() * scale.correlated_noise *
                (params_.correlated_sigma_ps > 0.0 ? 1.0 : 0.0);
    }
    return jitter;
  }

  JitterParams params_;
  support::Xoshiro256 rng_;
  FlickerNoise flicker_;
  SharedSupplyNoise* shared_;
  // Raw (unscaled) block buffers: white is a standard normal, flicker the
  // raw process sample; PVT scaling is applied at consumption time so a
  // scale change mid-block stays correct.
  std::vector<double> white_block_;
  std::vector<double> flicker_block_;
  std::size_t block_pos_ = 0;
  std::size_t batch_ = 1;
};

}  // namespace dhtrng::noise
