// Per-edge jitter model for gates and ring oscillators.
//
// Each logic transition in the event-driven simulator (and each accumulated
// sampling interval in the fast phase-domain models) receives a delay
// perturbation with three components:
//
//   * white:      independent Gaussian per edge — the entropy-bearing part;
//   * flicker:    1/f-correlated across edges — slow wander, low entropy;
//   * correlated: shared across *all* sources of a device (supply ripple,
//                 substrate coupling) — adversarially observable, zero
//                 entropy, and the main randomness spoiler at PVT corners.
//
// Sigmas are in picoseconds at the nominal corner; a PvtScaling rescales
// them per experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "noise/flicker.h"
#include "noise/pvt.h"
#include "support/rng.h"

namespace dhtrng::noise {

/// Noise fidelity mode.
///
///  * Exact — the historical draw-for-draw arithmetic (polar-method
///    gaussians, per-sample flicker summation).  Golden-waveform digests
///    pin this stream; it is the default everywhere.
///  * Fast — fused xoshiro + Box-Muller through the dispatched SIMD
///    kernels (support/simd_noise.h; two trimmed-grade normals per raw
///    word) plus pre-combined delay blocks.  The streams are
///    statistically equivalent but NOT bit-compatible with Exact, so
///    golden digests do not apply; waveforms are still deterministic per
///    (seed, mode) and identical across dispatch tiers.
enum class NoiseMode { Exact, Fast };

/// Fast-mode noise is drawn in fixed blocks of this many samples in every
/// component (white, flicker, shared supply), so waveforms in
/// NoiseMode::Fast are independent of the set_batch() configuration.  The
/// fused gaussian_fill_fast stream is position-fixed (normals 2j, 2j+1
/// come from the j-th raw word regardless of chunking), so any even block
/// size draws the same values — this constant only amortizes refill
/// overhead.
inline constexpr std::size_t kFastNoiseBlock = 256;

struct JitterParams {
  double white_sigma_ps = 1.0;      ///< per-edge white jitter sigma
  double flicker_sigma_ps = 0.5;    ///< marginal sigma of the flicker process
  double correlated_sigma_ps = 0.3; ///< sigma of the shared supply component
};

/// The device-wide shared noise source (one per simulated "chip").
/// Sources sample it once per edge; it evolves as a slow AR(1) process.
///
/// The AR(1) trajectory depends only on this object's private RNG stream,
/// not on which source calls step() — the global cross-source call order
/// decides who *receives* the k-th value, and consumption order equals
/// call order either way.  So the trajectory can be precomputed in blocks
/// (set_batch) with a bit-identical value stream.
class SharedSupplyNoise {
 public:
  SharedSupplyNoise(double sigma_ps, std::uint64_t seed,
                    double correlation = 0.995);

  /// Advance one step and return the current value (ps).
  double step() {
    if (block_pos_ < block_.size()) {
      value_ = block_[block_pos_++];
      return value_;
    }
    if (batch_ > 1 || mode_ == NoiseMode::Fast) {
      refill();
      value_ = block_[block_pos_++];
      return value_;
    }
    return step_uncached();
  }
  double current() const { return value_; }

  /// Precompute the trajectory `n` steps at a time (n <= 1 restores
  /// per-call stepping; buffered values are always drained first).
  void set_batch(std::size_t n) { batch_ = n > 1 ? n : 1; }

  /// Fast mode draws the AR(1) innovations via gaussian_fill_fast (the
  /// recurrence itself is unchanged).  Takes effect at the next refill.
  void set_mode(NoiseMode m) { mode_ = m; }

 private:
  double step_uncached();
  void refill();

  double sigma_;
  double rho_;
  double innovation_sigma_;  ///< sqrt(1 - rho^2) * sigma, loop-invariant
  double value_ = 0.0;
  support::Xoshiro256 rng_;
  std::vector<double> block_;
  std::size_t block_pos_ = 0;
  std::size_t batch_ = 1;
  NoiseMode mode_ = NoiseMode::Exact;
};

/// Per-source edge jitter generator.
class EdgeJitterSource {
 public:
  EdgeJitterSource(const JitterParams& params, std::uint64_t seed,
                   SharedSupplyNoise* shared = nullptr);

  /// Delay perturbation (ps) for the next transition, with PVT scaling
  /// applied to the component sigmas.  The batched fast path (block
  /// already filled) is inline; refills and per-call draws go out of
  /// line.
  double next_edge_jitter(const PvtScaling& scale) {
    if (block_pos_ < white_block_.size()) {
      const double white = white_block_[block_pos_];
      const double flicker = flicker_block_[block_pos_];
      ++block_pos_;
      return combine(white, flicker, scale);
    }
    return next_edge_jitter_slow(scale);
  }

  /// Same at the nominal corner.
  double next_edge_jitter() { return next_edge_jitter({1.0, 1.0, 1.0}); }

  /// Fast-noise mode: precompute *complete* per-edge delays instead of
  /// raw components.  Each block entry is
  ///     base_delay_ps + white_gain * w[i] + flicker_gain * f[i]
  /// with the gains folded in at refill time (the PvtScaling is
  /// snapshotted here — the simulator's scaling is per-run constant), the
  /// gaussians drawn via gaussian_fill_fast and the flicker lattice via
  /// FlickerNoise::fill_fast.  Only the shared-supply term stays per-call
  /// so cross-gate supply correlation keeps its global consumption order.
  /// NOT bit-compatible with next_edge_jitter (see NoiseMode).
  void enable_fast_delay(double base_delay_ps, double floor_ps,
                         const PvtScaling& scale);

  /// Next complete gate delay (ps), clamped to the floor passed to
  /// enable_fast_delay.  Call only after enable_fast_delay.
  double next_delay_fast() {
    if (delay_pos_ >= delay_block_.size()) refill_fast();
    double d = delay_block_[delay_pos_++];
    if (shared_ != nullptr) {
      d = std::fma(shared_->step(), fast_shared_gain_, d);
    }
    return d < fast_floor_ ? fast_floor_ : d;
  }

  /// Draw the white and flicker components in blocks of `n` instead of one
  /// pair per call (the event engine's hot path).  The per-call value
  /// stream is bit-identical for every batch size — each component comes
  /// from its own RNG stream, so pre-drawing a block does not reorder
  /// anything; only the shared supply component, whose AR(1) state is
  /// stepped in global cross-source order, stays per-call.  `n <= 1`
  /// restores unbatched per-call draws.
  void set_batch(std::size_t n);

  const JitterParams& params() const { return params_; }

 private:
  void refill();
  void refill_fast();
  double next_edge_jitter_slow(const PvtScaling& scale);

  /// Identical arithmetic to the historical per-call path:
  /// gaussian(0, sigma) == 0.0 + sigma * gaussian().
  double combine(double white, double flicker, const PvtScaling& scale) {
    double jitter = 0.0 + params_.white_sigma_ps * scale.white_jitter * white;
    jitter += flicker * scale.correlated_noise;
    if (shared_ != nullptr) {
      jitter += shared_->step() * scale.correlated_noise *
                (params_.correlated_sigma_ps > 0.0 ? 1.0 : 0.0);
    }
    return jitter;
  }

  JitterParams params_;
  support::Xoshiro256 rng_;
  FlickerNoise flicker_;
  SharedSupplyNoise* shared_;
  // Raw (unscaled) block buffers: white is a standard normal, flicker the
  // raw process sample; PVT scaling is applied at consumption time so a
  // scale change mid-block stays correct.
  std::vector<double> white_block_;
  std::vector<double> flicker_block_;
  std::size_t block_pos_ = 0;
  std::size_t batch_ = 1;
  // Fast-delay mode (enable_fast_delay): pre-combined delay blocks and the
  // gains/constants folded into them.
  std::vector<double> delay_block_;
  std::size_t delay_pos_ = 0;
  double fast_base_ = 0.0;
  double fast_floor_ = 0.0;
  double fast_white_gain_ = 0.0;
  double fast_flicker_gain_ = 0.0;
  double fast_shared_gain_ = 0.0;
};

}  // namespace dhtrng::noise
