#include "noise/phase_noise.h"

#include <cmath>

namespace dhtrng::noise {

namespace {
constexpr double kBoltzmann = 1.380649e-23;  // J/K
}

double phase_noise_ssb(const PhaseNoiseParams& p, double offset_hz) {
  const double n = static_cast<double>(p.stages);
  const double kt_over_p = kBoltzmann * p.temperature_k / p.power_w;
  const double voltage_term = p.vdd_v / p.vchar_v + p.vdd_v / p.ir_v;
  const double ratio = p.frequency_hz / offset_hz;
  return (8.0 * n / (3.0 * p.eta)) * kt_over_p * voltage_term * ratio * ratio;
}

double phase_noise_dbc(const PhaseNoiseParams& p, double offset_hz) {
  return 10.0 * std::log10(phase_noise_ssb(p, offset_hz));
}

double jitter_kappa(const PhaseNoiseParams& p) {
  // L{df} = f0^2 kappa^2 / df^2; evaluate at any offset (the df cancels).
  const double offset = 1e6;
  const double l = phase_noise_ssb(p, offset);
  return std::sqrt(l) * offset / p.frequency_hz;
}

double edge_jitter_sigma_ps(const PhaseNoiseParams& p) {
  const double t_half = 0.5 / p.frequency_hz;
  return jitter_kappa(p) * std::sqrt(t_half) * 1e12;
}

double accumulated_jitter_sigma_ps(const PhaseNoiseParams& p,
                                   double interval_s) {
  return jitter_kappa(p) * std::sqrt(interval_s) * 1e12;
}

}  // namespace dhtrng::noise
