// Hajimiri ring-oscillator phase-noise model (the paper's Equation 1) and
// its conversion to per-edge timing jitter.
//
//   L_min{df} = (8N / 3eta) * (kT / P) * (Vdd/Vchar + Vdd/(I*R)) * (f0/df)^2
//
// For a white-noise-dominated oscillator the single-sideband phase noise at
// offset df relates to the per-second timing-jitter accumulation constant
// kappa (sigma_t(tau) = kappa * sqrt(tau)) by
//
//   L{df} = (f0^2 * kappa^2) / df^2        =>  kappa = sqrt(L) * df / f0.
//
// The library uses this to derive the per-stage white jitter sigma used by
// both simulator backends, so ring order N, frequency f0 and power P all
// influence entropy exactly through the paper's own model.
#pragma once

namespace dhtrng::noise {

struct PhaseNoiseParams {
  int stages = 3;                ///< ring order N
  double frequency_hz = 1e9;     ///< oscillation frequency f0
  double power_w = 1e-4;         ///< power consumption P of the ring
  double eta = 1.0;              ///< proportionality constant
  double temperature_k = 293.15; ///< absolute temperature T
  double vdd_v = 1.0;            ///< supply
  double vchar_v = 0.5;          ///< characteristic voltage (Vdd/V term)
  double ir_v = 0.5;             ///< I*R voltage drop term
};

/// Single-sideband phase noise L{df} (linear power ratio, not dBc/Hz)
/// at offset frequency `offset_hz`, per Eq. (1).
double phase_noise_ssb(const PhaseNoiseParams& p, double offset_hz);

/// Same in dBc/Hz.
double phase_noise_dbc(const PhaseNoiseParams& p, double offset_hz);

/// Jitter accumulation constant kappa (seconds per sqrt-second): the
/// standard deviation of the oscillator's absolute timing error after
/// observing for `tau` seconds is kappa * sqrt(tau).
double jitter_kappa(const PhaseNoiseParams& p);

/// Per-edge (half-period) white jitter sigma in picoseconds implied by the
/// model: sigma_edge = kappa * sqrt(T_half).
double edge_jitter_sigma_ps(const PhaseNoiseParams& p);

/// Accumulated jitter sigma (ps) over a sampling interval `interval_s`.
double accumulated_jitter_sigma_ps(const PhaseNoiseParams& p,
                                   double interval_s);

}  // namespace dhtrng::noise
