#include "noise/pvt.h"

#include <cmath>

namespace dhtrng::noise {

namespace {

constexpr double kNominalTempC = 20.0;
constexpr double kNominalVoltage = 1.0;
constexpr double kKelvinOffset = 273.15;
// Mobility temperature exponent: delay grows ~ (T/T0)^1.3 at fixed V.
constexpr double kMobilityExponent = 1.3;

}  // namespace

PvtScaling pvt_scaling(const PvtCondition& pvt, double vth_v, double alpha) {
  const double t_k = pvt.temperature_c + kKelvinOffset;
  const double t0_k = kNominalTempC + kKelvinOffset;

  // Alpha-power law delay, normalized to the nominal corner.
  const auto drive = [&](double v) {
    return v / std::pow(std::max(v - vth_v, 0.05), alpha);
  };
  const double delay = (drive(pvt.voltage_v) / drive(kNominalVoltage)) *
                       std::pow(t_k / t0_k, kMobilityExponent);

  // Thermal jitter sigma ~ sqrt(kT) and rides on the (scaled) delay.
  const double white = std::sqrt(t_k / t0_k) * delay;

  // Correlated-noise share grows away from the nominal corner (supply
  // regulation and bias-point sensitivity); quadratic bowl, floor of 1.
  const double dv = (pvt.voltage_v - kNominalVoltage) / 0.2;  // per 0.2 V
  const double dt = (pvt.temperature_c - kNominalTempC) / 50.0;  // per 50 degC
  const double correlated = (1.0 + 0.55 * dv * dv + 0.35 * dt * dt) * delay;

  return {delay, white, correlated};
}

}  // namespace dhtrng::noise
