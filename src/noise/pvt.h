// Process / Voltage / Temperature condition and first-order scaling laws.
//
// This is the software stand-in for the paper's experimental platform
// (Figure 6: temperature chamber −20…80 °C and programmable DC supply
// 0.8…1.2 V).  The scaling laws are first-order device physics:
//
//  * Gate delay follows the alpha-power MOSFET law, delay ∝ V / (V − Vth)^α,
//    and increases weakly with temperature through mobility degradation.
//  * White (thermal) jitter power is ∝ kT, so sigma ∝ sqrt(T_kelvin), and
//    scales with the delay it perturbs.
//  * Away from the nominal corner, the *correlated* (supply / coupling)
//    noise share rises — supply regulation is poorest at the voltage rails
//    and charge-pump/regulator ripple grows with |ΔT| — which is what makes
//    measured min-entropy dip slightly at the corners of Figure 9 even
//    though raw jitter grows.
#pragma once

namespace dhtrng::noise {

struct PvtCondition {
  double temperature_c = 20.0;  ///< ambient, in degrees Celsius
  double voltage_v = 1.0;       ///< core supply, in volts

  static PvtCondition nominal() { return {}; }
};

struct PvtScaling {
  double delay;             ///< multiplies all nominal gate/net delays
  double white_jitter;      ///< multiplies the white edge-jitter sigma
  double correlated_noise;  ///< multiplies the correlated (non-entropic) noise
};

/// First-order PVT scale factors relative to the nominal corner
/// (20 degC, 1.0 V).  `vth_v` and `alpha` are process parameters supplied by
/// the device model (they differ between 45 nm and 28 nm).
PvtScaling pvt_scaling(const PvtCondition& pvt, double vth_v, double alpha);

}  // namespace dhtrng::noise
