#include "service/client.h"

namespace dhtrng::service {

namespace {

/// Responses can be at most the requested bytes plus the headers; anything
/// past this is a framing violation, not a big response.  (The cap only
/// guards the client against a runaway peer — the server enforces its own
/// per-request budget.)
constexpr std::size_t kMaxResponsePayload = (1u << 26) + 64;

}  // namespace

EntropyClient EntropyClient::connect_tcp(const std::string& host,
                                         std::uint16_t port) {
  Socket sock = service::connect_tcp(host, port);
  if (!sock.valid()) {
    throw std::runtime_error("EntropyClient: cannot connect to " + host +
                             ":" + std::to_string(port));
  }
  return EntropyClient(std::move(sock));
}

EntropyClient EntropyClient::connect_unix(const std::string& path) {
  Socket sock = service::connect_unix(path);
  if (!sock.valid()) {
    throw std::runtime_error("EntropyClient: cannot connect to " + path);
  }
  return EntropyClient(std::move(sock));
}

Response EntropyClient::roundtrip(const std::vector<std::uint8_t>& frame) {
  if (!sock_.write_all(frame.data(), frame.size())) {
    throw ProtocolError("connection lost while sending request");
  }
  std::uint8_t header[kLenPrefixBytes];
  if (!sock_.read_exact(header, sizeof(header))) {
    throw ProtocolError("connection closed before a response arrived");
  }
  const std::uint32_t len = read_u32le(header);
  if (len < kResponseHeaderBytes || len > kMaxResponsePayload) {
    throw ProtocolError("response frame length out of range: " +
                        std::to_string(len));
  }
  std::vector<std::uint8_t> payload(len);
  if (!sock_.read_exact(payload.data(), payload.size())) {
    throw ProtocolError("connection closed mid-response");
  }
  Response response;
  if (!decode_response_payload(payload.data(), payload.size(), response)) {
    throw ProtocolError("malformed response payload");
  }
  return response;
}

EntropyClient::FetchResult EntropyClient::fetch(std::uint32_t n,
                                                Quality quality) {
  const Response response = roundtrip(encode_get_request(quality, n));
  FetchResult result;
  result.status = response.status;
  result.degraded = response.degraded();
  if (response.status == Status::Ok) {
    if (response.payload.size() != n) {
      throw ProtocolError("Ok response carries " +
                          std::to_string(response.payload.size()) +
                          " bytes, requested " + std::to_string(n));
    }
    result.bytes = response.payload;
  } else {
    result.detail = response.text();
  }
  return result;
}

std::string EntropyClient::stats() {
  const Response response = roundtrip(encode_stats_request());
  if (response.status != Status::Ok) {
    throw ProtocolError(std::string("STATS refused: ") +
                        status_name(response.status));
  }
  return response.text();
}

std::string EntropyClient::cert() {
  const Response response = roundtrip(encode_cert_request());
  if (response.status != Status::Ok) {
    throw ProtocolError(std::string("CERT refused: ") +
                        status_name(response.status));
  }
  return response.text();
}

}  // namespace dhtrng::service
