#include "service/client.h"

#include <poll.h>

namespace dhtrng::service {

namespace {

/// Responses can be at most the requested bytes plus the headers; anything
/// past this is a framing violation, not a big response.  (The cap only
/// guards the client against a runaway peer — the server enforces its own
/// per-request budget.)
constexpr std::size_t kMaxResponsePayload = (1u << 26) + 64;

}  // namespace

EntropyClient EntropyClient::connect_tcp(const std::string& host,
                                         std::uint16_t port) {
  Socket sock = service::connect_tcp(host, port);
  if (!sock.valid()) {
    throw std::runtime_error("EntropyClient: cannot connect to " + host +
                             ":" + std::to_string(port));
  }
  return EntropyClient(std::move(sock));
}

EntropyClient EntropyClient::connect_unix(const std::string& path) {
  Socket sock = service::connect_unix(path);
  if (!sock.valid()) {
    throw std::runtime_error("EntropyClient: cannot connect to " + path);
  }
  return EntropyClient(std::move(sock));
}

Response EntropyClient::roundtrip(const std::vector<std::uint8_t>& frame) {
  if (!sock_.write_all(frame.data(), frame.size())) {
    throw ProtocolError("connection lost while sending request");
  }
  return read_response();
}

Response EntropyClient::read_response() {
  std::uint8_t header[kLenPrefixBytes];
  if (!sock_.read_exact(header, sizeof(header))) {
    throw ProtocolError("connection closed before a response arrived");
  }
  const std::uint32_t len = read_u32le(header);
  if (len < kResponseHeaderBytes || len > kMaxResponsePayload) {
    throw ProtocolError("response frame length out of range: " +
                        std::to_string(len));
  }
  std::vector<std::uint8_t> payload(len);
  if (!sock_.read_exact(payload.data(), payload.size())) {
    throw ProtocolError("connection closed mid-response");
  }
  Response response;
  if (!decode_response_payload(payload.data(), payload.size(), response)) {
    throw ProtocolError("malformed response payload");
  }
  return response;
}

EntropyClient::FetchResult EntropyClient::fetch(std::uint32_t n,
                                                Quality quality) {
  const Response response = roundtrip(encode_get_request(quality, n));
  FetchResult result;
  result.status = response.status;
  result.degraded = response.degraded();
  if (response.status == Status::Ok) {
    if (response.payload.size() != n) {
      throw ProtocolError("Ok response carries " +
                          std::to_string(response.payload.size()) +
                          " bytes, requested " + std::to_string(n));
    }
    result.bytes = response.payload;
  } else {
    result.detail = response.text();
  }
  return result;
}

namespace {

EntropyClient::PushResult to_push_result(const Response& response) {
  EntropyClient::PushResult result;
  result.status = response.status;
  result.degraded = response.degraded();
  result.push = (response.flags & kFlagPush) != 0;
  if (response.status == Status::Ok) {
    result.bytes = response.payload;
  } else {
    result.detail = response.text();
  }
  return result;
}

}  // namespace

EntropyClient::FetchResult EntropyClient::subscribe(std::uint32_t chunk,
                                                    std::uint32_t interval_ms,
                                                    Quality quality) {
  // The acknowledgement is enqueued before any push on the server side,
  // so the first frame back is always the ack.
  const Response response =
      roundtrip(encode_subscribe_request(quality, chunk, interval_ms));
  FetchResult result;
  result.status = response.status;
  result.degraded = response.degraded();
  if (response.status != Status::Ok) result.detail = response.text();
  return result;
}

EntropyClient::PushResult EntropyClient::next_push() {
  return to_push_result(read_response());
}

std::optional<EntropyClient::PushResult> EntropyClient::try_next_push(
    int timeout_ms) {
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;  // timeout or EINTR
  return next_push();
}

std::vector<EntropyClient::PushResult> EntropyClient::unsubscribe() {
  const auto frame = encode_unsubscribe_request();
  if (!sock_.write_all(frame.data(), frame.size())) {
    throw ProtocolError("connection lost while sending UNSUBSCRIBE");
  }
  std::vector<PushResult> drained;
  while (true) {
    const PushResult result = to_push_result(read_response());
    if (result.push) {
      drained.push_back(result);
      continue;
    }
    if (result.status != Status::Ok) {
      throw ProtocolError(std::string("UNSUBSCRIBE refused: ") +
                          status_name(result.status) + " " + result.detail);
    }
    return drained;
  }
}

std::string EntropyClient::stats() {
  const Response response = roundtrip(encode_stats_request());
  if (response.status != Status::Ok) {
    throw ProtocolError(std::string("STATS refused: ") +
                        status_name(response.status));
  }
  return response.text();
}

std::string EntropyClient::cert() {
  const Response response = roundtrip(encode_cert_request());
  if (response.status != Status::Ok) {
    throw ProtocolError(std::string("CERT refused: ") +
                        status_name(response.status));
  }
  return response.text();
}

}  // namespace dhtrng::service
