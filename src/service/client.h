// Blocking client for the entropy service protocol — used by the
// trng_tool fetch/stats subcommands, the loopback benchmarks, and the
// integration tests.  One request in flight at a time (the protocol is
// strictly request/response per connection).
//
// Transport failures and framing violations throw ProtocolError; protocol-
// level refusals (rate limit, exhaustion, ...) come back as a normal
// FetchResult with the structured status and detail text, because they are
// part of the documented failure policy, not errors in the conversation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/socket.h"

namespace dhtrng::service {

/// The peer broke the conversation: disconnect mid-frame, an inconsistent
/// frame, or a response that does not match the request.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

class EntropyClient {
 public:
  /// Throws std::runtime_error when the connection cannot be established.
  static EntropyClient connect_tcp(const std::string& host,
                                   std::uint16_t port);
  static EntropyClient connect_unix(const std::string& path);

  struct FetchResult {
    Status status = Status::Ok;
    bool degraded = false;           ///< kFlagDegraded set by the server
    std::vector<std::uint8_t> bytes; ///< entropy (Ok only)
    std::string detail;              ///< structured error text (non-Ok)

    bool ok() const { return status == Status::Ok; }
  };

  /// Request `n` bytes at `quality`.  On Status::Ok the result carries
  /// exactly `n` bytes (anything else is a ProtocolError).
  FetchResult fetch(std::uint32_t n, Quality quality = Quality::Raw);

  /// One frame received on a subscription stream.  `push` distinguishes
  /// server pushes (kFlagPush) from request/response frames interleaved
  /// on the same connection.
  struct PushResult {
    Status status = Status::Ok;
    bool degraded = false;
    bool push = false;
    std::vector<std::uint8_t> bytes;  ///< entropy (Ok pushes)
    std::string detail;               ///< structured error text (non-Ok)

    bool ok() const { return status == Status::Ok; }
  };

  /// Open a push stream: `chunk` bytes per push, every `interval_ms`
  /// milliseconds (0 = as fast as the server's buckets allow).  Returns
  /// the server's acknowledgement — Status::Ok means pushes will follow;
  /// any other status is the structured refusal and no stream exists.
  FetchResult subscribe(std::uint32_t chunk, std::uint32_t interval_ms,
                        Quality quality = Quality::Raw);

  /// Block until the next frame on this connection (normally a push).
  /// Throws ProtocolError on disconnect or framing violations.
  PushResult next_push();

  /// Wait up to `timeout_ms` for the next frame; nullopt on timeout.
  std::optional<PushResult> try_next_push(int timeout_ms);

  /// End the stream: sends UNSUBSCRIBE and drains every in-flight push
  /// until the non-push Ok acknowledgement arrives (FIFO framing
  /// guarantees the ack follows the final push).  Returns the drained
  /// pushes so callers can keep their byte accounting exact.
  std::vector<PushResult> unsubscribe();

  /// Plaintext metrics dump from the STATS admin command.
  std::string stats();

  /// Plaintext streaming-certification dump from the CERT admin command.
  std::string cert();

  void close() { sock_.close(); }
  bool connected() const { return sock_.valid(); }

 private:
  explicit EntropyClient(Socket sock) : sock_(std::move(sock)) {}

  Response roundtrip(const std::vector<std::uint8_t>& frame);
  Response read_response();

  Socket sock_;
};

}  // namespace dhtrng::service
