#include "service/entropy_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>
#include <utility>

#include "support/sha256.h"

namespace dhtrng::service {

namespace {

/// Frames batched into one sendmsg call.
constexpr std::size_t kWritevBatch = 16;
/// Retry cadence (real time) for deferred subscription pushes — short
/// enough that a drained bucket is noticed promptly, long enough not to
/// spin while the bucket refills.
constexpr int kDeferredRetryMs = 2;
/// Idle loop heartbeat (stop() uses the wake pipe, this is a safety net).
constexpr int kIdleTimeoutMs = 500;

}  // namespace

bool EntropyServer::PoolSource::next_bit() {
  if (bit_ == buf_.size() * 8) {
    buf_ = pool_.get_bytes(64);  // throws EntropyExhausted when pool is gone
    bit_ = 0;
  }
  const std::uint8_t byte = buf_[bit_ / 8];
  const bool bit = ((byte >> (7 - bit_ % 8)) & 1u) != 0;
  ++bit_;
  return bit;
}

EntropyServer::EntropyServer(EntropyServerConfig config,
                             core::EntropyPool::SourceFactory factory)
    : config_(std::move(config)),
      pool_(config_.pool, std::move(factory)),
      global_bucket_(config_.global_rate_bytes_per_s,
                     config_.global_burst_bytes, config_.clock) {
  if (config_.degraded_after_retired == 0) config_.degraded_after_retired = 1;
  const std::size_t nshards = std::max<std::size_t>(
      1, config_.shards != 0 ? config_.shards : config_.worker_threads);
  const Poller::Backend backend = config_.force_poll_backend
                                      ? Poller::Backend::Poll
                                      : Poller::Backend::Auto;
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>(backend));
    shards_.back()->index = i;
  }

  if (config_.enable_tcp) {
    if (nshards > 1) {
      // One SO_REUSEPORT listener per shard so the kernel load-balances
      // accepts; if the sibling binds fail (no SO_REUSEPORT) fall back to
      // a single listener on shard 0 with round-robin handoff.
      try {
        Listener first = Listener::tcp_loopback(config_.tcp_port, true);
        tcp_port_ = first.port();
        std::vector<Listener> rest;
        rest.reserve(nshards - 1);
        for (std::size_t i = 1; i < nshards; ++i) {
          rest.push_back(Listener::tcp_loopback(tcp_port_, true));
        }
        shards_[0]->listeners.push_back(
            ShardListener{std::move(first), false});
        for (std::size_t i = 1; i < nshards; ++i) {
          shards_[i]->listeners.push_back(
              ShardListener{std::move(rest[i - 1]), false});
        }
      } catch (const std::runtime_error&) {
        Listener only = Listener::tcp_loopback(config_.tcp_port, false);
        tcp_port_ = only.port();
        shards_[0]->listeners.push_back(ShardListener{std::move(only), true});
      }
    } else {
      Listener only = Listener::tcp_loopback(config_.tcp_port, false);
      tcp_port_ = only.port();
      shards_[0]->listeners.push_back(ShardListener{std::move(only), false});
    }
  }
  if (!config_.unix_path.empty()) {
    shards_[0]->listeners.push_back(
        ShardListener{Listener::unix_domain(config_.unix_path), nshards > 1});
  }
  bool any_listener = false;
  for (const auto& shard : shards_) {
    if (!shard->listeners.empty()) any_listener = true;
  }
  if (!any_listener) {
    throw std::invalid_argument("EntropyServer: no listeners configured");
  }

  for (auto& shard : shards_) {
    shard->poller.add(shard->wake.read_fd(), /*want_read=*/true,
                      /*want_write=*/false);
    for (auto& sl : shard->listeners) {
      sl.listener.set_nonblocking();
      shard->poller.add(sl.listener.fd(), /*want_read=*/true,
                        /*want_write=*/false);
    }
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { shard_loop(*s); });
  }
}

std::unique_ptr<EntropyServer> EntropyServer::of_dhtrng(
    EntropyServerConfig config, core::DhTrngConfig core) {
  config.noise_mode_label =
      core.noise_mode == noise::NoiseMode::Fast ? "fast" : "exact";
  return std::make_unique<EntropyServer>(
      std::move(config),
      [core](std::size_t, std::uint64_t seed)
          -> std::unique_ptr<core::TrngSource> {
        core::DhTrngConfig per_producer = core;
        per_producer.seed = seed;
        return std::make_unique<core::DhTrng>(per_producer);
      });
}

EntropyServer::~EntropyServer() { stop(); }

void EntropyServer::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Stop the pool first: a shard blocked inside a draw (pool buffer
  // empty) observes EntropyExhausted and returns to its loop, where the
  // doorbell below is waiting.
  pool_.stop();
  for (auto& shard : shards_) shard->wake.notify();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

ServiceState EntropyServer::state() const {
  const core::PoolHealthSnapshot snap = pool_.snapshot();
  if (snap.healthy == 0) return ServiceState::Exhausted;
  if (snap.retired >= config_.degraded_after_retired) {
    return ServiceState::Degraded;
  }
  return ServiceState::Healthy;
}

bool EntropyServer::using_epoll() const {
  return !shards_.empty() && shards_[0]->poller.using_epoll();
}

std::uint64_t EntropyServer::clock_now_ns() const {
  if (config_.clock) return config_.clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int EntropyServer::do_accept(int listener_fd) {
  if (config_.accept_fn) return config_.accept_fn(listener_fd);
  return accept_nonblocking(listener_fd);
}

// ---------------------------------------------------------------------------
// Shard event loop
// ---------------------------------------------------------------------------

int EntropyServer::shard_timeout_ms(const Shard& shard) const {
  int timeout = kIdleTimeoutMs;
  std::uint64_t now = 0;
  bool have_now = false;
  for (const auto& kv : shard.conns) {
    const Connection& c = *kv.second;
    if (!c.subscribed || c.close_after_flush) continue;
    if (c.sub_deferred) {
      timeout = std::min(timeout, kDeferredRetryMs);
      continue;
    }
    if (c.sub_interval_ms == 0) return 0;
    if (!have_now) {
      now = clock_now_ns();
      have_now = true;
    }
    if (now >= c.sub_due_ns) return 0;
    const std::uint64_t ms = (c.sub_due_ns - now) / 1000000u + 1;
    timeout = std::min<int>(
        timeout, static_cast<int>(std::min<std::uint64_t>(
                     ms, static_cast<std::uint64_t>(kIdleTimeoutMs))));
  }
  return timeout;
}

void EntropyServer::shard_loop(Shard& shard) {
  std::vector<Poller::Event> events;
  while (true) {
    shard.poller.wait(events, shard_timeout_ms(shard));
    metrics_.epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_acquire)) break;

    // Adopt handed-off connections first so their events (already
    // pending in the kernel) are picked up on the next wait.
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lock(shard.adopted_mutex);
      adopted.swap(shard.adopted);
    }
    for (int fd : adopted) attach_connection(shard, fd);

    for (const Poller::Event& event : events) {
      if (event.fd == shard.wake.read_fd()) {
        shard.wake.drain();
        continue;
      }
      bool was_listener = false;
      for (auto& sl : shard.listeners) {
        if (sl.listener.fd() == event.fd) {
          drain_accepts(shard, sl);
          was_listener = true;
          break;
        }
      }
      if (was_listener) continue;
      auto it = shard.conns.find(event.fd);
      if (it == shard.conns.end()) continue;  // closed earlier this batch
      if (event.readable || event.hangup) {
        handle_readable(shard, *it->second);
        it = shard.conns.find(event.fd);
        if (it == shard.conns.end()) continue;
      }
      if (event.writable) flush_writes(shard, *it->second);
    }

    service_subscriptions(shard);
  }

  // Shutdown: close adopted-but-unattached fds (they hold slots), then
  // every live connection, then the listeners.
  {
    std::lock_guard<std::mutex> lock(shard.adopted_mutex);
    for (int fd : shard.adopted) {
      ::close(fd);
      metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      metrics_.connections_active.fetch_sub(1, std::memory_order_acq_rel);
    }
    shard.adopted.clear();
  }
  std::vector<int> fds;
  fds.reserve(shard.conns.size());
  for (const auto& kv : shard.conns) fds.push_back(kv.first);
  for (int fd : fds) close_connection(shard, fd);
  for (auto& sl : shard.listeners) sl.listener.close();
}

void EntropyServer::drain_accepts(Shard& shard, ShardListener& sl) {
  while (true) {
    const int listener_fd = sl.listener.fd();
    if (listener_fd < 0) return;  // closed after a fatal error
    const int fd = do_accept(listener_fd);
    if (fd >= 0) {
      metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      if (!claim_slot(fd)) continue;
      if (sl.distribute && shards_.size() > 1) {
        const std::size_t target = handoff_rr_.fetch_add(
                                       1, std::memory_order_relaxed) %
                                   shards_.size();
        if (target != shard.index) {
          Shard& dest = *shards_[target];
          {
            std::lock_guard<std::mutex> lock(dest.adopted_mutex);
            dest.adopted.push_back(fd);
          }
          dest.wake.notify();
          continue;
        }
      }
      attach_connection(shard, fd);
      continue;
    }
    switch (classify_accept_errno(errno)) {
      case AcceptOutcome::WouldBlock:
        return;
      case AcceptOutcome::Retry:
        metrics_.accept_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      case AcceptOutcome::SoftExhausted:
        // fd/memory pressure: brief pause; the level-triggered poller
        // re-reports the backlog, so this costs one retry every 2 ms
        // until pressure clears instead of a hot spin.
        metrics_.accept_soft_errors.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return;
      case AcceptOutcome::Fatal:
        metrics_.accept_fatal_errors.fetch_add(1, std::memory_order_relaxed);
        shard.poller.del(listener_fd);
        sl.listener.close();
        return;
    }
  }
}

bool EntropyServer::claim_slot(int fd) {
  const std::uint64_t slot =
      metrics_.connections_active.fetch_add(1, std::memory_order_acq_rel);
  if (slot < config_.max_connections) return true;
  metrics_.connections_active.fetch_sub(1, std::memory_order_acq_rel);
  metrics_.count_error(Status::Busy);
  // Best-effort unsolicited Busy on the fresh socket (a ~35-byte frame
  // always fits the empty send buffer), then close.
  const auto frame = encode_error_frame(Status::Busy, "connection slots full");
  (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  ::close(fd);
  return false;
}

void EntropyServer::attach_connection(Shard& shard, int fd) {
  auto conn = std::make_unique<Connection>(fd, config_);
  conn->sock.set_nodelay();
  shard.poller.add(fd, /*want_read=*/true, /*want_write=*/false);
  shard.conns.emplace(fd, std::move(conn));
}

void EntropyServer::close_connection(Shard& shard, int fd) {
  auto it = shard.conns.find(fd);
  if (it == shard.conns.end()) return;
  Connection& conn = *it->second;
  if (conn.subscribed) end_subscription(conn);
  shard.poller.del(fd);
  conn.sock.close();
  shard.conns.erase(it);
  metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  metrics_.connections_active.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void EntropyServer::handle_readable(Shard& shard, Connection& conn) {
  const int fd = conn.sock.fd();
  std::uint8_t buf[16384];
  while (!conn.read_closed) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn.assembler.feed(buf, static_cast<std::size_t>(r));
      std::vector<std::uint8_t> payload;
      while (!conn.close_after_flush && conn.assembler.next(payload)) {
        serve_payload(shard, conn, payload);
      }
      if (!conn.close_after_flush &&
          conn.assembler.error() != FrameAssembler::Error::None) {
        // Zero-length or oversized request frame: the stream cannot be
        // trusted past this point, so answer with a structured error and
        // close once it has flushed.
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        metrics_.count_error(Status::BadRequest);
        const bool zero =
            conn.assembler.error() == FrameAssembler::Error::ZeroLength;
        enqueue_frame(shard, conn,
                      encode_error_frame(Status::BadRequest,
                                         zero ? "zero-length frame"
                                              : "request frame too large"));
        conn.close_after_flush = true;
      }
      if (conn.close_after_flush) {
        conn.read_closed = true;
        shard.poller.mod(fd, /*want_read=*/false, conn.want_write);
        break;
      }
      continue;
    }
    if (r == 0) {  // peer EOF
      if (conn.assembler.buffered() > 0 &&
          conn.assembler.error() == FrameAssembler::Error::None) {
        // Disconnect mid-frame: nobody left to answer.
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      conn.read_closed = true;
      conn.close_after_flush = true;  // flush queued responses, then close
      shard.poller.mod(fd, /*want_read=*/false, conn.want_write);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(shard, fd);  // hard socket error
    return;
  }
  flush_writes(shard, conn);
}

void EntropyServer::serve_payload(Shard& shard, Connection& conn,
                                  const std::vector<std::uint8_t>& payload) {
  Request request;
  const DecodeError err =
      decode_request(payload.data(), payload.size(), request);
  if (err != DecodeError::None) {
    metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_.count_error(Status::BadRequest);
    enqueue_frame(shard, conn,
                  encode_error_frame(Status::BadRequest,
                                     decode_error_name(err)));
    conn.close_after_flush = true;
    return;
  }

  if (request.op == Opcode::Subscribe) {
    const auto reject = [&](Status status, const char* detail) {
      metrics_.count_error(status);
      enqueue_frame(shard, conn, encode_error_frame(status, detail));
    };
    if (stopping_.load(std::memory_order_acquire)) {
      reject(Status::ShuttingDown, "server stopping");
      return;
    }
    if (conn.subscribed) {
      reject(Status::BadRequest, "already subscribed");
      return;
    }
    if (request.n_bytes == 0) {
      reject(Status::BadRequest, "zero-byte subscription chunk");
      return;
    }
    if (request.n_bytes > config_.max_request_bytes) {
      reject(Status::TooLarge, "subscription chunk above per-request budget");
      return;
    }
    conn.subscribed = true;
    conn.sub_quality = request.quality;
    conn.sub_chunk = request.n_bytes;
    conn.sub_interval_ms = request.interval_ms;
    conn.sub_due_ns = clock_now_ns();  // first push is immediately due
    conn.sub_deferred = false;
    metrics_.subscriptions_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.subscriptions_active.fetch_add(1, std::memory_order_relaxed);
    enqueue_frame(shard, conn, encode_response_frame(Status::Ok, 0, {}));
    return;
  }
  if (request.op == Opcode::Unsubscribe) {
    if (!conn.subscribed) {
      metrics_.count_error(Status::BadRequest);
      enqueue_frame(shard, conn, encode_error_frame(Status::BadRequest,
                                                    "no active subscription"));
      return;
    }
    end_subscription(conn);
    // FIFO write queue: every already-queued push precedes this ack, so
    // the ack is the stream-end marker the protocol promises.
    enqueue_frame(shard, conn, encode_response_frame(Status::Ok, 0, {}));
    return;
  }

  const Response response = serve_request(request, conn.bucket);
  enqueue_frame(shard, conn,
                encode_response_frame(response.status, response.flags,
                                      response.payload));
}

Response EntropyServer::serve_request(const Request& request,
                                      TokenBucket& conn_bucket) {
  Response response;
  const auto error = [&](Status status, const std::string& detail) {
    response.status = status;
    response.payload.assign(detail.begin(), detail.end());
    metrics_.count_error(status);
    return response;
  };

  if (request.op == Opcode::Stats) {
    metrics_.stats_requests.fetch_add(1, std::memory_order_relaxed);
    const core::PoolCertSnapshot cert = pool_.cert_snapshot();
    const std::string text =
        render_stats(metrics_, state(), pool_.snapshot(), &cert,
                     config_.cert, config_.noise_mode_label);
    response.payload.assign(text.begin(), text.end());
    return response;
  }
  if (request.op == Opcode::Cert) {
    metrics_.cert_requests.fetch_add(1, std::memory_order_relaxed);
    const std::string text = render_cert(pool_.cert_snapshot(), config_.cert);
    response.payload.assign(text.begin(), text.end());
    return response;
  }

  const std::size_t n = request.n_bytes;
  if (stopping_.load(std::memory_order_acquire)) {
    return error(Status::ShuttingDown, "server stopping");
  }
  if (n > config_.max_request_bytes) {
    return error(Status::TooLarge, "request above per-request byte budget");
  }
  if (!conn_bucket.try_acquire(n)) {
    return error(Status::RateLimited, "per-connection rate limit");
  }
  if (!global_bucket_.try_acquire(n)) {
    return error(Status::RateLimited, "global rate limit");
  }

  const ServiceState st = state();
  if (st == ServiceState::Exhausted) {
    // Fail closed: no live noise source behind the service, so refuse —
    // even though gated bytes may remain buffered and the fallback DRBG
    // could keep stretching its last seed.
    return error(Status::Exhausted, "all entropy producers retired");
  }
  try {
    if (st == ServiceState::Degraded) {
      response.payload = draw_degraded(n);
      response.flags |= kFlagDegraded;
    } else {
      response.payload = draw(request.quality, n);
    }
  } catch (const core::EntropyExhausted&) {
    return error(Status::Exhausted, "entropy pool exhausted mid-request");
  }
  metrics_.count_served(request.quality, n, response.degraded());
  return response;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void EntropyServer::enqueue_frame(Shard& shard, Connection& conn,
                                  std::vector<std::uint8_t> frame) {
  if (!conn.sock.valid()) return;
  if (conn.write_bytes + frame.size() > config_.max_write_queue_bytes) {
    // The peer stopped reading: bounded back-pressure means we refuse to
    // buffer further.  Drop this frame, append one small structured Busy
    // (a constant-size overshoot of the cap) and close once it flushes.
    if (conn.close_after_flush) return;  // overflow already answered
    metrics_.write_queue_overflows.fetch_add(1, std::memory_order_relaxed);
    metrics_.count_error(Status::Busy);
    auto busy = encode_error_frame(Status::Busy, "write queue overflow");
    conn.write_bytes += busy.size();
    conn.write_q.push_back(std::move(busy));
    conn.close_after_flush = true;
    conn.read_closed = true;
    shard.poller.mod(conn.sock.fd(), /*want_read=*/false, conn.want_write);
    return;
  }
  conn.write_bytes += frame.size();
  conn.write_q.push_back(std::move(frame));
}

void EntropyServer::flush_writes(Shard& shard, Connection& conn) {
  const int fd = conn.sock.fd();
  while (!conn.write_q.empty()) {
    iovec iov[kWritevBatch];
    std::size_t niov = 0;
    std::size_t head = conn.write_head;
    for (const auto& frame : conn.write_q) {
      if (niov == kWritevBatch) break;
      iov[niov].iov_base =
          const_cast<std::uint8_t*>(frame.data()) + head;
      iov[niov].iov_len = frame.size() - head;
      head = 0;  // only the front frame has a sent prefix
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t sent = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          shard.poller.mod(fd, !conn.read_closed, /*want_write=*/true);
        }
        return;
      }
      close_connection(shard, fd);  // peer reset mid-response
      return;
    }
    metrics_.writev_calls.fetch_add(1, std::memory_order_relaxed);
    std::size_t remaining = static_cast<std::size_t>(sent);
    conn.write_bytes -= remaining;
    while (remaining > 0) {
      auto& front = conn.write_q.front();
      const std::size_t avail = front.size() - conn.write_head;
      if (remaining >= avail) {
        remaining -= avail;
        conn.write_q.pop_front();
        conn.write_head = 0;
        metrics_.writev_frames.fetch_add(1, std::memory_order_relaxed);
      } else {
        conn.write_head += remaining;
        remaining = 0;
      }
    }
  }
  if (conn.close_after_flush) {
    close_connection(shard, fd);
    return;
  }
  if (conn.want_write) {
    conn.want_write = false;
    shard.poller.mod(fd, !conn.read_closed, /*want_write=*/false);
  }
}

// ---------------------------------------------------------------------------
// Subscription pushes
// ---------------------------------------------------------------------------

void EntropyServer::end_subscription(Connection& conn) {
  conn.subscribed = false;
  conn.sub_deferred = false;
  metrics_.subscriptions_closed.fetch_add(1, std::memory_order_relaxed);
  metrics_.subscriptions_active.fetch_sub(1, std::memory_order_relaxed);
}

void EntropyServer::service_subscriptions(Shard& shard) {
  if (shard.conns.empty()) return;
  std::vector<int> fds;
  for (const auto& kv : shard.conns) {
    if (kv.second->subscribed) fds.push_back(kv.first);
  }
  for (int fd : fds) {
    auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) continue;
    push_subscription(shard, *it->second);
    it = shard.conns.find(fd);
    if (it != shard.conns.end()) flush_writes(shard, *it->second);
  }
}

void EntropyServer::push_subscription(Shard& shard, Connection& conn) {
  if (!conn.subscribed || conn.close_after_flush) return;
  if (!(conn.sub_interval_ms == 0 || conn.sub_deferred ||
        clock_now_ns() >= conn.sub_due_ns)) {
    return;  // not due yet
  }

  const auto end_stream = [&](Status status, const char* detail) {
    metrics_.count_error(status);
    enqueue_frame(shard, conn,
                  encode_response_frame(
                      status, kFlagPush,
                      std::vector<std::uint8_t>(detail,
                                                detail + std::strlen(detail))));
    end_subscription(conn);
    conn.close_after_flush = true;
    conn.read_closed = true;
    shard.poller.mod(conn.sock.fd(), /*want_read=*/false, conn.want_write);
  };

  if (stopping_.load(std::memory_order_acquire)) {
    end_stream(Status::ShuttingDown, "server stopping");
    return;
  }
  // A push is taken whole or not at all — first the write-queue room
  // (checked before any tokens are spent), then the buckets — so the
  // byte accounting identity holds exactly for streams too.
  const std::size_t frame_bytes =
      kLenPrefixBytes + kResponseHeaderBytes + conn.sub_chunk;
  if (conn.write_bytes + frame_bytes > config_.max_write_queue_bytes) {
    metrics_.subscribe_deferred_backpressure.fetch_add(
        1, std::memory_order_relaxed);
    conn.sub_deferred = true;
    return;
  }
  if (!conn.bucket.try_acquire(conn.sub_chunk)) {
    metrics_.subscribe_deferred_rate.fetch_add(1, std::memory_order_relaxed);
    conn.sub_deferred = true;
    return;
  }
  if (!global_bucket_.try_acquire(conn.sub_chunk)) {
    metrics_.subscribe_deferred_rate.fetch_add(1, std::memory_order_relaxed);
    conn.sub_deferred = true;
    return;
  }

  const ServiceState st = state();
  if (st == ServiceState::Exhausted) {
    end_stream(Status::Exhausted, "all entropy producers retired");
    return;
  }
  std::vector<std::uint8_t> payload;
  try {
    payload = st == ServiceState::Degraded ? draw_degraded(conn.sub_chunk)
                                           : draw(conn.sub_quality,
                                                  conn.sub_chunk);
  } catch (const core::EntropyExhausted&) {
    end_stream(Status::Exhausted, "entropy pool exhausted mid-push");
    return;
  }
  const bool degraded = st == ServiceState::Degraded;
  const std::uint8_t flags =
      kFlagPush | (degraded ? kFlagDegraded : std::uint8_t{0});
  enqueue_frame(shard, conn,
                encode_response_frame(Status::Ok, flags, payload));
  metrics_.count_served(conn.sub_quality, conn.sub_chunk, degraded);
  metrics_.subscribe_pushes.fetch_add(1, std::memory_order_relaxed);
  metrics_.subscribe_push_bytes.fetch_add(conn.sub_chunk,
                                          std::memory_order_relaxed);
  if (degraded) {
    metrics_.subscribe_pushes_degraded.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  conn.sub_deferred = false;
  conn.sub_due_ns = clock_now_ns() +
                    static_cast<std::uint64_t>(conn.sub_interval_ms) * 1000000u;
}

// ---------------------------------------------------------------------------
// Entropy draws (unchanged from the blocking-era server)
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> EntropyServer::draw(Quality quality,
                                              std::size_t n) {
  switch (quality) {
    case Quality::Raw:
      return pool_.get_bytes(n);
    case Quality::Conditioned: {
      // Vetted conditioning (SP 800-90B 3.1.5.1.2): SHA-256 over 64-byte
      // pool blocks, 2:1 compression — 512 health-gated input bits per
      // 256 output bits.
      std::vector<std::uint8_t> out;
      out.reserve(n);
      while (out.size() < n) {
        const auto digest = support::Sha256::hash(pool_.get_bytes(64));
        const std::size_t take =
            std::min<std::size_t>(digest.size(), n - out.size());
        out.insert(out.end(), digest.begin(),
                   digest.begin() + static_cast<std::ptrdiff_t>(take));
      }
      return out;
    }
    case Quality::Drbg: {
      std::lock_guard<std::mutex> lock(drbg_mutex_);
      return drbg_locked().generate(n);
    }
  }
  throw std::invalid_argument("EntropyServer: unknown quality");
}

std::vector<std::uint8_t> EntropyServer::draw_degraded(std::size_t n) {
  std::lock_guard<std::mutex> lock(drbg_mutex_);
  const bool instantiating = drbg_ == nullptr;
  core::HmacDrbg& drbg = drbg_locked();
  if (instantiating) {
    // Lazy instantiation inside DEGRADED is itself the re-key from the
    // surviving producers the ladder promises.
    metrics_.drbg_fallback_reseeds.fetch_add(1, std::memory_order_relaxed);
    return drbg.generate(n);
  }
  // Every pool quarantine since the last reseed means the producer set
  // changed under us: re-key from the surviving producers before serving.
  const std::uint64_t quarantines = pool_.quarantine_events();
  if (quarantines != reseed_watermark_) {
    drbg.reseed();
    reseed_watermark_ = quarantines;
    metrics_.drbg_fallback_reseeds.fetch_add(1, std::memory_order_relaxed);
  }
  return drbg.generate(n);
}

core::HmacDrbg& EntropyServer::drbg_locked() {
  if (!drbg_) {
    const std::string pers = "dhtrng-entropy-service";
    drbg_ = std::make_unique<core::HmacDrbg>(
        pool_source_, config_.drbg,
        std::vector<std::uint8_t>(pers.begin(), pers.end()));
    reseed_watermark_ = pool_.quarantine_events();
  }
  return *drbg_;
}

}  // namespace dhtrng::service
