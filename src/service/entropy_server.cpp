#include "service/entropy_server.h"

#include <algorithm>
#include <stdexcept>
#include <sys/socket.h>
#include <utility>

#include "support/sha256.h"

namespace dhtrng::service {

bool EntropyServer::PoolSource::next_bit() {
  if (bit_ == buf_.size() * 8) {
    buf_ = pool_.get_bytes(64);  // throws EntropyExhausted when pool is gone
    bit_ = 0;
  }
  const std::uint8_t byte = buf_[bit_ / 8];
  const bool bit = ((byte >> (7 - bit_ % 8)) & 1u) != 0;
  ++bit_;
  return bit;
}

EntropyServer::EntropyServer(EntropyServerConfig config,
                             core::EntropyPool::SourceFactory factory)
    : config_(std::move(config)),
      pool_(config_.pool, std::move(factory)),
      global_bucket_(config_.global_rate_bytes_per_s,
                     config_.global_burst_bytes, config_.clock) {
  if (config_.degraded_after_retired == 0) config_.degraded_after_retired = 1;
  if (config_.enable_tcp) {
    listeners_.push_back(Listener::tcp_loopback(config_.tcp_port));
    tcp_port_ = listeners_.back().port();
  }
  if (!config_.unix_path.empty()) {
    listeners_.push_back(Listener::unix_domain(config_.unix_path));
  }
  if (listeners_.empty()) {
    throw std::invalid_argument("EntropyServer: no listeners configured");
  }
  workers_ = std::make_unique<support::ThreadPool>(config_.worker_threads);
  // Listener addresses must be stable before the loops capture them — no
  // listeners_ growth past this point.
  accept_threads_.reserve(listeners_.size());
  for (auto& listener : listeners_) {
    accept_threads_.emplace_back([this, &listener] { accept_loop(listener); });
  }
}

std::unique_ptr<EntropyServer> EntropyServer::of_dhtrng(
    EntropyServerConfig config, core::DhTrngConfig core) {
  return std::make_unique<EntropyServer>(
      std::move(config),
      [core](std::size_t, std::uint64_t seed)
          -> std::unique_ptr<core::TrngSource> {
        core::DhTrngConfig per_producer = core;
        per_producer.seed = seed;
        return std::make_unique<core::DhTrng>(per_producer);
      });
}

EntropyServer::~EntropyServer() { stop(); }

void EntropyServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& listener : listeners_) listener.close();
  for (auto& thread : accept_threads_) {
    if (thread.joinable()) thread.join();
  }
  // Closing the pool wakes workers blocked in get_bytes (they observe
  // EntropyExhausted and answer with a structured error)...
  pool_.stop();
  // ...and shutting the sockets down wakes workers blocked in read_exact
  // waiting for a client's next request.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  workers_.reset();  // drains queued connection tasks, joins the workers
}

ServiceState EntropyServer::state() const {
  const core::PoolHealthSnapshot snap = pool_.snapshot();
  if (snap.healthy == 0) return ServiceState::Exhausted;
  if (snap.retired >= config_.degraded_after_retired) {
    return ServiceState::Degraded;
  }
  return ServiceState::Healthy;
}

void EntropyServer::register_connection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.push_back(fd);
}

void EntropyServer::unregister_connection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

void EntropyServer::accept_loop(Listener& listener) {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Socket> accepted = listener.accept(50);
    if (!accepted) continue;
    metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    // Claim a slot atomically; over the cap, answer Busy and close so the
    // client gets a structured reason instead of a hang in the queue.
    const std::uint64_t slot = metrics_.connections_active.fetch_add(
        1, std::memory_order_acq_rel);
    if (slot >= config_.max_connections) {
      metrics_.connections_active.fetch_sub(1, std::memory_order_acq_rel);
      metrics_.count_error(Status::Busy);
      const auto frame =
          encode_error_frame(Status::Busy, "connection slots full");
      (void)accepted->write_all(frame.data(), frame.size());
      continue;  // Socket destructor closes the connection
    }
    auto sock = std::make_shared<Socket>(std::move(*accepted));
    register_connection(sock->fd());
    workers_->submit([this, sock] { handle_connection(sock); });
  }
}

void EntropyServer::handle_connection(std::shared_ptr<Socket> sock) {
  TokenBucket conn_bucket(config_.per_conn_rate_bytes_per_s,
                          config_.per_conn_burst_bytes, config_.clock);
  while (!stopping_.load(std::memory_order_acquire)) {
    std::uint8_t header[kLenPrefixBytes];
    if (!sock->read_exact(header, sizeof(header))) break;  // client left
    const std::uint32_t len = read_u32le(header);
    if (len == 0 || len > kMaxRequestPayload) {
      // Zero-length or oversized request frame: the stream cannot be
      // trusted past this point, so answer with a structured error and
      // close.
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics_.count_error(Status::BadRequest);
      const auto frame = encode_error_frame(
          Status::BadRequest,
          len == 0 ? "zero-length frame" : "request frame too large");
      (void)sock->write_all(frame.data(), frame.size());
      break;
    }
    std::vector<std::uint8_t> payload(len);
    if (!sock->read_exact(payload.data(), payload.size())) {
      // Disconnect mid-frame: nobody left to answer.
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    Request request;
    const DecodeError err =
        decode_request(payload.data(), payload.size(), request);
    if (err != DecodeError::None) {
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics_.count_error(Status::BadRequest);
      const auto frame =
          encode_error_frame(Status::BadRequest, decode_error_name(err));
      (void)sock->write_all(frame.data(), frame.size());
      break;
    }
    const Response response = serve_request(request, conn_bucket);
    const auto frame =
        encode_response_frame(response.status, response.flags,
                              response.payload);
    if (!sock->write_all(frame.data(), frame.size())) break;
  }
  unregister_connection(sock->fd());
  sock->close();
  metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  metrics_.connections_active.fetch_sub(1, std::memory_order_acq_rel);
}

Response EntropyServer::serve_request(const Request& request,
                                      TokenBucket& conn_bucket) {
  Response response;
  const auto error = [&](Status status, const std::string& detail) {
    response.status = status;
    response.payload.assign(detail.begin(), detail.end());
    metrics_.count_error(status);
    return response;
  };

  if (request.op == Opcode::Stats) {
    metrics_.stats_requests.fetch_add(1, std::memory_order_relaxed);
    const core::PoolCertSnapshot cert = pool_.cert_snapshot();
    const std::string text =
        render_stats(metrics_, state(), pool_.snapshot(), &cert,
                     config_.cert);
    response.payload.assign(text.begin(), text.end());
    return response;
  }
  if (request.op == Opcode::Cert) {
    metrics_.cert_requests.fetch_add(1, std::memory_order_relaxed);
    const std::string text = render_cert(pool_.cert_snapshot(), config_.cert);
    response.payload.assign(text.begin(), text.end());
    return response;
  }

  const std::size_t n = request.n_bytes;
  if (stopping_.load(std::memory_order_acquire)) {
    return error(Status::ShuttingDown, "server stopping");
  }
  if (n > config_.max_request_bytes) {
    return error(Status::TooLarge, "request above per-request byte budget");
  }
  if (!conn_bucket.try_acquire(n)) {
    return error(Status::RateLimited, "per-connection rate limit");
  }
  if (!global_bucket_.try_acquire(n)) {
    return error(Status::RateLimited, "global rate limit");
  }

  const ServiceState st = state();
  if (st == ServiceState::Exhausted) {
    // Fail closed: no live noise source behind the service, so refuse —
    // even though gated bytes may remain buffered and the fallback DRBG
    // could keep stretching its last seed.
    return error(Status::Exhausted, "all entropy producers retired");
  }
  try {
    if (st == ServiceState::Degraded) {
      response.payload = draw_degraded(n);
      response.flags |= kFlagDegraded;
    } else {
      response.payload = draw(request.quality, n);
    }
  } catch (const core::EntropyExhausted&) {
    return error(Status::Exhausted, "entropy pool exhausted mid-request");
  }
  metrics_.count_served(request.quality, n, response.degraded());
  return response;
}

std::vector<std::uint8_t> EntropyServer::draw(Quality quality,
                                              std::size_t n) {
  switch (quality) {
    case Quality::Raw:
      return pool_.get_bytes(n);
    case Quality::Conditioned: {
      // Vetted conditioning (SP 800-90B 3.1.5.1.2): SHA-256 over 64-byte
      // pool blocks, 2:1 compression — 512 health-gated input bits per
      // 256 output bits.
      std::vector<std::uint8_t> out;
      out.reserve(n);
      while (out.size() < n) {
        const auto digest = support::Sha256::hash(pool_.get_bytes(64));
        const std::size_t take =
            std::min<std::size_t>(digest.size(), n - out.size());
        out.insert(out.end(), digest.begin(),
                   digest.begin() + static_cast<std::ptrdiff_t>(take));
      }
      return out;
    }
    case Quality::Drbg: {
      std::lock_guard<std::mutex> lock(drbg_mutex_);
      return drbg_locked().generate(n);
    }
  }
  throw std::invalid_argument("EntropyServer: unknown quality");
}

std::vector<std::uint8_t> EntropyServer::draw_degraded(std::size_t n) {
  std::lock_guard<std::mutex> lock(drbg_mutex_);
  const bool instantiating = drbg_ == nullptr;
  core::HmacDrbg& drbg = drbg_locked();
  if (instantiating) {
    // Lazy instantiation inside DEGRADED is itself the re-key from the
    // surviving producers the ladder promises.
    metrics_.drbg_fallback_reseeds.fetch_add(1, std::memory_order_relaxed);
    return drbg.generate(n);
  }
  // Every pool quarantine since the last reseed means the producer set
  // changed under us: re-key from the surviving producers before serving.
  const std::uint64_t quarantines = pool_.quarantine_events();
  if (quarantines != reseed_watermark_) {
    drbg.reseed();
    reseed_watermark_ = quarantines;
    metrics_.drbg_fallback_reseeds.fetch_add(1, std::memory_order_relaxed);
  }
  return drbg.generate(n);
}

core::HmacDrbg& EntropyServer::drbg_locked() {
  if (!drbg_) {
    const std::string pers = "dhtrng-entropy-service";
    drbg_ = std::make_unique<core::HmacDrbg>(
        pool_source_, config_.drbg,
        std::vector<std::uint8_t>(pers.begin(), pers.end()));
    reseed_watermark_ = pool_.quarantine_events();
  }
  return *drbg_;
}

}  // namespace dhtrng::service
