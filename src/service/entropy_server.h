// Entropy-as-a-service daemon: the deliverable end of the DH-TRNG stack.
// Serves health-gated pool bytes (RAW), SHA-256 2:1 conditioned bytes
// (CONDITIONED), and SP 800-90A HMAC_DRBG output (DRBG) over the
// length-prefixed protocol in service/protocol.h, on TCP loopback and/or
// Unix-domain listeners.  One accept loop per listener; each accepted
// connection is handled sequentially by a worker task on the shared
// support::ThreadPool (requests on one connection are answered in order,
// so response frames can never interleave).
//
// Failure policy (the SP 800-90B section 4.3 deployment behaviour, wired
// to core::EntropyPool's quarantine/reseed/retire state machine):
//
//   HEALTHY    fewer than `degraded_after_retired` producers retired —
//              every quality is served from live pool output.
//   DEGRADED   at least `degraded_after_retired` producers retired but
//              survivors remain — all qualities transparently fall back
//              to the HMAC_DRBG (reseeded from the surviving producers on
//              every pool quarantine event) and every response is flagged
//              kFlagDegraded so the client can apply its own policy.
//   EXHAUSTED  every producer retired — the service fails closed: GET
//              returns a structured Status::Exhausted error (even though
//              the fallback DRBG could keep stretching its last seed, and
//              even if health-gated bytes remain buffered) instead of
//              hanging or serving entropy with no live noise source
//              behind it.
//
// Backpressure: per-request byte cap (`max_request_bytes`), a global and
// a per-connection token bucket (Status::RateLimited, all-or-nothing so
// byte accounting stays exact), and a connection-slot cap (Status::Busy
// sent on the freshly accepted socket, which is then closed).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dhtrng.h"
#include "core/drbg.h"
#include "core/entropy_pool.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/rate_limiter.h"
#include "service/socket.h"
#include "support/thread_pool.h"

namespace dhtrng::service {

struct EntropyServerConfig {
  /// TCP listener on 127.0.0.1 (0 = kernel-assigned ephemeral port, see
  /// tcp_port()); set `enable_tcp` false to disable.
  bool enable_tcp = true;
  std::uint16_t tcp_port = 0;
  /// Unix-domain listener path; empty = disabled.
  std::string unix_path;

  /// Connection workers (the per-connection concurrency ceiling).
  std::size_t worker_threads = 4;
  /// Accepted-but-unserved connections beyond this get Status::Busy.
  std::size_t max_connections = 64;
  /// Per-request byte budget; larger GETs get Status::TooLarge.
  std::size_t max_request_bytes = 1 << 20;

  /// Token buckets (bytes); a rate of 0 disables that bucket.
  std::uint64_t global_rate_bytes_per_s = 0;
  std::uint64_t global_burst_bytes = 1 << 20;
  std::uint64_t per_conn_rate_bytes_per_s = 0;
  std::uint64_t per_conn_burst_bytes = 1 << 16;

  /// Retired producers at or above which the ladder reads DEGRADED.
  std::size_t degraded_after_retired = 1;

  /// Decision thresholds applied to the streaming-certification
  /// snapshots in CERT/STATS output (pool.certify enables the trackers).
  stats::streaming::Thresholds cert;

  /// DRBG parameters for the Drbg quality and the DEGRADED fallback
  /// (reseed_interval controls how often generate calls pull fresh pool
  /// entropy on their own, on top of the per-quarantine reseeds).
  core::HmacDrbgConfig drbg;

  /// The entropy pool this server fronts.
  core::EntropyPoolConfig pool;

  /// Injectable monotonic clock for the token buckets (tests).
  TokenBucket::Clock clock;
};

class EntropyServer {
 public:
  /// Starts the pool, the listeners and the accept loops.  `factory`
  /// builds the pool's producers (see EntropyPool::SourceFactory) — the
  /// fault-injection tests drive the degradation ladder through it.
  EntropyServer(EntropyServerConfig config,
                core::EntropyPool::SourceFactory factory);

  /// Convenience: a server over a pool of DhTrng producers.
  static std::unique_ptr<EntropyServer> of_dhtrng(EntropyServerConfig config,
                                                  core::DhTrngConfig core = {});

  ~EntropyServer();

  EntropyServer(const EntropyServer&) = delete;
  EntropyServer& operator=(const EntropyServer&) = delete;

  /// Stop accepting, stop the pool, unblock and drain every connection
  /// worker; idempotent (the destructor calls it).
  void stop();

  /// Actual TCP port (after ephemeral binding); 0 if TCP is disabled.
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// Current degradation-ladder state, derived from pool health.
  ServiceState state() const;

  const Metrics& metrics() const { return metrics_; }
  std::size_t active_connections() const {
    return static_cast<std::size_t>(
        metrics_.connections_active.load(std::memory_order_acquire));
  }
  core::PoolHealthSnapshot pool_snapshot() const { return pool_.snapshot(); }
  core::PoolCertSnapshot pool_cert_snapshot() const {
    return pool_.cert_snapshot();
  }

 private:
  /// TrngSource view of the pool, for seeding/reseeding the DRBG from the
  /// surviving producers (bits are pool bytes, MSB-first like
  /// EntropyPool's own packing).
  class PoolSource final : public core::TrngSource {
   public:
    explicit PoolSource(core::EntropyPool& pool) : pool_(pool) {}
    std::string name() const override { return "entropy-pool"; }
    bool next_bit() override;
    void restart() override {}
    sim::ResourceCounts resources() const override { return {}; }
    double clock_mhz() const override { return 0.0; }
    fpga::ActivityEstimate activity() const override { return {}; }

   private:
    core::EntropyPool& pool_;
    std::vector<std::uint8_t> buf_;
    std::size_t bit_ = 0;
  };

  void accept_loop(Listener& listener);
  void handle_connection(std::shared_ptr<Socket> sock);
  Response serve_request(const Request& request, TokenBucket& conn_bucket);
  /// Draw `n` bytes at `quality`; throws core::EntropyExhausted.
  std::vector<std::uint8_t> draw(Quality quality, std::size_t n);
  /// DEGRADED path: DRBG output, reseeding when pool health changed.
  std::vector<std::uint8_t> draw_degraded(std::size_t n);
  /// DRBG access (lazy instantiation) under drbg_mutex_.
  core::HmacDrbg& drbg_locked();

  void register_connection(int fd);
  void unregister_connection(int fd);

  EntropyServerConfig config_;
  core::EntropyPool pool_;
  Metrics metrics_;

  PoolSource pool_source_{pool_};
  std::mutex drbg_mutex_;
  std::unique_ptr<core::HmacDrbg> drbg_;
  std::uint64_t reseed_watermark_ = 0;  ///< pool quarantines at last reseed

  TokenBucket global_bucket_;
  std::atomic<bool> stopping_{false};

  std::vector<Listener> listeners_;
  std::uint16_t tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;  ///< open connection fds, for stop() wakeups

  /// Last member: its destructor drains queued connection tasks, which
  /// still touch everything above.
  std::unique_ptr<support::ThreadPool> workers_;
};

}  // namespace dhtrng::service
