// Entropy-as-a-service daemon: the deliverable end of the DH-TRNG stack.
// Serves health-gated pool bytes (RAW), SHA-256 2:1 conditioned bytes
// (CONDITIONED), and SP 800-90A HMAC_DRBG output (DRBG) over the
// length-prefixed protocol in service/protocol.h, on TCP loopback and/or
// Unix-domain listeners.
//
// Since PR 8 the I/O core is a sharded readiness loop instead of a
// thread-per-connection pool: `shards` event-loop threads, each with its
// own Poller (epoll on Linux, poll elsewhere — see service/poller.h), its
// own SO_REUSEPORT TCP listener (the kernel load-balances accepts across
// shards), and its own set of non-blocking connections.  The Unix-domain
// listener lives on shard 0, which hands accepted fds to the other shards
// round-robin through a wake-pipe doorbell.  Each connection is a small
// state machine: a FrameAssembler tolerates any read fragmentation
// (byte-at-a-time through fully coalesced), responses are queued and
// flushed with batched writev (sendmsg, up to 16 frames per call), and
// every write queue is byte-bounded — a peer that stops reading gets a
// structured Status::Busy and a close, never unbounded buffering.
// Requests on one connection are still answered strictly in order, so
// response frames can never interleave.
//
// SUBSCRIBE (protocol.h) turns a connection into a push stream serviced
// by its shard's loop: pushes draw through the same token buckets and
// degradation ladder as GET, a push that a bucket or the write queue
// cannot take whole is deferred (never split, so byte accounting stays
// exact), and push cadence is timed by the injectable clock so tests can
// freeze it.
//
// Failure policy (the SP 800-90B section 4.3 deployment behaviour, wired
// to core::EntropyPool's quarantine/reseed/retire state machine):
//
//   HEALTHY    fewer than `degraded_after_retired` producers retired —
//              every quality is served from live pool output.
//   DEGRADED   at least `degraded_after_retired` producers retired but
//              survivors remain — all qualities transparently fall back
//              to the HMAC_DRBG (reseeded from the surviving producers on
//              every pool quarantine event) and every response is flagged
//              kFlagDegraded so the client can apply its own policy.
//   EXHAUSTED  every producer retired — the service fails closed: GET
//              returns a structured Status::Exhausted error and a live
//              subscription ends with one kFlagPush-flagged Exhausted
//              frame (even though the fallback DRBG could keep stretching
//              its last seed, and even if health-gated bytes remain
//              buffered) instead of hanging or serving entropy with no
//              live noise source behind it.
//
// Backpressure: per-request byte cap (`max_request_bytes`), a global and
// a per-connection token bucket (Status::RateLimited, all-or-nothing so
// byte accounting stays exact), a connection-slot cap (Status::Busy sent
// on the freshly accepted socket, which is then closed), and the bounded
// per-connection write queue (`max_write_queue_bytes`).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dhtrng.h"
#include "core/drbg.h"
#include "core/entropy_pool.h"
#include "service/frame_assembler.h"
#include "service/metrics.h"
#include "service/poller.h"
#include "service/protocol.h"
#include "service/rate_limiter.h"
#include "service/socket.h"

namespace dhtrng::service {

struct EntropyServerConfig {
  /// TCP listener on 127.0.0.1 (0 = kernel-assigned ephemeral port, see
  /// tcp_port()); set `enable_tcp` false to disable.
  bool enable_tcp = true;
  std::uint16_t tcp_port = 0;
  /// Unix-domain listener path; empty = disabled.
  std::string unix_path;

  /// Event-loop shards (readiness-loop threads).  0 = use
  /// `worker_threads`, which PR 5–7 configs already set.
  std::size_t shards = 0;
  /// Legacy name for the service concurrency knob; used when `shards` is
  /// 0 so existing configs keep their meaning.
  std::size_t worker_threads = 4;
  /// Connections beyond this get Status::Busy at accept time.
  std::size_t max_connections = 64;
  /// Per-request byte budget; larger GETs get Status::TooLarge.
  std::size_t max_request_bytes = 1 << 20;
  /// Bound on queued-but-unsent response bytes per connection; a peer
  /// that stops reading past this gets Status::Busy and a close.
  std::size_t max_write_queue_bytes = 4 << 20;

  /// Token buckets (bytes); a rate of 0 disables that bucket.
  std::uint64_t global_rate_bytes_per_s = 0;
  std::uint64_t global_burst_bytes = 1 << 20;
  std::uint64_t per_conn_rate_bytes_per_s = 0;
  std::uint64_t per_conn_burst_bytes = 1 << 16;

  /// Retired producers at or above which the ladder reads DEGRADED.
  std::size_t degraded_after_retired = 1;

  /// Decision thresholds applied to the streaming-certification
  /// snapshots in CERT/STATS output (pool.certify enables the trackers).
  stats::streaming::Thresholds cert;

  /// Noise fidelity label reported as `noise_mode` in STATS output
  /// ("exact" or "fast").  Purely informational — the actual mode lives
  /// in the producer configs the SourceFactory captures; of_dhtrng sets
  /// this from DhTrngConfig::noise_mode automatically.
  std::string noise_mode_label = "exact";

  /// DRBG parameters for the Drbg quality and the DEGRADED fallback
  /// (reseed_interval controls how often generate calls pull fresh pool
  /// entropy on their own, on top of the per-quarantine reseeds).
  core::HmacDrbgConfig drbg;

  /// The entropy pool this server fronts.
  core::EntropyPoolConfig pool;

  /// Injectable monotonic clock (nanoseconds) for the token buckets and
  /// the subscription push cadence (tests freeze it for determinism).
  TokenBucket::Clock clock;

  /// Force the portable poll(2) poller backend even where epoll exists
  /// (CI exercises the fallback on Linux through this).
  bool force_poll_backend = false;

  /// Test seam for the accept path: called instead of
  /// accept_nonblocking(listener_fd) when set.  Must return a
  /// non-blocking fd or -1 with errno set (see classify_accept_errno).
  std::function<int(int)> accept_fn;
};

class EntropyServer {
 public:
  /// Starts the pool, the listeners and the shard loops.  `factory`
  /// builds the pool's producers (see EntropyPool::SourceFactory) — the
  /// fault-injection tests drive the degradation ladder through it.
  EntropyServer(EntropyServerConfig config,
                core::EntropyPool::SourceFactory factory);

  /// Convenience: a server over a pool of DhTrng producers.
  static std::unique_ptr<EntropyServer> of_dhtrng(EntropyServerConfig config,
                                                  core::DhTrngConfig core = {});

  ~EntropyServer();

  EntropyServer(const EntropyServer&) = delete;
  EntropyServer& operator=(const EntropyServer&) = delete;

  /// Stop the pool (unblocking any in-flight draw), wake every shard
  /// loop, close every connection and join the shards; idempotent (the
  /// destructor calls it).  active_connections() is 0 on return.
  void stop();

  /// Actual TCP port (after ephemeral binding); 0 if TCP is disabled.
  std::uint16_t tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  /// Current degradation-ladder state, derived from pool health.
  ServiceState state() const;

  const Metrics& metrics() const { return metrics_; }
  std::size_t active_connections() const {
    return static_cast<std::size_t>(
        metrics_.connections_active.load(std::memory_order_acquire));
  }
  std::size_t shard_count() const { return shards_.size(); }
  /// Whether the shards run the epoll backend (false = poll fallback).
  bool using_epoll() const;
  core::PoolHealthSnapshot pool_snapshot() const { return pool_.snapshot(); }
  core::PoolCertSnapshot pool_cert_snapshot() const {
    return pool_.cert_snapshot();
  }

 private:
  /// TrngSource view of the pool, for seeding/reseeding the DRBG from the
  /// surviving producers (bits are pool bytes, MSB-first like
  /// EntropyPool's own packing).
  class PoolSource final : public core::TrngSource {
   public:
    explicit PoolSource(core::EntropyPool& pool) : pool_(pool) {}
    std::string name() const override { return "entropy-pool"; }
    bool next_bit() override;
    void restart() override {}
    sim::ResourceCounts resources() const override { return {}; }
    double clock_mhz() const override { return 0.0; }
    fpga::ActivityEstimate activity() const override { return {}; }

   private:
    core::EntropyPool& pool_;
    std::vector<std::uint8_t> buf_;
    std::size_t bit_ = 0;
  };

  /// Per-connection state machine, owned by exactly one shard (no lock:
  /// only that shard's loop thread touches it).
  struct Connection {
    Connection(int fd, const EntropyServerConfig& cfg)
        : sock(fd),
          bucket(cfg.per_conn_rate_bytes_per_s, cfg.per_conn_burst_bytes,
                 cfg.clock) {}

    Socket sock;
    FrameAssembler assembler;
    TokenBucket bucket;

    /// Queued response frames; `write_head` is the sent prefix of the
    /// front frame, `write_bytes` the total unsent bytes (the bound).
    std::deque<std::vector<std::uint8_t>> write_q;
    std::size_t write_head = 0;
    std::size_t write_bytes = 0;
    bool want_write = false;        ///< write interest registered
    bool close_after_flush = false; ///< close once write_q drains
    bool read_closed = false;       ///< peer EOF seen; stop reading

    // Subscription stream state (SUBSCRIBE .. UNSUBSCRIBE/disconnect).
    bool subscribed = false;
    Quality sub_quality = Quality::Raw;
    std::uint32_t sub_chunk = 0;
    std::uint32_t sub_interval_ms = 0;
    std::uint64_t sub_due_ns = 0;  ///< injectable-clock time of next push
    bool sub_deferred = false;     ///< last push attempt was deferred
  };

  /// A listener owned by one shard.  `distribute` marks listeners whose
  /// accepts are handed round-robin to the other shards (the Unix-domain
  /// listener, and the single TCP listener when SO_REUSEPORT sharding is
  /// unavailable); per-shard SO_REUSEPORT TCP listeners attach locally.
  struct ShardListener {
    Listener listener;
    bool distribute = false;
  };

  /// One event-loop shard: poller + doorbell + its listeners and
  /// connections.  Only `adopted` crosses threads (shard 0 hands
  /// distributed accepts over) and is mutex-protected.
  struct Shard {
    explicit Shard(Poller::Backend backend) : poller(backend) {}
    std::size_t index = 0;
    Poller poller;
    WakePipe wake;
    std::vector<ShardListener> listeners;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    std::mutex adopted_mutex;
    std::vector<int> adopted;
    std::thread thread;
  };

  void shard_loop(Shard& shard);
  int shard_timeout_ms(const Shard& shard) const;
  void drain_accepts(Shard& shard, ShardListener& sl);
  /// Claim a connection slot for a freshly accepted fd; Busy+close over
  /// the cap.  Returns true when the slot was claimed.
  bool claim_slot(int fd);
  /// Attach an accepted (slot-holding) fd to `shard`'s loop.
  void attach_connection(Shard& shard, int fd);
  void handle_readable(Shard& shard, Connection& conn);
  /// Serve one complete request payload (decode + dispatch + enqueue).
  void serve_payload(Shard& shard, Connection& conn,
                     const std::vector<std::uint8_t>& payload);
  /// GET/STATS/CERT dispatch shared with the blocking-era semantics.
  Response serve_request(const Request& request, TokenBucket& conn_bucket);
  void enqueue_frame(Shard& shard, Connection& conn,
                     std::vector<std::uint8_t> frame);
  /// Batched non-blocking flush; closes the connection on write error or
  /// once drained with close_after_flush set.
  void flush_writes(Shard& shard, Connection& conn);
  /// Attempt every due subscription push on this shard once.
  void service_subscriptions(Shard& shard);
  /// One push attempt; updates deferral state and cadence.
  void push_subscription(Shard& shard, Connection& conn);
  void end_subscription(Connection& conn);
  void close_connection(Shard& shard, int fd);

  /// Draw `n` bytes at `quality`; throws core::EntropyExhausted.
  std::vector<std::uint8_t> draw(Quality quality, std::size_t n);
  /// DEGRADED path: DRBG output, reseeding when pool health changed.
  std::vector<std::uint8_t> draw_degraded(std::size_t n);
  /// DRBG access (lazy instantiation) under drbg_mutex_.
  core::HmacDrbg& drbg_locked();

  std::uint64_t clock_now_ns() const;
  int do_accept(int listener_fd);

  EntropyServerConfig config_;
  core::EntropyPool pool_;
  Metrics metrics_;

  PoolSource pool_source_{pool_};
  std::mutex drbg_mutex_;
  std::unique_ptr<core::HmacDrbg> drbg_;
  std::uint64_t reseed_watermark_ = 0;  ///< pool quarantines at last reseed

  TokenBucket global_bucket_;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;  ///< serializes stop() with the constructor

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> handoff_rr_{0};  ///< Unix-accept round robin
  std::uint16_t tcp_port_ = 0;
};

}  // namespace dhtrng::service
