// Incremental request-frame assembly for the non-blocking read path: a
// pure byte-stream state machine (no sockets, no I/O) that accepts
// arbitrary delivery fragmentation — byte-at-a-time, frames split across
// read() boundaries, several frames coalesced in one segment — and emits
// complete length-prefixed payloads in order.
//
// Being socket-free makes the framing layer exhaustively testable
// (tests/service/test_service_protocol.cpp drives it with adversarial
// chunkings) and keeps the event-loop connection handler down to
// "feed(recv bytes); while (next(payload)) serve(payload);".
//
// Malformed length prefixes (zero-length, above max_payload) latch a
// sticky error: the stream cannot be trusted past a bad header, so no
// further frames are emitted and the caller answers with a structured
// error and closes — exactly the PR 5 blocking-path policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "service/protocol.h"

namespace dhtrng::service {

class FrameAssembler {
 public:
  enum class Error {
    None,
    ZeroLength,  ///< header announced an empty payload
    TooLarge,    ///< header announced more than max_payload bytes
  };

  explicit FrameAssembler(std::size_t max_payload = kMaxRequestPayload)
      : max_payload_(max_payload) {}

  /// Append raw stream bytes.  Ignored once an error has latched.
  void feed(const std::uint8_t* data, std::size_t n) {
    if (error_ != Error::None) return;
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Extract the next complete payload (length prefix stripped) into
  /// `out`.  Returns false when more bytes are needed or an error has
  /// latched — check error() to tell the two apart.
  bool next(std::vector<std::uint8_t>& out) {
    if (error_ != Error::None) return false;
    if (buf_.size() - head_ < kLenPrefixBytes) return false;
    const std::uint32_t len = read_u32le(buf_.data() + head_);
    if (len == 0) {
      error_ = Error::ZeroLength;
      return false;
    }
    if (len > max_payload_) {
      error_ = Error::TooLarge;
      return false;
    }
    if (buf_.size() - head_ < kLenPrefixBytes + len) return false;
    const std::uint8_t* payload = buf_.data() + head_ + kLenPrefixBytes;
    out.assign(payload, payload + len);
    head_ += kLenPrefixBytes + len;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection's buffer stays at working-set size instead of growing
    // with total traffic.
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 4096) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return true;
  }

  Error error() const { return error_; }

  /// Unconsumed bytes (a non-zero value at EOF means the peer vanished
  /// mid-frame — the caller counts it as a protocol error).
  std::size_t buffered() const { return buf_.size() - head_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
  Error error_ = Error::None;
};

}  // namespace dhtrng::service
