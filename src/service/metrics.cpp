#include "service/metrics.h"

#include <iomanip>
#include <limits>
#include <sstream>

#include "support/simd_noise.h"

namespace dhtrng::service {

namespace {

/// Emit every field of one streaming snapshot as "<prefix>_key value"
/// lines (shared between the merged and per-producer sections).
void render_snapshot_lines(std::ostream& out, const std::string& prefix,
                           const stats::streaming::Snapshot& s,
                           const stats::streaming::Thresholds& t) {
  out << prefix << "_bits " << s.bits << '\n'
      << prefix << "_ones " << s.ones << '\n'
      << prefix << "_pass " << (s.pass(t) ? 1 : 0) << '\n'
      << prefix << "_h_live " << s.live_min_entropy() << '\n'
      << prefix << "_frequency_p " << s.frequency_p << '\n'
      << prefix << "_block_frequency_p " << s.block_frequency_p << '\n'
      << prefix << "_runs_p " << s.runs_p << '\n'
      << prefix << "_cusum_fwd_p " << s.cusum_fwd_p << '\n'
      << prefix << "_cusum_bwd_p " << s.cusum_bwd_p << '\n'
      << prefix << "_mcv_h " << s.mcv_h << '\n'
      << prefix << "_markov_h " << s.markov_h << '\n'
      << prefix << "_windows " << s.windows << '\n'
      << prefix << "_window_mcv_h_last " << s.window_mcv_h_last << '\n'
      << prefix << "_window_markov_h_last " << s.window_markov_h_last << '\n'
      << prefix << "_window_mcv_h_min " << s.window_mcv_h_min << '\n'
      << prefix << "_window_markov_h_min " << s.window_markov_h_min << '\n';
}

}  // namespace

const char* service_state_name(ServiceState state) {
  switch (state) {
    case ServiceState::Healthy: return "HEALTHY";
    case ServiceState::Degraded: return "DEGRADED";
    case ServiceState::Exhausted: return "EXHAUSTED";
  }
  return "UNKNOWN";
}

void Metrics::count_served(Quality quality, std::uint64_t n, bool degraded) {
  bytes_served_total.fetch_add(n, std::memory_order_relaxed);
  switch (quality) {
    case Quality::Raw:
      bytes_served_raw.fetch_add(n, std::memory_order_relaxed);
      break;
    case Quality::Conditioned:
      bytes_served_conditioned.fetch_add(n, std::memory_order_relaxed);
      break;
    case Quality::Drbg:
      bytes_served_drbg.fetch_add(n, std::memory_order_relaxed);
      break;
  }
  if (degraded) {
    responses_degraded.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_ok.fetch_add(1, std::memory_order_relaxed);
  }
}

void Metrics::count_error(Status status) {
  switch (status) {
    case Status::Exhausted:
      responses_exhausted.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::RateLimited:
      responses_rate_limited.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::BadRequest:
      responses_bad_request.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::TooLarge:
      responses_too_large.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Busy:
      responses_busy.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::ShuttingDown:
      responses_shutting_down.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::Ok:
      break;  // not an error; counted by count_served
  }
}

std::string render_stats(const Metrics& m, ServiceState state,
                         const core::PoolHealthSnapshot& pool,
                         const core::PoolCertSnapshot* cert,
                         const stats::streaming::Thresholds& thresholds,
                         const std::string& noise_mode_label) {
  const auto v = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::ostringstream out;
  out << "state " << service_state_name(state) << '\n'
      << "simd_tier "
      << support::simd::tier_name(support::simd::active_tier()) << '\n'
      << "noise_mode " << noise_mode_label << '\n'
      << "bytes_served_total " << v(m.bytes_served_total) << '\n'
      << "bytes_served_raw " << v(m.bytes_served_raw) << '\n'
      << "bytes_served_conditioned " << v(m.bytes_served_conditioned) << '\n'
      << "bytes_served_drbg " << v(m.bytes_served_drbg) << '\n'
      << "responses_ok " << v(m.responses_ok) << '\n'
      << "responses_degraded " << v(m.responses_degraded) << '\n'
      << "responses_exhausted " << v(m.responses_exhausted) << '\n'
      << "responses_rate_limited " << v(m.responses_rate_limited) << '\n'
      << "responses_bad_request " << v(m.responses_bad_request) << '\n'
      << "responses_too_large " << v(m.responses_too_large) << '\n'
      << "responses_busy " << v(m.responses_busy) << '\n'
      << "responses_shutting_down " << v(m.responses_shutting_down) << '\n'
      << "stats_requests " << v(m.stats_requests) << '\n'
      << "cert_requests " << v(m.cert_requests) << '\n'
      << "protocol_errors " << v(m.protocol_errors) << '\n'
      << "connections_accepted " << v(m.connections_accepted) << '\n'
      << "connections_closed " << v(m.connections_closed) << '\n'
      << "connections_active " << v(m.connections_active) << '\n'
      << "drbg_fallback_reseeds " << v(m.drbg_fallback_reseeds) << '\n'
      << "epoll_wakeups " << v(m.epoll_wakeups) << '\n'
      << "writev_calls " << v(m.writev_calls) << '\n'
      << "writev_frames " << v(m.writev_frames) << '\n'
      << "accept_retries " << v(m.accept_retries) << '\n'
      << "accept_soft_errors " << v(m.accept_soft_errors) << '\n'
      << "accept_fatal_errors " << v(m.accept_fatal_errors) << '\n'
      << "write_queue_overflows " << v(m.write_queue_overflows) << '\n'
      << "subscriptions_opened " << v(m.subscriptions_opened) << '\n'
      << "subscriptions_closed " << v(m.subscriptions_closed) << '\n'
      << "subscriptions_active " << v(m.subscriptions_active) << '\n'
      << "subscribe_pushes " << v(m.subscribe_pushes) << '\n'
      << "subscribe_push_bytes " << v(m.subscribe_push_bytes) << '\n'
      << "subscribe_pushes_degraded " << v(m.subscribe_pushes_degraded)
      << '\n'
      << "subscribe_deferred_rate " << v(m.subscribe_deferred_rate) << '\n'
      << "subscribe_deferred_backpressure "
      << v(m.subscribe_deferred_backpressure) << '\n'
      << "pool_producers " << pool.producers << '\n'
      << "pool_healthy " << pool.healthy << '\n'
      << "pool_retired " << pool.retired << '\n'
      << "pool_quarantines " << pool.quarantines << '\n'
      << "pool_reseeds " << pool.reseeds << '\n'
      << "pool_bytes_produced " << pool.bytes_produced << '\n'
      << "pool_exhausted " << (pool.exhausted ? 1 : 0) << '\n';
  if (cert != nullptr && cert->enabled) {
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "cert_pass " << (cert->merged.pass(thresholds) ? 1 : 0) << '\n'
        << "cert_h_live " << cert->merged.live_min_entropy() << '\n';
    for (std::size_t i = 0; i < cert->producers.size(); ++i) {
      const auto& s = cert->producers[i];
      out << "pool_source_" << i << "_bits " << s.bits << '\n'
          << "pool_source_" << i << "_pass " << (s.pass(thresholds) ? 1 : 0)
          << '\n'
          << "pool_source_" << i << "_h_live " << s.live_min_entropy()
          << '\n';
    }
  }
  return out.str();
}

std::string render_cert(const core::PoolCertSnapshot& cert,
                        const stats::streaming::Thresholds& thresholds) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "cert_enabled " << (cert.enabled ? 1 : 0) << '\n'
      << "cert_sources " << cert.producers.size() << '\n'
      << "cert_block_len " << cert.tracker.block_len << '\n'
      << "cert_window_bits " << cert.tracker.window_bits << '\n'
      << "cert_alpha " << thresholds.alpha << '\n'
      << "cert_min_entropy " << thresholds.min_entropy << '\n';
  if (!cert.enabled) return out.str();
  render_snapshot_lines(out, "merged", cert.merged, thresholds);
  for (std::size_t i = 0; i < cert.producers.size(); ++i) {
    render_snapshot_lines(out, "source_" + std::to_string(i),
                          cert.producers[i], thresholds);
  }
  return out.str();
}

}  // namespace dhtrng::service
