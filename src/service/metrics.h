// Atomic metrics registry behind the STATS admin command.  Every counter
// is a relaxed atomic — the registry never synchronizes the data path, it
// only observes it — and render_stats() emits the plaintext
// "key value\n" dump that admin tooling (trng_tool stats) and the
// degradation-ladder tests consume.
//
// Counter semantics the tests rely on:
//  * responses_ok counts unflagged Ok GET responses; responses_degraded
//    counts Ok GET responses flagged kFlagDegraded — a GET lands in
//    exactly one responses_* bucket;
//  * bytes_served_* count entropy bytes actually shipped (rejected and
//    error responses ship zero);
//  * connections_active is a gauge and must return to zero when every
//    client is gone (the protocol tests assert the slot count drains).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/entropy_pool.h"
#include "service/protocol.h"
#include "stats/streaming.h"

namespace dhtrng::service {

/// The degradation-ladder state the server derives from pool health.
enum class ServiceState { Healthy, Degraded, Exhausted };

const char* service_state_name(ServiceState state);

struct Metrics {
  // Entropy actually shipped, total and per requested quality.
  std::atomic<std::uint64_t> bytes_served_total{0};
  std::atomic<std::uint64_t> bytes_served_raw{0};
  std::atomic<std::uint64_t> bytes_served_conditioned{0};
  std::atomic<std::uint64_t> bytes_served_drbg{0};

  // GET responses by outcome (exactly one bucket per response).
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> responses_degraded{0};
  std::atomic<std::uint64_t> responses_exhausted{0};
  std::atomic<std::uint64_t> responses_rate_limited{0};
  std::atomic<std::uint64_t> responses_bad_request{0};
  std::atomic<std::uint64_t> responses_too_large{0};
  std::atomic<std::uint64_t> responses_busy{0};
  std::atomic<std::uint64_t> responses_shutting_down{0};

  std::atomic<std::uint64_t> stats_requests{0};
  std::atomic<std::uint64_t> cert_requests{0};
  std::atomic<std::uint64_t> protocol_errors{0};

  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> connections_active{0};  // gauge

  /// Fallback-DRBG reseeds triggered by entering/serving DEGRADED.
  std::atomic<std::uint64_t> drbg_fallback_reseeds{0};

  // Event-loop internals (readiness-loop server core).
  std::atomic<std::uint64_t> epoll_wakeups{0};   ///< poller wait() returns
  std::atomic<std::uint64_t> writev_calls{0};    ///< batched sendmsg calls
  std::atomic<std::uint64_t> writev_frames{0};   ///< frames across those calls
  std::atomic<std::uint64_t> accept_retries{0};  ///< EINTR/ECONNABORTED/EPROTO
  std::atomic<std::uint64_t> accept_soft_errors{0};  ///< EMFILE-class backoff
  std::atomic<std::uint64_t> accept_fatal_errors{0};
  /// Connections closed because their bounded write queue overflowed
  /// (back-pressure: the peer stopped reading faster than we produce).
  std::atomic<std::uint64_t> write_queue_overflows{0};

  // Subscription streaming (SUBSCRIBE/UNSUBSCRIBE).
  std::atomic<std::uint64_t> subscriptions_opened{0};
  std::atomic<std::uint64_t> subscriptions_closed{0};
  std::atomic<std::uint64_t> subscriptions_active{0};  // gauge
  std::atomic<std::uint64_t> subscribe_pushes{0};
  std::atomic<std::uint64_t> subscribe_push_bytes{0};
  std::atomic<std::uint64_t> subscribe_pushes_degraded{0};
  /// Pushes deferred whole (never split) by a token bucket or by write-
  /// queue back-pressure; each deferral is retried on a later loop pass.
  std::atomic<std::uint64_t> subscribe_deferred_rate{0};
  std::atomic<std::uint64_t> subscribe_deferred_backpressure{0};

  /// Attribute an Ok GET response's bytes to its quality bucket.
  void count_served(Quality quality, std::uint64_t n, bool degraded);
  /// Attribute a non-Ok GET response to its status bucket.
  void count_error(Status status);
};

/// Plaintext dump: one "key value" line per counter, plus the ladder state,
/// the active SIMD dispatch tier (`simd_tier`), the generator's noise mode
/// (`noise_mode`, from EntropyServerConfig::noise_mode_label) and the
/// pool-health snapshot.  With a cert snapshot, appends one live line
/// triple per producer (bits / pass / live min-entropy) so operators see
/// per-source health at a glance; the full breakdown lives behind the CERT
/// verb.  Counter values lead with a digit; `state`, `simd_tier` and
/// `noise_mode` carry text values (parsers must skip or special-case them).
std::string render_stats(const Metrics& metrics, ServiceState state,
                         const core::PoolHealthSnapshot& pool,
                         const core::PoolCertSnapshot* cert = nullptr,
                         const stats::streaming::Thresholds& thresholds = {},
                         const std::string& noise_mode_label = "exact");

/// Plaintext CERT dump: the full per-producer + merged streaming
/// certification snapshots, same "key value" line format as STATS.
/// Doubles are printed with max_digits10 precision so test oracles can
/// compare them bit-exactly after a stod round trip.
std::string render_cert(const core::PoolCertSnapshot& cert,
                        const stats::streaming::Thresholds& thresholds = {});

}  // namespace dhtrng::service
