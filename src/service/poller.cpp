#include "service/poller.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <stdexcept>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define DHTRNG_HAVE_EPOLL 1
#endif

namespace dhtrng::service {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Poller::Poller(Backend backend) {
#if DHTRNG_HAVE_EPOLL
  if (backend != Backend::Poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
    return;
  }
#else
  if (backend == Backend::Epoll) {
    throw std::runtime_error("Poller: epoll backend unavailable on this OS");
  }
#endif
  (void)backend;  // poll backend needs no kernel object
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  interest_.emplace(fd, std::make_pair(want_read, want_write));
#if DHTRNG_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      interest_.erase(fd);
      throw_errno("epoll_ctl(ADD)");
    }
  }
#endif
}

void Poller::mod(int fd, bool want_read, bool want_write) {
  const auto it = interest_.find(fd);
  if (it == interest_.end()) return;
  it->second = {want_read, want_write};
#if DHTRNG_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(MOD)");
    }
  }
#endif
}

void Poller::del(int fd) {
  if (interest_.erase(fd) == 0) return;
#if DHTRNG_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    // Failure is fine: closing an fd removes it from the set implicitly.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

int Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#if DHTRNG_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw_errno("epoll_wait");
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out.push_back(ev);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((want.first ? POLLIN : 0) |
                                  (want.second ? POLLOUT : 0));
    pfds.push_back(p);
  }
  const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                       timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll");
  }
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event ev;
    ev.fd = p.fd;
    ev.readable = (p.revents & POLLIN) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return static_cast<int>(out.size());
}

WakePipe::WakePipe() {
#if defined(__linux__)
  if (::pipe2(fds_, O_NONBLOCK | O_CLOEXEC) < 0) throw_errno("pipe2");
#else
  if (::pipe(fds_) < 0) throw_errno("pipe");
  for (int fd : fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
#endif
}

WakePipe::~WakePipe() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void WakePipe::notify() {
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(fds_[1], &byte, 1);
}

void WakePipe::drain() {
  std::uint8_t buf[64];
  while (::read(fds_[0], buf, sizeof buf) > 0) {
  }
}

}  // namespace dhtrng::service
