// Readiness-notification layer for the event-loop server core and the
// load-generator bench: an epoll(7) instance on Linux with a poll(2)
// fallback everywhere else, behind one interface so the connection state
// machines never see which kernel facility is underneath.
//
// Level-triggered semantics on both backends (an fd stays reported until
// its condition is consumed), because level-triggering keeps the state
// machines simple: a short read is never a lost wakeup, it is just the
// next wait()'s problem.  The backend is runtime-selectable so the CI
// suite can exercise the poll fallback on Linux too
// (EntropyServerConfig::force_poll_backend).
//
// WakePipe is the loop's cross-thread doorbell: a non-blocking
// self-pipe whose read end lives in the poller set, so stop requests and
// connection handoffs from other threads interrupt wait() without
// signals.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dhtrng::service {

class Poller {
 public:
  enum class Backend {
    Auto,   ///< epoll where available, else poll
    Epoll,  ///< throws std::runtime_error off Linux
    Poll,   ///< portable poll(2) backend
  };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// EPOLLHUP/EPOLLERR/POLLNVAL: the fd needs attention even if neither
    /// direction is ready; callers treat it as readable (the next read
    /// observes EOF or the error).
    bool hangup = false;
  };

  explicit Poller(Backend backend = Backend::Auto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool using_epoll() const { return epoll_fd_ >= 0; }

  /// Register `fd` for readiness notification.  An fd is registered at
  /// most once; interest is edited with mod().
  void add(int fd, bool want_read, bool want_write);
  void mod(int fd, bool want_read, bool want_write);
  void del(int fd);

  /// Wait up to `timeout_ms` (-1 = forever) and append ready events to
  /// `out` (cleared first).  Returns the number of events, 0 on timeout.
  /// EINTR is absorbed and reported as a timeout with zero events.
  int wait(std::vector<Event>& out, int timeout_ms);

  std::size_t watched() const { return interest_.size(); }

 private:
  int epoll_fd_ = -1;  ///< -1 = poll backend
  /// fd -> (want_read, want_write); the poll backend rebuilds its pollfd
  /// array from this on every wait (cheap at service fan-ins; the epoll
  /// backend keeps it only for watched()).
  std::unordered_map<int, std::pair<bool, bool>> interest_;
};

/// Self-pipe doorbell: notify() from any thread makes the read end
/// readable; drain() swallows pending notifications.  Both ends are
/// non-blocking and close-on-exec.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void notify();
  void drain();

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace dhtrng::service
