#include "service/protocol.h"

#include <cstring>

namespace dhtrng::service {

const char* status_name(Status status) {
  switch (status) {
    case Status::Ok: return "OK";
    case Status::Exhausted: return "EXHAUSTED";
    case Status::RateLimited: return "RATE_LIMITED";
    case Status::BadRequest: return "BAD_REQUEST";
    case Status::TooLarge: return "TOO_LARGE";
    case Status::Busy: return "BUSY";
    case Status::ShuttingDown: return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

const char* quality_name(Quality quality) {
  switch (quality) {
    case Quality::Raw: return "raw";
    case Quality::Conditioned: return "conditioned";
    case Quality::Drbg: return "drbg";
  }
  return "unknown";
}

std::optional<Quality> quality_from_name(const std::string& name) {
  if (name == "raw") return Quality::Raw;
  if (name == "conditioned") return Quality::Conditioned;
  if (name == "drbg") return Quality::Drbg;
  return std::nullopt;
}

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::None: return "none";
    case DecodeError::Empty: return "empty frame";
    case DecodeError::BadOpcode: return "unknown opcode";
    case DecodeError::BadQuality: return "unknown quality";
    case DecodeError::BadLength: return "inconsistent payload length";
  }
  return "unknown";
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

std::vector<std::uint8_t> encode_get_request(Quality quality,
                                             std::uint32_t n_bytes) {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kGetPayloadBytes);
  write_u32le(frame.data(), static_cast<std::uint32_t>(kGetPayloadBytes));
  frame[4] = static_cast<std::uint8_t>(Opcode::Get);
  frame[5] = static_cast<std::uint8_t>(quality);
  write_u32le(frame.data() + 6, n_bytes);
  return frame;
}

std::vector<std::uint8_t> encode_stats_request() {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kStatsPayloadBytes);
  write_u32le(frame.data(), static_cast<std::uint32_t>(kStatsPayloadBytes));
  frame[4] = static_cast<std::uint8_t>(Opcode::Stats);
  return frame;
}

std::vector<std::uint8_t> encode_cert_request() {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kCertPayloadBytes);
  write_u32le(frame.data(), static_cast<std::uint32_t>(kCertPayloadBytes));
  frame[4] = static_cast<std::uint8_t>(Opcode::Cert);
  return frame;
}

std::vector<std::uint8_t> encode_subscribe_request(Quality quality,
                                                   std::uint32_t chunk_bytes,
                                                   std::uint32_t interval_ms) {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kSubscribePayloadBytes);
  write_u32le(frame.data(),
              static_cast<std::uint32_t>(kSubscribePayloadBytes));
  frame[4] = static_cast<std::uint8_t>(Opcode::Subscribe);
  frame[5] = static_cast<std::uint8_t>(quality);
  write_u32le(frame.data() + 6, chunk_bytes);
  write_u32le(frame.data() + 10, interval_ms);
  return frame;
}

std::vector<std::uint8_t> encode_unsubscribe_request() {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kUnsubscribePayloadBytes);
  write_u32le(frame.data(),
              static_cast<std::uint32_t>(kUnsubscribePayloadBytes));
  frame[4] = static_cast<std::uint8_t>(Opcode::Unsubscribe);
  return frame;
}

DecodeError decode_request(const std::uint8_t* payload, std::size_t len,
                           Request& out) {
  if (len == 0) return DecodeError::Empty;
  switch (payload[0]) {
    case static_cast<std::uint8_t>(Opcode::Get): {
      if (len != kGetPayloadBytes) return DecodeError::BadLength;
      if (payload[1] > static_cast<std::uint8_t>(Quality::Drbg)) {
        return DecodeError::BadQuality;
      }
      out.op = Opcode::Get;
      out.quality = static_cast<Quality>(payload[1]);
      out.n_bytes = read_u32le(payload + 2);
      out.interval_ms = 0;
      return DecodeError::None;
    }
    case static_cast<std::uint8_t>(Opcode::Stats): {
      if (len != kStatsPayloadBytes) return DecodeError::BadLength;
      out.op = Opcode::Stats;
      out.quality = Quality::Raw;
      out.n_bytes = 0;
      return DecodeError::None;
    }
    case static_cast<std::uint8_t>(Opcode::Cert): {
      if (len != kCertPayloadBytes) return DecodeError::BadLength;
      out.op = Opcode::Cert;
      out.quality = Quality::Raw;
      out.n_bytes = 0;
      return DecodeError::None;
    }
    case static_cast<std::uint8_t>(Opcode::Subscribe): {
      if (len != kSubscribePayloadBytes) return DecodeError::BadLength;
      if (payload[1] > static_cast<std::uint8_t>(Quality::Drbg)) {
        return DecodeError::BadQuality;
      }
      out.op = Opcode::Subscribe;
      out.quality = static_cast<Quality>(payload[1]);
      out.n_bytes = read_u32le(payload + 2);
      out.interval_ms = read_u32le(payload + 6);
      return DecodeError::None;
    }
    case static_cast<std::uint8_t>(Opcode::Unsubscribe): {
      if (len != kUnsubscribePayloadBytes) return DecodeError::BadLength;
      out.op = Opcode::Unsubscribe;
      out.quality = Quality::Raw;
      out.n_bytes = 0;
      return DecodeError::None;
    }
    default:
      return DecodeError::BadOpcode;
  }
}

std::vector<std::uint8_t> encode_response_frame(
    Status status, std::uint8_t flags,
    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame(kLenPrefixBytes + kResponseHeaderBytes +
                                  body.size());
  write_u32le(frame.data(), static_cast<std::uint32_t>(kResponseHeaderBytes +
                                                       body.size()));
  frame[4] = static_cast<std::uint8_t>(status);
  frame[5] = flags;
  write_u32le(frame.data() + 6, static_cast<std::uint32_t>(body.size()));
  if (!body.empty()) {
    std::memcpy(frame.data() + kLenPrefixBytes + kResponseHeaderBytes,
                body.data(), body.size());
  }
  return frame;
}

std::vector<std::uint8_t> encode_error_frame(Status status,
                                             const std::string& detail) {
  return encode_response_frame(
      status, 0, std::vector<std::uint8_t>(detail.begin(), detail.end()));
}

bool decode_response_payload(const std::uint8_t* payload, std::size_t len,
                             Response& out) {
  if (len < kResponseHeaderBytes) return false;
  if (payload[0] > static_cast<std::uint8_t>(Status::ShuttingDown)) {
    return false;
  }
  const std::uint32_t n = read_u32le(payload + 2);
  if (len != kResponseHeaderBytes + n) return false;
  out.status = static_cast<Status>(payload[0]);
  out.flags = payload[1];
  out.payload.assign(payload + kResponseHeaderBytes, payload + len);
  return true;
}

}  // namespace dhtrng::service
