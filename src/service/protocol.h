// Wire protocol of the entropy service — a deliberately small
// length-prefixed binary framing so that clients in any language can speak
// it with a dozen lines of code, and so the framing layer is a pure
// function of bytes (fuzzable without sockets, see
// tests/service/test_service_protocol.cpp).
//
//   frame       := u32-LE payload_length, payload
//   request     := GET | STATS | CERT | SUBSCRIBE | UNSUBSCRIBE
//   GET         := 0x01, quality u8 (0 RAW | 1 CONDITIONED | 2 DRBG), n u32-LE
//   STATS       := 0x02
//   CERT        := 0x03
//   SUBSCRIBE   := 0x04, quality u8, chunk u32-LE, interval_ms u32-LE
//   UNSUBSCRIBE := 0x05
//   response    := status u8, flags u8, n u32-LE, n bytes
//
// GET responses carry `n` entropy bytes on Status::Ok; every non-Ok status
// carries a short UTF-8 detail string instead (the "structured error" the
// failure policy promises — a client always gets a reason, never a hang or
// a silent close on a well-formed request).  STATS responses carry the
// plaintext metrics dump, and CERT responses the plaintext streaming-
// certification snapshot (per-producer + merged live min-entropy and
// SP 800-22 pass state, see service/metrics.h render_cert).  Flag bit 0
// (kFlagDegraded) marks bytes served by the DRBG fallback while the pool
// is degraded.
//
// SUBSCRIBE turns the connection into a push stream: the server answers
// with an immediate Ok acknowledgement (no kFlagPush), then pushes
// response frames carrying `chunk` entropy bytes each, every
// `interval_ms` milliseconds (0 = as fast as the token buckets and the
// connection's write queue allow), every push flagged kFlagPush (bit 1)
// so clients can tell pushes from request/response frames interleaved on
// the same connection (STATS/CERT stay usable mid-subscription).  Pushes
// draw from the same token buckets and walk the same degradation ladder
// as GET: DEGRADED pushes add kFlagDegraded, and EXHAUSTED ends the
// subscription with one kFlagPush-flagged structured error frame.  A
// rate-limited push is deferred, never partially served, so byte
// accounting stays exact.  UNSUBSCRIBE (or disconnecting) ends the
// stream; its Ok acknowledgement is the first non-push frame after the
// final push.
//
// Request payloads are tiny by construction (6 bytes for GET, 10 for
// SUBSCRIBE, 1 for STATS); any request frame longer than
// kMaxRequestPayload is a protocol error and the server answers with a
// structured error before closing the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dhtrng::service {

enum class Opcode : std::uint8_t {
  Get = 0x01,
  Stats = 0x02,
  Cert = 0x03,
  Subscribe = 0x04,
  Unsubscribe = 0x05,
};

enum class Quality : std::uint8_t {
  Raw = 0,          ///< health-gated pool bytes, unconditioned
  Conditioned = 1,  ///< SHA-256 2:1 compression of pool bytes (90B 3.1.5.1.2)
  Drbg = 2,         ///< SP 800-90A HMAC_DRBG output, pool-seeded
};

enum class Status : std::uint8_t {
  Ok = 0,
  Exhausted = 1,     ///< every producer retired; service refuses (fail closed)
  RateLimited = 2,   ///< token bucket empty; retry later
  BadRequest = 3,    ///< malformed frame or unknown opcode/quality
  TooLarge = 4,      ///< n_bytes above the per-request budget
  Busy = 5,          ///< connection slots full at accept time
  ShuttingDown = 6,  ///< server stopping
};

/// Response flag bits.
inline constexpr std::uint8_t kFlagDegraded = 0x01;
/// Set on subscription pushes (data and the stream-ending error frame) so
/// clients can separate pushes from request/response frames.
inline constexpr std::uint8_t kFlagPush = 0x02;

/// Frame length prefix: 4 bytes, little-endian.
inline constexpr std::size_t kLenPrefixBytes = 4;
/// GET request payload: opcode + quality + u32 n_bytes.
inline constexpr std::size_t kGetPayloadBytes = 6;
/// STATS request payload: opcode only.
inline constexpr std::size_t kStatsPayloadBytes = 1;
/// CERT request payload: opcode only.
inline constexpr std::size_t kCertPayloadBytes = 1;
/// SUBSCRIBE request payload: opcode + quality + u32 chunk + u32 interval.
inline constexpr std::size_t kSubscribePayloadBytes = 10;
/// UNSUBSCRIBE request payload: opcode only.
inline constexpr std::size_t kUnsubscribePayloadBytes = 1;
/// Hard cap on request frames (requests are tiny; anything bigger is a
/// protocol violation, not a big request).
inline constexpr std::size_t kMaxRequestPayload = 64;
/// Response payload header: status + flags + u32 n.
inline constexpr std::size_t kResponseHeaderBytes = 6;

const char* status_name(Status status);
const char* quality_name(Quality quality);
/// Parses "raw" / "conditioned" / "drbg" (case-sensitive).
std::optional<Quality> quality_from_name(const std::string& name);

struct Request {
  Opcode op = Opcode::Get;
  Quality quality = Quality::Raw;
  /// GET: bytes requested.  SUBSCRIBE: bytes per push (the chunk).
  std::uint32_t n_bytes = 0;
  /// SUBSCRIBE only: milliseconds between pushes (0 = as fast as the
  /// buckets and write queue allow).
  std::uint32_t interval_ms = 0;
};

struct Response {
  Status status = Status::Ok;
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;  ///< entropy (Ok GET) or UTF-8 text

  bool degraded() const { return (flags & kFlagDegraded) != 0; }
  std::string text() const {
    return std::string(payload.begin(), payload.end());
  }
};

enum class DecodeError {
  None,
  Empty,       ///< zero-length payload
  BadOpcode,   ///< first byte is not a known opcode
  BadQuality,  ///< GET with an unknown quality byte
  BadLength,   ///< payload length inconsistent with the opcode
};

const char* decode_error_name(DecodeError error);

std::uint32_t read_u32le(const std::uint8_t* p);
void write_u32le(std::uint8_t* p, std::uint32_t v);

/// Full GET request frame (length prefix included).
std::vector<std::uint8_t> encode_get_request(Quality quality,
                                             std::uint32_t n_bytes);
/// Full STATS request frame (length prefix included).
std::vector<std::uint8_t> encode_stats_request();
/// Full CERT request frame (length prefix included).
std::vector<std::uint8_t> encode_cert_request();
/// Full SUBSCRIBE request frame (length prefix included).
std::vector<std::uint8_t> encode_subscribe_request(Quality quality,
                                                   std::uint32_t chunk_bytes,
                                                   std::uint32_t interval_ms);
/// Full UNSUBSCRIBE request frame (length prefix included).
std::vector<std::uint8_t> encode_unsubscribe_request();

/// Parse a request payload (the bytes after the length prefix).
DecodeError decode_request(const std::uint8_t* payload, std::size_t len,
                           Request& out);

/// Full response frame: length prefix, then status/flags/n header, then
/// the body.
std::vector<std::uint8_t> encode_response_frame(
    Status status, std::uint8_t flags,
    const std::vector<std::uint8_t>& body);
/// Convenience: a non-Ok response whose body is a UTF-8 detail string.
std::vector<std::uint8_t> encode_error_frame(Status status,
                                             const std::string& detail);

/// Parse a response payload (the bytes after the length prefix).  Returns
/// false when the header is short or the inner length disagrees with the
/// payload size.
bool decode_response_payload(const std::uint8_t* payload, std::size_t len,
                             Response& out);

}  // namespace dhtrng::service
