#include "service/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace dhtrng::service {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TokenBucket::TokenBucket(std::uint64_t rate_bytes_per_s,
                         std::uint64_t burst_bytes, Clock clock)
    : rate_(rate_bytes_per_s),
      burst_(burst_bytes == 0 ? 1 : burst_bytes),
      clock_(clock ? std::move(clock) : Clock(steady_now_ns)),
      tokens_(static_cast<double>(burst_)),
      last_ns_(clock_()) {}

void TokenBucket::refill_locked(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;
  const double elapsed_s =
      static_cast<double>(now_ns - last_ns_) * 1e-9;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed_s * static_cast<double>(rate_));
  last_ns_ = now_ns;
}

bool TokenBucket::try_acquire(std::uint64_t n) {
  if (rate_ == 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(clock_());
  if (tokens_ < static_cast<double>(n)) return false;
  tokens_ -= static_cast<double>(n);
  return true;
}

std::uint64_t TokenBucket::available() {
  if (rate_ == 0) return ~std::uint64_t{0};
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(clock_());
  return tokens_ <= 0.0 ? 0 : static_cast<std::uint64_t>(tokens_);
}

}  // namespace dhtrng::service
