// Token-bucket rate limiter — the service's backpressure valve.  Tokens
// are bytes: a bucket refills at `rate_bytes_per_s` up to `burst_bytes`,
// and a request either withdraws its full size atomically or is rejected
// whole (no partial grants, so the accounting identity
// "bytes served == bytes requested - bytes of rejected requests" holds
// exactly — the soak test asserts it).
//
// The clock is injectable (nanoseconds, monotonic) so tests can drive the
// refill deterministically; the default is std::chrono::steady_clock.
// A rate of 0 disables limiting (try_acquire always succeeds).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace dhtrng::service {

class TokenBucket {
 public:
  using Clock = std::function<std::uint64_t()>;  ///< monotonic nanoseconds

  /// `rate_bytes_per_s` == 0 means unlimited.
  TokenBucket(std::uint64_t rate_bytes_per_s, std::uint64_t burst_bytes,
              Clock clock = {});

  /// Withdraw `n` tokens if (after refill) the bucket holds at least `n`;
  /// all-or-nothing.  Thread-safe.
  bool try_acquire(std::uint64_t n);

  /// Tokens currently available (after refill); for tests/diagnostics.
  std::uint64_t available();

  bool unlimited() const { return rate_ == 0; }

 private:
  void refill_locked(std::uint64_t now_ns);

  const std::uint64_t rate_;
  const std::uint64_t burst_;
  Clock clock_;
  std::mutex mutex_;
  double tokens_;
  std::uint64_t last_ns_;
};

}  // namespace dhtrng::service
