#include "service/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace dhtrng::service {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

bool Socket::read_exact(std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF (r == 0) or hard error
  }
  return true;
}

bool Socket::write_all(const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd_, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool enable) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd_, F_SETFL,
          enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void Socket::set_nodelay() {
  if (fd_ < 0) return;
  const int one = 1;
  // Fails harmlessly on Unix-domain sockets.
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Listener Listener::tcp_loopback(std::uint16_t port, bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      ::close(fd);
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
#else
    ::close(fd);
    errno = ENOPROTOOPT;
    throw_errno("SO_REUSEPORT unsupported");
#endif
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  return Listener(fd, ntohs(bound.sin_port), "");
}

Listener Listener::unix_domain(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path empty or too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return Listener(fd, 0, path);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;  // timeout, EINTR, or closed
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  return Socket(client);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

void Listener::set_nonblocking() {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Socket();
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

AcceptOutcome classify_accept_errno(int err) {
  switch (err) {
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return AcceptOutcome::WouldBlock;
    case EINTR:        // signal mid-accept: nothing wrong with the socket
    case ECONNABORTED: // the pending peer hung up first: take the next one
#ifdef EPROTO
    case EPROTO:       // per-connection protocol hiccup, not our listener
#endif
      return AcceptOutcome::Retry;
    case EMFILE:   // process fd table full
    case ENFILE:   // system fd table full
    case ENOBUFS:  // transient kernel memory pressure
    case ENOMEM:
      return AcceptOutcome::SoftExhausted;
    default:
      // EBADF, EINVAL, ENOTSOCK, EOPNOTSUPP, ...: the listener itself is
      // broken and retrying would spin forever.
      return AcceptOutcome::Fatal;
  }
}

int accept_nonblocking(int listener_fd) {
#if defined(__linux__)
  return ::accept4(listener_fd, nullptr, nullptr,
                   SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd >= 0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  return fd;
#endif
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return Socket();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Socket();
  }
  return Socket(fd);
}

}  // namespace dhtrng::service
