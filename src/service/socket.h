// Thin RAII layer over the POSIX sockets the entropy service uses: a
// connected stream socket with exact-read/exact-write helpers, and a
// listener that accepts with a poll timeout so accept loops can observe a
// stop flag without signals or non-portable close-wakes.
//
// Both TCP (loopback by default) and Unix-domain stream sockets are
// supported; everything above this layer is transport-agnostic.  Writes
// use MSG_NOSIGNAL so a peer that disappears mid-response surfaces as an
// error return, never a SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dhtrng::service {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Detach the fd (caller owns it afterwards).
  int release();

  /// Read exactly `n` bytes; false on EOF or error (including a peer that
  /// resets mid-read — the caller treats both as "connection over").
  bool read_exact(std::uint8_t* buf, std::size_t n);
  /// Write all `n` bytes; false on error.
  bool write_all(const std::uint8_t* buf, std::size_t n);

  /// shutdown(SHUT_RDWR): wakes a thread blocked in read_exact on this
  /// socket (used by EntropyServer::stop to unblock connection workers).
  void shutdown_both();
  void close();

  /// O_NONBLOCK on/off (the event-loop server runs every connection
  /// non-blocking; the blocking client never calls this).
  void set_nonblocking(bool enable);
  /// TCP_NODELAY (no-op on non-TCP fds): small request/response and push
  /// frames must not sit in Nagle's buffer.
  void set_nodelay();

 private:
  int fd_ = -1;
};

class Listener {
 public:
  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral; see port()).
  /// Throws std::runtime_error on failure.  With `reuseport` true the
  /// socket is bound with SO_REUSEPORT so every event-loop shard can own
  /// its own listener on the same port and the kernel load-balances
  /// accepts across them (falls back to plain SO_REUSEADDR where
  /// SO_REUSEPORT is unavailable — the caller detects the failed sibling
  /// bind and routes accepts through shard 0 instead).
  static Listener tcp_loopback(std::uint16_t port, bool reuseport = false);
  /// Bind + listen on a Unix-domain stream socket at `path` (unlinked
  /// first, and unlinked again on destruction).
  static Listener unix_domain(const std::string& path);

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  ~Listener();

  bool valid() const { return fd_ >= 0; }
  /// Actual bound TCP port (0 for Unix-domain listeners).
  std::uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }

  /// Wait up to `timeout_ms` for a pending connection; nullopt on timeout
  /// or once closed.
  std::optional<Socket> accept(int timeout_ms);
  void close();

  int fd() const { return fd_; }
  /// O_NONBLOCK for event-loop accept draining.
  void set_nonblocking();

 private:
  Listener(int fd, std::uint16_t port, std::string path)
      : fd_(fd), port_(port), path_(std::move(path)) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string path_;  ///< non-empty for Unix-domain (unlink target)
};

/// Connect to a TCP server; invalid Socket on failure.
Socket connect_tcp(const std::string& host, std::uint16_t port);
/// Connect to a Unix-domain server; invalid Socket on failure.
Socket connect_unix(const std::string& path);

/// What an accept(2) failure means for the accept loop.  PR 5 treated
/// every errno identically (drop the iteration); the event-loop core
/// separates the transient cases from the fatal ones:
enum class AcceptOutcome {
  WouldBlock,     ///< EAGAIN/EWOULDBLOCK — backlog drained, wait for epoll
  Retry,          ///< EINTR/ECONNABORTED/EPROTO — retry immediately
  SoftExhausted,  ///< EMFILE/ENFILE/ENOBUFS/ENOMEM — fd/memory pressure;
                  ///< back off and let the level-triggered poller re-arm
  Fatal,          ///< anything else — the listener itself is broken
};

/// Pure classification of `errno` from a failed accept(2) (unit-tested
/// directly; the regression test injects these through
/// EntropyServerConfig::accept_fn).
AcceptOutcome classify_accept_errno(int err);

/// Non-blocking accept: returns the new fd (already O_NONBLOCK +
/// close-on-exec) or -1 with errno set.
int accept_nonblocking(int listener_fd);

}  // namespace dhtrng::service
