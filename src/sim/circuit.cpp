#include "sim/circuit.h"

#include <stdexcept>

namespace dhtrng::sim {

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::Inv: return "INV";
    case GateKind::Buf: return "BUF";
    case GateKind::And: return "AND";
    case GateKind::Nand: return "NAND";
    case GateKind::Or: return "OR";
    case GateKind::Nor: return "NOR";
    case GateKind::Xor: return "XOR";
    case GateKind::Xnor: return "XNOR";
    case GateKind::Mux2: return "MUX2";
  }
  return "?";
}

bool evaluate_gate(GateKind kind, const std::vector<bool>& in) {
  switch (kind) {
    case GateKind::Inv: return !in[0];
    case GateKind::Buf: return in[0];
    case GateKind::And: {
      for (bool b : in) if (!b) return false;
      return true;
    }
    case GateKind::Nand: {
      for (bool b : in) if (!b) return true;
      return false;
    }
    case GateKind::Or: {
      for (bool b : in) if (b) return true;
      return false;
    }
    case GateKind::Nor: {
      for (bool b : in) if (b) return false;
      return true;
    }
    case GateKind::Xor: {
      bool acc = false;
      for (bool b : in) acc ^= b;
      return acc;
    }
    case GateKind::Xnor: {
      bool acc = true;
      for (bool b : in) acc ^= b;
      return acc;
    }
    case GateKind::Mux2: return in[0] ? in[2] : in[1];
  }
  return false;
}

NetId Circuit::add_net(std::string name) {
  if (net_index_.contains(name)) {
    throw std::logic_error("Circuit: duplicate net name: " + name);
  }
  const NetId id = static_cast<NetId>(net_names_.size());
  net_index_.emplace(name, id);
  net_names_.push_back(std::move(name));
  initial_.push_back(false);
  return id;
}

NetId Circuit::net(const std::string& name) const {
  const auto it = net_index_.find(name);
  if (it == net_index_.end()) {
    throw std::logic_error("Circuit: unknown net: " + name);
  }
  return it->second;
}

std::size_t Circuit::add_gate(GateKind kind, std::vector<NetId> inputs,
                              NetId output, double delay_ps) {
  const std::size_t min_inputs = (kind == GateKind::Mux2)  ? 3
                                 : (kind == GateKind::Inv ||
                                    kind == GateKind::Buf) ? 1
                                                           : 2;
  if (inputs.size() < min_inputs) {
    throw std::logic_error("Circuit::add_gate: too few inputs");
  }
  if ((kind == GateKind::Inv || kind == GateKind::Buf) && inputs.size() != 1) {
    throw std::logic_error("Circuit::add_gate: unary gate arity");
  }
  if (kind == GateKind::Mux2 && inputs.size() != 3) {
    throw std::logic_error("Circuit::add_gate: Mux2 needs {sel, in0, in1}");
  }
  if (delay_ps <= 0.0) {
    throw std::logic_error("Circuit::add_gate: delay must be positive");
  }
  gates_.push_back(Gate{kind, std::move(inputs), output, delay_ps});
  return gates_.size() - 1;
}

std::size_t Circuit::add_dff(NetId clk, NetId d, NetId q, DffTiming timing) {
  dffs_.push_back(Dff{clk, d, q, timing});
  return dffs_.size() - 1;
}

std::size_t Circuit::add_clock(NetId net, double period_ps, double offset_ps,
                               double duty) {
  if (period_ps <= 0.0 || duty <= 0.0 || duty >= 1.0) {
    throw std::logic_error("Circuit::add_clock: bad period/duty");
  }
  clocks_.push_back(ClockSpec{net, period_ps, offset_ps, duty});
  return clocks_.size() - 1;
}

void Circuit::set_initial(NetId net_id, bool value) {
  initial_.at(net_id) = value;
}

ResourceCounts Circuit::resources() const {
  ResourceCounts rc;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::Mux2) {
      ++rc.muxes;
    } else {
      ++rc.luts;
    }
  }
  rc.dffs = dffs_.size();
  return rc;
}

void Circuit::validate() const {
  std::vector<int> drivers(net_names_.size(), 0);
  for (const Gate& g : gates_) {
    ++drivers[g.output];
    for (NetId in : g.inputs) {
      if (in >= net_names_.size()) throw std::logic_error("gate input out of range");
    }
  }
  for (const Dff& f : dffs_) ++drivers[f.q];
  for (const ClockSpec& c : clocks_) ++drivers[c.net];
  for (std::size_t n = 0; n < drivers.size(); ++n) {
    if (drivers[n] > 1) {
      throw std::logic_error("Circuit: net driven more than once: " + net_names_[n]);
    }
  }
}

}  // namespace dhtrng::sim
