// Gate-level netlist for the event-driven simulator.
//
// The circuit is a flat netlist of combinational gates, D flip-flops and
// clock sources connected by single-driver nets.  This is the software
// substrate standing in for the paper's FPGA fabric: the DH-TRNG, all
// baseline TRNGs and the unit tests build their topologies through this API,
// and the FPGA area/power models consume the same netlist for resource
// accounting (src/fpga).
#pragma once

#include <cstdint>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace dhtrng::sim {

using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = ~NetId{0};

enum class GateKind { Inv, Buf, And, Nand, Or, Nor, Xor, Xnor, Mux2 };

const char* gate_kind_name(GateKind kind);

/// Evaluate a gate function over its input values.  For Mux2 the input
/// order is {sel, in0, in1}.
bool evaluate_gate(GateKind kind, const std::vector<bool>& inputs);

struct Gate {
  GateKind kind;
  std::vector<NetId> inputs;
  NetId output;
  double delay_ps;
};

/// Behavioural flip-flop timing parameters (aperture model of Eq. 2).
struct DffTiming {
  double clk_to_q_ps = 120.0;
  /// Sigma of the metastability aperture: a data transition at distance
  /// delta from the sampling edge is captured with probability
  /// normal_cdf(delta / aperture_sigma_ps) (paper Eq. 2).
  double aperture_sigma_ps = 12.0;
  /// Mean of the exponential extra resolution delay when the sample falls
  /// inside the aperture.
  double resolution_mean_ps = 60.0;
};

struct Dff {
  NetId clk;
  NetId d;
  NetId q;
  DffTiming timing;
};

struct ClockSpec {
  NetId net;
  double period_ps;
  double offset_ps;  ///< time of the first rising edge
  double duty = 0.5;
};

struct ResourceCounts {
  std::size_t luts = 0;   ///< gates that map to LUTs
  std::size_t muxes = 0;  ///< Mux2 gates (MUXF primitives)
  std::size_t dffs = 0;
};

class Circuit {
 public:
  NetId add_net(std::string name);
  NetId net(const std::string& name) const;  ///< throws if unknown

  std::size_t add_gate(GateKind kind, std::vector<NetId> inputs, NetId output,
                       double delay_ps);
  std::size_t add_dff(NetId clk, NetId d, NetId q, DffTiming timing = {});
  std::size_t add_clock(NetId net, double period_ps, double offset_ps = 0.0,
                        double duty = 0.5);

  /// Initial value of a net at t = 0 (default 0).
  void set_initial(NetId net, bool value);

  std::size_t net_count() const { return net_names_.size(); }
  const std::string& net_name(NetId id) const { return net_names_[id]; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Dff>& dffs() const { return dffs_; }
  const std::vector<ClockSpec>& clocks() const { return clocks_; }
  const std::vector<bool>& initial_values() const { return initial_; }

  /// FPGA resource inventory: every combinational gate except Mux2 maps to
  /// one LUT; Mux2 maps to a MUXF primitive; each Dff to one FF.
  ResourceCounts resources() const;

  /// Single-driver and connectivity validation; throws std::logic_error on
  /// double-driven or floating driven nets.
  void validate() const;

 private:
  std::vector<std::string> net_names_;
  std::map<std::string, NetId> net_index_;
  std::vector<bool> initial_;
  std::vector<Gate> gates_;
  std::vector<Dff> dffs_;
  std::vector<ClockSpec> clocks_;
};

}  // namespace dhtrng::sim
