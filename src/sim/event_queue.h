// Calendar (bucket) event queue over a slab allocator.
//
// The simulator's schedule is a strict total order on (time, seq): events
// pop in nondecreasing time, ties broken by insertion sequence number.  A
// binary heap gives that order in O(log n) per operation with one heap
// node per event; the calendar queue gives amortized O(1) by hashing each
// event into a time bucket of fixed width and scanning the current bucket
// only.  Because bucket ordinal floor(time / width) is monotone in time,
// the earliest (time, seq) event always lives in the lowest occupied
// ordinal, so the calendar pops in exactly the same order as the heap —
// which is what the differential fuzz tests assert event-for-event.
//
// Events live in a slab (index-addressed pool with a free list), so
// scheduling allocates nothing after warm-up and cancellation (inertial
// runt swallowing) is an O(1) tombstone instead of the reference
// scheduler's dead-list scan.  Bucket entries carry (time, ord, idx) so
// the hot scan walks contiguous memory; the slab is touched only for
// equal-time tie-breaks, the dead check of the winning entry, and the
// final pop.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/circuit.h"

namespace dhtrng::sim {

/// A scheduled net transition, as observed by the differential tests.
struct SimEvent {
  double time;
  std::uint64_t seq;
  NetId net;
  bool value;
};

inline bool operator==(const SimEvent& a, const SimEvent& b) {
  return a.time == b.time && a.seq == b.seq && a.net == b.net &&
         a.value == b.value;
}

class CalendarQueue {
 public:
  /// `bucket_width_ps` is the time span hashed into one bucket; the queue
  /// retunes it at runtime from the observed event density, so the
  /// starting value only has to be in the right ballpark.
  explicit CalendarQueue(double bucket_width_ps,
                         std::size_t initial_buckets = 64)
      : width_(bucket_width_ps > 0.0 ? bucket_width_ps : 1.0),
        inv_width_(1.0 / width_) {
    std::size_t n = 1;
    while (n < initial_buckets) n <<= 1;
    buckets_.resize(n);
    occ_.assign(n >= 64 ? n >> 6 : 1, 0);
  }

  bool empty() const { return live_ == 0; }
  std::size_t live() const { return live_; }

  /// Insert and return the slab index (stable until the event pops).
  std::uint32_t push(double time, std::uint64_t seq, NetId net, bool value) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back({});
    }
    Slot& s = slab_[idx];
    s.time = time;
    s.seq = seq;
    s.net = net;
    s.value = value ? 1 : 0;
    s.dead = 0;
    // Multiply by the cached reciprocal: the ordinal only has to be a
    // monotone function of time computed consistently (here and in
    // rebuild()); exact division-boundary placement is irrelevant.
    const std::uint64_t ord = static_cast<std::uint64_t>(time * inv_width_);
    const std::size_t bucket = ord & (buckets_.size() - 1);
    buckets_[bucket].push_back({time, ord, idx});
    occ_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    ++live_;
    ++stored_;
    // Push only appends, so the cached minimum and runner-up stay valid;
    // the new event just might displace one of them.  (Ties are
    // impossible: seq is strictly increasing, so an equal-time push loses
    // to any cached event.)
    if (have_peek_) {
      if (time < slab_[peek_idx_].time) {
        // New global minimum; the old minimum becomes the runner-up (it
        // was smaller than everything else, including any old runner).
        runner_bucket_ = peek_bucket_;
        runner_pos_ = peek_pos_;
        runner_idx_ = peek_idx_;
        have_runner_ = true;
        peek_bucket_ = bucket;
        peek_pos_ = buckets_[bucket].size() - 1;
        peek_idx_ = idx;
      } else if (have_runner_ && time < slab_[runner_idx_].time) {
        // Between the minimum and the old runner-up: new second place.
        runner_bucket_ = bucket;
        runner_pos_ = buckets_[bucket].size() - 1;
        runner_idx_ = idx;
      }
    }
    if (stored_ > buckets_.size() * 8) grow();
    return idx;
  }

  /// Tombstone a still-queued event (O(1)); the entry and slot are
  /// reclaimed when the scan next selects it as the minimum.  Cancelling
  /// the cached minimum promotes the runner-up (it was second smallest,
  /// so it is now smallest); cancelling the runner-up just forgets it;
  /// marking any other slot dead moves nothing.
  void cancel(std::uint32_t idx) {
    slab_[idx].dead = 1;
    --live_;
    if (have_peek_ && idx == peek_idx_) {
      if (have_runner_) {
        peek_bucket_ = runner_bucket_;
        peek_pos_ = runner_pos_;
        peek_idx_ = runner_idx_;
        have_runner_ = false;
      } else {
        have_peek_ = false;
      }
    } else if (have_runner_ && idx == runner_idx_) {
      have_runner_ = false;
    }
  }

  /// Earliest live event in (time, seq) order, or nullptr when empty.
  /// The pointer stays valid until the next push/cancel/pop.
  const SimEvent* peek() {
    if (live_ == 0) return nullptr;
    if (!have_peek_) locate_min();
    const Slot& s = slab_[peek_idx_];
    peeked_ = {s.time, s.seq, s.net, s.value != 0};
    return &peeked_;
  }

  /// Remove and return the earliest live event (queue must be non-empty).
  /// When the last scan (or a later push) recorded a runner-up, it becomes
  /// the new cached minimum — the common pop is O(1), no re-scan.
  SimEvent pop() {
    if (!have_peek_) locate_min();
    const Slot& s = slab_[peek_idx_];
    const SimEvent ev{s.time, s.seq, s.net, s.value != 0};
    remove_peek();
    return ev;
  }

  /// Fused peek+pop for the simulator's run loop: pop the earliest live
  /// event into `out` iff its time is <= `t_ps`.  One slab read, one
  /// minimum search, no intermediate SimEvent copy.
  bool pop_if_due(double t_ps, SimEvent& out) {
    if (live_ == 0) return false;
    if (!have_peek_) locate_min();
    const Slot& s = slab_[peek_idx_];
    if (s.time > t_ps) return false;
    out.time = s.time;
    out.seq = s.seq;
    out.net = s.net;
    out.value = s.value != 0;
    remove_peek();
    return true;
  }

  double bucket_width_ps() const { return width_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t stored() const { return stored_; }

 private:
  struct Slot {
    double time;
    std::uint64_t seq;
    NetId net;
    std::uint8_t value;
    std::uint8_t dead;
  };

  /// Bucket entry: everything the hot scan needs without touching the
  /// slab.  `ord` distinguishes rotations sharing the bucket hash.
  struct Entry {
    double time;
    std::uint64_t ord;
    std::uint32_t idx;
  };

  void remove_at(std::size_t bucket, std::size_t pos) {
    std::vector<Entry>& b = buckets_[bucket];
    free_.push_back(b[pos].idx);
    b[pos] = b.back();
    b.pop_back();
    --stored_;
    if (b.empty()) occ_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }

  /// Remove the cached minimum and promote the runner-up (if any) to be
  /// the new cached minimum.  Requires have_peek_.
  void remove_peek() {
    const std::size_t last = buckets_[peek_bucket_].size() - 1;
    remove_at(peek_bucket_, peek_pos_);
    --live_;
    if (have_runner_) {
      // remove_at swap-filled peek's hole with the bucket's back entry;
      // if that back entry *was* the runner, it now lives at peek_pos_.
      if (runner_bucket_ == peek_bucket_ && runner_pos_ == last) {
        runner_pos_ = peek_pos_;
      }
      peek_bucket_ = runner_bucket_;
      peek_pos_ = runner_pos_;
      peek_idx_ = runner_idx_;
      have_runner_ = false;
    } else {
      have_peek_ = false;
    }
    if (++pops_ >= retune_pops_) maybe_retune();
  }

  /// Scan buckets from cur_ord_ upward for the earliest live event,
  /// jumping over empty buckets via the occupancy bitmap.  If a full
  /// rotation of nonempty buckets finds nothing (their entries all belong
  /// to later rotations — a sparse schedule, e.g. a lone slow clock),
  /// jump cur_ord_ straight to the minimum occupied ordinal.
  void locate_min() {
    std::size_t rounds = 0;
    for (;;) {
      if (scan_bucket(cur_ord_)) return;
      cur_ord_ += 1 + gap_to_next_occupied(
          (static_cast<std::size_t>(cur_ord_) + 1) & (buckets_.size() - 1));
      ++advances_;
      if (++rounds > buckets_.size()) {
        jump_to_min_ord();
        scan_bucket(cur_ord_);
        return;
      }
    }
  }

  /// Cyclic distance from bucket index `start` to the nearest nonempty
  /// bucket at or after it (0 when `start` itself is nonempty); the
  /// bucket count if every bucket is empty.
  std::size_t gap_to_next_occupied(std::size_t start) const {
    const std::size_t words = occ_.size();
    const std::size_t w = start >> 6;
    const std::uint64_t first = occ_[w] >> (start & 63);
    if (first) return static_cast<std::size_t>(std::countr_zero(first));
    for (std::size_t k = 1; k <= words; ++k) {
      const std::uint64_t word = occ_[(w + k) & (words - 1)];
      if (word) {
        return (k << 6) - (start & 63) +
               static_cast<std::size_t>(std::countr_zero(word));
      }
    }
    return buckets_.size();
  }

  /// Find the earliest (time, seq) live event of ordinal `ord` in its
  /// bucket; true if one exists (recorded in peek_*).  A dead winner is
  /// reclaimed (entry removed, slot freed) and the bucket re-scanned —
  /// tombstones are thus reclaimed exactly when they would have popped,
  /// so a freed slot can never be shadowed by a stale bucket entry.
  ///
  /// The same pass records the second-earliest *live* event of this
  /// ordinal as the runner-up.  All entries of later ordinals are
  /// strictly later in time, so a same-ordinal second place is the global
  /// second minimum — pop() and cancel() promote it without re-scanning.
  /// (The runner must be live at selection: a tombstone standing in for
  /// second place would let a later, smaller push displace it and then be
  /// promoted over a live event between the two.)
  bool scan_bucket(std::uint64_t ord) {
    const std::size_t bucket = ord & (buckets_.size() - 1);
    for (;;) {
      std::vector<Entry>& b = buckets_[bucket];
      scanned_ += b.size();
      bool found = false;
      double best_time = 0.0;
      std::size_t best_pos = 0;
      bool found2 = false;
      double best2_time = 0.0;
      std::size_t best2_pos = 0;
      for (std::size_t i = 0; i < b.size(); ++i) {
        const Entry& e = b[i];
        if (e.ord != ord) continue;
        if (!found || e.time < best_time ||
            (e.time == best_time &&
             slab_[e.idx].seq < slab_[b[best_pos].idx].seq)) {
          // The displaced leader was <= every other entry seen so far,
          // including the current second place, so it simply becomes the
          // new second place (if live).
          if (found && !slab_[b[best_pos].idx].dead) {
            found2 = true;
            best2_time = best_time;
            best2_pos = best_pos;
          }
          found = true;
          best_time = e.time;
          best_pos = i;
        } else if (!slab_[e.idx].dead &&
                   (!found2 || e.time < best2_time ||
                    (e.time == best2_time &&
                     slab_[e.idx].seq < slab_[b[best2_pos].idx].seq))) {
          found2 = true;
          best2_time = e.time;
          best2_pos = i;
        }
      }
      if (!found) return false;
      const std::uint32_t idx = b[best_pos].idx;
      if (slab_[idx].dead) {
        remove_at(bucket, best_pos);
        continue;
      }
      peek_bucket_ = bucket;
      peek_pos_ = best_pos;
      peek_idx_ = idx;
      have_peek_ = true;
      have_runner_ = found2;
      if (found2) {
        runner_bucket_ = bucket;
        runner_pos_ = best2_pos;
        runner_idx_ = b[best2_pos].idx;
      }
      return true;
    }
  }

  void jump_to_min_ord() {
    std::uint64_t min_ord = ~std::uint64_t{0};
    for (const auto& b : buckets_) {
      for (const Entry& e : b) {
        if (!slab_[e.idx].dead && e.ord < min_ord) min_ord = e.ord;
      }
    }
    cur_ord_ = min_ord;
  }

  /// Quadruple the bucket count and redistribute (ord is stored per
  /// entry, so redistribution is a rehash, not a recompute).
  void grow() {
    std::vector<std::vector<Entry>> old = std::move(buckets_);
    buckets_.assign(old.size() * 4, {});
    for (auto& b : old) {
      for (const Entry& e : b) {
        buckets_[e.ord & (buckets_.size() - 1)].push_back(e);
      }
    }
    reset_occupancy();
    have_peek_ = false;
    have_runner_ = false;
  }

  /// Recompute the occupancy bitmap from scratch (bucket layout changed).
  void reset_occupancy() {
    occ_.assign(buckets_.size() >= 64 ? buckets_.size() >> 6 : 1, 0);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (!buckets_[i].empty()) {
        occ_[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    }
  }

  /// Periodic width retune: when the measured work per pop (bucket entries
  /// scanned + empty buckets advanced) climbs past a few units, the fixed
  /// width no longer matches the schedule's event density and the calendar
  /// degrades toward a linear scan.  Recompute the width from the median
  /// inter-event gap of the live events (the classic calendar-queue
  /// self-sizing rule) and rebuild.  Retuning never changes pop order —
  /// order is the (time, seq) total order; buckets only accelerate the
  /// search — and the trigger depends only on the push/pop sequence, so
  /// runs stay deterministic.
  void maybe_retune() {
    const double window = static_cast<double>(pops_);
    const double avg_work =
        static_cast<double>(scanned_ + advances_) / window;
    pops_ = 0;
    scanned_ = 0;
    advances_ = 0;
    retune_pops_ = 4096;
    if (live_ < 8 || avg_work <= 4.0) return;

    std::vector<double> times;
    times.reserve(live_);
    for (const auto& b : buckets_) {
      for (const Entry& e : b) {
        if (!slab_[e.idx].dead) times.push_back(e.time);
      }
    }
    std::sort(times.begin(), times.end());
    std::vector<double> gaps;
    gaps.reserve(times.size());
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] > times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
    }
    double new_width;
    if (!gaps.empty()) {
      const auto mid =
          gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
      std::nth_element(gaps.begin(), mid, gaps.end());
      new_width = 1.5 * gaps[gaps.size() / 2];
    } else {
      const double span = times.back() - times.front();
      new_width = span > 0.0 ? span / static_cast<double>(live_) : width_;
    }
    new_width = std::clamp(new_width, 1e-3, 1e7);
    rebuild(new_width);
  }

  /// Re-hash every live event under a new bucket width, dropping
  /// tombstones and growing the bucket array to at least 2x the live
  /// count so one rotation spans the whole pending horizon.
  void rebuild(double new_width) {
    width_ = new_width;
    inv_width_ = 1.0 / width_;
    std::vector<Entry> alive;
    alive.reserve(live_);
    for (auto& b : buckets_) {
      for (const Entry& e : b) {
        if (slab_[e.idx].dead) {
          free_.push_back(e.idx);
        } else {
          alive.push_back(e);
        }
      }
      b.clear();
    }
    std::size_t want = buckets_.size();
    while (want < alive.size() * 2) want <<= 1;
    if (want > buckets_.size()) buckets_.resize(want);
    std::uint64_t min_ord = ~std::uint64_t{0};
    for (Entry e : alive) {
      e.ord = static_cast<std::uint64_t>(e.time * inv_width_);
      if (e.ord < min_ord) min_ord = e.ord;
      buckets_[e.ord & (buckets_.size() - 1)].push_back(e);
    }
    stored_ = alive.size();
    cur_ord_ = alive.empty() ? 0 : min_ord;
    reset_occupancy();
    have_peek_ = false;
    have_runner_ = false;
  }

  double width_;
  double inv_width_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<std::uint64_t> occ_;  ///< one bit per bucket: nonempty
  std::uint64_t cur_ord_ = 0;
  std::size_t live_ = 0;    ///< events not tombstoned
  std::size_t stored_ = 0;  ///< bucket entries incl. tombstones

  std::uint64_t pops_ = 0;           ///< pops since the last retune check
  std::uint64_t retune_pops_ = 256;  ///< pops until the next check
  std::uint64_t scanned_ = 0;   ///< bucket entries examined in the window
  std::uint64_t advances_ = 0;  ///< minimum-search bucket jumps in the window

  bool have_peek_ = false;
  std::size_t peek_bucket_ = 0;
  std::size_t peek_pos_ = 0;
  std::uint32_t peek_idx_ = 0;
  // Second-smallest live event, maintained alongside the peek cache so the
  // common pop / cancel-of-minimum promotes in O(1) instead of re-scanning.
  // Invariant: have_runner_ implies have_peek_, the runner is live, and
  // (runner time, seq) <= every live event except the cached minimum.
  bool have_runner_ = false;
  std::size_t runner_bucket_ = 0;
  std::size_t runner_pos_ = 0;
  std::uint32_t runner_idx_ = 0;
  SimEvent peeked_{};
};

}  // namespace dhtrng::sim
