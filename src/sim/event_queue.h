// Calendar (bucket) event queue.
//
// The simulator's schedule is a strict total order on (time, seq): events
// pop in nondecreasing time, ties broken by insertion sequence number.  A
// binary heap gives that order in O(log n) per operation with one heap
// node per event; the calendar queue gives amortized O(1) by hashing each
// event into a time bucket of fixed width and scanning the current bucket
// only.  Because bucket ordinal floor(time / width) is monotone in time,
// the earliest (time, seq) event always lives in the lowest occupied
// ordinal, so the calendar pops in exactly the same order as the heap —
// which is what the differential fuzz tests assert event-for-event.
//
// Pops drain a *run buffer*: when the minimum is needed, every event of
// the lowest occupied ordinal is extracted from its bucket in one pass,
// sorted once, and subsequent pops just advance a cursor — no per-pop
// bucket scan, no per-pop entry removal.  A push landing inside the
// current ordinal (rare: the simulator schedules ahead of now) inserts
// into the sorted run; a push landing *before* it (arbitrary use of the
// public API, never the simulator) flushes the run back first.  This
// changes only how the minimum is found, not which event is the minimum,
// so pop order is untouched.
//
// Bucket entries carry the whole event payload plus a tombstone flag, so
// extraction touches one contiguous array and nothing else.  Cancellation
// (inertial runt swallowing) marks the bucket entry dead in place — or
// erases it from the run if the ordinal is already extracted; tombstones
// are reclaimed when their ordinal is next extracted.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/circuit.h"

namespace dhtrng::sim {

/// A scheduled net transition, as observed by the differential tests.
struct SimEvent {
  double time;
  std::uint64_t seq;
  NetId net;
  bool value;
};

inline bool operator==(const SimEvent& a, const SimEvent& b) {
  return a.time == b.time && a.seq == b.seq && a.net == b.net &&
         a.value == b.value;
}

class CalendarQueue {
 public:
  /// `bucket_width_ps` is the time span hashed into one bucket; the queue
  /// retunes it at runtime from the observed event density, so the
  /// starting value only has to be in the right ballpark.
  explicit CalendarQueue(double bucket_width_ps,
                         std::size_t initial_buckets = 64)
      : width_(bucket_width_ps > 0.0 ? bucket_width_ps : 1.0),
        inv_width_(1.0 / width_) {
    std::size_t n = 1;
    while (n < initial_buckets) n <<= 1;
    buckets_.resize(n);
    occ_.assign(n >= 64 ? n >> 6 : 1, 0);
  }

  bool empty() const { return live_ == 0; }
  std::size_t live() const { return live_; }

  void push(double time, std::uint64_t seq, NetId net, bool value) {
    // Multiply by the cached reciprocal: the ordinal only has to be a
    // monotone function of time computed consistently (here, in cancel()
    // and in rebuild()); exact division-boundary placement is irrelevant.
    const std::uint64_t ord = static_cast<std::uint64_t>(time * inv_width_);
    ++live_;
    if (have_run_) {
      if (ord == run_ord_) {
        // Into the already-extracted ordinal: keep the run sorted.  An
        // equal-time event loses to every queued one (seq is strictly
        // increasing), so upper-bound on time alone is the (time, seq)
        // position.
        const auto it = std::upper_bound(
            run_.begin() + static_cast<std::ptrdiff_t>(run_head_), run_.end(),
            time,
            [](double t, const SimEvent& e) { return t < e.time; });
        // The shifted tail counts as minimum-search work: a width so
        // coarse that pushes keep landing inside the extracted ordinal
        // must show up in the retune metric.
        scanned_ += static_cast<std::uint64_t>(run_.end() - it);
        run_.insert(it, SimEvent{time, seq, net, value});
        return;
      }
      if (ord < run_ord_) {
        // Earlier than the extracted ordinal (arbitrary API use; the
        // simulator always schedules at or after the current time).  Put
        // the run back in its bucket and fall through to a plain push.
        flush_run();
        cur_ord_ = ord;
      }
    }
    const std::size_t bucket = ord & (buckets_.size() - 1);
    buckets_[bucket].push_back(
        {time, ord, seq, net, value ? std::uint8_t{1} : std::uint8_t{0}, 0});
    occ_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    ++stored_;
    if (stored_ > buckets_.size() * 8) grow();
  }

  /// Remove the still-queued event pushed as (time, seq) — O(bucket) with
  /// short buckets, O(1) amortized.  A bucket-resident event is
  /// tombstoned in place and reclaimed when its ordinal is extracted; an
  /// event already in the drain run is erased from it.  The caller must
  /// pass the exact time used at push (the simulator keys this off its
  /// per-net bookkeeping).
  void cancel(double time, std::uint64_t seq) {
    const std::uint64_t ord = static_cast<std::uint64_t>(time * inv_width_);
    if (have_run_ && ord == run_ord_) {
      for (std::size_t i = run_head_; i < run_.size(); ++i) {
        if (run_[i].seq == seq) {
          run_.erase(run_.begin() + static_cast<std::ptrdiff_t>(i));
          --live_;
          return;
        }
      }
      return;
    }
    std::vector<Entry>& b = buckets_[ord & (buckets_.size() - 1)];
    for (Entry& e : b) {
      if (e.seq == seq) {
        e.dead = 1;
        --live_;
        return;
      }
    }
  }

  /// Earliest live event in (time, seq) order, or nullptr when empty.
  /// The pointer stays valid until the next push/cancel/pop.
  const SimEvent* peek() {
    if (run_head_ < run_.size()) return &run_[run_head_];
    if (live_ == 0) return nullptr;
    refill_run();
    return &run_[run_head_];
  }

  /// Remove and return the earliest live event (queue must be non-empty).
  SimEvent pop() {
    if (run_head_ >= run_.size()) refill_run();
    const SimEvent ev = run_[run_head_++];
    --live_;
    if (++pops_ >= retune_pops_) maybe_retune();
    return ev;
  }

  /// Fused peek+pop for the simulator's run loop: pop the earliest live
  /// event into `out` iff its time is <= `t_ps`.  The common path is a
  /// bounds check and a cursor advance on the sorted run — it reads no
  /// bucket memory at all.
  bool pop_if_due(double t_ps, SimEvent& out) {
    if (run_head_ >= run_.size()) {
      if (live_ == 0) return false;
      refill_run();
    }
    const SimEvent& e = run_[run_head_];
    if (e.time > t_ps) return false;
    out = e;
    ++run_head_;
    --live_;
    if (++pops_ >= retune_pops_) maybe_retune();
    return true;
  }

  double bucket_width_ps() const { return width_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t stored() const { return stored_ + (run_.size() - run_head_); }

 private:
  /// Bucket entry: the full event payload plus the calendar bookkeeping.
  /// `ord` distinguishes rotations sharing the bucket hash.
  struct Entry {
    double time;
    std::uint64_t ord;
    std::uint64_t seq;
    NetId net;
    std::uint8_t value;
    std::uint8_t dead;
  };

  static bool event_before(const SimEvent& a, const SimEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Return the run's undrained remainder to its bucket (the extracted
  /// ordinal is about to stop being the active one).
  void flush_run() {
    const std::size_t bucket = run_ord_ & (buckets_.size() - 1);
    for (std::size_t i = run_head_; i < run_.size(); ++i) {
      const SimEvent& e = run_[i];
      buckets_[bucket].push_back(
          {e.time, run_ord_, e.seq, e.net,
           e.value ? std::uint8_t{1} : std::uint8_t{0}, 0});
      ++stored_;
    }
    if (!buckets_[bucket].empty()) {
      occ_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    }
    run_.clear();
    run_head_ = 0;
    have_run_ = false;
  }

  /// Find the lowest occupied ordinal from cur_ord_ upward (occupancy
  /// bitmap hops over empty buckets) and extract it into the run.  If a
  /// full rotation of nonempty buckets yields nothing (their entries all
  /// belong to later rotations — a sparse schedule, e.g. a lone slow
  /// clock), jump cur_ord_ straight to the minimum occupied ordinal.
  /// Precondition: live_ > 0 and the run is drained.
  void refill_run() {
    run_.clear();
    run_head_ = 0;
    have_run_ = false;
    std::size_t rounds = 0;
    for (;;) {
      if (extract_run(cur_ord_)) return;
      cur_ord_ += 1 + gap_to_next_occupied(
          (static_cast<std::size_t>(cur_ord_) + 1) & (buckets_.size() - 1));
      ++advances_;
      if (++rounds > buckets_.size()) {
        jump_to_min_ord();
        extract_run(cur_ord_);
        return;
      }
    }
  }

  /// Cyclic distance from bucket index `start` to the nearest nonempty
  /// bucket at or after it (0 when `start` itself is nonempty); the
  /// bucket count if every bucket is empty.
  std::size_t gap_to_next_occupied(std::size_t start) const {
    const std::size_t words = occ_.size();
    const std::size_t w = start >> 6;
    const std::uint64_t first = occ_[w] >> (start & 63);
    if (first) return static_cast<std::size_t>(std::countr_zero(first));
    for (std::size_t k = 1; k <= words; ++k) {
      const std::uint64_t word = occ_[(w + k) & (words - 1)];
      if (word) {
        return (k << 6) - (start & 63) +
               static_cast<std::size_t>(std::countr_zero(word));
      }
    }
    return buckets_.size();
  }

  /// Move every live event of ordinal `ord` out of its bucket into the
  /// run (reclaiming tombstones of that ordinal on the way), then sort
  /// the run into (time, seq) order.  True if the run is nonempty.  All
  /// entries of later ordinals are strictly later in time, so the sorted
  /// run is a prefix of the global pop order.
  bool extract_run(std::uint64_t ord) {
    const std::size_t bucket = ord & (buckets_.size() - 1);
    std::vector<Entry>& b = buckets_[bucket];
    scanned_ += b.size();
    std::size_t i = 0;
    while (i < b.size()) {
      const Entry& e = b[i];
      if (e.ord != ord) {
        ++i;
        continue;
      }
      if (!e.dead) run_.push_back(SimEvent{e.time, e.seq, e.net, e.value != 0});
      // Swap-fill removal; re-examine the entry moved into slot i.
      b[i] = b.back();
      b.pop_back();
      --stored_;
    }
    if (b.empty()) occ_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    if (run_.empty()) return false;
    std::sort(run_.begin(), run_.end(), event_before);
    // Charge the sort's n·log n to the work metric: a coarse width makes
    // extraction rare but each sort long, and the retuner has to see that
    // trade-off or it never shrinks the width.
    scanned_ += run_.size() *
                static_cast<std::uint64_t>(std::bit_width(run_.size()));
    run_ord_ = ord;
    have_run_ = true;
    return true;
  }

  void jump_to_min_ord() {
    std::uint64_t min_ord = ~std::uint64_t{0};
    for (const auto& b : buckets_) {
      for (const Entry& e : b) {
        if (!e.dead && e.ord < min_ord) min_ord = e.ord;
      }
    }
    cur_ord_ = min_ord;
  }

  /// Quadruple the bucket count and redistribute (ord is stored per
  /// entry, so redistribution is a rehash, not a recompute).  The run is
  /// untouched: its events stay addressed by run_ord_, which does not
  /// depend on the bucket count.
  void grow() {
    std::vector<std::vector<Entry>> old = std::move(buckets_);
    buckets_.assign(old.size() * 4, {});
    for (auto& b : old) {
      for (const Entry& e : b) {
        buckets_[e.ord & (buckets_.size() - 1)].push_back(e);
      }
    }
    reset_occupancy();
  }

  /// Recompute the occupancy bitmap from scratch (bucket layout changed).
  void reset_occupancy() {
    occ_.assign(buckets_.size() >= 64 ? buckets_.size() >> 6 : 1, 0);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (!buckets_[i].empty()) {
        occ_[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    }
  }

  /// Periodic width retune: when the measured work per pop (bucket entries
  /// examined at extraction + empty buckets advanced) climbs past a few
  /// units, the fixed width no longer matches the schedule's event density
  /// and the calendar degrades toward a linear scan.  Recompute the width
  /// from the median inter-event gap of the live events (the classic
  /// calendar-queue self-sizing rule) and rebuild.  Retuning never changes
  /// pop order — order is the (time, seq) total order; buckets only
  /// accelerate the search — and the trigger depends only on the push/pop
  /// sequence, so runs stay deterministic.
  void maybe_retune() {
    // Pushes may keep the run alive indefinitely (they append while pops
    // advance the head); drop the drained prefix so the buffer stays
    // bounded by the pending count plus one retune window.
    if (run_head_ > 0) {
      run_.erase(run_.begin(),
                 run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
      run_head_ = 0;
    }
    const double window = static_cast<double>(pops_);
    const double avg_work =
        static_cast<double>(scanned_ + advances_) / window;
    pops_ = 0;
    scanned_ = 0;
    advances_ = 0;
    retune_pops_ = 4096;
    if (live_ < 8 || avg_work <= 4.0) return;

    std::vector<double> times;
    times.reserve(live_);
    for (std::size_t i = run_head_; i < run_.size(); ++i) {
      times.push_back(run_[i].time);
    }
    for (const auto& b : buckets_) {
      for (const Entry& e : b) {
        if (!e.dead) times.push_back(e.time);
      }
    }
    std::sort(times.begin(), times.end());
    std::vector<double> gaps;
    gaps.reserve(times.size());
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] > times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
    }
    double new_width;
    if (!gaps.empty()) {
      const auto mid =
          gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
      std::nth_element(gaps.begin(), mid, gaps.end());
      new_width = 3.0 * gaps[gaps.size() / 2];
    } else if (!times.empty()) {
      const double span = times.back() - times.front();
      new_width = span > 0.0 ? span / static_cast<double>(live_) : width_;
    } else {
      new_width = width_;
    }
    new_width = std::clamp(new_width, 1e-3, 1e7);
    rebuild(new_width);
  }

  /// Re-hash every live event (run included) under a new bucket width,
  /// dropping tombstones and growing the bucket array to at least 2x the
  /// live count so one rotation spans the whole pending horizon.
  void rebuild(double new_width) {
    width_ = new_width;
    inv_width_ = 1.0 / width_;
    std::vector<Entry> alive;
    alive.reserve(live_);
    for (std::size_t i = run_head_; i < run_.size(); ++i) {
      const SimEvent& e = run_[i];
      alive.push_back({e.time, 0, e.seq, e.net,
                       e.value ? std::uint8_t{1} : std::uint8_t{0}, 0});
    }
    run_.clear();
    run_head_ = 0;
    have_run_ = false;
    for (auto& b : buckets_) {
      for (const Entry& e : b) {
        if (!e.dead) alive.push_back(e);
      }
      b.clear();
    }
    std::size_t want = buckets_.size();
    while (want < alive.size() * 2) want <<= 1;
    if (want > buckets_.size()) buckets_.resize(want);
    std::uint64_t min_ord = ~std::uint64_t{0};
    for (Entry e : alive) {
      e.ord = static_cast<std::uint64_t>(e.time * inv_width_);
      if (e.ord < min_ord) min_ord = e.ord;
      buckets_[e.ord & (buckets_.size() - 1)].push_back(e);
    }
    stored_ = alive.size();
    cur_ord_ = alive.empty() ? 0 : min_ord;
    reset_occupancy();
  }

  double width_;
  double inv_width_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<std::uint64_t> occ_;  ///< one bit per bucket: nonempty
  std::uint64_t cur_ord_ = 0;
  std::size_t live_ = 0;    ///< events not tombstoned (run included)
  std::size_t stored_ = 0;  ///< bucket entries incl. tombstones, excl. run

  // Drain run: the extracted current ordinal, sorted by (time, seq);
  // run_[run_head_..] are pending, earlier entries already popped.
  std::vector<SimEvent> run_;
  std::size_t run_head_ = 0;
  std::uint64_t run_ord_ = 0;
  bool have_run_ = false;

  std::uint64_t pops_ = 0;           ///< pops since the last retune check
  std::uint64_t retune_pops_ = 256;  ///< pops until the next check
  std::uint64_t scanned_ = 0;   ///< bucket entries examined in the window
  std::uint64_t advances_ = 0;  ///< minimum-search bucket jumps in the window
};

}  // namespace dhtrng::sim
