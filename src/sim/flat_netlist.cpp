#include "sim/flat_netlist.h"

namespace dhtrng::sim {

FlatNetlist FlatNetlist::build(const Circuit& circuit) {
  FlatNetlist f;
  f.net_count = circuit.net_count();
  const auto& gates = circuit.gates();
  const auto& dffs = circuit.dffs();

  f.gate_kind.reserve(gates.size());
  f.gate_delay_ps.reserve(gates.size());
  f.gate_output.reserve(gates.size());
  f.gate_in_off.reserve(gates.size() + 1);
  f.gate_in_off.push_back(0);
  for (const Gate& g : gates) {
    f.gate_kind.push_back(g.kind);
    f.gate_delay_ps.push_back(g.delay_ps);
    f.gate_output.push_back(g.output);
    for (NetId in : g.inputs) f.gate_in.push_back(in);
    f.gate_in_off.push_back(static_cast<std::uint32_t>(f.gate_in.size()));
    if (g.inputs.size() > f.max_arity) f.max_arity = g.inputs.size();
  }

  // Counting-sort CSR construction; preserves the (gate, input-position)
  // order of the reference scheduler's vector-of-vectors, duplicates and
  // all, because the noise draw order depends on it.
  f.fanout_off.assign(f.net_count + 1, 0);
  for (const Gate& g : gates) {
    for (NetId in : g.inputs) ++f.fanout_off[in + 1];
  }
  for (std::size_t n = 0; n < f.net_count; ++n) {
    f.fanout_off[n + 1] += f.fanout_off[n];
  }
  f.fanout.resize(f.gate_in.size());
  {
    std::vector<std::uint32_t> cursor(f.fanout_off.begin(),
                                      f.fanout_off.end() - 1);
    for (std::size_t g = 0; g < gates.size(); ++g) {
      for (NetId in : gates[g].inputs) {
        f.fanout[cursor[in]++] = static_cast<std::uint32_t>(g);
      }
    }
  }

  f.dff_off.assign(f.net_count + 1, 0);
  for (const Dff& d : dffs) ++f.dff_off[d.clk + 1];
  for (std::size_t n = 0; n < f.net_count; ++n) {
    f.dff_off[n + 1] += f.dff_off[n];
  }
  f.dff_by_clk.resize(dffs.size());
  {
    std::vector<std::uint32_t> cursor(f.dff_off.begin(), f.dff_off.end() - 1);
    for (std::size_t d = 0; d < dffs.size(); ++d) {
      f.dff_by_clk[cursor[dffs[d].clk]++] = static_cast<std::uint32_t>(d);
    }
  }

  f.clock_index.assign(f.net_count, -1);
  const auto& clocks = circuit.clocks();
  for (std::size_t c = 0; c < clocks.size(); ++c) {
    if (f.clock_index[clocks[c].net] < 0) {
      f.clock_index[clocks[c].net] = static_cast<std::int32_t>(c);
    }
  }

  // Fold the per-net and per-gate reads of the event loop into single
  // records (pure re-packaging of the arrays built above).
  f.net_meta.resize(f.net_count);
  for (std::size_t n = 0; n < f.net_count; ++n) {
    NetMeta& m = f.net_meta[n];
    m.fanout_begin = f.fanout_off[n];
    m.fanout_end = f.fanout_off[n + 1];
    m.dff_begin = f.dff_off[n];
    m.dff_end = f.dff_off[n + 1];
    m.clock = f.clock_index[n];
  }
  f.gate_meta.resize(gates.size());
  for (std::size_t g = 0; g < gates.size(); ++g) {
    GateMeta& m = f.gate_meta[g];
    m.in_begin = f.gate_in_off[g];
    m.in_end = f.gate_in_off[g + 1];
    m.output = f.gate_output[g];
    m.kind = f.gate_kind[g];
  }
  return f;
}

}  // namespace dhtrng::sim
