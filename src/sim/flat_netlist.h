// Contiguous (struct-of-arrays / CSR) view of a Circuit, built once at
// elaboration time.
//
// The Circuit API optimizes for construction convenience: gates hold their
// input lists in per-gate vectors, fanout is implicit, clocks are a list to
// scan.  The simulator's hot loop wants the opposite — flat arrays it can
// stream through without pointer chasing or per-event allocation — so the
// constructor flattens everything once:
//
//   * gate kind / delay / output as parallel arrays,
//   * gate input nets and per-net fanout gate lists in CSR form
//     (offsets + one flat array),
//   * flip-flops indexed by their clock net in CSR form,
//   * a per-net clock-spec index (first registered clock wins, matching
//     the reference scheduler's linear-scan-with-break semantics).
//
// Order is preserved exactly — including duplicate fanout entries when a
// gate lists the same input net twice — because the noise draw order, and
// therefore the waveforms, depend on it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/circuit.h"

namespace dhtrng::sim {

struct FlatNetlist {
  std::size_t net_count = 0;

  // Gates, struct-of-arrays.
  std::vector<GateKind> gate_kind;
  std::vector<double> gate_delay_ps;
  std::vector<NetId> gate_output;
  std::vector<std::uint32_t> gate_in_off;  ///< size gates + 1
  std::vector<NetId> gate_in;
  std::size_t max_arity = 0;

  // Per-net fanout: gate indices, duplicates preserved.
  std::vector<std::uint32_t> fanout_off;  ///< size nets + 1
  std::vector<std::uint32_t> fanout;

  // Flip-flops grouped by clock net.
  std::vector<std::uint32_t> dff_off;  ///< size nets + 1
  std::vector<std::uint32_t> dff_by_clk;

  /// Index into Circuit::clocks() of the net's clock source, or -1.
  std::vector<std::int32_t> clock_index;

  /// Per-net hot metadata: everything the event loop reads for an applied
  /// net change (fanout span, flip-flop span, clock source) folded into
  /// one 20-byte record, so the common event touches one cache line where
  /// the parallel offset arrays would touch three.  Redundant with the
  /// CSR arrays above, which remain the canonical representation.
  struct NetMeta {
    std::uint32_t fanout_begin = 0;
    std::uint32_t fanout_end = 0;
    std::uint32_t dff_begin = 0;
    std::uint32_t dff_end = 0;
    std::int32_t clock = -1;
  };
  std::vector<NetMeta> net_meta;  ///< size nets

  /// Per-gate hot metadata: the evaluation + scheduling reads (input
  /// span, kind, output net) in one 16-byte record.  Redundant with the
  /// gate arrays above.
  struct GateMeta {
    std::uint32_t in_begin = 0;
    std::uint32_t in_end = 0;
    NetId output = 0;
    GateKind kind{};
  };
  std::vector<GateMeta> gate_meta;  ///< size gates

  static FlatNetlist build(const Circuit& circuit);
};

/// Gate function over a flat input-net list reading current net values;
/// truth-table-identical to evaluate_gate(kind, vector<bool>).
inline bool evaluate_gate_flat(GateKind kind, const std::uint8_t* values,
                               const NetId* in, std::size_t n) {
  switch (kind) {
    case GateKind::Inv: return values[in[0]] == 0;
    case GateKind::Buf: return values[in[0]] != 0;
    case GateKind::And: {
      for (std::size_t i = 0; i < n; ++i) {
        if (values[in[i]] == 0) return false;
      }
      return true;
    }
    case GateKind::Nand: {
      for (std::size_t i = 0; i < n; ++i) {
        if (values[in[i]] == 0) return true;
      }
      return false;
    }
    case GateKind::Or: {
      for (std::size_t i = 0; i < n; ++i) {
        if (values[in[i]] != 0) return true;
      }
      return false;
    }
    case GateKind::Nor: {
      for (std::size_t i = 0; i < n; ++i) {
        if (values[in[i]] != 0) return false;
      }
      return true;
    }
    case GateKind::Xor: {
      std::uint8_t acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc ^= values[in[i]];
      return (acc & 1) != 0;
    }
    case GateKind::Xnor: {
      std::uint8_t acc = 1;
      for (std::size_t i = 0; i < n; ++i) acc ^= values[in[i]];
      return (acc & 1) != 0;
    }
    case GateKind::Mux2:
      return values[values[in[0]] != 0 ? in[2] : in[1]] != 0;
  }
  return false;
}

}  // namespace dhtrng::sim
