#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/special_functions.h"

namespace dhtrng::sim {

namespace {
constexpr double kMinDelayPs = 0.1;
constexpr double kReferenceDelayPs = 100.0;

/// Calendar bucket width: the median scheduled delay puts the typical
/// event one bucket ahead of now, so most pops scan a single short
/// bucket.  Clock-only circuits fall back to the half-period; the queue's
/// rotation fallback covers sparse schedules either way.
double pick_bucket_width(const Circuit& circuit, const SimConfig& config) {
  std::vector<double> delays;
  delays.reserve(circuit.gates().size());
  for (const Gate& g : circuit.gates()) {
    delays.push_back(g.delay_ps * config.scaling.delay);
  }
  if (delays.empty()) {
    for (const ClockSpec& c : circuit.clocks()) {
      delays.push_back(c.period_ps * 0.5);
    }
  }
  if (delays.empty()) return 100.0;
  const auto mid = delays.begin() + static_cast<std::ptrdiff_t>(delays.size() / 2);
  std::nth_element(delays.begin(), mid, delays.end());
  return std::clamp(*mid, 1.0, 5000.0);
}

std::string budget_message(double sim_time_ps, std::uint64_t events,
                           std::uint64_t hottest_net_toggles,
                           const std::string& hottest_net_name) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "Simulator: event budget exhausted at t=%.1f ps after %llu "
                "events; hottest net '%s' (%llu toggles)",
                sim_time_ps, static_cast<unsigned long long>(events),
                hottest_net_name.c_str(),
                static_cast<unsigned long long>(hottest_net_toggles));
  return buf;
}
}  // namespace

BudgetExhaustedError::BudgetExhaustedError(
    double sim_time_ps, std::uint64_t events, NetId hottest_net,
    std::uint64_t hottest_net_toggles, const std::string& hottest_net_name)
    : std::runtime_error(budget_message(sim_time_ps, events,
                                        hottest_net_toggles,
                                        hottest_net_name)),
      sim_time_ps_(sim_time_ps),
      events_(events),
      hottest_net_(hottest_net),
      hottest_net_toggles_(hottest_net_toggles) {}

Simulator::Simulator(const Circuit& circuit, SimConfig config)
    : circuit_(circuit),
      config_(config),
      flat_(FlatNetlist::build(circuit)),
      value_(circuit.net_count(), 0),
      sched_(circuit.net_count()),
      last_change_(circuit.net_count(), -1e18),
      toggles_(circuit.net_count(), 0),
      cal_(pick_bucket_width(circuit, config)),
      shared_noise_(config.gate_jitter.correlated_sigma_ps,
                    config.seed ^ 0xabcdef1234567890ULL),
      meta_rng_(config.seed ^ 0x5bd1e995cafef00dULL),
      dff_samples_(circuit.dffs().size()),
      dff_recorded_(circuit.dffs().size(), 0),
      sample_counts_(circuit.dffs().size(), 0),
      edge_recorded_(circuit.net_count(), 0),
      edge_times_(circuit.net_count()) {
  circuit.validate();

  const auto& initial = circuit.initial_values();
  for (std::size_t n = 0; n < value_.size(); ++n) {
    value_[n] = initial[n] ? 1 : 0;
    sched_[n].projected = value_[n];
  }

  // The shared AR(1) supply trajectory batches the same way as the
  // per-source draws (its value stream is private to its own RNG; the
  // cross-source call order only decides who receives each value).
  shared_noise_.set_batch(config.noise_batch);

  support::SplitMix64 seeder(config.seed);
  gate_noise_.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    // Longer cells accumulate more noise: white sigma ~ sqrt(delay).
    noise::JitterParams p = config.gate_jitter;
    p.white_sigma_ps *=
        std::sqrt(circuit.gates()[g].delay_ps / kReferenceDelayPs);
    gate_noise_.emplace_back(p, seeder.next(), &shared_noise_);
    gate_noise_.back().set_batch(config.noise_batch);
  }

  fast_noise_ = config.noise_mode == noise::NoiseMode::Fast;
  if (fast_noise_) {
    shared_noise_.set_mode(noise::NoiseMode::Fast);
    for (std::size_t g = 0; g < gate_noise_.size(); ++g) {
      // Complete delays are precomputed per block: nominal (PVT-scaled)
      // base plus white+flicker, clamped at consumption to the same floor
      // the exact path applies.
      gate_noise_[g].enable_fast_delay(
          flat_.gate_delay_ps[g] * config.scaling.delay, kMinDelayPs,
          config.scaling);
    }
  }

  // Kick-start: schedule first clock edges and settle gates whose output
  // disagrees with the initial net values (this is what makes inverter
  // rings begin to oscillate).
  for (const ClockSpec& c : circuit.clocks()) {
    schedule(c.net, true, std::max(c.offset_ps, kMinDelayPs));
  }
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const std::uint32_t lo = flat_.gate_in_off[g];
    const bool out =
        evaluate_gate_flat(flat_.gate_kind[g], value_.data(),
                           flat_.gate_in.data() + lo,
                           flat_.gate_in_off[g + 1] - lo);
    if (out != (value_[flat_.gate_output[g]] != 0)) {
      schedule(flat_.gate_output[g], out, gate_delay_with_jitter(g));
    }
  }
}

double Simulator::gate_delay_with_jitter(std::size_t gate_index) {
  if (fast_noise_) return gate_noise_[gate_index].next_delay_fast();
  const double nominal = flat_.gate_delay_ps[gate_index] * config_.scaling.delay;
  const double jitter =
      gate_noise_[gate_index].next_edge_jitter(config_.scaling);
  return std::max(nominal + jitter, kMinDelayPs);
}

void Simulator::schedule(NetId net, bool value, double delay_from_now) {
  double t = now_ + delay_from_now;
  NetSched& s = sched_[net];
  // Per-net causal ordering: a later-issued transition may not overtake an
  // earlier one (jitter could otherwise reorder them).
  if (t <= s.time) t = s.time + kMinDelayPs;

  const bool pending = s.time > now_;
  if (pending && (s.projected != 0) != value && value == (value_[net] != 0) &&
      t - s.time < config_.min_pulse_ps) {
    // Runt pulse: the pending transition would be undone before it could
    // propagate a full pulse width; swallow both (inertial delay).
    if (config_.scheduler == Scheduler::Calendar) {
      cal_.cancel(s.time, s.seq);
    } else {
      dead_events_.push_back(s.seq);
    }
    s.projected = value_[net];
    s.time = now_;
    ++runts_filtered_;
    return;
  }
  if ((s.projected != 0) == value) return;  // no change to project

  s.projected = value ? 1 : 0;
  s.time = t;
  s.seq = ++seq_;
  if (config_.scheduler == Scheduler::Calendar) {
    cal_.push(t, seq_, net, value);
  } else {
    queue_.push(Event{t, seq_, net, value});
  }
}

void Simulator::run_until(double t_ps) {
  if (config_.scheduler == Scheduler::Calendar) {
    run_until_calendar(t_ps);
  } else {
    run_until_reference(t_ps);
  }
  now_ = std::max(now_, t_ps);
}

void Simulator::run_until_calendar(double t_ps) {
  SimEvent ev;
  while (cal_.pop_if_due(t_ps, ev)) {
    if (++events_processed_ > config_.max_events) throw_budget_exhausted();
    now_ = ev.time;
    if (trace_applied_) applied_events_.push_back(ev);
    apply_net_change(ev.net, ev.value);
  }
}

void Simulator::run_until_reference(double t_ps) {
  while (!queue_.empty() && queue_.top().time <= t_ps) {
    const Event ev = queue_.top();
    queue_.pop();
    if (!dead_events_.empty()) {
      const auto it =
          std::find(dead_events_.begin(), dead_events_.end(), ev.seq);
      if (it != dead_events_.end()) {
        dead_events_.erase(it);
        continue;
      }
    }
    if (++events_processed_ > config_.max_events) throw_budget_exhausted();
    now_ = ev.time;
    if (trace_applied_) {
      applied_events_.push_back(SimEvent{ev.time, ev.seq, ev.net, ev.value});
    }
    apply_net_change(ev.net, ev.value);
  }
}

void Simulator::throw_budget_exhausted() {
  NetId hottest = 0;
  for (NetId n = 1; n < static_cast<NetId>(toggles_.size()); ++n) {
    if (toggles_[n] > toggles_[hottest]) hottest = n;
  }
  const std::uint64_t hot_toggles = toggles_.empty() ? 0 : toggles_[hottest];
  throw BudgetExhaustedError(now_, events_processed_, hottest, hot_toggles,
                             toggles_.empty() ? std::string("<none>")
                                              : circuit_.net_name(hottest));
}

void Simulator::apply_net_change(NetId net, bool value) {
  if ((value_[net] != 0) == value) return;
  value_[net] = value ? 1 : 0;
  last_change_[net] = now_;
  ++toggles_[net];
  if (value && edge_recorded_[net]) edge_times_[net].push_back(now_);

  const FlatNetlist::NetMeta& m = flat_.net_meta[net];

  // Clock source nets regenerate their own next edge.
  if (config_.scheduler == Scheduler::Calendar) {
    if (m.clock >= 0) {
      const ClockSpec& c = circuit_.clocks()[static_cast<std::size_t>(m.clock)];
      const double high = c.period_ps * c.duty;
      schedule(net, !value, value ? high : c.period_ps - high);
    }
  } else {
    // Reference oracle keeps the historical linear clock scan.
    for (const ClockSpec& c : circuit_.clocks()) {
      if (c.net == net) {
        const double high = c.period_ps * c.duty;
        schedule(net, !value, value ? high : c.period_ps - high);
        break;
      }
    }
  }

  // Rising clock edge: sample every flip-flop on this clock.
  if (value) {
    for (std::uint32_t d = m.dff_begin; d < m.dff_end; ++d) {
      const std::uint32_t f = flat_.dff_by_clk[d];
      const Dff& ff = circuit_.dffs()[f];
      const bool d_now = value_[ff.d] != 0;
      const double delta = now_ - last_change_[ff.d];
      const double sigma = ff.timing.aperture_sigma_ps *
                           std::max(config_.scaling.delay, 1e-9);
      bool captured = d_now;
      double extra = 0.0;
      if (delta < 4.0 * sigma) {
        // Eq. 2: the probability of capturing the post-transition value is
        // the normal CDF of the (scaled) distance to the sampling edge.
        const double p_new = support::normal_cdf(delta / sigma);
        captured = meta_rng_.bernoulli(p_new) ? d_now : !d_now;
        extra = meta_rng_.exponential(ff.timing.resolution_mean_ps);
        ++metastable_samples_;
      }
      if (dff_recorded_[f]) {
        dff_samples_[f].push_back(captured ? 1 : 0);
      }
      ++sample_counts_[f];
      schedule(ff.q, captured,
               ff.timing.clk_to_q_ps * config_.scaling.delay + extra);
    }
  }

  if (config_.scheduler == Scheduler::Calendar) {
    // Hot path: CSR fanout, allocation-free gate evaluation, one merged
    // metadata record per gate.
    const std::uint8_t* values = value_.data();
    const NetId* ins = flat_.gate_in.data();
    for (std::uint32_t o = m.fanout_begin; o < m.fanout_end; ++o) {
      const std::uint32_t g = flat_.fanout[o];
      const FlatNetlist::GateMeta& gm = flat_.gate_meta[g];
      const bool out = evaluate_gate_flat(gm.kind, values, ins + gm.in_begin,
                                          gm.in_end - gm.in_begin);
      schedule(gm.output, out, gate_delay_with_jitter(g));
    }
  } else {
    // Reference oracle: the historical per-event-allocating evaluation,
    // retained unchanged as the baseline the microbench measures against.
    for (std::uint32_t o = m.fanout_begin; o < m.fanout_end; ++o) {
      const std::uint32_t g = flat_.fanout[o];
      const Gate& gate = circuit_.gates()[g];
      std::vector<bool> ins(gate.inputs.size());
      for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
        ins[i] = value_[gate.inputs[i]] != 0;
      }
      schedule(gate.output, evaluate_gate(gate.kind, ins),
               gate_delay_with_jitter(g));
    }
  }
}

void Simulator::record_dff(std::size_t dff_index) {
  dff_recorded_.at(dff_index) = 1;
}

void Simulator::record_edges(NetId net) { edge_recorded_.at(net) = 1; }

const std::vector<double>& Simulator::edge_times(NetId net) const {
  return edge_times_.at(net);
}

const std::vector<std::uint8_t>& Simulator::samples(
    std::size_t dff_index) const {
  return dff_samples_.at(dff_index);
}

std::uint64_t Simulator::total_toggles() const {
  std::uint64_t total = 0;
  for (std::uint64_t t : toggles_) total += t;
  return total;
}

}  // namespace dhtrng::sim
