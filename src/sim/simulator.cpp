#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/special_functions.h"

namespace dhtrng::sim {

namespace {
constexpr double kMinDelayPs = 0.1;
constexpr double kReferenceDelayPs = 100.0;
}  // namespace

Simulator::Simulator(const Circuit& circuit, SimConfig config)
    : circuit_(circuit),
      config_(config),
      value_(circuit.net_count(), 0),
      projected_(circuit.net_count(), 0),
      last_change_(circuit.net_count(), -1e18),
      last_sched_time_(circuit.net_count(), -1.0),
      last_sched_seq_(circuit.net_count(), 0),
      toggles_(circuit.net_count(), 0),
      fanout_gates_(circuit.net_count()),
      clocked_dffs_(circuit.net_count()),
      shared_noise_(config.gate_jitter.correlated_sigma_ps,
                    config.seed ^ 0xabcdef1234567890ULL),
      meta_rng_(config.seed ^ 0x5bd1e995cafef00dULL),
      dff_samples_(circuit.dffs().size()),
      dff_recorded_(circuit.dffs().size(), 0),
      sample_counts_(circuit.dffs().size(), 0),
      edge_recorded_(circuit.net_count(), 0),
      edge_times_(circuit.net_count()) {
  circuit.validate();

  const auto& initial = circuit.initial_values();
  for (std::size_t n = 0; n < value_.size(); ++n) {
    value_[n] = initial[n] ? 1 : 0;
    projected_[n] = value_[n];
  }

  support::SplitMix64 seeder(config.seed);
  gate_noise_.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    // Longer cells accumulate more noise: white sigma ~ sqrt(delay).
    noise::JitterParams p = config.gate_jitter;
    p.white_sigma_ps *=
        std::sqrt(circuit.gates()[g].delay_ps / kReferenceDelayPs);
    gate_noise_.emplace_back(p, seeder.next(), &shared_noise_);
  }

  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    for (NetId in : circuit.gates()[g].inputs) {
      fanout_gates_[in].push_back(static_cast<std::uint32_t>(g));
    }
  }
  for (std::size_t f = 0; f < circuit.dffs().size(); ++f) {
    clocked_dffs_[circuit.dffs()[f].clk].push_back(
        static_cast<std::uint32_t>(f));
  }

  // Kick-start: schedule first clock edges and settle gates whose output
  // disagrees with the initial net values (this is what makes inverter
  // rings begin to oscillate).
  for (const ClockSpec& c : circuit.clocks()) {
    schedule(c.net, true, std::max(c.offset_ps, kMinDelayPs));
  }
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const Gate& gate = circuit.gates()[g];
    std::vector<bool> ins(gate.inputs.size());
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      ins[i] = value_[gate.inputs[i]] != 0;
    }
    const bool out = evaluate_gate(gate.kind, ins);
    if (out != (value_[gate.output] != 0)) {
      schedule(gate.output, out, gate_delay_with_jitter(g));
    }
  }
}

double Simulator::gate_delay_with_jitter(std::size_t gate_index) {
  const Gate& gate = circuit_.gates()[gate_index];
  const double nominal = gate.delay_ps * config_.scaling.delay;
  const double jitter =
      gate_noise_[gate_index].next_edge_jitter(config_.scaling);
  return std::max(nominal + jitter, kMinDelayPs);
}

void Simulator::schedule(NetId net, bool value, double delay_from_now) {
  double t = now_ + delay_from_now;
  // Per-net causal ordering: a later-issued transition may not overtake an
  // earlier one (jitter could otherwise reorder them).
  if (t <= last_sched_time_[net]) t = last_sched_time_[net] + kMinDelayPs;

  const bool pending = last_sched_time_[net] > now_;
  if (pending && (projected_[net] != 0) != value &&
      value == (value_[net] != 0) &&
      t - last_sched_time_[net] < config_.min_pulse_ps) {
    // Runt pulse: the pending transition would be undone before it could
    // propagate a full pulse width; swallow both (inertial delay).
    dead_events_.push_back(last_sched_seq_[net]);
    projected_[net] = value_[net];
    last_sched_time_[net] = now_;
    ++runts_filtered_;
    return;
  }
  if ((projected_[net] != 0) == value) return;  // no change to project

  projected_[net] = value ? 1 : 0;
  last_sched_time_[net] = t;
  last_sched_seq_[net] = ++seq_;
  queue_.push(Event{t, seq_, net, value});
}

void Simulator::run_until(double t_ps) {
  while (!queue_.empty() && queue_.top().time <= t_ps) {
    const Event ev = queue_.top();
    queue_.pop();
    if (!dead_events_.empty()) {
      const auto it =
          std::find(dead_events_.begin(), dead_events_.end(), ev.seq);
      if (it != dead_events_.end()) {
        dead_events_.erase(it);
        continue;
      }
    }
    if (++events_processed_ > config_.max_events) {
      throw std::runtime_error("Simulator: event budget exhausted");
    }
    now_ = ev.time;
    apply_net_change(ev.net, ev.value);
  }
  now_ = std::max(now_, t_ps);
}

void Simulator::apply_net_change(NetId net, bool value) {
  if ((value_[net] != 0) == value) return;
  value_[net] = value ? 1 : 0;
  last_change_[net] = now_;
  ++toggles_[net];
  if (value && edge_recorded_[net]) edge_times_[net].push_back(now_);

  // Clock source nets regenerate their own next edge.
  for (const ClockSpec& c : circuit_.clocks()) {
    if (c.net == net) {
      const double high = c.period_ps * c.duty;
      const double next = value ? high : c.period_ps - high;
      schedule(net, !value, next);
      break;
    }
  }

  // Rising clock edge: sample every flip-flop on this clock.
  if (value) {
    for (std::uint32_t f : clocked_dffs_[net]) {
      const Dff& ff = circuit_.dffs()[f];
      const bool d_now = value_[ff.d] != 0;
      const double delta = now_ - last_change_[ff.d];
      const double sigma = ff.timing.aperture_sigma_ps *
                           std::max(config_.scaling.delay, 1e-9);
      bool captured = d_now;
      double extra = 0.0;
      if (delta < 4.0 * sigma) {
        // Eq. 2: the probability of capturing the post-transition value is
        // the normal CDF of the (scaled) distance to the sampling edge.
        const double p_new = support::normal_cdf(delta / sigma);
        captured = meta_rng_.bernoulli(p_new) ? d_now : !d_now;
        extra = meta_rng_.exponential(ff.timing.resolution_mean_ps);
        ++metastable_samples_;
      }
      if (dff_recorded_[f]) {
        dff_samples_[f].push_back(captured ? 1 : 0);
      }
      ++sample_counts_[f];
      schedule(ff.q, captured,
               ff.timing.clk_to_q_ps * config_.scaling.delay + extra);
    }
  }

  for (std::uint32_t g : fanout_gates_[net]) {
    const Gate& gate = circuit_.gates()[g];
    std::vector<bool> ins(gate.inputs.size());
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
      ins[i] = value_[gate.inputs[i]] != 0;
    }
    schedule(gate.output, evaluate_gate(gate.kind, ins),
             gate_delay_with_jitter(g));
  }
}

void Simulator::record_dff(std::size_t dff_index) {
  dff_recorded_.at(dff_index) = 1;
}

void Simulator::record_edges(NetId net) { edge_recorded_.at(net) = 1; }

const std::vector<double>& Simulator::edge_times(NetId net) const {
  return edge_times_.at(net);
}

const std::vector<std::uint8_t>& Simulator::samples(
    std::size_t dff_index) const {
  return dff_samples_.at(dff_index);
}

std::uint64_t Simulator::total_toggles() const {
  std::uint64_t total = 0;
  for (std::uint64_t t : toggles_) total += t;
  return total;
}

}  // namespace dhtrng::sim
