// Event-driven timing simulator with stochastic gate delays.
//
// This engine is the substitute for the paper's physical FPGA fabric: each
// gate transition is perturbed by an EdgeJitterSource (white + flicker +
// shared-supply noise) and each flip-flop applies the Eq. 2 aperture model
// on sampling, so jitter- and metastability-based entropy arise from the
// same mechanisms the paper exploits, only with pseudo-random noise driving
// them (see DESIGN.md, substitution table).
//
// Delays are in picoseconds; the schedule is a strict total order on
// (time, seq) — nondecreasing time, insertion order on ties — so a given
// (circuit, config, seed) triple always reproduces the same waveforms.
//
// Two interchangeable schedulers implement that order:
//
//  * Scheduler::Calendar (default) — an indexed calendar/bucket queue over
//    a slab allocator (event_queue.h), driving gate evaluation through the
//    contiguous CSR netlist view built once at elaboration
//    (flat_netlist.h) and per-gate noise sources sampled in blocks.  This
//    is the production engine.
//  * Scheduler::ReferenceHeap — the original binary-heap scheduler with
//    per-event allocation, kept as a slow oracle.  Both schedulers are
//    waveform-identical event for event; tests/sim/test_differential_fuzz
//    and the golden digests in tests/sim/test_golden_waveforms enforce it.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/circuit.h"
#include "sim/event_queue.h"
#include "sim/flat_netlist.h"
#include "support/rng.h"

namespace dhtrng::sim {

enum class Scheduler { Calendar, ReferenceHeap };

struct SimConfig {
  std::uint64_t seed = 1;
  /// Base per-gate jitter at the nominal corner; the white component scales
  /// with sqrt(delay / 100ps) per gate so longer cells jitter more.
  noise::JitterParams gate_jitter{1.2, 0.5, 0.4};
  /// PVT scale factors (from noise::pvt_scaling via the device model).
  noise::PvtScaling scaling{1.0, 1.0, 1.0};
  /// Pulses narrower than this are swallowed (inertial delay model).
  double min_pulse_ps = 5.0;
  /// Hard stop against runaway zero-delay loops.
  std::uint64_t max_events = 500'000'000;
  /// Event engine selection; see the header comment.
  Scheduler scheduler = Scheduler::Calendar;
  /// Block size for the per-gate white/flicker noise draws (<= 1 draws per
  /// event).  Any value yields bit-identical waveforms.
  std::size_t noise_batch = 64;
  /// Noise fidelity (see noise::NoiseMode).  Exact is the default and the
  /// only mode the golden-waveform digests apply to; Fast swaps the
  /// per-gate jitter for SIMD-batched pre-combined delay blocks — still
  /// deterministic per (seed, mode) and identical across dispatch tiers,
  /// but a different stream, intended for bulk generation and perf runs.
  noise::NoiseMode noise_mode = noise::NoiseMode::Exact;
};

/// Structured runaway-guard error: thrown when the event count exceeds
/// SimConfig::max_events.  Carries enough context to diagnose the loop —
/// how far simulated time got, how many events were processed, and which
/// net toggled most (in a zero-delay loop, the culprit).
class BudgetExhaustedError : public std::runtime_error {
 public:
  BudgetExhaustedError(double sim_time_ps, std::uint64_t events,
                       NetId hottest_net, std::uint64_t hottest_net_toggles,
                       const std::string& hottest_net_name);

  double sim_time_ps() const { return sim_time_ps_; }
  std::uint64_t events() const { return events_; }
  NetId hottest_net() const { return hottest_net_; }
  std::uint64_t hottest_net_toggles() const { return hottest_net_toggles_; }

 private:
  double sim_time_ps_;
  std::uint64_t events_;
  NetId hottest_net_;
  std::uint64_t hottest_net_toggles_;
};

class Simulator {
 public:
  Simulator(const Circuit& circuit, SimConfig config);

  /// Advance simulated time to t_ps (events at exactly t_ps included).
  void run_until(double t_ps);

  /// Current simulated time (ps).
  double now() const { return now_; }

  bool net_value(NetId id) const { return value_[id]; }
  double last_change_ps(NetId id) const { return last_change_[id]; }

  /// Start recording the sampled bit of a flip-flop at every clock edge.
  void record_dff(std::size_t dff_index);
  const std::vector<std::uint8_t>& samples(std::size_t dff_index) const;

  /// Start recording rising-edge timestamps of a net (for period/jitter
  /// analysis of oscillator nodes).
  void record_edges(NetId net);
  const std::vector<double>& edge_times(NetId net) const;

  /// Start recording every applied event as (time, seq, net, value) — the
  /// observable the differential fuzzer compares across schedulers.
  void record_applied_events() { trace_applied_ = true; }
  const std::vector<SimEvent>& applied_events() const {
    return applied_events_;
  }

  std::uint64_t toggle_count(NetId id) const { return toggles_[id]; }
  std::uint64_t total_toggles() const;
  std::uint64_t events_processed() const { return events_processed_; }
  /// Number of flip-flop samples that fell inside the metastability
  /// aperture (a health indicator the hybrid unit deliberately maximizes).
  std::uint64_t metastable_samples() const { return metastable_samples_; }
  std::uint64_t dff_sample_count(std::size_t dff_index) const {
    return sample_counts_[dff_index];
  }
  /// Pulses swallowed by the inertial (min_pulse) filter — a glitch-rate
  /// diagnostic for netlists with reconvergent paths.
  std::uint64_t runts_filtered() const { return runts_filtered_; }

  /// Calendar-queue introspection (diagnostics / tests).
  double queue_width_ps() const { return cal_.bucket_width_ps(); }
  std::size_t queue_buckets() const { return cal_.bucket_count(); }
  std::size_t queue_live() const { return cal_.live(); }
  std::size_t queue_stored() const { return cal_.stored(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    NetId net;
    bool value;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void schedule(NetId net, bool value, double delay_from_now);
  void apply_net_change(NetId net, bool value);
  double gate_delay_with_jitter(std::size_t gate_index);
  void run_until_calendar(double t_ps);
  void run_until_reference(double t_ps);
  [[noreturn]] void throw_budget_exhausted();

  const Circuit& circuit_;
  SimConfig config_;
  FlatNetlist flat_;  ///< contiguous netlist view, built once at elaboration
  bool fast_noise_ = false;  ///< config_.noise_mode == Fast, hoisted
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t metastable_samples_ = 0;
  std::uint64_t runts_filtered_ = 0;

  /// Per-net scheduling state, merged into one record so the runt filter
  /// and push bookkeeping in schedule() touch a single cache line.
  struct NetSched {
    double time = -1.0;          ///< last scheduled transition time
    std::uint64_t seq = 0;       ///< its push sequence number
    std::uint8_t projected = 0;  ///< net value after pending events
  };

  std::vector<std::uint8_t> value_;  // current net values (dense, gate eval)
  std::vector<NetSched> sched_;
  std::vector<double> last_change_;
  std::vector<std::uint64_t> toggles_;

  // Calendar engine: bucket queue; the runt filter cancels by the
  // (time, seq) key of a net's latest scheduled event, which sched_
  // already tracks.
  CalendarQueue cal_;

  // Reference engine: the historical binary heap and cancelled-seq list.
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::uint64_t> dead_events_;

  noise::SharedSupplyNoise shared_noise_;
  std::vector<noise::EdgeJitterSource> gate_noise_;  // one per gate
  support::Xoshiro256 meta_rng_;                     // metastable resolution

  std::vector<std::vector<std::uint8_t>> dff_samples_;
  std::vector<std::uint8_t> dff_recorded_;
  std::vector<std::uint64_t> sample_counts_;

  std::vector<std::uint8_t> edge_recorded_;
  std::vector<std::vector<double>> edge_times_;

  bool trace_applied_ = false;
  std::vector<SimEvent> applied_events_;
};

}  // namespace dhtrng::sim
