// Event-driven timing simulator with stochastic gate delays.
//
// This engine is the substitute for the paper's physical FPGA fabric: each
// gate transition is perturbed by an EdgeJitterSource (white + flicker +
// shared-supply noise) and each flip-flop applies the Eq. 2 aperture model
// on sampling, so jitter- and metastability-based entropy arise from the
// same mechanisms the paper exploits, only with pseudo-random noise driving
// them (see DESIGN.md, substitution table).
//
// Delays are in picoseconds; the schedule is a strict priority queue with a
// deterministic tie-break, so a given (circuit, config, seed) triple always
// reproduces the same waveforms.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "noise/jitter.h"
#include "noise/pvt.h"
#include "sim/circuit.h"
#include "support/rng.h"

namespace dhtrng::sim {

struct SimConfig {
  std::uint64_t seed = 1;
  /// Base per-gate jitter at the nominal corner; the white component scales
  /// with sqrt(delay / 100ps) per gate so longer cells jitter more.
  noise::JitterParams gate_jitter{1.2, 0.5, 0.4};
  /// PVT scale factors (from noise::pvt_scaling via the device model).
  noise::PvtScaling scaling{1.0, 1.0, 1.0};
  /// Pulses narrower than this are swallowed (inertial delay model).
  double min_pulse_ps = 5.0;
  /// Hard stop against runaway zero-delay loops.
  std::uint64_t max_events = 500'000'000;
};

class Simulator {
 public:
  Simulator(const Circuit& circuit, SimConfig config);

  /// Advance simulated time to t_ps (events at exactly t_ps included).
  void run_until(double t_ps);

  /// Current simulated time (ps).
  double now() const { return now_; }

  bool net_value(NetId id) const { return value_[id]; }
  double last_change_ps(NetId id) const { return last_change_[id]; }

  /// Start recording the sampled bit of a flip-flop at every clock edge.
  void record_dff(std::size_t dff_index);
  const std::vector<std::uint8_t>& samples(std::size_t dff_index) const;

  /// Start recording rising-edge timestamps of a net (for period/jitter
  /// analysis of oscillator nodes).
  void record_edges(NetId net);
  const std::vector<double>& edge_times(NetId net) const;

  std::uint64_t toggle_count(NetId id) const { return toggles_[id]; }
  std::uint64_t total_toggles() const;
  std::uint64_t events_processed() const { return events_processed_; }
  /// Number of flip-flop samples that fell inside the metastability
  /// aperture (a health indicator the hybrid unit deliberately maximizes).
  std::uint64_t metastable_samples() const { return metastable_samples_; }
  std::uint64_t dff_sample_count(std::size_t dff_index) const {
    return sample_counts_[dff_index];
  }
  /// Pulses swallowed by the inertial (min_pulse) filter — a glitch-rate
  /// diagnostic for netlists with reconvergent paths.
  std::uint64_t runts_filtered() const { return runts_filtered_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    NetId net;
    bool value;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void schedule(NetId net, bool value, double delay_from_now);
  void apply_net_change(NetId net, bool value);
  double gate_delay_with_jitter(std::size_t gate_index);

  const Circuit& circuit_;
  SimConfig config_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t metastable_samples_ = 0;
  std::uint64_t runts_filtered_ = 0;

  std::vector<std::uint8_t> value_;        // current net values
  std::vector<std::uint8_t> projected_;    // value after pending events
  std::vector<double> last_change_;
  std::vector<double> last_sched_time_;
  std::vector<std::uint64_t> last_sched_seq_;
  std::vector<std::uint64_t> toggles_;

  std::vector<std::vector<std::uint32_t>> fanout_gates_;  // net -> gate idx
  std::vector<std::vector<std::uint32_t>> clocked_dffs_;  // net -> dff idx

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::uint64_t> dead_events_;  // cancelled seq numbers (sorted-ish)

  noise::SharedSupplyNoise shared_noise_;
  std::vector<noise::EdgeJitterSource> gate_noise_;  // one per gate
  support::Xoshiro256 meta_rng_;                     // metastable resolution

  std::vector<std::vector<std::uint8_t>> dff_samples_;
  std::vector<std::uint8_t> dff_recorded_;
  std::vector<std::uint64_t> sample_counts_;

  std::vector<std::uint8_t> edge_recorded_;
  std::vector<std::vector<double>> edge_times_;
};

}  // namespace dhtrng::sim
