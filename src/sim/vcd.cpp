#include "sim/vcd.h"

#include <cmath>

namespace dhtrng::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_id(std::uint32_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

VcdTrace::VcdTrace(const Circuit& circuit, Simulator& simulator,
                   std::vector<NetId> nets, double resolution_ps)
    : circuit_(circuit),
      sim_(simulator),
      nets_(std::move(nets)),
      resolution_ps_(resolution_ps),
      last_(nets_.size(), 0) {}

void VcdTrace::run_until(double t_ps) {
  double t = sim_.now();
  if (!primed_) {
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      last_[i] = sim_.net_value(nets_[i]) ? 1 : 0;
      changes_.push_back({t, static_cast<std::uint32_t>(i), last_[i] != 0});
    }
    primed_ = true;
  }
  while (t < t_ps) {
    t = std::min(t + resolution_ps_, t_ps);
    sim_.run_until(t);
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      const std::uint8_t v = sim_.net_value(nets_[i]) ? 1 : 0;
      if (v != last_[i]) {
        last_[i] = v;
        changes_.push_back({t, static_cast<std::uint32_t>(i), v != 0});
      }
    }
  }
}

void VcdTrace::write(std::ostream& out) const {
  out << "$timescale 1ps $end\n";
  out << "$scope module dhtrng $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    out << "$var wire 1 " << vcd_id(static_cast<std::uint32_t>(i)) << " "
        << circuit_.net_name(nets_[i]) << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  double last_time = -1.0;
  for (const Change& c : changes_) {
    const auto ticks = static_cast<long long>(std::llround(c.time_ps));
    if (c.time_ps != last_time) {
      out << "#" << ticks << "\n";
      last_time = c.time_ps;
    }
    out << (c.value ? '1' : '0') << vcd_id(c.net_index) << "\n";
  }
}

}  // namespace dhtrng::sim
