#include "sim/vcd.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace dhtrng::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_id(std::uint32_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

VcdTrace::VcdTrace(const Circuit& circuit, Simulator& simulator,
                   std::vector<NetId> nets, double resolution_ps)
    : circuit_(circuit),
      sim_(simulator),
      nets_(std::move(nets)),
      resolution_ps_(resolution_ps),
      last_(nets_.size(), 0) {}

void VcdTrace::run_until(double t_ps) {
  double t = sim_.now();
  if (!primed_) {
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      last_[i] = sim_.net_value(nets_[i]) ? 1 : 0;
      changes_.push_back({t, static_cast<std::uint32_t>(i), last_[i] != 0});
    }
    primed_ = true;
  }
  while (t < t_ps) {
    t = std::min(t + resolution_ps_, t_ps);
    sim_.run_until(t);
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      const std::uint8_t v = sim_.net_value(nets_[i]) ? 1 : 0;
      if (v != last_[i]) {
        last_[i] = v;
        changes_.push_back({t, static_cast<std::uint32_t>(i), v != 0});
      }
    }
  }
}

void VcdTrace::write(std::ostream& out) const {
  out << "$timescale 1ps $end\n";
  out << "$scope module dhtrng $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    out << "$var wire 1 " << vcd_id(static_cast<std::uint32_t>(i)) << " "
        << circuit_.net_name(nets_[i]) << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  double last_time = -1.0;
  for (const Change& c : changes_) {
    const auto ticks = static_cast<long long>(std::llround(c.time_ps));
    if (c.time_ps != last_time) {
      out << "#" << ticks << "\n";
      last_time = c.time_ps;
    }
    out << (c.value ? '1' : '0') << vcd_id(c.net_index) << "\n";
  }
}

ParsedVcd parse_vcd(std::istream& in) {
  ParsedVcd doc;
  std::map<std::string, std::uint32_t> var_index;
  bool in_definitions = true;
  long long now = 0;
  bool have_time = false;

  const auto read_until_end = [&in](const char* directive) {
    std::string joined;
    std::string tok;
    while (in >> tok) {
      if (tok == "$end") return joined;
      if (!joined.empty()) joined += ' ';
      joined += tok;
    }
    throw std::runtime_error(std::string("parse_vcd: unterminated ") +
                             directive);
  };

  std::string tok;
  while (in >> tok) {
    if (tok == "$timescale") {
      doc.timescale = read_until_end("$timescale");
    } else if (tok == "$scope" || tok == "$upscope" || tok == "$comment" ||
               tok == "$date" || tok == "$version") {
      read_until_end(tok.c_str());
    } else if (tok == "$var") {
      std::string type, width, id, name;
      if (!(in >> type >> width >> id >> name)) {
        throw std::runtime_error("parse_vcd: truncated $var");
      }
      if (type != "wire" || width != "1") {
        throw std::runtime_error("parse_vcd: only scalar wires supported");
      }
      read_until_end("$var");
      var_index.emplace(id, static_cast<std::uint32_t>(doc.vars.size()));
      doc.vars.push_back({id, name});
    } else if (tok == "$enddefinitions") {
      read_until_end("$enddefinitions");
      in_definitions = false;
    } else if (tok == "$dumpvars" || tok == "$end") {
      continue;
    } else if (tok[0] == '#') {
      char* end = nullptr;
      now = std::strtoll(tok.c_str() + 1, &end, 10);
      if (end == tok.c_str() + 1 || *end != '\0') {
        throw std::runtime_error("parse_vcd: bad timestamp: " + tok);
      }
      have_time = true;
    } else if (tok[0] == '0' || tok[0] == '1') {
      if (in_definitions || !have_time) {
        throw std::runtime_error(
            "parse_vcd: value change before $enddefinitions/#time");
      }
      const auto it = var_index.find(tok.substr(1));
      if (it == var_index.end()) {
        throw std::runtime_error("parse_vcd: unknown identifier: " + tok);
      }
      doc.changes.push_back({now, it->second, tok[0] == '1'});
    } else {
      throw std::runtime_error("parse_vcd: unexpected token: " + tok);
    }
  }
  return doc;
}

}  // namespace dhtrng::sim
