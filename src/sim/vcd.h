// Value-change-dump (IEEE 1364 VCD) writer for the event-driven simulator.
//
// Attach a VcdTrace to a Simulator-driven run to inspect ring start-up,
// hold/oscillate switching of the hybrid units, or metastable resolutions
// in GTKWave or any other VCD viewer.  The trace polls the simulator's net
// values on a fixed grid (the simulator has no change-callback API by
// design — it stays hot-loop friendly), so pick a resolution finer than
// the fastest gate delay of interest.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/simulator.h"

namespace dhtrng::sim {

class VcdTrace {
 public:
  /// Trace the given nets of `sim` with the given sampling resolution.
  VcdTrace(const Circuit& circuit, Simulator& simulator,
           std::vector<NetId> nets, double resolution_ps = 25.0);

  /// Advance the simulator to `t_ps`, recording changes on the way.
  void run_until(double t_ps);

  /// Write the collected trace as a VCD document.
  void write(std::ostream& out) const;

  std::size_t change_count() const { return changes_.size(); }

 private:
  struct Change {
    double time_ps;
    std::uint32_t net_index;  // index into nets_
    bool value;
  };

  const Circuit& circuit_;
  Simulator& sim_;
  std::vector<NetId> nets_;
  double resolution_ps_;
  std::vector<std::uint8_t> last_;
  std::vector<Change> changes_;
  bool primed_ = false;
};

/// Parsed view of a single-bit VCD document (the dialect VcdTrace::write
/// emits: one scope, scalar wires, 0/1 value changes).
struct ParsedVcd {
  struct Var {
    std::string id;    ///< VCD identifier code
    std::string name;  ///< net name
  };
  struct ValueChange {
    long long time;     ///< timestamp in timescale units
    std::uint32_t var;  ///< index into vars
    bool value;
  };

  std::string timescale;
  std::vector<Var> vars;
  std::vector<ValueChange> changes;
};

/// Minimal IEEE 1364 VCD parser covering what the writer produces; round-
/// trips VcdTrace output and is enough to re-read golden traces.  Throws
/// std::runtime_error on malformed input (unknown identifier codes,
/// value changes before $enddefinitions, truncated directives).
ParsedVcd parse_vcd(std::istream& in);

}  // namespace dhtrng::sim
