#include "stats/ais31.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "stats/stats_config.h"
#include "support/wordops.h"

namespace dhtrng::stats::ais31 {

namespace {

constexpr std::size_t kT0Blocks = 1u << 16;
constexpr std::size_t kT0BlockBits = 48;
constexpr std::size_t kSeqBits = 20000;
constexpr std::size_t kSequences = 257;
constexpr std::size_t kT6Bits = 100000;
constexpr std::size_t kT7Bits = 100000;
constexpr std::size_t kT8Blocks = 2560 + 256000;  // Q + K 8-bit blocks

/// First-order transition counts over the `pairs` adjacent pairs starting
/// at `begin`, 64 pairs per popcount round.  The integers match the scalar
/// per-bit loop exactly, so any statistic built from them is unchanged.
std::array<std::array<std::uint64_t, 2>, 2> transition_counts_wordwise(
    const BitStream& bits, std::size_t begin, std::size_t pairs) {
  std::uint64_t t11 = 0, t10 = 0, t01 = 0;
  for (std::size_t i = 0; i < pairs; i += 64) {
    const std::uint64_t a = bits.chunk64(begin + i);
    const std::uint64_t b = bits.chunk64(begin + i + 1);
    const std::size_t valid = std::min<std::size_t>(64, pairs - i);
    const std::uint64_t vm =
        valid == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
    t11 += static_cast<unsigned>(std::popcount(a & b & vm));
    t10 += static_cast<unsigned>(std::popcount(a & ~b & vm));
    t01 += static_cast<unsigned>(std::popcount(~a & b & vm));
  }
  return {{{pairs - t11 - t10 - t01, t01}, {t10, t11}}};
}

/// Run-length histogram for T3-style tests: counts[value][min(len,6)-1].
std::array<std::array<std::size_t, 6>, 2> run_histogram_wordwise(
    const BitStream& seq, std::size_t len) {
  std::array<std::array<std::size_t, 6>, 2> counts{};
  support::wordops::for_each_run(
      seq, 0, len, [&](bool v, std::size_t run) {
        ++counts[v ? 1u : 0u][std::min<std::size_t>(run, 6) - 1];
      });
  return counts;
}

}  // namespace

std::size_t required_bits() {
  return kT0Blocks * kT0BlockBits + kSequences * kSeqBits + kT6Bits +
         kT7Bits + kT8Blocks * 8;
}

bool t0_disjointness(const BitStream& bits) {
  // The 48-bit block value is only a set key: the wordwise LSB-first read
  // is a bijective remap of the scalar MSB-first value, so two blocks
  // collide under one convention exactly when they collide under the other.
  const bool wordwise = active_engine() == Engine::Wordwise;
  constexpr std::uint64_t kMask48 = (std::uint64_t{1} << kT0BlockBits) - 1;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kT0Blocks * 2);
  for (std::size_t b = 0; b < kT0Blocks; ++b) {
    const std::uint64_t w = wordwise
                                ? (bits.chunk64(b * kT0BlockBits) & kMask48)
                                : bits.word(b * kT0BlockBits, kT0BlockBits);
    if (!seen.insert(w).second) return false;
  }
  return true;
}

bool t1_monobit(const BitStream& seq) {
  const std::size_t ones = seq.count_ones(0, kSeqBits);
  return ones > 9654 && ones < 10346;
}

bool t2_poker(const BitStream& seq) {
  // The nibble value keys a histogram whose chi-square sums c^2 over all 16
  // slots; the counts are integers with an integer sum of squares, so the
  // wordwise LSB-first keying (a slot permutation) leaves `sum` exact.
  std::array<std::size_t, 16> f{};
  constexpr std::size_t kNibbles = kSeqBits / 4;
  if (active_engine() == Engine::Wordwise) {
    for (std::size_t i = 0; i < kNibbles; i += 16) {
      std::uint64_t w = seq.chunk64(4 * i);
      const std::size_t cnt = std::min<std::size_t>(16, kNibbles - i);
      for (std::size_t k = 0; k < cnt; ++k) {
        ++f[w & 15];
        w >>= 4;
      }
    }
  } else {
    for (std::size_t i = 0; i < kNibbles; ++i) {
      ++f[seq.word(4 * i, 4)];
    }
  }
  double sum = 0.0;
  for (std::size_t c : f) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  const double x = (16.0 / 5000.0) * sum - 5000.0;
  return x > 1.03 && x < 57.4;
}

bool t3_runs(const BitStream& seq) {
  // Allowed intervals per run length (1..5, >=6), identical for runs of 0s
  // and runs of 1s.
  static constexpr std::array<std::pair<std::size_t, std::size_t>, 6> kBounds =
      {{{2267, 2733}, {1079, 1421}, {502, 748}, {223, 402}, {90, 223},
        {90, 223}}};
  std::array<std::array<std::size_t, 6>, 2> counts{};
  if (active_engine() == Engine::Wordwise) {
    counts = run_histogram_wordwise(seq, kSeqBits);
  } else {
    std::size_t run = 1;
    for (std::size_t i = 1; i <= kSeqBits; ++i) {
      if (i < kSeqBits && seq[i] == seq[i - 1]) {
        ++run;
      } else {
        const std::size_t bucket = std::min<std::size_t>(run, 6) - 1;
        ++counts[seq[i - 1] ? 1u : 0u][bucket];
        run = 1;
      }
    }
  }
  for (const auto& side : counts) {
    for (std::size_t l = 0; l < 6; ++l) {
      if (side[l] < kBounds[l].first || side[l] > kBounds[l].second) {
        return false;
      }
    }
  }
  return true;
}

bool t4_long_run(const BitStream& seq) {
  if (active_engine() == Engine::Wordwise) {
    // A run of >= 34 exists iff the longest maximal run reaches 34.
    std::size_t longest = 0;
    support::wordops::for_each_run(
        seq, 0, kSeqBits,
        [&](bool, std::size_t run) { longest = std::max(longest, run); });
    return longest < 34;
  }
  std::size_t run = 1;
  for (std::size_t i = 1; i < kSeqBits; ++i) {
    run = seq[i] == seq[i - 1] ? run + 1 : 1;
    if (run >= 34) return false;
  }
  return true;
}

bool t5_autocorrelation(const BitStream& seq) {
  // AIS-31 T5: on the first 10000 bits, find the shift tau in 1..5000 whose
  // 5000-term autocorrelation Z_tau deviates most from 2500; then re-test
  // that tau on the second 10000 bits with acceptance 2326 < Z < 2674.
  constexpr std::size_t kHalf = 10000;
  constexpr std::size_t kTerms = 5000;
  std::size_t worst_tau = 1;
  std::size_t worst_dev = 0;
  for (std::size_t tau = 1; tau <= 5000; ++tau) {
    const std::size_t z = seq.hamming_distance(0, tau, kTerms);
    const std::size_t dev =
        z >= kTerms / 2 ? z - kTerms / 2 : kTerms / 2 - z;
    if (dev > worst_dev) {
      worst_dev = dev;
      worst_tau = tau;
    }
  }
  const std::size_t z =
      seq.hamming_distance(kHalf, kHalf + worst_tau, kTerms);
  return z > 2326 && z < 2674;
}

bool t6_uniform_distribution(const BitStream& bits, std::string* detail) {
  // Parameter sets (1, 100000, 0.025) and (2, 100000, 0.02): the marginal
  // and the conditional one-step distributions must be near-uniform.
  const double n = static_cast<double>(kT6Bits);
  const double p1 = static_cast<double>(bits.count_ones(0, kT6Bits)) / n;
  std::array<std::array<double, 2>, 2> trans{};
  if (active_engine() == Engine::Wordwise) {
    const auto t = transition_counts_wordwise(bits, 0, kT6Bits - 1);
    for (std::size_t a = 0; a < 2; ++a) {
      for (std::size_t b = 0; b < 2; ++b) {
        trans[a][b] = static_cast<double>(t[a][b]);
      }
    }
  } else {
    for (std::size_t i = 0; i + 1 < kT6Bits; ++i) {
      trans[bits[i] ? 1u : 0u][bits[i + 1] ? 1u : 0u] += 1.0;
    }
  }
  const double p1_given_0 = trans[0][1] / std::max(trans[0][0] + trans[0][1], 1.0);
  const double p1_given_1 = trans[1][1] / std::max(trans[1][0] + trans[1][1], 1.0);
  const bool pass = std::abs(p1 - 0.5) < 0.025 &&
                    std::abs(p1_given_0 - 0.5) < 0.02 &&
                    std::abs(p1_given_1 - 0.5) < 0.02;
  if (detail != nullptr) {
    *detail = "P(1)=" + std::to_string(p1) +
              " P(1|0)=" + std::to_string(p1_given_0) +
              " P(1|1)=" + std::to_string(p1_given_1);
  }
  return pass;
}

bool t7_homogeneity(const BitStream& bits, std::string* detail) {
  // Comparative test of the transition distributions between the two
  // halves of the T7 slice (chi-square test of homogeneity; the AIS-31
  // threshold 15.13 corresponds to alpha = 0.0001 at 1 df per transition).
  const std::size_t half = kT7Bits / 2;
  std::array<std::array<std::array<double, 2>, 2>, 2> trans{};
  if (active_engine() == Engine::Wordwise) {
    for (std::size_t h = 0; h < 2; ++h) {
      const auto t = transition_counts_wordwise(bits, h * half, half - 1);
      for (std::size_t a = 0; a < 2; ++a) {
        for (std::size_t b = 0; b < 2; ++b) {
          trans[h][a][b] = static_cast<double>(t[a][b]);
        }
      }
    }
  } else {
    for (std::size_t h = 0; h < 2; ++h) {
      for (std::size_t i = h * half; i + 1 < (h + 1) * half; ++i) {
        trans[h][bits[i] ? 1u : 0u][bits[i + 1] ? 1u : 0u] += 1.0;
      }
    }
  }
  double worst = 0.0;
  for (std::size_t from = 0; from < 2; ++from) {
    const double n0 = trans[0][from][0] + trans[0][from][1];
    const double n1 = trans[1][from][0] + trans[1][from][1];
    if (n0 == 0.0 || n1 == 0.0) return false;
    double chi2 = 0.0;
    for (std::size_t to = 0; to < 2; ++to) {
      const double pooled =
          (trans[0][from][to] + trans[1][from][to]) / (n0 + n1);
      if (pooled <= 0.0 || pooled >= 1.0) continue;
      const double e0 = n0 * pooled;
      const double e1 = n1 * pooled;
      chi2 += (trans[0][from][to] - e0) * (trans[0][from][to] - e0) / e0;
      chi2 += (trans[1][from][to] - e1) * (trans[1][from][to] - e1) / e1;
    }
    worst = std::max(worst, chi2);
  }
  if (detail != nullptr) *detail = "max chi2 = " + std::to_string(worst);
  return worst < 15.13;
}

bool t8_entropy(const BitStream& bits, double* statistic) {
  // Coron's entropy test: L = 8, Q = 2560, K = 256000; pass if f > 7.976.
  constexpr std::size_t kL = 8;
  constexpr std::size_t kQ = 2560;
  constexpr std::size_t kK = 256000;
  // The byte value is only a table key (like Maurer's universal test): the
  // wordwise LSB-first read permutes `last[]` slots without changing any
  // distance b + 1 - last[v], so the g-sum's operation sequence is intact.
  const bool wordwise = active_engine() == Engine::Wordwise;
  std::array<std::size_t, 256> last{};
  const auto block = [&](std::size_t b) {
    if (wordwise) {
      return static_cast<std::size_t>(bits.chunk64(b * kL) & 0xff);
    }
    return static_cast<std::size_t>(bits.word(b * kL, kL));
  };
  for (std::size_t b = 0; b < kQ; ++b) last[block(b)] = b + 1;
  // Coron's g(j) = (1/ln 2) * sum_{k=1}^{j-1} 1/k; precompute lazily.
  std::vector<double> g(kQ + kK + 2, 0.0);
  double harmonic = 0.0;
  for (std::size_t j = 1; j < g.size(); ++j) {
    g[j] = harmonic / std::numbers::ln2;
    harmonic += 1.0 / static_cast<double>(j);
  }
  double sum = 0.0;
  for (std::size_t b = kQ; b < kQ + kK; ++b) {
    const std::size_t v = block(b);
    sum += g[b + 1 - last[v]];
    last[v] = b + 1;
  }
  const double f = sum / static_cast<double>(kK);
  if (statistic != nullptr) *statistic = f;
  return f > 7.976;
}

std::vector<TestOutcome> run_all(const BitStream& bits) {
  if (bits.size() < required_bits()) {
    throw std::invalid_argument("ais31::run_all: need " +
                                std::to_string(required_bits()) + " bits");
  }
  std::vector<TestOutcome> out;
  std::size_t cursor = 0;

  {
    const BitStream t0 = bits.slice(cursor, kT0Blocks * kT0BlockBits);
    cursor += kT0Blocks * kT0BlockBits;
    const bool pass = t0_disjointness(t0);
    out.push_back({"Disjointness Test (T0)", pass, pass ? 1.0 : 0.0, ""});
  }

  std::array<std::size_t, 5> passes{};
  for (std::size_t s = 0; s < kSequences; ++s) {
    const BitStream seq = bits.slice(cursor, kSeqBits);
    cursor += kSeqBits;
    if (t1_monobit(seq)) ++passes[0];
    if (t2_poker(seq)) ++passes[1];
    if (t3_runs(seq)) ++passes[2];
    if (t4_long_run(seq)) ++passes[3];
    if (t5_autocorrelation(seq)) ++passes[4];
  }
  const char* names[5] = {"Monobit Tests (T1)", "Poker Tests (T2)",
                          "Run Tests (T3)", "Long Run Test (T4)",
                          "Autocorrelation Test (T5)"};
  for (std::size_t t = 0; t < 5; ++t) {
    const double rate =
        static_cast<double>(passes[t]) / static_cast<double>(kSequences);
    // AIS-31 tolerates one retry; we require a >= 99.5% per-sequence rate.
    out.push_back({names[t], rate >= 0.995, rate, ""});
  }

  {
    std::string detail;
    const BitStream t6 = bits.slice(cursor, kT6Bits);
    cursor += kT6Bits;
    const bool pass = t6_uniform_distribution(t6, &detail);
    out.push_back(
        {"Uniform Distribution Test (T6)", pass, pass ? 1.0 : 0.0, detail});
  }
  {
    std::string detail;
    const BitStream t7 = bits.slice(cursor, kT7Bits);
    cursor += kT7Bits;
    const bool pass = t7_homogeneity(t7, &detail);
    out.push_back(
        {"Multinomial Distributions (T7)", pass, pass ? 1.0 : 0.0, detail});
  }
  {
    double f = 0.0;
    const BitStream t8 = bits.slice(cursor, kT8Blocks * 8);
    const bool pass = t8_entropy(t8, &f);
    out.push_back({"Entropy Test (T8)", pass, pass ? 1.0 : 0.0,
                   "f = " + std::to_string(f)});
  }
  return out;
}

}  // namespace dhtrng::stats::ais31
