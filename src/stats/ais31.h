// BSI AIS-31 statistical tests T0-T8 (procedures A and B), reproducing the
// paper's Table 5.
//
// Data budget (per the AIS-31 reference procedure):
//  * T0 uses 2^16 consecutive 48-bit blocks (3,145,728 bits);
//  * T1-T5 run on up to 257 disjoint sequences of 20,000 bits;
//  * T6-T8 (procedure B) consume ~2.3 Mbit of additional data.
// run_all consumes the provided stream front-to-back in that order and
// reports per-item pass/fail plus the T1-T5 per-sequence pass rates the
// paper's Table 5 prints as percentages.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats::ais31 {

using support::BitStream;

struct TestOutcome {
  std::string name;
  bool pass = false;
  double pass_rate = 1.0;  ///< fraction of sequences passing (T1-T5); else 1/0
  std::string detail;
};

/// Number of bits run_all needs for the full reference procedure.
std::size_t required_bits();

// Individual tests (operating on the relevant slices, see .cpp).
bool t0_disjointness(const BitStream& bits);                 // 2^16 x 48 bits
bool t1_monobit(const BitStream& seq);                       // 20000 bits
bool t2_poker(const BitStream& seq);                         // 20000 bits
bool t3_runs(const BitStream& seq);                          // 20000 bits
bool t4_long_run(const BitStream& seq);                      // 20000 bits
bool t5_autocorrelation(const BitStream& seq);               // 20000 bits
bool t6_uniform_distribution(const BitStream& bits, std::string* detail);
bool t7_homogeneity(const BitStream& bits, std::string* detail);
bool t8_entropy(const BitStream& bits, double* statistic);   // Coron

/// Full procedure on one long stream (uses required_bits() bits; throws if
/// fewer are supplied).
std::vector<TestOutcome> run_all(const BitStream& bits);

}  // namespace dhtrng::stats::ais31
