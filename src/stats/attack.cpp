#include "stats/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dhtrng::stats {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

AttackResult logistic_attack(const support::BitStream& bits,
                             AttackConfig config) {
  const std::size_t w = config.window;
  const std::size_t k = std::min(config.interactions, w > 0 ? w - 1 : 0);
  if (bits.size() < 4 * w || w == 0) {
    throw std::invalid_argument("logistic_attack: stream too short");
  }
  const std::size_t features = w + k;

  std::vector<double> weights(features, 0.0);
  double bias = 0.0;

  const std::size_t first = w;
  const std::size_t total = bits.size() - first;
  const std::size_t train_end =
      first + static_cast<std::size_t>(
                  static_cast<double>(total) * config.train_fraction);

  AttackResult result;
  std::vector<double> x(features);
  const auto featurize = [&](std::size_t i) {
    // Linear history features in +-1 encoding...
    for (std::size_t j = 0; j < w; ++j) {
      x[j] = bits[i - 1 - j] ? 1.0 : -1.0;
    }
    // ...plus adjacent-pair XOR interactions (transition indicators).
    for (std::size_t j = 0; j < k; ++j) {
      x[w + j] = (bits[i - 1 - j] != bits[i - 2 - j]) ? 1.0 : -1.0;
    }
  };
  const auto predict = [&] {
    double z = bias;
    for (std::size_t f = 0; f < features; ++f) z += weights[f] * x[f];
    return sigmoid(z);
  };

  std::size_t train_hits = 0;
  for (std::size_t i = first; i < train_end; ++i) {
    featurize(i);
    const double p = predict();
    const double y = bits[i] ? 1.0 : 0.0;
    if ((p >= 0.5) == bits[i]) ++train_hits;
    const double grad = y - p;
    bias += config.learning_rate * grad;
    for (std::size_t f = 0; f < features; ++f) {
      weights[f] += config.learning_rate * grad * x[f];
    }
  }

  std::size_t test_hits = 0;
  for (std::size_t i = train_end; i < bits.size(); ++i) {
    featurize(i);
    if ((predict() >= 0.5) == bits[i]) ++test_hits;
  }

  result.train_bits = train_end - first;
  result.test_bits = bits.size() - train_end;
  result.train_accuracy = result.train_bits > 0
                              ? static_cast<double>(train_hits) /
                                    static_cast<double>(result.train_bits)
                              : 0.0;
  result.test_accuracy = result.test_bits > 0
                             ? static_cast<double>(test_hits) /
                                   static_cast<double>(result.test_bits)
                             : 0.0;
  const double n = static_cast<double>(result.test_bits);
  result.z_score =
      n > 0 ? (result.test_accuracy - 0.5) / std::sqrt(0.25 / n) : 0.0;
  return result;
}

}  // namespace dhtrng::stats
