// Machine-learning next-bit prediction attack.
//
// The paper motivates TRNGs with the machine-learning cryptanalysis of
// RNGs (its reference [1], Truong et al., IEEE TIFS'18): a generator whose
// next bit can be predicted above chance from its own history is broken
// regardless of which battery it passes.  This module mounts that attack:
// an online logistic-regression model over a window of previous bits
// (plus pairwise-XOR interaction features, which catch LFSR-like and
// rotation structure that linear features miss), trained by SGD on the
// first part of a stream and scored on the rest.
//
// The score is the out-of-sample prediction accuracy: 0.5 = unpredictable,
// anything significantly above is structure an attacker can use.  The
// bench_attack_resistance experiment compares DH-TRNG and the baselines
// under this adversary — an extension experiment beyond the paper's
// evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats {

struct AttackConfig {
  std::size_t window = 24;        ///< history bits used as features
  std::size_t interactions = 12;  ///< pairwise-XOR features b[i]^b[i+1]..
  double learning_rate = 0.01;
  double train_fraction = 0.6;    ///< head of the stream used for training
};

struct AttackResult {
  std::size_t train_bits = 0;
  std::size_t test_bits = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  /// z-score of the test accuracy against the chance distribution; > ~4
  /// means exploitable structure.
  double z_score = 0.0;
  bool predictable(double z_threshold = 4.0) const {
    return z_score > z_threshold;
  }
};

/// Train on the head of `bits`, score on the tail.
AttackResult logistic_attack(const support::BitStream& bits,
                             AttackConfig config = {});

}  // namespace dhtrng::stats
