#include "stats/correlation.h"

#include <cmath>

namespace dhtrng::stats {

std::vector<double> autocorrelation(const support::BitStream& bits,
                                    std::size_t max_lag) {
  const std::size_t n = bits.size();
  std::vector<double> acf;
  acf.reserve(max_lag);
  const double ones = static_cast<double>(bits.count_ones());
  const double mean = 2.0 * ones / static_cast<double>(n) - 1.0;  // of +-1
  const double var = 1.0 - mean * mean;
  if (var <= 0.0) return std::vector<double>(max_lag, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    const std::size_t terms = n - lag;
    // sum of x_i * x_{i+lag} over +-1 values = terms - 2 * hamming.
    const std::size_t ham = bits.hamming_distance(0, lag, terms);
    const double dot = static_cast<double>(terms) - 2.0 * static_cast<double>(ham);
    const double cov = dot / static_cast<double>(terms) - mean * mean;
    acf.push_back(cov / var);
  }
  return acf;
}

double bias_percent(const support::BitStream& bits) {
  const double n1 = static_cast<double>(bits.count_ones());
  const double n0 = static_cast<double>(bits.size()) - n1;
  if (n1 + n0 == 0.0) return 0.0;
  return std::abs(n1 - n0) / (n1 + n0) * 100.0;
}

}  // namespace dhtrng::stats
