// Autocorrelation (Figure 8) and deviation/bias (Section 4.3, Eq. 6)
// analyses.
#pragma once

#include <cstddef>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats {

/// Pearson autocorrelation coefficients of the +-1-mapped sequence for lags
/// 1..max_lag (Figure 8; Karl Pearson's |r| < 0.3 criterion).
std::vector<double> autocorrelation(const support::BitStream& bits,
                                    std::size_t max_lag);

/// Bias percentage per the paper's Eq. 6: |N1 - N0| / (N1 + N0) * 100.
double bias_percent(const support::BitStream& bits);

}  // namespace dhtrng::stats
