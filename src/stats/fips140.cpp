#include "stats/fips140.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>

#include "stats/stats_config.h"
#include "support/wordops.h"

namespace dhtrng::stats::fips140 {

namespace {

void require_size(const support::BitStream& sample) {
  if (sample.size() < kSampleBits) {
    throw std::invalid_argument("fips140: need 20000 bits");
  }
}

}  // namespace

bool monobit(const support::BitStream& sample, double* ones_out) {
  require_size(sample);
  const std::size_t ones = sample.count_ones(0, kSampleBits);
  if (ones_out != nullptr) *ones_out = static_cast<double>(ones);
  return ones > 9725 && ones < 10275;
}

bool poker(const support::BitStream& sample, double* chi2_out) {
  require_size(sample);
  // Histogram keys may use either bit order: the chi-square sums integer
  // c^2 over all 16 slots, so the wordwise LSB-first nibble (a slot
  // permutation of the scalar MSB-first one) gives the exact same sum.
  std::array<std::size_t, 16> f{};
  constexpr std::size_t kNibbles = kSampleBits / 4;
  if (active_engine() == Engine::Wordwise) {
    for (std::size_t i = 0; i < kNibbles; i += 16) {
      std::uint64_t w = sample.chunk64(4 * i);
      const std::size_t cnt = std::min<std::size_t>(16, kNibbles - i);
      for (std::size_t k = 0; k < cnt; ++k) {
        ++f[w & 15];
        w >>= 4;
      }
    }
  } else {
    for (std::size_t i = 0; i < kNibbles; ++i) {
      ++f[sample.word(4 * i, 4)];
    }
  }
  double sum = 0.0;
  for (std::size_t c : f) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  const double x = (16.0 / 5000.0) * sum - 5000.0;
  if (chi2_out != nullptr) *chi2_out = x;
  return x > 2.16 && x < 46.17;
}

bool runs(const support::BitStream& sample) {
  require_size(sample);
  // FIPS 140-2 run-length acceptance intervals for lengths 1..5 and 6+.
  static constexpr std::array<std::pair<std::size_t, std::size_t>, 6>
      kBounds = {{{2343, 2657},
                  {1135, 1365},
                  {542, 708},
                  {251, 373},
                  {111, 201},
                  {111, 201}}};
  std::array<std::array<std::size_t, 6>, 2> counts{};
  if (active_engine() == Engine::Wordwise) {
    support::wordops::for_each_run(
        sample, 0, kSampleBits, [&](bool v, std::size_t run) {
          ++counts[v ? 1u : 0u][std::min<std::size_t>(run, 6) - 1];
        });
  } else {
    std::size_t run = 1;
    for (std::size_t i = 1; i <= kSampleBits; ++i) {
      if (i < kSampleBits && sample[i] == sample[i - 1]) {
        ++run;
      } else {
        ++counts[sample[i - 1] ? 1u : 0u][std::min<std::size_t>(run, 6) - 1];
        run = 1;
      }
    }
  }
  for (const auto& side : counts) {
    for (std::size_t l = 0; l < 6; ++l) {
      if (side[l] < kBounds[l].first || side[l] > kBounds[l].second) {
        return false;
      }
    }
  }
  return true;
}

bool long_run(const support::BitStream& sample, std::size_t* longest_out) {
  require_size(sample);
  std::size_t longest = 1;
  if (active_engine() == Engine::Wordwise) {
    support::wordops::for_each_run(
        sample, 0, kSampleBits,
        [&](bool, std::size_t run) { longest = std::max(longest, run); });
  } else {
    std::size_t run = 1;
    for (std::size_t i = 1; i < kSampleBits; ++i) {
      run = sample[i] == sample[i - 1] ? run + 1 : 1;
      longest = std::max(longest, run);
    }
  }
  if (longest_out != nullptr) *longest_out = longest;
  return longest < 26;
}

std::vector<Outcome> run_all(const support::BitStream& sample) {
  std::vector<Outcome> out;
  double ones = 0.0, chi2 = 0.0;
  std::size_t longest = 0;
  out.push_back({"Monobit", monobit(sample, &ones), ones});
  out.push_back({"Poker", poker(sample, &chi2), chi2});
  out.push_back({"Runs", runs(sample), 0.0});
  out.push_back({"Long run", long_run(sample, &longest),
                 static_cast<double>(longest)});
  return out;
}

bool power_up_ok(const support::BitStream& sample) {
  for (const Outcome& o : run_all(sample)) {
    if (!o.pass) return false;
  }
  return true;
}

}  // namespace dhtrng::stats::fips140
