// FIPS 140-2 single-block power-up tests (monobit, poker, runs, long run)
// on a 20,000-bit sample.  Withdrawn from FIPS 140-3 in favour of the
// SP 800-90B health tests, but still ubiquitous in fielded HSMs and
// smartcards — a downstream user of a DH-TRNG core will ask for them.
#pragma once

#include <string>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats::fips140 {

inline constexpr std::size_t kSampleBits = 20000;

struct Outcome {
  std::string name;
  bool pass = false;
  double statistic = 0.0;  ///< test-specific (count / chi-square / length)
};

bool monobit(const support::BitStream& sample, double* ones = nullptr);
bool poker(const support::BitStream& sample, double* chi2 = nullptr);
bool runs(const support::BitStream& sample);
bool long_run(const support::BitStream& sample,
              std::size_t* longest = nullptr);

/// All four tests on the first 20,000 bits (throws if fewer).
std::vector<Outcome> run_all(const support::BitStream& sample);

/// Convenience: true iff every test passes.
bool power_up_ok(const support::BitStream& sample);

}  // namespace dhtrng::stats::fips140
