#include "stats/health.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/special_functions.h"

namespace dhtrng::stats {

RepetitionCountTest::RepetitionCountTest(double min_entropy_per_bit)
    : cutoff_(1 + static_cast<std::size_t>(
                      std::ceil(20.0 / std::max(min_entropy_per_bit, 1e-3)))) {}

bool RepetitionCountTest::feed(bool bit) {
  if (alarmed_) return false;
  if (primed_ && bit == last_) {
    if (++run_ >= cutoff_) alarmed_ = true;
  } else {
    run_ = 1;
    last_ = bit;
    primed_ = true;
  }
  return !alarmed_;
}

bool RepetitionCountTest::feed_word(std::uint64_t bits, std::size_t nbits) {
  if (alarmed_) return false;
  std::size_t i = 0;
  while (i < nbits) {
    const bool bit = (bits >> i) & 1;
    // Length of the run of `bit` starting at sample i within this word.
    const std::uint64_t rest = bits >> i;
    const std::size_t seg = std::min<std::size_t>(
        bit ? static_cast<std::size_t>(std::countr_one(rest))
            : static_cast<std::size_t>(std::countr_zero(rest)),
        nbits - i);
    if (primed_ && bit == last_) {
      run_ += seg;
    } else {
      run_ = seg;
      last_ = bit;
      primed_ = true;
    }
    if (run_ >= cutoff_) {
      // The scalar path alarms the moment the counter reaches the cutoff
      // and freezes: run_ never exceeds cutoff_.
      run_ = cutoff_;
      alarmed_ = true;
      return false;
    }
    i += seg;
  }
  return true;
}

void RepetitionCountTest::reset() {
  run_ = 0;
  alarmed_ = false;
  primed_ = false;
}

namespace {

/// Smallest C with P(Binomial(W-1, p) >= C-1) <= 2^-20, where p = 2^-H is
/// the claimed most-common-value probability (SP 800-90B 4.4.2).
std::size_t apt_cutoff(double min_entropy_per_bit, std::size_t window) {
  const double p = std::pow(2.0, -std::max(min_entropy_per_bit, 1e-3));
  const double alpha = std::pow(2.0, -20.0);
  // Normal approximation with continuity correction is accurate for
  // W = 1024; walk up from the mean to find the tail cutoff.
  const double n = static_cast<double>(window - 1);
  const double mean = n * p;
  const double sigma = std::sqrt(n * p * (1.0 - p));
  std::size_t c = static_cast<std::size_t>(mean);
  for (; c <= window; ++c) {
    const double z = (static_cast<double>(c) - 0.5 - mean) / sigma;
    if (support::normal_q(z) <= alpha) break;
  }
  return std::min<std::size_t>(c + 1, window);
}

}  // namespace

AdaptiveProportionTest::AdaptiveProportionTest(double min_entropy_per_bit,
                                               std::size_t window)
    : window_(window), cutoff_(apt_cutoff(min_entropy_per_bit, window)) {}

bool AdaptiveProportionTest::feed(bool bit) {
  if (alarmed_) return false;
  if (index_ == 0) {
    // SP 800-90B 4.4.2 step 2: the counter starts at 1, counting the
    // window's reference sample itself — the cutoff is a bound on the total
    // occurrence count within the window, reference included.
    reference_ = bit;
    matches_ = 1;
    if (matches_ >= cutoff_) alarmed_ = true;  // degenerate W=1 windows
  } else if (bit == reference_) {
    if (++matches_ >= cutoff_) alarmed_ = true;
  }
  if (++index_ >= window_) index_ = 0;
  return !alarmed_;
}

bool AdaptiveProportionTest::feed_word(std::uint64_t bits, std::size_t nbits) {
  if (alarmed_) return false;
  std::size_t i = 0;
  while (i < nbits) {
    if (index_ == 0) {  // window restart: scalar step for the reference bit
      if (!feed((bits >> i) & 1)) {
        // Degenerate cutoff alarm on the reference sample itself; the
        // remaining samples would be swallowed by the sticky alarm anyway.
        return false;
      }
      ++i;
      continue;
    }
    const std::size_t span = std::min(nbits - i, window_ - index_);
    const std::uint64_t mask =
        span == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << span) - 1;
    const std::uint64_t seg = (bits >> i) & mask;
    const std::size_t m = static_cast<std::size_t>(
        std::popcount(reference_ ? seg : ~seg & mask));
    if (matches_ + m >= cutoff_) {
      // The cutoff falls inside this segment: replay it per bit so the
      // alarm freezes index_/matches_ at exactly the scalar alarm point.
      for (; i < nbits; ++i) feed((bits >> i) & 1);
      return !alarmed_;
    }
    matches_ += m;
    index_ += span;
    if (index_ >= window_) index_ = 0;
    i += span;
  }
  return true;
}

void AdaptiveProportionTest::reset() {
  index_ = 0;
  matches_ = 0;
  alarmed_ = false;
}

HealthMonitor::HealthMonitor(double min_entropy_per_bit)
    : rct_(min_entropy_per_bit), apt_(min_entropy_per_bit) {}

bool HealthMonitor::feed(bool bit) {
  const bool a = rct_.feed(bit);
  const bool b = apt_.feed(bit);
  return a && b;
}

bool HealthMonitor::feed_word(std::uint64_t bits, std::size_t nbits) {
  const bool a = rct_.feed_word(bits, nbits);
  const bool b = apt_.feed_word(bits, nbits);
  return a && b;
}

void HealthMonitor::reset() {
  rct_.reset();
  apt_.reset();
}

}  // namespace dhtrng::stats
