// SP 800-90B section 4.4 continuous health tests: the Repetition Count
// Test (RCT) and the Adaptive Proportion Test (APT).
//
// These run *inside* a deployed entropy source, bit by bit, and raise an
// alarm when the noise source degrades (a stuck ring, a locked loop, a
// massive bias).  The paper's DH-TRNG targets exactly such deployments
// (roots of trust), so the library ships them; the key_generation example
// and the failure-injection tests exercise them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dhtrng::stats {

/// Repetition Count Test (SP 800-90B 4.4.1): alarm when the same value
/// repeats C times in a row, with C chosen from the claimed per-sample
/// min-entropy H and a false-alarm probability of 2^-20:
///   C = 1 + ceil(20 / H).
class RepetitionCountTest {
 public:
  explicit RepetitionCountTest(double min_entropy_per_bit = 0.9);

  /// Feed one bit; returns true while healthy, false once alarmed.
  bool feed(bool bit);

  /// Feed `nbits` <= 64 samples at once, bit i of `bits` being the i-th
  /// sample (LSB-first emission order).  Runs are consumed with trailing
  /// zero/one counts instead of per-bit branches; the resulting state —
  /// including the frozen run length at an alarm — is exactly what the
  /// equivalent sequence of feed() calls leaves behind, and the return
  /// value is the conjunction of their return values.
  bool feed_word(std::uint64_t bits, std::size_t nbits);

  bool alarmed() const { return alarmed_; }
  std::size_t cutoff() const { return cutoff_; }
  void reset();

 private:
  std::size_t cutoff_;
  bool last_ = false;
  std::size_t run_ = 0;
  bool alarmed_ = false;
  bool primed_ = false;
};

/// Adaptive Proportion Test (SP 800-90B 4.4.2): within each window of
/// W = 1024 bits, alarm if the first value of the window occurs at least
/// C times *including that first (reference) sample* — the spec's counter
/// B starts at 1.  C is the 2^-20 binomial tail cutoff for the claimed
/// min-entropy: the smallest C with P(1 + Binomial(W-1, 2^-H) >= C) <= 2^-20;
/// for binary H = 1 the standard value is C = 589 and it grows toward W as
/// the claimed entropy falls.
class AdaptiveProportionTest {
 public:
  explicit AdaptiveProportionTest(double min_entropy_per_bit = 0.9,
                                  std::size_t window = 1024);

  bool feed(bool bit);

  /// Batch counterpart of feed(): `nbits` <= 64 samples, LSB-first.  Window
  /// segments are matched against the reference with masked popcounts; near
  /// the cutoff it falls back to per-bit feeding so the alarm fires — and
  /// freezes the state — at exactly the same sample as the scalar path.
  bool feed_word(std::uint64_t bits, std::size_t nbits);

  bool alarmed() const { return alarmed_; }
  std::size_t cutoff() const { return cutoff_; }
  void reset();

 private:
  std::size_t window_;
  std::size_t cutoff_;
  bool reference_ = false;
  std::size_t index_ = 0;
  std::size_t matches_ = 0;
  bool alarmed_ = false;
};

/// Convenience wrapper running both tests side by side.
class HealthMonitor {
 public:
  explicit HealthMonitor(double min_entropy_per_bit = 0.9);

  /// Returns true while both tests are healthy.
  bool feed(bool bit);

  /// Feed `nbits` <= 64 samples (LSB-first) to both tests at once.
  bool feed_word(std::uint64_t bits, std::size_t nbits);

  bool healthy() const { return !rct_.alarmed() && !apt_.alarmed(); }
  const RepetitionCountTest& rct() const { return rct_; }
  const AdaptiveProportionTest& apt() const { return apt_; }
  void reset();

 private:
  RepetitionCountTest rct_;
  AdaptiveProportionTest apt_;
};

}  // namespace dhtrng::stats
