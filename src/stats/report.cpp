#include "stats/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/attack.h"
#include "stats/correlation.h"
#include "stats/fips140.h"
#include "stats/restart.h"
#include "stats/restart_matrix.h"
#include "stats/sp800_22.h"
#include "stats/sp800_90b.h"

namespace dhtrng::stats {

CharacterizationReport characterize(core::TrngSource& trng,
                                    ReportOptions options) {
  std::ostringstream os;
  bool ok = true;
  const auto flag = [&](bool pass) {
    ok = ok && pass;
    return pass ? "ok  " : "FAIL";
  };

  os << "TRNG characterization: " << trng.name() << "\n";
  os << "throughput: " << trng.throughput_mbps() << " Mbps, resources: "
     << trng.resources().luts << " LUT / " << trng.resources().muxes
     << " MUX / " << trng.resources().dffs << " DFF\n";
  os << "sample: " << options.sample_bits << " bits\n\n";

  const support::BitStream bits = trng.generate(options.sample_bits);

  // --- basic screen ---------------------------------------------------------
  const double bias = bias_percent(bits);
  os << "[" << flag(bias < 1.0) << "] bias                 " << bias << " %\n";
  double max_acf = 0.0;
  for (double a : autocorrelation(bits, 100)) {
    max_acf = std::max(max_acf, std::abs(a));
  }
  os << "[" << flag(max_acf < 0.3) << "] max |ACF| (1..100)   " << max_acf
     << "\n";

  // --- FIPS 140-2 power-up --------------------------------------------------
  for (const auto& o : fips140::run_all(bits)) {
    os << "[" << flag(o.pass) << "] FIPS 140-2 " << o.name << "\n";
  }

  // --- SP 800-90B -----------------------------------------------------------
  double overall = 1.0;
  for (const auto& r : sp800_90b::run_all(bits)) {
    overall = std::min(overall, r.h_min);
  }
  os << "[" << flag(overall >= options.claimed_min_entropy * 0.8)
     << "] SP 800-90B overall   h-min " << overall << " (claimed "
     << options.claimed_min_entropy << ")\n";
  const auto iid = sp800_90b::permutation_iid_test(
      bits.slice(0, std::min<std::size_t>(bits.size(), 20000)),
      options.iid_permutations, 17);
  os << "[" << flag(iid.iid_assumption_holds) << "] SP 800-90B IID       "
     << iid.permutations << " permutations\n";

  // --- ML attack -------------------------------------------------------------
  const auto attack = logistic_attack(bits);
  os << "[" << flag(!attack.predictable()) << "] ML prediction        "
     << attack.test_accuracy << " accuracy (z=" << attack.z_score << ")\n";

  // --- SP 800-22 quick battery ------------------------------------------------
  if (options.include_sp800_22) {
    const auto results = sp800_22::run_all(bits);
    std::size_t passed = 0, total = 0;
    double wall_total = 0.0;
    for (const auto& r : results) {
      wall_total += r.wall_s;
      if (!r.applicable) continue;
      ++total;
      passed += r.pass() ? 1u : 0u;
    }
    os << "[" << flag(passed + 1 >= total) << "] SP 800-22            "
       << passed << "/" << total << " tests in " << wall_total << " s\n";
    for (const auto& r : results) {
      os << "       " << r.name;
      for (std::size_t pad = r.name.size(); pad < 24; ++pad) os << ' ';
      if (r.applicable) {
        os << "p " << r.p_value();
      } else {
        os << "not applicable";
      }
      os << "  (" << r.wall_s * 1e3 << " ms)\n";
    }
  }

  // --- restart behaviour -------------------------------------------------------
  if (options.include_restart) {
    const auto rt = restart_test(trng);
    os << "[" << flag(rt.all_distinct) << "] restart words        "
       << (rt.all_distinct ? "all distinct" : "REPEATED") << "\n";
    // 200 x 200: small enough to be quick, large enough that the min over
    // per-row/column MCV confidence bounds clears the h/2 gate on a
    // healthy source.
    const auto rm = restart_matrix_test(trng, 200, 200, 32);
    os << "[" << flag(rm.passes(options.claimed_min_entropy))
       << "] restart matrix       rows " << rm.row_min_entropy << " cols "
       << rm.column_min_entropy << " (startup discard 32)\n";
  }

  os << "\nverdict: " << (ok ? "ALL CLEAR" : "ISSUES FOUND") << "\n";
  CharacterizationReport report;
  report.text = os.str();
  report.all_clear = ok;
  return report;
}

}  // namespace dhtrng::stats
