// TRNG characterization report: one call that runs the quick screen of
// every suite in the library over a generator and renders a plain-text
// report — the artifact an evaluation lab hands back.  The trng_tool
// example exposes it as `trng_tool report`.
#pragma once

#include <string>

#include "core/trng.h"

namespace dhtrng::stats {

struct ReportOptions {
  std::size_t sample_bits = 300000;   ///< statistical sample volume
  std::size_t iid_permutations = 120; ///< 90B permutation count
  bool include_sp800_22 = true;       ///< 15-test battery (costlier)
  bool include_restart = true;        ///< restart + restart-matrix tests
  double claimed_min_entropy = 0.9;
};

struct CharacterizationReport {
  std::string text;        ///< rendered report
  bool all_clear = false;  ///< every included check acceptable
};

/// Drive `trng` through the screen and render the report.
CharacterizationReport characterize(core::TrngSource& trng,
                                    ReportOptions options = {});

}  // namespace dhtrng::stats
