#include "stats/restart.h"

#include <algorithm>
#include <bit>
#include <set>

namespace dhtrng::stats {

RestartResult restart_test(core::TrngSource& trng, std::size_t restarts,
                           std::size_t bits_per_restart) {
  RestartResult result;
  std::vector<std::uint64_t> words;
  for (std::size_t r = 0; r < restarts; ++r) {
    trng.restart();
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < bits_per_restart; ++b) {
      w = (w << 1) | (trng.next_bit() ? 1u : 0u);
    }
    words.push_back(w);
    result.first_words.push_back(static_cast<std::uint32_t>(w));
  }
  result.all_distinct =
      std::set<std::uint64_t>(words.begin(), words.end()).size() ==
      words.size();
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t j = i + 1; j < words.size(); ++j) {
      const int same = static_cast<int>(bits_per_restart) -
                       std::popcount(words[i] ^ words[j]);
      result.max_pairwise_agreement =
          std::max(result.max_pairwise_agreement,
                   static_cast<double>(same) /
                       static_cast<double>(bits_per_restart));
    }
  }
  return result;
}

}  // namespace dhtrng::stats
