// Restart test (Section 4.2): power-cycle the generator several times,
// capture the first words after each start, and verify all captures differ
// (a deterministic or state-replaying generator fails immediately).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/trng.h"

namespace dhtrng::stats {

struct RestartResult {
  std::vector<std::uint32_t> first_words;  ///< first 32 bits per restart
  bool all_distinct = false;
  /// Maximum pairwise bit-agreement fraction between captures (0.5 is
  /// ideal; near 1.0 means the generator repeats its startup transient).
  double max_pairwise_agreement = 0.0;
};

RestartResult restart_test(core::TrngSource& trng, std::size_t restarts = 6,
                           std::size_t bits_per_restart = 32);

}  // namespace dhtrng::stats
