#include "stats/restart_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dhtrng::stats {

namespace {

/// MCV min-entropy with the 99% upper confidence bound (6.3.1) of a
/// bit-count over n samples.
double mcv_h(std::size_t ones, std::size_t n) {
  if (n == 0) return 0.0;
  const double nd = static_cast<double>(n);
  const double p_hat =
      std::max(static_cast<double>(ones), nd - static_cast<double>(ones)) / nd;
  const double p_u = std::min(
      1.0, p_hat + 2.5758293035489004 *
                       std::sqrt(p_hat * (1.0 - p_hat) / (nd - 1.0)));
  return std::min(-std::log2(p_u), 1.0);
}

}  // namespace

RestartMatrixResult analyze_restart_matrix(
    const std::vector<support::BitStream>& rows) {
  if (rows.empty() || rows.front().empty()) {
    throw std::invalid_argument("analyze_restart_matrix: empty matrix");
  }
  RestartMatrixResult result;
  result.restarts = rows.size();
  result.samples_per_restart = rows.front().size();

  double row_min = 1.0;
  for (const auto& row : rows) {
    if (row.size() != result.samples_per_restart) {
      throw std::invalid_argument("analyze_restart_matrix: ragged matrix");
    }
    row_min = std::min(row_min, mcv_h(row.count_ones(), row.size()));
  }
  result.row_min_entropy = row_min;

  double col_min = 1.0;
  for (std::size_t c = 0; c < result.samples_per_restart; ++c) {
    std::size_t ones = 0;
    for (const auto& row : rows) ones += row[c] ? 1u : 0u;
    col_min = std::min(col_min, mcv_h(ones, rows.size()));
  }
  result.column_min_entropy = col_min;
  return result;
}

RestartMatrixResult restart_matrix_test(core::TrngSource& trng,
                                        std::size_t restarts,
                                        std::size_t samples_per_restart,
                                        std::size_t startup_discard) {
  std::vector<support::BitStream> rows;
  rows.reserve(restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    trng.restart();
    for (std::size_t d = 0; d < startup_discard; ++d) trng.next_bit();
    rows.push_back(trng.generate(samples_per_restart));
  }
  return analyze_restart_matrix(rows);
}

}  // namespace dhtrng::stats
