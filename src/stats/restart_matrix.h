// SP 800-90B section 3.1.4 restart testing.
//
// The validation lab collects a matrix of r restarts x c samples; the
// sanity test estimates min-entropy down the *columns* (same post-restart
// position across restarts) and along the *rows* (within one restart) and
// requires both to be no more than a small factor below the claimed
// assessment — catching sources whose randomness partially replays after a
// power cycle (a common real failure the §4.2 restart test alone misses).
#pragma once

#include <cstddef>
#include <vector>

#include "core/trng.h"
#include "support/bitstream.h"

namespace dhtrng::stats {

struct RestartMatrixResult {
  std::size_t restarts = 0;
  std::size_t samples_per_restart = 0;
  double row_min_entropy = 0.0;     ///< min over rows of the MCV estimate
  double column_min_entropy = 0.0;  ///< min over columns of the MCV estimate
  /// SP 800-90B acceptance: both estimates must exceed half the claimed
  /// per-bit min-entropy (the spec compares against the full assessment
  /// with a binomial cutoff; the factor-of-two form is its practical gate).
  bool passes(double claimed_min_entropy) const {
    return row_min_entropy >= claimed_min_entropy / 2.0 &&
           column_min_entropy >= claimed_min_entropy / 2.0;
  }
};

/// Collect the restart matrix from `trng` (power-cycling it `restarts`
/// times) and run the sanity estimates.  The spec uses 1000 x 1000; the
/// defaults are sized for interactive use.  `startup_discard` drops that
/// many bits after each restart before sampling — matching deployments
/// that discard the (weak) startup transient; with 0, the column estimate
/// deliberately *includes* the transient and will expose generators whose
/// first post-restart bits are nearly deterministic.
RestartMatrixResult restart_matrix_test(core::TrngSource& trng,
                                        std::size_t restarts = 128,
                                        std::size_t samples_per_restart = 128,
                                        std::size_t startup_discard = 0);

/// The estimates alone, for a caller-provided matrix (row-major bit rows).
RestartMatrixResult analyze_restart_matrix(
    const std::vector<support::BitStream>& rows);

}  // namespace dhtrng::stats
