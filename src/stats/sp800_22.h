// NIST SP 800-22 statistical test suite (all 15 tests), reimplemented from
// the specification with the standard STS parameters, used to reproduce the
// paper's Table 3.
//
// Conventions follow the NIST STS reference implementation:
//  * a test returns one or more p-values (sub-tests);
//  * a sequence passes a test at significance alpha = 0.01 if every
//    sub-test p-value is >= alpha;
//  * the multi-set suite report gives, per test, the uniformity
//    "P-value of the p-values" (chi-square over 10 bins) and the
//    pass proportion — the two columns of the paper's Table 3.
//
// Tests whose p-value column in the paper carries a * report the average
// over sub-tests; run_suite reproduces that convention.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats::sp800_22 {

struct TestResult {
  std::string name;
  std::vector<double> p_values;  ///< one per sub-test
  bool applicable = true;        ///< random-excursions tests may not apply
  double wall_s = 0.0;           ///< wall time of this test (set by run_all)

  /// Representative p-value: the average over sub-tests (the paper's *
  /// convention; identical to the single p-value for simple tests).
  double p_value() const;
  /// Single-subtest: p >= alpha.  Multi-subtest: average p >= alpha and the
  /// failing-subtest count within the binomial 3-sigma band (see .cpp).
  bool pass(double alpha = 0.01) const;
};

using support::BitStream;

TestResult frequency(const BitStream& bits);
TestResult block_frequency(const BitStream& bits, std::size_t block_len = 128);
TestResult cumulative_sums(const BitStream& bits);  // forward + backward
TestResult runs(const BitStream& bits);
TestResult longest_run(const BitStream& bits);
TestResult rank(const BitStream& bits);
TestResult dft(const BitStream& bits);
TestResult non_overlapping_template(const BitStream& bits,
                                    std::size_t template_len = 9);
TestResult overlapping_template(const BitStream& bits,
                                std::size_t template_len = 9);
TestResult universal(const BitStream& bits);
TestResult approximate_entropy(const BitStream& bits,
                               std::size_t block_len = 10);
TestResult random_excursions(const BitStream& bits);
TestResult random_excursions_variant(const BitStream& bits);
TestResult serial(const BitStream& bits, std::size_t block_len = 16);
TestResult linear_complexity(const BitStream& bits,
                             std::size_t block_len = 500);

/// All 15 tests with the standard parameters, in the paper's Table 3 order.
std::vector<TestResult> run_all(const BitStream& bits);

/// Aperiodic templates of the given length (the non-overlapping template
/// test's template set; 148 templates for length 9).
std::vector<std::vector<bool>> aperiodic_templates(std::size_t len);

/// Cached variant: enumerated once per length, then served from a
/// process-wide table (thread-safe).  The returned reference stays valid
/// for the process lifetime.
const std::vector<std::vector<bool>>& aperiodic_templates_cached(
    std::size_t len);

/// Multi-set suite report (paper Table 3 format).
struct SuiteRow {
  std::string name;
  double p_value = 0.0;      ///< uniformity p-value (averaged over sub-tests)
  std::size_t passed = 0;    ///< sets passing the whole test
  std::size_t total = 0;     ///< applicable sets
  double wall_s = 0.0;       ///< total wall time of this test across sets
};

/// `n_threads` parallelizes over the independent sets (the dominant cost
/// for the paper's 30 x 1 Mbit runs); the report is identical for any
/// thread count.  1 = serial, 0 = hardware concurrency.
std::vector<SuiteRow> run_suite(std::span<const BitStream> sets,
                                double alpha = 0.01,
                                std::size_t n_threads = 1);

}  // namespace dhtrng::stats::sp800_22
