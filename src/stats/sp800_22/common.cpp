#include "stats/sp800_22.h"

#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <numeric>

#include "support/stats_util.h"
#include "support/thread_pool.h"

namespace dhtrng::stats::sp800_22 {

double TestResult::p_value() const {
  if (p_values.empty()) return 0.0;
  return std::accumulate(p_values.begin(), p_values.end(), 0.0) /
         static_cast<double>(p_values.size());
}

bool TestResult::pass(double alpha) const {
  if (!applicable) return true;  // vacuously: test does not apply
  if (p_values.empty()) return false;
  if (p_values.size() == 1) return p_values.front() >= alpha;
  // Multi-subtest tests (the paper's * rows): requiring every one of up to
  // 148 subtest p-values to clear alpha would fail ideal generators ~77% of
  // the time, so — matching the paper's averaging convention — a sequence
  // passes if the average subtest p-value clears alpha AND the number of
  // failing subtests stays within the 3-sigma binomial band expected of a
  // uniform p-value population.
  std::size_t failing = 0;
  for (double p : p_values) {
    if (p < alpha) ++failing;
  }
  const double n = static_cast<double>(p_values.size());
  const double limit = alpha * n + 3.0 * std::sqrt(alpha * (1.0 - alpha) * n);
  return p_value() >= alpha && static_cast<double>(failing) <= limit;
}

namespace {

std::vector<std::vector<bool>> enumerate_aperiodic_templates(std::size_t len) {
  // A template B is aperiodic (non-self-overlapping) iff no proper shift of
  // B matches itself: for every s in 1..len-1 there is an i with
  // B[i] != B[i+s].
  std::vector<std::vector<bool>> out;
  const std::size_t total = std::size_t{1} << len;
  for (std::size_t v = 0; v < total; ++v) {
    std::vector<bool> b(len);
    for (std::size_t i = 0; i < len; ++i) {
      b[i] = (v >> (len - 1 - i)) & 1u;
    }
    bool aperiodic = true;
    for (std::size_t s = 1; s < len && aperiodic; ++s) {
      bool overlaps = true;
      for (std::size_t i = 0; i + s < len; ++i) {
        if (b[i] != b[i + s]) {
          overlaps = false;
          break;
        }
      }
      if (overlaps) aperiodic = false;
    }
    if (aperiodic) out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

const std::vector<std::vector<bool>>& aperiodic_templates_cached(
    std::size_t len) {
  static std::mutex mutex;
  static std::map<std::size_t, std::vector<std::vector<bool>>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(len);
  if (it == cache.end()) {
    it = cache.emplace(len, enumerate_aperiodic_templates(len)).first;
  }
  return it->second;  // map nodes are stable; safe to hand out
}

std::vector<std::vector<bool>> aperiodic_templates(std::size_t len) {
  return aperiodic_templates_cached(len);
}

std::vector<TestResult> run_all(const BitStream& bits) {
  using Clock = std::chrono::steady_clock;
  const auto timed = [&](TestResult (*test)(const BitStream&)) {
    const auto t0 = Clock::now();
    TestResult r = test(bits);
    r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    return r;
  };
  return {
      timed([](const BitStream& b) { return frequency(b); }),
      timed([](const BitStream& b) { return block_frequency(b); }),
      timed([](const BitStream& b) { return cumulative_sums(b); }),
      timed([](const BitStream& b) { return runs(b); }),
      timed([](const BitStream& b) { return longest_run(b); }),
      timed([](const BitStream& b) { return rank(b); }),
      timed([](const BitStream& b) { return dft(b); }),
      timed([](const BitStream& b) { return non_overlapping_template(b); }),
      timed([](const BitStream& b) { return overlapping_template(b); }),
      timed([](const BitStream& b) { return universal(b); }),
      timed([](const BitStream& b) { return approximate_entropy(b); }),
      timed([](const BitStream& b) { return random_excursions(b); }),
      timed([](const BitStream& b) { return random_excursions_variant(b); }),
      timed([](const BitStream& b) { return serial(b); }),
      timed([](const BitStream& b) { return linear_complexity(b); }),
  };
}

std::vector<SuiteRow> run_suite(std::span<const BitStream> sets,
                                double alpha, std::size_t n_threads) {
  std::vector<SuiteRow> rows;
  if (sets.empty()) return rows;
  if (n_threads == 0) n_threads = support::ThreadPool::hardware_threads();

  // Run every set once, keep all results grouped by test index.  Sets are
  // independent, so they dispatch onto workers; each slot is written by
  // exactly one task and the aggregation below walks them in set order, so
  // the rows do not depend on the thread count.
  std::vector<std::vector<TestResult>> by_set(sets.size());
  if (n_threads <= 1 || sets.size() <= 1) {
    for (std::size_t s = 0; s < sets.size(); ++s) by_set[s] = run_all(sets[s]);
  } else {
    support::ThreadPool pool(std::min(n_threads, sets.size()));
    pool.parallel_for(0, sets.size(),
                      [&](std::size_t s) { by_set[s] = run_all(sets[s]); });
  }

  const std::size_t tests = by_set.front().size();
  for (std::size_t t = 0; t < tests; ++t) {
    SuiteRow row;
    row.name = by_set.front()[t].name;
    // Collect per-subtest p-value columns across applicable sets.
    std::size_t subtests = 0;
    for (const auto& results : by_set) {
      if (results[t].applicable) {
        subtests = std::max(subtests, results[t].p_values.size());
      }
    }
    double uniformity_sum = 0.0;
    std::size_t uniformity_cols = 0;
    for (std::size_t sub = 0; sub < subtests; ++sub) {
      std::vector<double> column;
      for (const auto& results : by_set) {
        if (results[t].applicable && sub < results[t].p_values.size()) {
          column.push_back(results[t].p_values[sub]);
        }
      }
      if (!column.empty()) {
        uniformity_sum += support::p_value_uniformity(column);
        ++uniformity_cols;
      }
    }
    row.p_value = uniformity_cols > 0
                      ? uniformity_sum / static_cast<double>(uniformity_cols)
                      : 0.0;
    for (const auto& results : by_set) {
      row.wall_s += results[t].wall_s;
      if (!results[t].applicable) continue;
      ++row.total;
      if (results[t].pass(alpha)) ++row.passed;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dhtrng::stats::sp800_22
