// SP 800-22 section 2.10: Linear Complexity test (Berlekamp-Massey per
// block, chi-square over the deviation classes).
#include <array>
#include <cmath>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/berlekamp_massey.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::igamc;

TestResult linear_complexity(const BitStream& bits, std::size_t block_len) {
  static constexpr std::array<double, 7> kPi = {
      0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833};
  const std::size_t m = block_len;
  const std::size_t blocks = bits.size() / m;
  if (blocks == 0) return {"LinearComplexity", {}, false};

  const double md = static_cast<double>(m);
  const double sign_mu = (m % 2 == 0) ? -1.0 : 1.0;  // (-1)^(M+1)
  const double mu = md / 2.0 + (9.0 + sign_mu) / 36.0 -
                    (md / 3.0 + 2.0 / 9.0) / std::pow(2.0, md);
  const double sign_t = (m % 2 == 0) ? 1.0 : -1.0;  // (-1)^M

  const bool wordwise = active_engine() == Engine::Wordwise;
  std::array<std::size_t, 7> nu{};
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t l = wordwise
                              ? support::linear_complexity(bits, b * m, m)
                              : support::linear_complexity_ref(bits, b * m, m);
    const double t = sign_t * (static_cast<double>(l) - mu) + 2.0 / 9.0;
    std::size_t cls;
    if (t <= -2.5) cls = 0;
    else if (t <= -1.5) cls = 1;
    else if (t <= -0.5) cls = 2;
    else if (t <= 0.5) cls = 3;
    else if (t <= 1.5) cls = 4;
    else if (t <= 2.5) cls = 5;
    else cls = 6;
    ++nu[cls];
  }
  double chi2 = 0.0;
  for (std::size_t c = 0; c < 7; ++c) {
    const double expected = static_cast<double>(blocks) * kPi[c];
    const double d = static_cast<double>(nu[c]) - expected;
    chi2 += d * d / expected;
  }
  return {"LinearComplexity", {igamc(3.0, chi2 / 2.0)}};
}

}  // namespace dhtrng::stats::sp800_22
