// SP 800-22 sections 2.11 and 2.12: Serial and Approximate Entropy.
// Both count overlapping m-bit patterns on the cyclically extended sequence.
//
// The wordwise engine slides an LSB-first window register fed from 64-bit
// chunks (the scalar engine rebuilds an MSB-first value with a modulo per
// bit).  The count array is therefore indexed by the bit-reversed pattern
// value; both psi-squared and phi iterate it in bit-reversed index order so
// the accumulation visits counts in exactly the scalar sequence, keeping
// the floating-point results bitwise identical.
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/special_functions.h"
#include "support/wordops.h"

namespace dhtrng::stats::sp800_22 {

using support::igamc;

namespace {

/// Counts of all overlapping m-bit patterns over the cyclic sequence,
/// indexed by the MSB-first pattern value.
std::vector<std::uint32_t> pattern_counts_scalar(const BitStream& bits,
                                                 std::size_t m) {
  std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
  if (m == 0 || bits.size() == 0) return counts;
  const std::size_t n = bits.size();
  const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
  std::uint64_t window = 0;
  // Prime with the first m-1 bits.
  for (std::size_t i = 0; i < m - 1; ++i) {
    window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = bits[(i + m - 1) % n];  // cyclic extension
    window = ((window << 1) | (bit ? 1u : 0u)) & mask;
    ++counts[window];
  }
  return counts;
}

/// Same multiset of counts, indexed by the LSB-first pattern value:
/// counts_lsb[bit_reverse(v, m)] == counts_msb[v].
std::vector<std::uint32_t> pattern_counts_wordwise(const BitStream& bits,
                                                   std::size_t m) {
  std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
  const std::size_t n = bits.size();
  if (m == 0 || n == 0) return counts;
  if (n < m) return pattern_counts_scalar(bits, m);  // degenerate sizes
  const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
  std::uint64_t window = bits.chunk64(0) & mask;
  ++counts[window];
  // Windows 1 .. n-m draw their incoming bit from the stream directly.
  std::uint64_t reg = 0;
  std::size_t reg_left = 0;
  std::size_t next = m;
  for (std::size_t i = 1; i + m <= n; ++i) {
    if (reg_left == 0) {
      reg = bits.chunk64(next);
      reg_left = 64;
    }
    window = (window >> 1) | ((reg & 1u) << (m - 1));
    reg >>= 1;
    --reg_left;
    ++next;
    ++counts[window];
  }
  // The last m-1 windows wrap around to the front of the sequence.
  for (std::size_t i = n - m + 1; i < n; ++i) {
    const std::uint64_t bit = bits[(i + m - 1) % n] ? 1u : 0u;
    window = (window >> 1) | (bit << (m - 1));
    ++counts[window];
  }
  return counts;
}

double psi_squared(const BitStream& bits, std::size_t m) {
  if (m == 0) return 0.0;
  namespace wo = support::wordops;
  const bool wordwise = active_engine() == Engine::Wordwise;
  const double n = static_cast<double>(bits.size());
  const auto counts = wordwise ? pattern_counts_wordwise(bits, m)
                               : pattern_counts_scalar(bits, m);
  double sum = 0.0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    const std::uint32_t c =
        wordwise ? counts[wo::bit_reverse(v, static_cast<unsigned>(m))]
                 : counts[v];
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * std::pow(2.0, static_cast<double>(m)) / n - n;
}

double phi(const BitStream& bits, std::size_t m) {
  if (m == 0) return 0.0;
  namespace wo = support::wordops;
  const bool wordwise = active_engine() == Engine::Wordwise;
  const double n = static_cast<double>(bits.size());
  const auto counts = wordwise ? pattern_counts_wordwise(bits, m)
                               : pattern_counts_scalar(bits, m);
  double sum = 0.0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    const std::uint32_t c =
        wordwise ? counts[wo::bit_reverse(v, static_cast<unsigned>(m))]
                 : counts[v];
    if (c > 0) {
      const double p = static_cast<double>(c) / n;
      sum += p * std::log(p);
    }
  }
  return sum;
}

}  // namespace

TestResult serial(const BitStream& bits, std::size_t block_len) {
  const std::size_t m = block_len;
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  const double p1 =
      igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0);
  const double p2 =
      igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0);
  return {"Serial", {p1, p2}};
}

TestResult approximate_entropy(const BitStream& bits, std::size_t block_len) {
  const std::size_t m = block_len;
  const double n = static_cast<double>(bits.size());
  const double apen = phi(bits, m) - phi(bits, m + 1);
  const double chi2 = 2.0 * n * (std::log(2.0) - apen);
  const double p =
      igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0);
  return {"ApproximateEntropy", {p}};
}

}  // namespace dhtrng::stats::sp800_22
