// SP 800-22 sections 2.11 and 2.12: Serial and Approximate Entropy.
// Both count overlapping m-bit patterns on the cyclically extended sequence.
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/sp800_22.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::igamc;

namespace {

/// Counts of all overlapping m-bit patterns over the cyclic sequence.
std::vector<std::uint32_t> pattern_counts(const BitStream& bits,
                                          std::size_t m) {
  std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
  if (m == 0 || bits.size() == 0) return counts;
  const std::size_t n = bits.size();
  const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
  std::uint64_t window = 0;
  // Prime with the first m-1 bits.
  for (std::size_t i = 0; i < m - 1; ++i) {
    window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = bits[(i + m - 1) % n];  // cyclic extension
    window = ((window << 1) | (bit ? 1u : 0u)) & mask;
    ++counts[window];
  }
  return counts;
}

double psi_squared(const BitStream& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const double n = static_cast<double>(bits.size());
  const auto counts = pattern_counts(bits, m);
  double sum = 0.0;
  for (std::uint32_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * std::pow(2.0, static_cast<double>(m)) / n - n;
}

double phi(const BitStream& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const double n = static_cast<double>(bits.size());
  const auto counts = pattern_counts(bits, m);
  double sum = 0.0;
  for (std::uint32_t c : counts) {
    if (c > 0) {
      const double p = static_cast<double>(c) / n;
      sum += p * std::log(p);
    }
  }
  return sum;
}

}  // namespace

TestResult serial(const BitStream& bits, std::size_t block_len) {
  const std::size_t m = block_len;
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  const double p1 =
      igamc(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0);
  const double p2 =
      igamc(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0);
  return {"Serial", {p1, p2}};
}

TestResult approximate_entropy(const BitStream& bits, std::size_t block_len) {
  const std::size_t m = block_len;
  const double n = static_cast<double>(bits.size());
  const double apen = phi(bits, m) - phi(bits, m + 1);
  const double chi2 = 2.0 * n * (std::log(2.0) - apen);
  const double p =
      igamc(std::pow(2.0, static_cast<double>(m) - 1.0), chi2 / 2.0);
  return {"ApproximateEntropy", {p}};
}

}  // namespace dhtrng::stats::sp800_22
