// SP 800-22 sections 2.14 and 2.15: Random Excursions and Random Excursions
// Variant.  Both examine the +-1 random walk of the sequence, cycle by
// cycle (a cycle is a sub-walk between returns to zero); they apply only
// when the walk has at least 500 cycles.
#include <array>
#include <cmath>
#include <map>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;
using support::igamc;

namespace {

struct WalkInfo {
  std::size_t cycles = 0;
  /// Visit counts per state per cycle-class, for states -4..4 (index 0..8,
  /// state 0 unused): klass[state][k] = number of cycles visiting `state`
  /// exactly k times (k clamped to 5).
  std::array<std::array<std::size_t, 6>, 9> klass{};
  /// Total visits per state for -9..9 (index 0..18, state 0 unused).
  std::array<std::size_t, 19> total_visits{};
};

WalkInfo analyze_walk(const BitStream& bits) {
  WalkInfo info;
  long long s = 0;
  std::array<std::size_t, 9> cycle_visits{};   // -4..4 within current cycle
  const auto flush_cycle = [&] {
    ++info.cycles;
    for (std::size_t i = 0; i < 9; ++i) {
      if (i == 4) continue;  // state 0
      const std::size_t k = std::min<std::size_t>(cycle_visits[i], 5);
      ++info.klass[i][k];
      cycle_visits[i] = 0;
    }
  };
  const auto step = [&](bool bit) {
    s += bit ? 1 : -1;
    if (s == 0) {
      flush_cycle();
    } else {
      if (s >= -4 && s <= 4) {
        ++cycle_visits[static_cast<std::size_t>(s + 4)];
      }
      if (s >= -9 && s <= 9) {
        ++info.total_visits[static_cast<std::size_t>(s + 9)];
      }
    }
  };
  const std::size_t n = bits.size();
  if (active_engine() == Engine::Wordwise) {
    // Same per-bit state machine, but fed from a shifted 64-bit register
    // instead of per-index container reads; the visit counts are integers,
    // so the walk is identical.
    for (std::size_t base = 0; base < n; base += 64) {
      std::uint64_t reg = bits.chunk64(base);
      const std::size_t valid = std::min<std::size_t>(64, n - base);
      for (std::size_t j = 0; j < valid; ++j) {
        step((reg & 1u) != 0);
        reg >>= 1;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) step(bits[i]);
  }
  if (s != 0) flush_cycle();  // the final partial cycle counts as one
  return info;
}

}  // namespace

TestResult random_excursions(const BitStream& bits) {
  const WalkInfo info = analyze_walk(bits);
  TestResult result{"RandomExcursions", {}};
  if (info.cycles < 500) {
    result.applicable = false;
    return result;
  }
  const double j = static_cast<double>(info.cycles);
  for (int x : {-4, -3, -2, -1, 1, 2, 3, 4}) {
    const double ax = std::abs(static_cast<double>(x));
    std::array<double, 6> pi{};
    pi[0] = 1.0 - 1.0 / (2.0 * ax);
    for (std::size_t k = 1; k <= 4; ++k) {
      pi[k] = (1.0 / (4.0 * ax * ax)) *
              std::pow(1.0 - 1.0 / (2.0 * ax), static_cast<double>(k) - 1.0);
    }
    pi[5] = (1.0 / (2.0 * ax)) * std::pow(1.0 - 1.0 / (2.0 * ax), 4.0);
    double chi2 = 0.0;
    const auto& nu = info.klass[static_cast<std::size_t>(x + 4)];
    for (std::size_t k = 0; k <= 5; ++k) {
      const double expected = j * pi[k];
      const double d = static_cast<double>(nu[k]) - expected;
      chi2 += d * d / expected;
    }
    result.p_values.push_back(igamc(2.5, chi2 / 2.0));
  }
  return result;
}

TestResult random_excursions_variant(const BitStream& bits) {
  const WalkInfo info = analyze_walk(bits);
  TestResult result{"RandomExcursionsVariant", {}};
  if (info.cycles < 500) {
    result.applicable = false;
    return result;
  }
  const double j = static_cast<double>(info.cycles);
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    const double xi =
        static_cast<double>(info.total_visits[static_cast<std::size_t>(x + 9)]);
    const double ax = std::abs(static_cast<double>(x));
    const double p =
        erfc(std::abs(xi - j) / std::sqrt(2.0 * j * (4.0 * ax - 2.0)));
    result.p_values.push_back(p);
  }
  return result;
}

}  // namespace dhtrng::stats::sp800_22
