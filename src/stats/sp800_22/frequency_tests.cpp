// SP 800-22 sections 2.1-2.4 and 2.13: Frequency, Block Frequency, Runs,
// Longest Run of Ones, and Cumulative Sums.
//
// Each test computes an integer sufficient statistic (peak excursion,
// transition count, per-block longest run) that the Scalar engine derives
// bit by bit and the Wordwise engine derives from whole 64-bit words; the
// statistic is identical by construction, and the p-value formula runs on
// the shared integer, so the engines agree bitwise.
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/special_functions.h"
#include "support/wordops.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;
using support::igamc;
using support::normal_cdf;

TestResult frequency(const BitStream& bits) {
  const double n = static_cast<double>(bits.size());
  const double ones = static_cast<double>(bits.count_ones());
  const double s = std::abs(2.0 * ones - n) / std::sqrt(n);
  return {"Frequency", {erfc(s / std::sqrt(2.0))}};
}

TestResult block_frequency(const BitStream& bits, std::size_t block_len) {
  const std::size_t n = bits.size();
  const std::size_t blocks = n / block_len;
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double pi = static_cast<double>(
                          bits.count_ones(b * block_len, block_len)) /
                      static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  return {"BlockFrequency",
          {igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0)}};
}

namespace {

/// max_k |S_k| of the ±1 walk, walking forward or backward — bit at a time.
long long cusum_peak_scalar(const BitStream& bits, bool forward) {
  const std::size_t n = bits.size();
  long long s = 0;
  long long z = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = forward ? bits[i] : bits[n - 1 - i];
    s += bit ? 1 : -1;
    z = std::max(z, std::llabs(s));
  }
  return z;
}

/// Same peak via the per-byte walk tables: within a byte the walk's extreme
/// partial sums are s + max_prefix and s + min_prefix, so the peak |S_k|
/// over the byte is the larger magnitude of the two.
long long cusum_peak_wordwise(const BitStream& bits, bool forward) {
  namespace wo = support::wordops;
  const std::size_t n = bits.size();
  const auto words = bits.words();
  const std::size_t whole_bytes = n / 8;
  long long s = 0;
  long long z = 0;
  const auto step_byte = [&](const wo::ByteWalk& bw) {
    z = std::max(z, std::max(std::llabs(s + bw.max_prefix),
                             std::llabs(s + bw.min_prefix)));
    s += bw.delta;
  };
  const auto byte_at = [&](std::size_t b) {
    return static_cast<std::uint8_t>(words[b >> 3] >> ((b & 7) * 8));
  };
  const auto step_bit = [&](bool bit) {
    s += bit ? 1 : -1;
    z = std::max(z, std::llabs(s));
  };
  if (forward) {
    for (std::size_t b = 0; b < whole_bytes; ++b) {
      step_byte(wo::kWalkForward[byte_at(b)]);
    }
    for (std::size_t i = whole_bytes * 8; i < n; ++i) step_bit(bits[i]);
  } else {
    for (std::size_t i = n; i > whole_bytes * 8; --i) step_bit(bits[i - 1]);
    for (std::size_t b = whole_bytes; b > 0; --b) {
      step_byte(wo::kWalkBackward[byte_at(b - 1)]);
    }
  }
  return z;
}

double cusum_p_value(const BitStream& bits, bool forward) {
  const std::size_t n = bits.size();
  const long long z = active_engine() == Engine::Wordwise
                          ? cusum_peak_wordwise(bits, forward)
                          : cusum_peak_scalar(bits, forward);
  if (z == 0) return 0.0;
  const double zn = static_cast<double>(z);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double nd = static_cast<double>(n);
  // Summation bounds truncate toward zero, matching the NIST STS reference
  // implementation (and its worked example 2.13.8).
  double sum1 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn + 1.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum1 += normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd - 1.0) * zn / sqrt_n);
    }
  }
  double sum2 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn - 3.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum2 += normal_cdf((4.0 * kd + 3.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n);
    }
  }
  return 1.0 - sum1 + sum2;
}

std::size_t runs_count_scalar(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::size_t v = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (bits[i] != bits[i - 1]) ++v;
  }
  return v;
}

/// Transition count via popcount(x ^ (x >> 1)) per 64-bit chunk; bit j of
/// chunk64(i) ^ chunk64(i + 1) flags a transition between positions i + j
/// and i + j + 1.
std::size_t runs_count_wordwise(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::size_t v = 1;
  for (std::size_t i = 0; i + 1 < n; i += 64) {
    const std::uint64_t t = bits.chunk64(i) ^ bits.chunk64(i + 1);
    const std::size_t valid = std::min<std::size_t>(64, n - 1 - i);
    const std::uint64_t mask = valid >= 64 ? ~0ULL : (1ULL << valid) - 1;
    v += static_cast<std::size_t>(std::popcount(t & mask));
  }
  return v;
}

std::size_t block_longest_run_scalar(const BitStream& bits, std::size_t base,
                                     std::size_t m) {
  std::size_t longest = 0, run = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (bits[base + i]) {
      ++run;
      longest = std::max(longest, run);
    } else {
      run = 0;
    }
  }
  return longest;
}

/// Longest run of ones in a 64-bit word (x &= x << 1 peels one bit off every
/// run per iteration).
std::size_t word_longest_run(std::uint64_t x) {
  std::size_t k = 0;
  while (x != 0) {
    x &= x << 1;
    ++k;
  }
  return k;
}

std::size_t block_longest_run_wordwise(const BitStream& bits, std::size_t base,
                                       std::size_t m) {
  std::size_t longest = 0;
  std::size_t run = 0;  // ones-run carried across chunk boundaries
  for (std::size_t off = 0; off < m; off += 64) {
    const std::size_t valid = std::min<std::size_t>(64, m - off);
    const std::uint64_t x = bits.chunk64(base + off) &
                            (valid >= 64 ? ~0ULL : (1ULL << valid) - 1);
    const std::size_t lead = static_cast<std::size_t>(std::countr_one(x));
    if (lead >= valid) {  // chunk is all ones: the carried run continues
      run += valid;
      continue;
    }
    longest = std::max(longest, run + lead);
    longest = std::max(longest, word_longest_run(x));
    // Ones at the top of the valid window seed the next chunk's carry.
    run = static_cast<std::size_t>(std::countl_one(x << (64 - valid)));
  }
  return std::max(longest, run);
}

}  // namespace

TestResult cumulative_sums(const BitStream& bits) {
  return {"CumulativeSums",
          {cusum_p_value(bits, true), cusum_p_value(bits, false)}};
}

TestResult runs(const BitStream& bits) {
  const std::size_t n = bits.size();
  const double nd = static_cast<double>(n);
  const double pi = static_cast<double>(bits.count_ones()) / nd;
  // Prerequisite frequency check (SP 800-22 2.3.4 step 2).
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(nd)) {
    return {"Runs", {0.0}};
  }
  const std::size_t v = active_engine() == Engine::Wordwise
                            ? runs_count_wordwise(bits)
                            : runs_count_scalar(bits);
  const double vd = static_cast<double>(v);
  const double p = erfc(std::abs(vd - 2.0 * nd * pi * (1.0 - pi)) /
                        (2.0 * std::sqrt(2.0 * nd) * pi * (1.0 - pi)));
  return {"Runs", {p}};
}

TestResult longest_run(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::size_t m;         // block length
  std::size_t k;         // number of chi-square classes - 1
  std::vector<double> pi;
  std::size_t v_min;     // class lower bound (longest run <= v_min)
  if (n >= 750000) {
    m = 10000, k = 6, v_min = 10;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  } else if (n >= 6272) {
    m = 128, k = 5, v_min = 4;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    m = 8, k = 3, v_min = 1;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
  }
  const std::size_t blocks = n / m;
  const bool wordwise = active_engine() == Engine::Wordwise;
  std::vector<std::size_t> nu(k + 1, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t longest =
        wordwise ? block_longest_run_wordwise(bits, b * m, m)
                 : block_longest_run_scalar(bits, b * m, m);
    std::size_t cls = longest <= v_min ? 0
                      : longest >= v_min + k ? k
                                             : longest - v_min;
    ++nu[cls];
  }
  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t c = 0; c <= k; ++c) {
    const double expected = nb * pi[c];
    const double d = static_cast<double>(nu[c]) - expected;
    chi2 += d * d / expected;
  }
  return {"LongestRun", {igamc(static_cast<double>(k) / 2.0, chi2 / 2.0)}};
}

}  // namespace dhtrng::stats::sp800_22
