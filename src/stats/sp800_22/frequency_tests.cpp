// SP 800-22 sections 2.1-2.4 and 2.13: Frequency, Block Frequency, Runs,
// Longest Run of Ones, and Cumulative Sums.
#include <algorithm>
#include <array>
#include <cmath>

#include "stats/sp800_22.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;
using support::igamc;
using support::normal_cdf;

TestResult frequency(const BitStream& bits) {
  const double n = static_cast<double>(bits.size());
  const double ones = static_cast<double>(bits.count_ones());
  const double s = std::abs(2.0 * ones - n) / std::sqrt(n);
  return {"Frequency", {erfc(s / std::sqrt(2.0))}};
}

TestResult block_frequency(const BitStream& bits, std::size_t block_len) {
  const std::size_t n = bits.size();
  const std::size_t blocks = n / block_len;
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double pi = static_cast<double>(
                          bits.count_ones(b * block_len, block_len)) /
                      static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  return {"BlockFrequency",
          {igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0)}};
}

namespace {

double cusum_p_value(const BitStream& bits, bool forward) {
  const std::size_t n = bits.size();
  long long s = 0;
  long long z = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = forward ? bits[i] : bits[n - 1 - i];
    s += bit ? 1 : -1;
    z = std::max(z, std::llabs(s));
  }
  if (z == 0) return 0.0;
  const double zn = static_cast<double>(z);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double nd = static_cast<double>(n);
  // Summation bounds truncate toward zero, matching the NIST STS reference
  // implementation (and its worked example 2.13.8).
  double sum1 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn + 1.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum1 += normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd - 1.0) * zn / sqrt_n);
    }
  }
  double sum2 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn - 3.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum2 += normal_cdf((4.0 * kd + 3.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n);
    }
  }
  return 1.0 - sum1 + sum2;
}

}  // namespace

TestResult cumulative_sums(const BitStream& bits) {
  return {"CumulativeSums",
          {cusum_p_value(bits, true), cusum_p_value(bits, false)}};
}

TestResult runs(const BitStream& bits) {
  const std::size_t n = bits.size();
  const double nd = static_cast<double>(n);
  const double pi = static_cast<double>(bits.count_ones()) / nd;
  // Prerequisite frequency check (SP 800-22 2.3.4 step 2).
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(nd)) {
    return {"Runs", {0.0}};
  }
  std::size_t v = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (bits[i] != bits[i - 1]) ++v;
  }
  const double vd = static_cast<double>(v);
  const double p = erfc(std::abs(vd - 2.0 * nd * pi * (1.0 - pi)) /
                        (2.0 * std::sqrt(2.0 * nd) * pi * (1.0 - pi)));
  return {"Runs", {p}};
}

TestResult longest_run(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::size_t m;         // block length
  std::size_t k;         // number of chi-square classes - 1
  std::vector<double> pi;
  std::size_t v_min;     // class lower bound (longest run <= v_min)
  if (n >= 750000) {
    m = 10000, k = 6, v_min = 10;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  } else if (n >= 6272) {
    m = 128, k = 5, v_min = 4;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    m = 8, k = 3, v_min = 1;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
  }
  const std::size_t blocks = n / m;
  std::vector<std::size_t> nu(k + 1, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0, run = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (bits[b * m + i]) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    std::size_t cls = longest <= v_min ? 0
                      : longest >= v_min + k ? k
                                             : longest - v_min;
    ++nu[cls];
  }
  double chi2 = 0.0;
  const double nb = static_cast<double>(blocks);
  for (std::size_t c = 0; c <= k; ++c) {
    const double expected = nb * pi[c];
    const double d = static_cast<double>(nu[c]) - expected;
    chi2 += d * d / expected;
  }
  return {"LongestRun", {igamc(static_cast<double>(k) / 2.0, chi2 / 2.0)}};
}

}  // namespace dhtrng::stats::sp800_22
