// SP 800-22 sections 2.5 and 2.6: Binary Matrix Rank and Discrete Fourier
// Transform (spectral) tests.
//
// Wordwise rank fills each 32-bit matrix row with one chunk64 read; the
// rank itself was already word-parallel.  Wordwise DFT swaps the Bluestein
// transform for the cached-plan mixed-radix real FFT when the length
// supports it; because the decision statistic is the integer count of
// magnitudes below the threshold, the engines agree exactly as long as no
// magnitude falls inside a guard band around the threshold — and when one
// does (or the length is unsupported), the wordwise path re-runs the exact
// transform, so the p-value is identical by construction.
#include <algorithm>
#include <cmath>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/fft.h"
#include "support/gf2.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;

namespace {

// Measured |fast - exact| magnitude error: ~1.5e-8 at n = 2*10^5 and
// ~1.1e-7 at n = 10^6, growing roughly linearly with n.  The guard keeps
// a ~100x margin over that at every size; any wider and a noticeable
// fraction of random streams lands inside the band (the Rayleigh density
// near the threshold is ~1e-4 per unit at n = 10^6), paying for both
// transforms for no exactness benefit.
double dft_guard(std::size_t n) {
  return std::max(1e-6, 1e-11 * static_cast<double>(n));
}

std::size_t dft_below_threshold_scalar(const std::vector<double>& x,
                                       double threshold) {
  const std::vector<double> mags = support::real_dft_magnitudes(x);
  std::size_t n1 = 0;
  for (double m : mags) {
    if (m < threshold) ++n1;
  }
  return n1;
}

std::size_t dft_below_threshold_wordwise(const std::vector<double>& x,
                                         double threshold) {
  if (!support::fast_real_dft_available(x.size())) {
    return dft_below_threshold_scalar(x, threshold);
  }
  const std::vector<double> mags = support::real_dft_magnitudes_fast(x);
  const double guard = dft_guard(x.size());
  std::size_t n1 = 0;
  for (double m : mags) {
    if (std::abs(m - threshold) < guard) {
      // A magnitude this close to the threshold could classify differently
      // under exact arithmetic: defer to the exact transform.
      return dft_below_threshold_scalar(x, threshold);
    }
    if (m < threshold) ++n1;
  }
  return n1;
}

}  // namespace

TestResult rank(const BitStream& bits) {
  constexpr std::size_t kM = 32;
  constexpr std::size_t kQ = 32;
  const std::size_t matrices = bits.size() / (kM * kQ);
  if (matrices == 0) return {"Rank", {0.0}, false};

  const bool wordwise = active_engine() == Engine::Wordwise;
  std::size_t full = 0, minus1 = 0;
  for (std::size_t m = 0; m < matrices; ++m) {
    support::Gf2Matrix mat(kM, kQ);
    const std::size_t base = m * kM * kQ;
    if (wordwise) {
      // Row r is 32 consecutive stream bits; chunk64 is LSB-first, matching
      // the column-c-is-bit-c row layout of Gf2Matrix.
      for (std::size_t r = 0; r < kM; ++r) {
        mat.set_row_bits(r, bits.chunk64(base + r * kQ) & 0xFFFFFFFFULL);
      }
    } else {
      for (std::size_t r = 0; r < kM; ++r) {
        for (std::size_t c = 0; c < kQ; ++c) {
          mat.set(r, c, bits[base + r * kQ + c]);
        }
      }
    }
    const std::size_t rk = mat.rank();
    if (rk == kM) ++full;
    else if (rk == kM - 1) ++minus1;
  }
  const std::size_t rest = matrices - full - minus1;
  const double p_full = support::gf2_full_rank_deficit_probability(kM, 0);
  const double p_m1 = support::gf2_full_rank_deficit_probability(kM, 1);
  const double p_rest = 1.0 - p_full - p_m1;
  const double nd = static_cast<double>(matrices);
  double chi2 = 0.0;
  chi2 += (static_cast<double>(full) - p_full * nd) *
          (static_cast<double>(full) - p_full * nd) / (p_full * nd);
  chi2 += (static_cast<double>(minus1) - p_m1 * nd) *
          (static_cast<double>(minus1) - p_m1 * nd) / (p_m1 * nd);
  chi2 += (static_cast<double>(rest) - p_rest * nd) *
          (static_cast<double>(rest) - p_rest * nd) / (p_rest * nd);
  return {"Rank", {std::exp(-chi2 / 2.0)}};
}

TestResult dft(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits[i] ? 1.0 : -1.0;
  const double nd = static_cast<double>(n);
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * nd);
  const std::size_t below = active_engine() == Engine::Wordwise
                                ? dft_below_threshold_wordwise(x, threshold)
                                : dft_below_threshold_scalar(x, threshold);
  const double n0 = 0.95 * nd / 2.0;
  const double n1 = static_cast<double>(below);
  const double d = (n1 - n0) / std::sqrt(nd * 0.95 * 0.05 / 4.0);
  return {"FFT", {erfc(std::abs(d) / std::sqrt(2.0))}};
}

}  // namespace dhtrng::stats::sp800_22
