// SP 800-22 sections 2.5 and 2.6: Binary Matrix Rank and Discrete Fourier
// Transform (spectral) tests.
#include <cmath>

#include "stats/sp800_22.h"
#include "support/fft.h"
#include "support/gf2.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;

TestResult rank(const BitStream& bits) {
  constexpr std::size_t kM = 32;
  constexpr std::size_t kQ = 32;
  const std::size_t matrices = bits.size() / (kM * kQ);
  if (matrices == 0) return {"Rank", {0.0}, false};

  std::size_t full = 0, minus1 = 0;
  for (std::size_t m = 0; m < matrices; ++m) {
    support::Gf2Matrix mat(kM, kQ);
    const std::size_t base = m * kM * kQ;
    for (std::size_t r = 0; r < kM; ++r) {
      for (std::size_t c = 0; c < kQ; ++c) {
        mat.set(r, c, bits[base + r * kQ + c]);
      }
    }
    const std::size_t rk = mat.rank();
    if (rk == kM) ++full;
    else if (rk == kM - 1) ++minus1;
  }
  const std::size_t rest = matrices - full - minus1;
  const double p_full = support::gf2_full_rank_deficit_probability(kM, 0);
  const double p_m1 = support::gf2_full_rank_deficit_probability(kM, 1);
  const double p_rest = 1.0 - p_full - p_m1;
  const double nd = static_cast<double>(matrices);
  double chi2 = 0.0;
  chi2 += (static_cast<double>(full) - p_full * nd) *
          (static_cast<double>(full) - p_full * nd) / (p_full * nd);
  chi2 += (static_cast<double>(minus1) - p_m1 * nd) *
          (static_cast<double>(minus1) - p_m1 * nd) / (p_m1 * nd);
  chi2 += (static_cast<double>(rest) - p_rest * nd) *
          (static_cast<double>(rest) - p_rest * nd) / (p_rest * nd);
  return {"Rank", {std::exp(-chi2 / 2.0)}};
}

TestResult dft(const BitStream& bits) {
  const std::size_t n = bits.size();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits[i] ? 1.0 : -1.0;
  const std::vector<double> mags = support::real_dft_magnitudes(x);
  const double nd = static_cast<double>(n);
  const double threshold = std::sqrt(std::log(1.0 / 0.05) * nd);
  const double n0 = 0.95 * nd / 2.0;
  double n1 = 0.0;
  for (double m : mags) {
    if (m < threshold) n1 += 1.0;
  }
  const double d = (n1 - n0) / std::sqrt(nd * 0.95 * 0.05 / 4.0);
  return {"FFT", {erfc(std::abs(d) / std::sqrt(2.0))}};
}

}  // namespace dhtrng::stats::sp800_22
