// SP 800-22 sections 2.7-2.9: Non-overlapping Template Matching,
// Overlapping Template Matching, and Maurer's Universal Statistical test.
//
// The wordwise kernels read windows straight out of the packed words
// (chunk64 / rolling-register extraction) and key lookup tables by the
// LSB-first window value instead of the scalar engine's MSB-first value.
// That remap is a pure permutation of table slots: occurrence lists,
// match counts and last-seen distances are identical, so every statistic
// — and every floating-point operation sequence downstream — is unchanged.
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "stats/sp800_22.h"
#include "stats/stats_config.h"
#include "support/special_functions.h"

namespace dhtrng::stats::sp800_22 {

using support::erfc;
using support::igamc;

namespace {

/// Bucket every window position by its m-bit value.  `msb_first` selects the
/// scalar engine's value convention; wordwise uses LSB-first keys (and keys
/// its template values the same way, so buckets pair up identically).
std::vector<std::vector<std::uint32_t>> window_positions_scalar(
    const BitStream& bits, std::size_t m) {
  const std::size_t n = bits.size();
  std::vector<std::vector<std::uint32_t>> positions(std::size_t{1} << m);
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << m) - 1u;
  for (std::size_t i = 0; i < n; ++i) {
    window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
    if (i + 1 >= m) {
      positions[window].push_back(static_cast<std::uint32_t>(i + 1 - m));
    }
  }
  return positions;
}

std::vector<std::vector<std::uint32_t>> window_positions_wordwise(
    const BitStream& bits, std::size_t m) {
  const std::size_t n = bits.size();
  std::vector<std::vector<std::uint32_t>> positions(std::size_t{1} << m);
  if (n < m) return positions;
  const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
  // 64 window values per pair of words, branchlessly: the window at
  // base + j is ((w0 >> j) | (w1 << (64 - j))) & mask.
  const std::size_t last = n - m;  // last window position
  for (std::size_t base = 0; base <= last; base += 64) {
    const std::uint64_t w0 = bits.chunk64(base);
    const std::uint64_t w1 = bits.chunk64(base + 64);
    positions[w0 & mask].push_back(static_cast<std::uint32_t>(base));
    const std::size_t count = std::min<std::size_t>(64, last - base + 1);
    for (std::size_t j = 1; j < count; ++j) {
      const std::uint64_t v = ((w0 >> j) | (w1 << (64 - j))) & mask;
      positions[v].push_back(static_cast<std::uint32_t>(base + j));
    }
  }
  return positions;
}

std::size_t overlapping_block_matches_scalar(const BitStream& bits,
                                             std::size_t base,
                                             std::size_t block_len,
                                             std::size_t template_len) {
  std::size_t matches = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < block_len; ++i) {
    if (bits[base + i]) {
      ++run;
      if (run >= template_len) ++matches;  // overlapping all-ones matches
    } else {
      run = 0;
    }
  }
  return matches;
}

/// Matches at 64 positions at once: bit i of AND_t chunk64(q + t) is set iff
/// the template_len window starting at q + i is all ones.  Windows may read
/// past the block end inside chunk64, but only positions within the block's
/// window range are counted, and those windows lie entirely in the block.
std::size_t overlapping_block_matches_wordwise(const BitStream& bits,
                                               std::size_t base,
                                               std::size_t block_len,
                                               std::size_t template_len) {
  const std::size_t window_count = block_len - template_len + 1;
  std::size_t matches = 0;
  for (std::size_t g = 0; g < window_count; g += 64) {
    std::uint64_t m64 = ~0ULL;
    for (std::size_t t = 0; t < template_len; ++t) {
      m64 &= bits.chunk64(base + g + t);
    }
    const std::size_t valid = std::min<std::size_t>(64, window_count - g);
    if (valid < 64) m64 &= (1ULL << valid) - 1;
    matches += static_cast<std::size_t>(std::popcount(m64));
  }
  return matches;
}

}  // namespace

TestResult non_overlapping_template(const BitStream& bits,
                                    std::size_t template_len) {
  const std::size_t n = bits.size();
  constexpr std::size_t kBlocks = 8;
  const std::size_t block_len = n / kBlocks;
  const std::size_t m = template_len;
  if (block_len < m) return {"NonOverlappingTemplate", {}, false};

  // Bucket every window position by its m-bit value; each template's
  // occurrence list is then one bucket, and greedy non-overlapping counting
  // walks it once.  Total work is O(n + sum of bucket sizes) = O(n).
  const bool wordwise = active_engine() == Engine::Wordwise;
  const std::vector<std::vector<std::uint32_t>> positions =
      wordwise ? window_positions_wordwise(bits, m)
               : window_positions_scalar(bits, m);

  const double md = static_cast<double>(block_len);
  const double mu = (md - static_cast<double>(m) + 1.0) /
                    std::pow(2.0, static_cast<double>(m));
  const double sigma2 =
      md * (1.0 / std::pow(2.0, static_cast<double>(m)) -
            (2.0 * static_cast<double>(m) - 1.0) /
                std::pow(2.0, 2.0 * static_cast<double>(m)));

  TestResult result{"NonOverlappingTemplate", {}};
  for (const auto& tpl : aperiodic_templates_cached(m)) {
    std::uint32_t value = 0;
    if (wordwise) {  // LSB-first, matching the wordwise bucket keys
      for (std::size_t t = 0; t < tpl.size(); ++t) {
        value |= (tpl[t] ? 1u : 0u) << t;
      }
    } else {
      for (bool b : tpl) value = (value << 1) | (b ? 1u : 0u);
    }
    std::array<std::size_t, kBlocks> w{};
    std::size_t last_end = 0;  // next allowed start within the current block
    std::size_t last_block = kBlocks;  // sentinel
    for (std::uint32_t pos : positions[value]) {
      const std::size_t block = pos / block_len;
      if (block >= kBlocks) break;
      // The STS scans i in [0, M-m] inside each block; windows spanning a
      // boundary do not count.
      if (pos % block_len > block_len - m) continue;
      if (block != last_block) {
        last_block = block;
        last_end = pos;
      }
      if (pos >= last_end) {
        ++w[block];
        last_end = pos + m;
      }
    }
    double chi2 = 0.0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
      const double d = static_cast<double>(w[b]) - mu;
      chi2 += d * d / sigma2;
    }
    result.p_values.push_back(
        igamc(static_cast<double>(kBlocks) / 2.0, chi2 / 2.0));
  }
  return result;
}

TestResult overlapping_template(const BitStream& bits,
                                std::size_t template_len) {
  const std::size_t n = bits.size();
  constexpr std::size_t kBlockLen = 1032;
  constexpr std::size_t kK = 5;
  // Class probabilities for m = 9, M = 1032 (lambda ~ 2), from the STS.
  static constexpr std::array<double, kK + 1> kPi = {
      0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865};
  const std::size_t blocks = n / kBlockLen;
  if (blocks == 0 || template_len > kBlockLen) {
    return {"OverlappingTemplate", {}, false};
  }
  const bool wordwise = active_engine() == Engine::Wordwise;
  std::array<std::size_t, kK + 1> nu{};
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t matches =
        wordwise ? overlapping_block_matches_wordwise(bits, b * kBlockLen,
                                                      kBlockLen, template_len)
                 : overlapping_block_matches_scalar(bits, b * kBlockLen,
                                                    kBlockLen, template_len);
    ++nu[std::min(matches, kK)];
  }
  double chi2 = 0.0;
  for (std::size_t c = 0; c <= kK; ++c) {
    const double expected = static_cast<double>(blocks) * kPi[c];
    const double d = static_cast<double>(nu[c]) - expected;
    chi2 += d * d / expected;
  }
  return {"OverlappingTemplate",
          {igamc(static_cast<double>(kK) / 2.0, chi2 / 2.0)}};
}

TestResult universal(const BitStream& bits) {
  const std::size_t n = bits.size();
  // Block length selection thresholds and the expected value / variance
  // table from SP 800-22 section 2.9.
  struct Row { std::size_t min_n; std::size_t l; double expected; double var; };
  static constexpr std::array<Row, 11> kTable = {{
      {387840, 6, 5.2177052, 2.954},
      {904960, 7, 6.1962507, 3.125},
      {2068480, 8, 7.1836656, 3.238},
      {4654080, 9, 8.1764248, 3.311},
      {10342400, 10, 9.1723243, 3.356},
      {22753280, 11, 10.170032, 3.384},
      {49643520, 12, 11.168765, 3.401},
      {107560960, 13, 12.168070, 3.410},
      {231669760, 14, 13.167693, 3.416},
      {496435200, 15, 14.167488, 3.419},
      {1059061760, 16, 15.167379, 3.421},
  }};
  std::size_t l = 0;
  double expected = 0.0, var = 0.0;
  for (const Row& row : kTable) {
    if (n >= row.min_n) {
      l = row.l;
      expected = row.expected;
      var = row.var;
    }
  }
  if (l == 0) return {"Universal", {}, false};

  const bool wordwise = active_engine() == Engine::Wordwise;
  // The pattern value is only a table key: the wordwise LSB-first read
  // permutes `last[]` slots but leaves every b - last[pattern] distance —
  // and hence the log2 sum's exact operation sequence — unchanged.
  const std::uint64_t lsb_mask = (std::uint64_t{1} << l) - 1;
  const auto pattern_at = [&](std::size_t b) -> std::size_t {
    if (wordwise) {
      return static_cast<std::size_t>(bits.chunk64(b * l) & lsb_mask);
    }
    std::size_t pattern = 0;
    for (std::size_t j = 0; j < l; ++j) {
      pattern = (pattern << 1) | (bits[b * l + j] ? 1u : 0u);
    }
    return pattern;
  };

  const std::size_t q = 10 * (std::size_t{1} << l);
  const std::size_t k = n / l - q;
  std::vector<std::size_t> last(std::size_t{1} << l, 0);
  // Initialization segment.
  for (std::size_t b = 0; b < q; ++b) {
    last[pattern_at(b)] = b + 1;
  }
  // Test segment.
  double sum = 0.0;
  for (std::size_t b = q; b < q + k; ++b) {
    const std::size_t pattern = pattern_at(b);
    sum += std::log2(static_cast<double>(b + 1 - last[pattern]));
    last[pattern] = b + 1;
  }
  const double fn = sum / static_cast<double>(k);
  const double c = 0.7 - 0.8 / static_cast<double>(l) +
                   (4.0 + 32.0 / static_cast<double>(l)) *
                       std::pow(static_cast<double>(k),
                                -3.0 / static_cast<double>(l)) /
                       15.0;
  const double sigma = c * std::sqrt(var / static_cast<double>(k));
  return {"Universal",
          {erfc(std::abs(fn - expected) / (std::sqrt(2.0) * sigma))}};
}

}  // namespace dhtrng::stats::sp800_22
