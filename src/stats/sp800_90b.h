// NIST SP 800-90B min-entropy estimators for binary sequences — the suite
// behind the paper's Tables 1, 2 and 4 and the Figure 9 PVT surface.
//
// All ten non-IID estimators of section 6.3 are implemented for the binary
// alphabet.  Each returns the estimated most-likely-symbol probability
// (upper confidence bound, "p-max" in the paper's Table 4) and the
// corresponding min-entropy per bit ("h-min").  The suite's overall
// assessment is the minimum h-min over all estimators; the IID-track
// assessment is the MCV estimator alone (SP 800-90B section 6.2) — the
// paper quotes that one for Tables 1/2 and the IID sentence of 4.1.2.
//
// Deviations from the specification (documented; they do not change the
// ranking of generators):
//  * the Collision estimator uses the closed-form binary mean collision
//    time E[T] = 2 + 2p(1-p) instead of the general F() formulation (they
//    agree for the binary alphabet up to higher-order terms);
//  * the t-Tuple / LRS estimators count tuples with flat tables / hashed
//    windows rather than a suffix tree (identical results, different cost).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::stats::sp800_90b {

using support::BitStream;

struct EstimatorResult {
  std::string name;
  double p_max = 1.0;   ///< upper-bounded most-likely-outcome probability
  double h_min = 0.0;   ///< min-entropy per bit, -log2(p_max) (capped at 1)
};

EstimatorResult mcv(const BitStream& bits);                   // 6.3.1
EstimatorResult collision(const BitStream& bits);             // 6.3.2
EstimatorResult markov(const BitStream& bits);                // 6.3.3
EstimatorResult compression(const BitStream& bits);           // 6.3.4
EstimatorResult t_tuple(const BitStream& bits);               // 6.3.5
EstimatorResult lrs(const BitStream& bits);                   // 6.3.6
EstimatorResult multi_mcw(const BitStream& bits);             // 6.3.7
EstimatorResult lag(const BitStream& bits);                   // 6.3.8
EstimatorResult multi_mmc(const BitStream& bits);             // 6.3.9
EstimatorResult lz78y(const BitStream& bits);                 // 6.3.10

/// All ten estimators in the paper's Table 4 row order.
std::vector<EstimatorResult> run_all(const BitStream& bits);

/// Overall non-IID assessment: min h-min over all estimators.
double overall_min_entropy(const BitStream& bits);

/// IID-track assessment (MCV only) — what the paper reports as "the
/// min-entropy of the IID test" and in Tables 1/2.
double iid_min_entropy(const BitStream& bits);

/// Shared helper (6.3.7-6.3.10): entropy bound from a prediction log.
/// `correct` global hits out of `total` predictions with longest correct
/// run `longest_run`; returns the bounded p_max.
double predictor_p_max(std::size_t correct, std::size_t total,
                       std::size_t longest_run);

// ---------------------------------------------------------------------------
// IID track: permutation testing (SP 800-90B section 5.1).
//
// Eleven test statistics are computed on the original sequence and on
// `permutations` random shuffles; the IID assumption is rejected when the
// original ranks in the extreme tails of any statistic's shuffle
// distribution.  Statistics follow the spec's binary treatment (some on the
// raw bits, some on the 8-bit "conversion I" block-weight sequence); the
// spec's bzip2 compression statistic is replaced by an LZ78 dictionary-size
// statistic (documented substitution — same sensitivity class).
// ---------------------------------------------------------------------------

struct PermutationStatistic {
  std::string name;
  double original = 0.0;       ///< statistic on the original sequence
  std::size_t rank_below = 0;  ///< shuffles with statistic < original
  std::size_t rank_equal = 0;  ///< shuffles with statistic == original
  bool pass = false;
};

struct IidTestResult {
  bool iid_assumption_holds = false;
  std::size_t permutations = 0;
  std::vector<PermutationStatistic> statistics;
};

/// Run the permutation battery.  The spec uses 10,000 permutations on 1M
/// samples; the default here is sized for interactive use — scale up via
/// the parameters for a certification-grade run.
///
/// Each shuffle draws from its own SplitMix64-derived Fisher-Yates stream,
/// so the permutation set is a pure function of (bits, permutations, seed);
/// `n_threads` (1 = serial, 0 = hardware concurrency) only distributes the
/// shuffles over workers and cannot change any rank count.
IidTestResult permutation_iid_test(const BitStream& bits,
                                   std::size_t permutations = 200,
                                   std::uint64_t seed = 1,
                                   std::size_t n_threads = 1);

}  // namespace dhtrng::stats::sp800_90b
