// SP 800-90B sections 6.3.1-6.3.3: Most Common Value, Collision and Markov
// estimators (binary alphabet), plus the suite runners.
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "stats/sp800_90b.h"
#include "stats/stats_config.h"

namespace dhtrng::stats::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;  // 99% two-sided normal quantile

EstimatorResult make_result(std::string name, double p_max) {
  EstimatorResult r;
  r.name = std::move(name);
  r.p_max = std::clamp(p_max, 1e-12, 1.0);
  r.h_min = std::min(-std::log2(r.p_max), 1.0);
  return r;
}

}  // namespace

EstimatorResult mcv(const BitStream& bits) {
  // Below two samples the confidence-interval width divides by n - 1 = 0
  // and the result went NaN; report the no-information bound instead
  // (p_max = 1, zero extractable entropy), like markov() already does.
  if (bits.size() < 2) return make_result("MCV", 1.0);
  const double n = static_cast<double>(bits.size());
  const double ones = static_cast<double>(bits.count_ones());
  const double p_hat = std::max(ones, n - ones) / n;
  const double p_u =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / (n - 1.0)));
  return make_result("MCV", p_u);
}

EstimatorResult collision(const BitStream& bits) {
  // Scan for repeated values: in a binary stream a collision occurs after 2
  // samples (equal pair) or 3 samples (otherwise), so the mean collision
  // time is E[T] = 2 + 2p(1-p); inverting the lower confidence bound of the
  // sample mean gives the binary closed form of the 6.3.2 estimator.
  //
  // Both engines share this loop: the variance accumulation below walks the
  // collision-time sequence (a data-dependent mix of 2s and 3s) in order,
  // so any word-level restructuring that changed the sequence — or the
  // order of the floating-point sums over it — would change the result.
  const std::size_t n = bits.size();
  std::vector<double> times;
  std::size_t i = 0;
  while (i + 1 < n) {
    if (bits[i] == bits[i + 1]) {
      times.push_back(2.0);
      i += 2;
    } else if (i + 2 < n) {
      times.push_back(3.0);
      i += 3;
    } else {
      break;
    }
  }
  if (times.size() < 2) return make_result("Collision", 1.0);
  double mean = 0.0;
  for (double t : times) mean += t;
  mean /= static_cast<double>(times.size());
  double var = 0.0;
  for (double t : times) var += (t - mean) * (t - mean);
  var /= static_cast<double>(times.size()) - 1.0;
  const double x_lo =
      mean - kZ99 * std::sqrt(var / static_cast<double>(times.size()));
  // E[T] = 2 + 2 p (1-p)  =>  p(1-p) = (x_lo - 2) / 2.
  const double pq = std::clamp((x_lo - 2.0) / 2.0, 0.0, 0.25);
  const double p = 0.5 + std::sqrt(0.25 - pq);
  return make_result("Collision", p);
}

EstimatorResult markov(const BitStream& bits) {
  const std::size_t n = bits.size();
  if (n < 2) return make_result("Markov", 1.0);
  // First-order transition probabilities.  The wordwise engine classifies
  // 64 transitions per step with popcounts of chunk64 pairs; the counts are
  // the same integers the scalar loop produces, so every double below —
  // and the log-space DP it feeds — is bit-identical.
  std::array<std::array<double, 2>, 2> counts{};
  if (active_engine() == Engine::Wordwise) {
    const std::size_t pairs = n - 1;  // transitions (i, i+1), i < n - 1
    std::uint64_t t11 = 0, t10 = 0, t01 = 0;
    for (std::size_t i = 0; i < pairs; i += 64) {
      const std::uint64_t a = bits.chunk64(i);
      const std::uint64_t b = bits.chunk64(i + 1);
      const std::size_t valid = std::min<std::size_t>(64, pairs - i);
      const std::uint64_t vm =
          valid == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
      t11 += static_cast<unsigned>(std::popcount(a & b & vm));
      t10 += static_cast<unsigned>(std::popcount(a & ~b & vm));
      t01 += static_cast<unsigned>(std::popcount(~a & b & vm));
    }
    counts[1][1] = static_cast<double>(t11);
    counts[1][0] = static_cast<double>(t10);
    counts[0][1] = static_cast<double>(t01);
    counts[0][0] = static_cast<double>(pairs - t11 - t10 - t01);
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      counts[bits[i] ? 1u : 0u][bits[i + 1] ? 1u : 0u] += 1.0;
    }
  }
  const double ones = static_cast<double>(bits.count_ones());
  std::array<double, 2> p_init = {1.0 - ones / static_cast<double>(n),
                                  ones / static_cast<double>(n)};
  std::array<std::array<double, 2>, 2> t{};
  for (int a = 0; a < 2; ++a) {
    const double row = counts[static_cast<std::size_t>(a)][0] +
                       counts[static_cast<std::size_t>(a)][1];
    for (int b = 0; b < 2; ++b) {
      t[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          row > 0.0 ? counts[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(b)] /
                          row
                    : 0.5;
    }
  }
  // Most likely 128-step path (dynamic programming in log space).
  constexpr int kSteps = 128;
  std::array<double, 2> logp = {
      p_init[0] > 0 ? std::log2(p_init[0]) : -1e300,
      p_init[1] > 0 ? std::log2(p_init[1]) : -1e300};
  for (int step = 1; step < kSteps; ++step) {
    std::array<double, 2> next = {-1e300, -1e300};
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const double tr = t[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        if (tr <= 0.0) continue;
        next[static_cast<std::size_t>(b)] =
            std::max(next[static_cast<std::size_t>(b)],
                     logp[static_cast<std::size_t>(a)] + std::log2(tr));
      }
    }
    logp = next;
  }
  const double best = std::max(logp[0], logp[1]);
  const double p_max = std::pow(2.0, best / kSteps);
  return make_result("Markov", p_max);
}

std::vector<EstimatorResult> run_all(const BitStream& bits) {
  return {mcv(bits),      collision(bits), markov(bits), compression(bits),
          t_tuple(bits),  lrs(bits),       multi_mcw(bits), lag(bits),
          multi_mmc(bits), lz78y(bits)};
}

double overall_min_entropy(const BitStream& bits) {
  double h = 1.0;
  for (const EstimatorResult& r : run_all(bits)) h = std::min(h, r.h_min);
  return h;
}

double iid_min_entropy(const BitStream& bits) { return mcv(bits).h_min; }

double predictor_p_max(std::size_t correct, std::size_t total,
                       std::size_t longest_run) {
  if (total == 0) return 1.0;
  const double n = static_cast<double>(total);
  const double p_hat = static_cast<double>(correct) / n;
  const double p_global =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / n));
  // Local estimate: largest p such that a run of `longest_run + 1` correct
  // predictions is still plausible (probability of no such run >= 1%).
  const double r = static_cast<double>(longest_run) + 1.0;
  const auto no_run_log_prob = [&](double p) {
    // Feller's recurrence root: x solves 1 - x + q p^r x^(r+1) = 0.
    const double q = 1.0 - p;
    double x = 1.0;
    for (int it = 0; it < 30; ++it) x = 1.0 + q * std::pow(p, r) * std::pow(x, r + 1.0);
    // P(no run of length r in n trials) ~ (1 - p x)/((r + 1 - r x) q) x^-(n+1)
    const double numerator = 1.0 - p * x;
    const double denominator = (r + 1.0 - r * x) * q;
    if (numerator <= 0.0 || denominator <= 0.0) return -1e300;
    return std::log(numerator / denominator) - (n + 1.0) * std::log(x);
  };
  // Binary search the p with P(no run) = alpha = 0.99.
  const double log_alpha = std::log(0.99);
  double lo = 1e-6, hi = 1.0 - 1e-9;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (no_run_log_prob(mid) > log_alpha) {
      lo = mid;  // runs still unlikely: p can be larger
    } else {
      hi = mid;
    }
  }
  const double p_local = lo;
  return std::max(p_global, p_local);
}

}  // namespace dhtrng::stats::sp800_90b
