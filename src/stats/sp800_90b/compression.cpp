// SP 800-90B section 6.3.4: Compression (Maurer-style) estimator.
#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/sp800_90b.h"

namespace dhtrng::stats::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;
constexpr std::size_t kBlockBits = 6;       // b
constexpr std::size_t kDictBlocks = 1000;   // d

/// G(z): expected compression statistic for the near-uniform family with
/// most-likely-block probability z (SP 800-90B 6.3.4 step 7).
double g_function(double z, std::size_t d, std::size_t num_blocks) {
  const double q = 1.0 - z;
  const std::size_t v = num_blocks - d;
  // inner(t) = sum_{u=1}^{t-1} log2(u) (1-z)^(u-1); accumulate as t grows.
  double inner = 0.0;
  double q_pow = 1.0;  // (1-z)^(u-1) for the next u
  std::size_t u = 1;
  double total = 0.0;
  for (std::size_t t = d + 1; t <= num_blocks; ++t) {
    while (u < t) {
      inner += std::log2(static_cast<double>(u)) * q_pow;
      q_pow *= q;
      ++u;
    }
    // F(z,t,u) = z^2 (1-z)^(u-1) for u < t, z (1-z)^(t-1) for u = t.
    total += z * z * inner +
             z * std::log2(static_cast<double>(t)) *
                 std::pow(q, static_cast<double>(t) - 1.0);
  }
  return total / static_cast<double>(v);
}

}  // namespace

EstimatorResult compression(const BitStream& bits) {
  EstimatorResult result;
  result.name = "Compression";
  const std::size_t num_blocks = bits.size() / kBlockBits;
  if (num_blocks <= kDictBlocks + 1) {
    result.p_max = 1.0;
    result.h_min = 0.0;
    return result;
  }
  std::vector<std::size_t> last(std::size_t{1} << kBlockBits, 0);
  const auto block_value = [&](std::size_t b) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < kBlockBits; ++j) {
      v = (v << 1) | (bits[b * kBlockBits + j] ? 1u : 0u);
    }
    return v;
  };
  for (std::size_t b = 0; b < kDictBlocks; ++b) {
    last[block_value(b)] = b + 1;
  }
  const std::size_t k = num_blocks - kDictBlocks;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t b = kDictBlocks; b < num_blocks; ++b) {
    const std::size_t v = block_value(b);
    const double dist = static_cast<double>(b + 1 - last[v]);
    const double lg = std::log2(dist);
    sum += lg;
    sum_sq += lg * lg;
    last[v] = b + 1;
  }
  const double kd = static_cast<double>(k);
  const double mean = sum / kd;
  const double var = (sum_sq - kd * mean * mean) / (kd - 1.0);
  const double b_d = static_cast<double>(kBlockBits);
  const double c = 0.7 - 0.8 / b_d +
                   (4.0 + 32.0 / b_d) * std::pow(kd, -3.0 / b_d) / 15.0;
  const double sigma = c * std::sqrt(var);
  const double x_lo = mean - kZ99 * sigma / std::sqrt(kd);

  // Expected statistic of the near-uniform family with most-likely-block
  // probability p: the MCV block contributes G(p) and each of the 2^b - 1
  // other blocks contributes G((1-p)/(2^b-1)) (SP 800-90B 6.3.4 step 7).
  const double symbols = std::pow(2.0, b_d);
  const auto expected_statistic = [&](double p) {
    return g_function(p, kDictBlocks, num_blocks) +
           (symbols - 1.0) *
               g_function((1.0 - p) / (symbols - 1.0), kDictBlocks,
                          num_blocks);
  };
  // Binary search for the largest p with E[X](p) >= x_lo (more-biased
  // sources compress better, so the expectation decreases in p).
  double lo = 1.0 / symbols, hi = 1.0 - 1e-9;
  bool found = false;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (expected_statistic(mid) >= x_lo) {
      lo = mid;
      found = true;
    } else {
      hi = mid;
    }
  }
  const double p = found ? lo : 1.0 / symbols;
  result.p_max = std::clamp(std::pow(p, 1.0 / b_d), 1e-12, 1.0);
  result.h_min = std::min(-std::log2(p) / b_d, 1.0);
  return result;
}

}  // namespace dhtrng::stats::sp800_90b
