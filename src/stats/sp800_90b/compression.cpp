// SP 800-90B section 6.3.4: Compression (Maurer-style) estimator.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/sp800_90b.h"
#include "stats/stats_config.h"

namespace dhtrng::stats::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;
constexpr std::size_t kBlockBits = 6;       // b
constexpr std::size_t kDictBlocks = 1000;   // d

/// G(z): expected compression statistic for the near-uniform family with
/// most-likely-block probability z (SP 800-90B 6.3.4 step 7).
///
/// Two bitwise-exact shortcuts keep the binary search affordable:
///  * log2(u) / log2(t) come from a caller-supplied table — the same libm
///    call on the same argument, evaluated once instead of per invocation;
///  * both power series underflow: once q_pow reaches exact 0.0 the inner
///    sum only adds log2(u) * 0.0 == 0.0 (skipped, u jumped forward), and
///    for t past the point where q^(t-1) < 2^-1080 — a factor 64 below the
///    smallest subnormal, so any faithfully-rounded pow returns exact 0.0
///    — the pow call is replaced by the 0.0 it would have produced.
double g_function(double z, std::size_t d, std::size_t num_blocks,
                  const std::vector<double>& log2_tab) {
  const double q = 1.0 - z;
  const std::size_t v = num_blocks - d;
  // t beyond which pow(q, t - 1) is certainly exact 0.0.
  const double lg_q = std::log2(q);
  double t_zero = std::numeric_limits<double>::infinity();
  if (lg_q < 0.0) t_zero = 1.0 - 1080.0 / lg_q;
  // inner(t) = sum_{u=1}^{t-1} log2(u) (1-z)^(u-1); accumulate as t grows.
  double inner = 0.0;
  double q_pow = 1.0;  // (1-z)^(u-1) for the next u
  std::size_t u = 1;
  double total = 0.0;
  for (std::size_t t = d + 1; t <= num_blocks; ++t) {
    if (q_pow != 0.0) {
      while (u < t) {
        inner += log2_tab[u] * q_pow;
        q_pow *= q;
        ++u;
      }
    } else {
      u = t;  // remaining terms are exact zeros
    }
    // F(z,t,u) = z^2 (1-z)^(u-1) for u < t, z (1-z)^(t-1) for u = t.
    const double td = static_cast<double>(t);
    const double tail =
        td > t_zero ? 0.0 : std::pow(q, td - 1.0);
    total += z * z * inner + z * log2_tab[t] * tail;
  }
  return total / static_cast<double>(v);
}

}  // namespace

EstimatorResult compression(const BitStream& bits) {
  EstimatorResult result;
  result.name = "Compression";
  const std::size_t num_blocks = bits.size() / kBlockBits;
  if (num_blocks <= kDictBlocks + 1) {
    result.p_max = 1.0;
    result.h_min = 0.0;
    return result;
  }
  std::vector<std::size_t> last(std::size_t{1} << kBlockBits, 0);
  // The block value is only a table key: the wordwise LSB-first read
  // permutes `last[]` slots but leaves every distance b + 1 - last[v] —
  // and with it the log2 sum's operation sequence — unchanged.
  const bool wordwise = active_engine() == Engine::Wordwise;
  const auto block_value = [&](std::size_t b) {
    if (wordwise) {
      return static_cast<std::size_t>(bits.chunk64(b * kBlockBits) &
                                      ((std::uint64_t{1} << kBlockBits) - 1));
    }
    std::size_t v = 0;
    for (std::size_t j = 0; j < kBlockBits; ++j) {
      v = (v << 1) | (bits[b * kBlockBits + j] ? 1u : 0u);
    }
    return v;
  };
  for (std::size_t b = 0; b < kDictBlocks; ++b) {
    last[block_value(b)] = b + 1;
  }
  const std::size_t k = num_blocks - kDictBlocks;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t b = kDictBlocks; b < num_blocks; ++b) {
    const std::size_t v = block_value(b);
    const double dist = static_cast<double>(b + 1 - last[v]);
    const double lg = std::log2(dist);
    sum += lg;
    sum_sq += lg * lg;
    last[v] = b + 1;
  }
  const double kd = static_cast<double>(k);
  const double mean = sum / kd;
  const double var = (sum_sq - kd * mean * mean) / (kd - 1.0);
  const double b_d = static_cast<double>(kBlockBits);
  const double c = 0.7 - 0.8 / b_d +
                   (4.0 + 32.0 / b_d) * std::pow(kd, -3.0 / b_d) / 15.0;
  const double sigma = c * std::sqrt(var);
  const double x_lo = mean - kZ99 * sigma / std::sqrt(kd);

  // Expected statistic of the near-uniform family with most-likely-block
  // probability p: the MCV block contributes G(p) and each of the 2^b - 1
  // other blocks contributes G((1-p)/(2^b-1)) (SP 800-90B 6.3.4 step 7).
  const double symbols = std::pow(2.0, b_d);
  std::vector<double> log2_tab(num_blocks + 1);
  for (std::size_t u = 1; u <= num_blocks; ++u) {
    log2_tab[u] = std::log2(static_cast<double>(u));
  }
  const auto expected_statistic = [&](double p) {
    return g_function(p, kDictBlocks, num_blocks, log2_tab) +
           (symbols - 1.0) *
               g_function((1.0 - p) / (symbols - 1.0), kDictBlocks,
                          num_blocks, log2_tab);
  };
  // Binary search for the largest p with E[X](p) >= x_lo (more-biased
  // sources compress better, so the expectation decreases in p).
  double lo = 1.0 / symbols, hi = 1.0 - 1e-9;
  bool found = false;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (expected_statistic(mid) >= x_lo) {
      lo = mid;
      found = true;
    } else {
      hi = mid;
    }
  }
  const double p = found ? lo : 1.0 / symbols;
  result.p_max = std::clamp(std::pow(p, 1.0 / b_d), 1e-12, 1.0);
  result.h_min = std::min(-std::log2(p) / b_d, 1.0);
  return result;
}

}  // namespace dhtrng::stats::sp800_90b
