// SP 800-90B section 5.1: permutation testing for the IID assumption.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <future>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "stats/sp800_90b.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace dhtrng::stats::sp800_90b {

namespace {

/// "Conversion I": non-overlapping 8-bit blocks -> number of ones per block.
std::vector<std::uint8_t> conversion1(const std::vector<std::uint8_t>& bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / 8);
  for (std::size_t b = 0; b + 8 <= bits.size(); b += 8) {
    std::uint8_t ones = 0;
    for (std::size_t j = 0; j < 8; ++j) ones += bits[b + j];
    out.push_back(ones);
  }
  return out;
}

// --- statistics (5.1.1 - 5.1.11) ------------------------------------------

double excursion(const std::vector<std::uint8_t>& bits) {
  double sum = 0.0;
  for (std::uint8_t b : bits) sum += b;
  const double mean = sum / static_cast<double>(bits.size());
  double running = 0.0, worst = 0.0;
  for (std::uint8_t b : bits) {
    running += static_cast<double>(b) - mean;
    worst = std::max(worst, std::abs(running));
  }
  return worst;
}

double num_directional_runs(const std::vector<std::uint8_t>& conv) {
  if (conv.size() < 2) return 0.0;
  double runs = 1.0;
  bool up = conv[1] >= conv[0];
  for (std::size_t i = 2; i < conv.size(); ++i) {
    const bool now_up = conv[i] >= conv[i - 1];
    if (now_up != up) {
      runs += 1.0;
      up = now_up;
    }
  }
  return runs;
}

double len_directional_runs(const std::vector<std::uint8_t>& conv) {
  if (conv.size() < 2) return 0.0;
  double longest = 1.0, run = 1.0;
  bool up = conv[1] >= conv[0];
  for (std::size_t i = 2; i < conv.size(); ++i) {
    const bool now_up = conv[i] >= conv[i - 1];
    if (now_up == up) {
      run += 1.0;
    } else {
      run = 1.0;
      up = now_up;
    }
    longest = std::max(longest, run);
  }
  return longest;
}

double num_increases(const std::vector<std::uint8_t>& conv) {
  if (conv.size() < 2) return 0.0;
  std::size_t inc = 0;
  for (std::size_t i = 1; i < conv.size(); ++i) {
    inc += conv[i] >= conv[i - 1] ? 1u : 0u;
  }
  // Spec: max(#increases, #decreases).
  return static_cast<double>(std::max(inc, conv.size() - 1 - inc));
}

double num_runs_median(const std::vector<std::uint8_t>& bits) {
  // Binary median is 1/2: runs of equal bits.
  double runs = 1.0;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] != bits[i - 1]) runs += 1.0;
  }
  return runs;
}

double len_runs_median(const std::vector<std::uint8_t>& bits) {
  double longest = 1.0, run = 1.0;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    run = bits[i] == bits[i - 1] ? run + 1.0 : 1.0;
    longest = std::max(longest, run);
  }
  return longest;
}

void collision_stats(const std::vector<std::uint8_t>& bits, double* avg,
                     double* max) {
  double total = 0.0, count = 0.0, worst = 0.0;
  std::size_t i = 0;
  while (i + 1 < bits.size()) {
    // Binary collision within at most 3 samples (cf. 6.3.2).
    double t;
    if (bits[i] == bits[i + 1]) {
      t = 2.0;
      i += 2;
    } else if (i + 2 < bits.size()) {
      t = 3.0;
      i += 3;
    } else {
      break;
    }
    total += t;
    count += 1.0;
    worst = std::max(worst, t);
  }
  *avg = count > 0 ? total / count : 0.0;
  *max = worst;
}

double periodicity(const std::vector<std::uint8_t>& conv, std::size_t lag) {
  if (conv.size() <= lag) return 0.0;
  double matches = 0.0;
  for (std::size_t i = 0; i + lag < conv.size(); ++i) {
    matches += conv[i] == conv[i + lag] ? 1.0 : 0.0;
  }
  return matches;
}

double covariance(const std::vector<std::uint8_t>& conv, std::size_t lag) {
  if (conv.size() <= lag) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i + lag < conv.size(); ++i) {
    sum += static_cast<double>(conv[i]) * static_cast<double>(conv[i + lag]);
  }
  return sum;
}

double lz78_dictionary_size(const std::vector<std::uint8_t>& bits) {
  // Substitution for the spec's bzip2-size statistic: the number of
  // distinct phrases an LZ78 parse produces (same monotone sensitivity to
  // redundancy; self-contained).
  std::unordered_set<std::uint64_t> dictionary;
  std::uint64_t phrase = 1;  // sentinel top bit marks the phrase length
  for (std::uint8_t b : bits) {
    phrase = (phrase << 1) | b;
    if (phrase >= (1ULL << 62) || dictionary.insert(phrase).second) {
      phrase = 1;
    }
  }
  return static_cast<double>(dictionary.size());
}

constexpr std::array<std::size_t, 5> kLags = {1, 2, 8, 16, 32};

std::vector<double> all_statistics(const std::vector<std::uint8_t>& bits) {
  const auto conv = conversion1(bits);
  std::vector<double> s;
  s.reserve(19);
  s.push_back(excursion(bits));
  s.push_back(num_directional_runs(conv));
  s.push_back(len_directional_runs(conv));
  s.push_back(num_increases(conv));
  s.push_back(num_runs_median(bits));
  s.push_back(len_runs_median(bits));
  double avg_col = 0.0, max_col = 0.0;
  collision_stats(bits, &avg_col, &max_col);
  s.push_back(avg_col);
  s.push_back(max_col);
  for (std::size_t lag : kLags) s.push_back(periodicity(conv, lag));
  for (std::size_t lag : kLags) s.push_back(covariance(conv, lag));
  s.push_back(lz78_dictionary_size(bits));
  return s;
}

const char* statistic_name(std::size_t index) {
  static const char* kNames[] = {
      "excursion",       "numDirectionalRuns", "lenDirectionalRuns",
      "numIncreases",    "numRunsMedian",      "lenRunsMedian",
      "avgCollision",    "maxCollision",       "periodicity(1)",
      "periodicity(2)",  "periodicity(8)",     "periodicity(16)",
      "periodicity(32)", "covariance(1)",      "covariance(2)",
      "covariance(8)",   "covariance(16)",     "covariance(32)",
      "compression(LZ78)"};
  return kNames[index];
}

}  // namespace

IidTestResult permutation_iid_test(const BitStream& bits,
                                   std::size_t permutations,
                                   std::uint64_t seed,
                                   std::size_t n_threads) {
  IidTestResult result;
  result.permutations = permutations;
  if (n_threads == 0) n_threads = support::ThreadPool::hardware_threads();

  std::vector<std::uint8_t> sample(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) sample[i] = bits[i] ? 1 : 0;

  const std::vector<double> original = all_statistics(sample);
  result.statistics.resize(original.size());
  for (std::size_t s = 0; s < original.size(); ++s) {
    result.statistics[s].name = statistic_name(s);
    result.statistics[s].original = original[s];
  }

  // Per-permutation Fisher-Yates seeds: shuffle p is independent of every
  // other shuffle, so the battery parallelizes over p and the rank counts
  // (plain integer sums) come out identical for any worker count.
  std::vector<std::uint64_t> shuffle_seeds(permutations);
  {
    support::SplitMix64 sm(seed);
    for (auto& s : shuffle_seeds) s = sm.next();
  }
  const std::size_t n_stats = original.size();
  std::vector<std::size_t> below(n_stats, 0), equal(n_stats, 0);
  std::mutex merge_mutex;

  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> local_below(n_stats, 0), local_equal(n_stats, 0);
    std::vector<std::uint8_t> shuffled;
    for (std::size_t p = lo; p < hi; ++p) {
      shuffled = sample;
      support::Xoshiro256 rng(shuffle_seeds[p]);
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.below(i));
        std::swap(shuffled[i - 1], shuffled[j]);
      }
      const std::vector<double> stats = all_statistics(shuffled);
      for (std::size_t s = 0; s < n_stats; ++s) {
        if (stats[s] < original[s]) {
          ++local_below[s];
        } else if (stats[s] == original[s]) {
          ++local_equal[s];
        }
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t s = 0; s < n_stats; ++s) {
      below[s] += local_below[s];
      equal[s] += local_equal[s];
    }
  };

  if (n_threads <= 1 || permutations <= 1) {
    run_range(0, permutations);
  } else {
    const std::size_t workers = std::min(n_threads, permutations);
    support::ThreadPool pool(workers);
    const std::size_t per_chunk = (permutations + workers - 1) / workers;
    std::vector<std::future<void>> futures;
    for (std::size_t lo = 0; lo < permutations; lo += per_chunk) {
      const std::size_t hi = std::min(lo + per_chunk, permutations);
      futures.push_back(pool.submit([&, lo, hi] { run_range(lo, hi); }));
    }
    for (auto& f : futures) f.get();
  }
  for (std::size_t s = 0; s < n_stats; ++s) {
    result.statistics[s].rank_below = below[s];
    result.statistics[s].rank_equal = equal[s];
  }

  // Two-tailed rank acceptance: the spec rejects when C0 + C1 <= 5 or
  // C0 >= N - 5 at N = 10000; the margin scales proportionally (and is 0
  // for small N, where the criterion degenerates to "not at the very
  // extreme of the shuffle distribution").
  const std::size_t margin = (5 * permutations) / 10000;
  result.iid_assumption_holds = true;
  for (auto& stat : result.statistics) {
    const std::size_t below_or_equal = stat.rank_below + stat.rank_equal;
    stat.pass = below_or_equal > margin &&
                stat.rank_below < permutations - margin;
    if (!stat.pass) result.iid_assumption_holds = false;
  }
  return result;
}

}  // namespace dhtrng::stats::sp800_90b
