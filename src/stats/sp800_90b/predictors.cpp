// SP 800-90B sections 6.3.7-6.3.10: the four prediction estimators
// (MultiMCW, Lag, MultiMMC, LZ78Y) for the binary alphabet.
//
// Shared skeleton: several sub-predictors each guess the next bit; a
// scoreboard tracks which sub-predictor has been right most often and the
// *global* prediction at each step is the current leader's guess.  The
// entropy bound combines the global hit rate with the longest run of
// correct global predictions (predictor_p_max in basic.cpp).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/sp800_90b.h"

namespace dhtrng::stats::sp800_90b {

namespace {

EstimatorResult from_predictions(std::string name, std::size_t correct,
                                 std::size_t total,
                                 std::size_t longest_run) {
  EstimatorResult r;
  r.name = std::move(name);
  r.p_max = std::clamp(predictor_p_max(correct, total, longest_run), 1e-12, 1.0);
  r.h_min = std::min(-std::log2(r.p_max), 1.0);
  return r;
}

/// Tracks global correctness statistics.
struct GlobalScore {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t run = 0;
  std::size_t longest_run = 0;
  void observe(bool hit) {
    ++total;
    if (hit) {
      ++correct;
      ++run;
      longest_run = std::max(longest_run, run);
    } else {
      run = 0;
    }
  }
};

}  // namespace

EstimatorResult multi_mcw(const BitStream& bits) {
  constexpr std::array<std::size_t, 4> kWindows = {63, 255, 1023, 4095};
  const std::size_t n = bits.size();
  if (n <= kWindows[0] + 1) return from_predictions("Multi-MCW", 0, 0, 0);

  std::array<std::size_t, 4> ones{};    // ones within each window
  std::array<std::size_t, 4> score{};   // sub-predictor scoreboard
  GlobalScore global;
  for (std::size_t i = kWindows[0]; i < n; ++i) {
    // Predictions: most common value in the trailing window (ties -> 1,
    // matching the reference implementation's >= comparison).
    std::array<bool, 4> pred{};
    std::size_t leader = 0;
    for (std::size_t w = 0; w < 4; ++w) {
      const std::size_t window = kWindows[w];
      if (i >= window) {
        pred[w] = 2 * ones[w] >= window;
      } else {
        pred[w] = pred[0];
      }
      if (score[w] > score[leader]) leader = w;
    }
    const bool actual = bits[i];
    global.observe(pred[leader] == actual);
    for (std::size_t w = 0; w < 4; ++w) {
      if (i >= kWindows[w] && pred[w] == actual) ++score[w];
    }
    // Slide the windows.
    for (std::size_t w = 0; w < 4; ++w) {
      const std::size_t window = kWindows[w];
      if (actual) ++ones[w];
      if (i >= window && bits[i - window]) --ones[w];
    }
  }
  return from_predictions("Multi-MCW", global.correct, global.total,
                          global.longest_run);
}

EstimatorResult lag(const BitStream& bits) {
  constexpr std::size_t kLags = 128;
  const std::size_t n = bits.size();
  if (n < 2) return from_predictions("Lag", 0, 0, 0);

  std::array<std::size_t, kLags> score{};
  GlobalScore global;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t leader = 0;
    for (std::size_t d = 0; d < kLags; ++d) {
      if (score[d] > score[leader]) leader = d;
    }
    const bool actual = bits[i];
    const std::size_t lag_of_leader = leader + 1;
    const bool prediction =
        i >= lag_of_leader ? bits[i - lag_of_leader] : false;
    global.observe(prediction == actual);
    for (std::size_t d = 0; d < kLags; ++d) {
      const std::size_t lag_d = d + 1;
      if (i >= lag_d && bits[i - lag_d] == actual) ++score[d];
    }
  }
  return from_predictions("Lag", global.correct, global.total,
                          global.longest_run);
}

EstimatorResult multi_mmc(const BitStream& bits) {
  constexpr std::size_t kMaxDepth = 16;
  const std::size_t n = bits.size();
  if (n < kMaxDepth + 2) return from_predictions("Multi-MMC", 0, 0, 0);

  // Per-depth Markov-model counts: counts[d][context][next].
  std::vector<std::vector<std::array<std::uint32_t, 2>>> counts(kMaxDepth);
  for (std::size_t d = 0; d < kMaxDepth; ++d) {
    counts[d].assign(std::size_t{1} << (d + 1), {0, 0});
  }
  std::array<std::size_t, kMaxDepth> score{};
  GlobalScore global;
  std::uint64_t history = 0;  // trailing bits, LSB = most recent
  for (std::size_t i = 0; i < n; ++i) {
    const bool actual = bits[i];
    if (i >= 2) {
      std::size_t leader = 0;
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (score[d] > score[leader]) leader = d;
      }
      // Global prediction from the leading depth's context counts.
      bool global_pred = false;
      bool global_valid = false;
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (i < d + 2) break;
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        const auto& c = counts[d][ctx];
        const bool pred = c[1] >= c[0];
        const bool valid = (c[0] + c[1]) > 0;
        if (d == leader) {
          global_pred = pred;
          global_valid = valid;
        }
        if (valid && pred == actual) ++score[d];
      }
      global.observe(global_valid && global_pred == actual);
      // Update the models with the observed transition.
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (i < d + 1) break;
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        ++counts[d][ctx][actual ? 1u : 0u];
      }
    } else if (i == 1) {
      const std::uint64_t ctx = history & 1u;
      ++counts[0][ctx][actual ? 1u : 0u];
    }
    history = (history << 1) | (actual ? 1u : 0u);
  }
  return from_predictions("Multi-MMC", global.correct, global.total,
                          global.longest_run);
}

EstimatorResult lz78y(const BitStream& bits) {
  constexpr std::size_t kMaxDepth = 16;
  constexpr std::size_t kDictCapacity = 65536;
  const std::size_t n = bits.size();
  if (n < kMaxDepth + 2) return from_predictions("LZ78Y", 0, 0, 0);

  // Dictionary: per depth, context -> next-bit counts, entries added only
  // while capacity remains (the LZ78-style growth rule).
  std::vector<std::vector<std::array<std::uint32_t, 2>>> counts(kMaxDepth);
  std::vector<std::vector<bool>> present(kMaxDepth);
  for (std::size_t d = 0; d < kMaxDepth; ++d) {
    counts[d].assign(std::size_t{1} << (d + 1), {0, 0});
    present[d].assign(std::size_t{1} << (d + 1), false);
  }
  std::size_t dict_size = 0;
  GlobalScore global;
  std::uint64_t history = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool actual = bits[i];
    if (i >= kMaxDepth + 1) {
      // Predict with the deepest present context (longest match heuristic).
      bool prediction = false;
      bool valid = false;
      for (std::size_t d = kMaxDepth; d-- > 0;) {
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        if (present[d][ctx]) {
          const auto& c = counts[d][ctx];
          prediction = c[1] >= c[0];
          valid = true;
          break;
        }
      }
      global.observe(valid && prediction == actual);
      // Dictionary update.
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        if (!present[d][ctx]) {
          if (dict_size < kDictCapacity) {
            present[d][ctx] = true;
            ++dict_size;
            ++counts[d][ctx][actual ? 1u : 0u];
          }
        } else {
          ++counts[d][ctx][actual ? 1u : 0u];
        }
      }
    }
    history = (history << 1) | (actual ? 1u : 0u);
  }
  return from_predictions("LZ78Y", global.correct, global.total,
                          global.longest_run);
}

}  // namespace dhtrng::stats::sp800_90b
