// SP 800-90B sections 6.3.7-6.3.10: the four prediction estimators
// (MultiMCW, Lag, MultiMMC, LZ78Y) for the binary alphabet.
//
// Shared skeleton: several sub-predictors each guess the next bit; a
// scoreboard tracks which sub-predictor has been right most often and the
// *global* prediction at each step is the current leader's guess.  The
// entropy bound combines the global hit rate with the longest run of
// correct global predictions (predictor_p_max in basic.cpp).
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/sp800_90b.h"
#include "stats/stats_config.h"

namespace dhtrng::stats::sp800_90b {

namespace {

EstimatorResult from_predictions(std::string name, std::size_t correct,
                                 std::size_t total,
                                 std::size_t longest_run) {
  EstimatorResult r;
  r.name = std::move(name);
  r.p_max = std::clamp(predictor_p_max(correct, total, longest_run), 1e-12, 1.0);
  r.h_min = std::min(-std::log2(r.p_max), 1.0);
  return r;
}

/// Tracks global correctness statistics.
struct GlobalScore {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t run = 0;
  std::size_t longest_run = 0;
  void observe(bool hit) {
    ++total;
    if (hit) {
      ++correct;
      ++run;
      longest_run = std::max(longest_run, run);
    } else {
      run = 0;
    }
  }
};

}  // namespace

EstimatorResult multi_mcw(const BitStream& bits) {
  constexpr std::array<std::size_t, 4> kWindows = {63, 255, 1023, 4095};
  const std::size_t n = bits.size();
  if (n <= kWindows[0] + 1) return from_predictions("Multi-MCW", 0, 0, 0);

  std::array<std::size_t, 4> ones{};    // ones within each window
  std::array<std::size_t, 4> score{};   // sub-predictor scoreboard
  GlobalScore global;
  // Per-step body of the reference loop: predictions are the most common
  // value in each trailing window (ties -> 1, matching the reference
  // implementation's >= comparison).
  const auto scalar_step = [&](std::size_t i) {
    std::array<bool, 4> pred{};
    std::size_t leader = 0;
    for (std::size_t w = 0; w < 4; ++w) {
      const std::size_t window = kWindows[w];
      if (i >= window) {
        pred[w] = 2 * ones[w] >= window;
      } else {
        pred[w] = pred[0];
      }
      if (score[w] > score[leader]) leader = w;
    }
    const bool actual = bits[i];
    global.observe(pred[leader] == actual);
    for (std::size_t w = 0; w < 4; ++w) {
      if (i >= kWindows[w] && pred[w] == actual) ++score[w];
    }
    // Slide the windows.
    for (std::size_t w = 0; w < 4; ++w) {
      const std::size_t window = kWindows[w];
      if (actual) ++ones[w];
      if (i >= window && bits[i - window]) --ones[w];
    }
  };

  // Warm-up until every window is full; the integer predictor state is the
  // same under both engines, so the wordwise path can take over mid-stream.
  const std::size_t split =
      std::min(n, kWindows[3] + 1);  // i >= 4096: all windows active
  std::size_t i = kWindows[0];
  for (; i < split; ++i) scalar_step(i);

  if (active_engine() == Engine::Wordwise) {
    // Steady state: the incoming bit and the four bits leaving the windows
    // are read 64 at a time from the packed words; the prediction /
    // scoreboard updates are the scalar body with every `i >= window`
    // condition constant-true.
    for (std::size_t base = i; base < n; base += 64) {
      const std::size_t cnt = std::min<std::size_t>(64, n - base);
      const std::uint64_t cur = bits.chunk64(base);
      std::array<std::uint64_t, 4> leave;
      for (std::size_t w = 0; w < 4; ++w) {
        leave[w] = bits.chunk64(base - kWindows[w]);
      }
      for (std::size_t j = 0; j < cnt; ++j) {
        std::array<bool, 4> pred{};
        std::size_t leader = 0;
        for (std::size_t w = 0; w < 4; ++w) {
          pred[w] = 2 * ones[w] >= kWindows[w];
          if (score[w] > score[leader]) leader = w;
        }
        const bool actual = (cur >> j) & 1;
        global.observe(pred[leader] == actual);
        for (std::size_t w = 0; w < 4; ++w) {
          if (pred[w] == actual) ++score[w];
          if (actual) ++ones[w];
          ones[w] -= (leave[w] >> j) & 1;
        }
      }
    }
  } else {
    for (; i < n; ++i) scalar_step(i);
  }
  return from_predictions("Multi-MCW", global.correct, global.total,
                          global.longest_run);
}

namespace {

/// Wordwise Lag: the 128 sub-predictor scores are kept as bitsliced
/// counters (plane p holds bit p of all 128 scores in two words), so one
/// step's increments — the set of lags that predicted correctly, which is
/// just the 128-bit trailing history H (or its complement) — are applied
/// with a ripple-carry add in O(carry depth) word operations instead of
/// 128 array updates.  The leader is maintained incrementally: with M the
/// current maximum score and `mask` the set of lags attaining it, an
/// increment set S either hits the argmax (new maximum M+1, new argmax
/// mask & S) or leaves M unchanged, in which case the argmax set is
/// re-derived from the planes by equality match against M.  All state is
/// integral, so the scores, leaders and predictions — and hence the
/// global hit statistics — are exactly the scalar engine's.
EstimatorResult lag_wordwise(const BitStream& bits) {
  const std::size_t n = bits.size();
  constexpr std::size_t kPlanes = 48;  // scores < 2^48 always
  std::array<std::array<std::uint64_t, 2>, kPlanes> plane{};
  std::uint64_t m0 = ~std::uint64_t{0}, m1 = ~std::uint64_t{0};  // argmax set
  std::size_t max_score = 0;
  // History: bit d holds bits[i - 1 - d]; bits beyond the stream start stay
  // zero, matching the scalar engine's "predict 0 before lag d is live".
  std::uint64_t h0 = bits[0] ? 1u : 0u, h1 = 0;
  GlobalScore global;
  for (std::size_t i = 1; i < n; ++i) {
    // Leader: smallest lag index attaining the maximum score — the same
    // index the scalar engine's strict-> scan settles on.
    const std::size_t leader =
        m0 != 0 ? static_cast<std::size_t>(std::countr_zero(m0))
                : 64 + static_cast<std::size_t>(std::countr_zero(m1));
    const bool actual = bits[i];
    const bool prediction = leader < 64 ? ((h0 >> leader) & 1) != 0
                                        : ((h1 >> (leader - 64)) & 1) != 0;
    global.observe(prediction == actual);
    // Increment set: lag d+1 predicted correctly iff bits[i-1-d] == actual
    // and the lag is live (d <= i - 1).
    std::uint64_t s0 = actual ? h0 : ~h0;
    std::uint64_t s1 = actual ? h1 : ~h1;
    if (i < 64) {
      s0 &= (std::uint64_t{1} << i) - 1;
      s1 = 0;
    } else if (i < 128) {
      s1 &= (std::uint64_t{1} << (i - 64)) - 1;
    }
    // score[d] += S[d] for all d at once: ripple-carry into the planes.
    std::uint64_t c0 = s0, c1 = s1;
    for (std::size_t p = 0; (c0 | c1) != 0 && p < kPlanes; ++p) {
      const std::uint64_t o0 = plane[p][0], o1 = plane[p][1];
      plane[p][0] = o0 ^ c0;
      plane[p][1] = o1 ^ c1;
      c0 &= o0;
      c1 &= o1;
    }
    // Argmax maintenance.
    const std::uint64_t a0 = m0 & s0, a1 = m1 & s1;
    if ((a0 | a1) != 0) {
      // Some current leader scored: the maximum rises and only those keep it.
      ++max_score;
      m0 = a0;
      m1 = a1;
    } else {
      // Maximum unchanged; runners-up at M-1 that scored join the argmax.
      // Planes at or above bit_width(M) are all-zero (scores <= M) and
      // match M's zero bits there, so the equality scan can stop early.
      std::uint64_t e0 = ~std::uint64_t{0}, e1 = ~std::uint64_t{0};
      const std::size_t top = std::bit_width(max_score);
      for (std::size_t p = 0; p < top; ++p) {
        const std::uint64_t sel =
            (max_score >> p) & 1 ? ~std::uint64_t{0} : 0;
        e0 &= ~(plane[p][0] ^ sel);
        e1 &= ~(plane[p][1] ^ sel);
      }
      m0 = e0;
      m1 = e1;
    }
    h1 = (h1 << 1) | (h0 >> 63);
    h0 = (h0 << 1) | (actual ? 1u : 0u);
  }
  return from_predictions("Lag", global.correct, global.total,
                          global.longest_run);
}

}  // namespace

EstimatorResult lag(const BitStream& bits) {
  constexpr std::size_t kLags = 128;
  const std::size_t n = bits.size();
  if (n < 2) return from_predictions("Lag", 0, 0, 0);
  if (active_engine() == Engine::Wordwise) return lag_wordwise(bits);

  std::array<std::size_t, kLags> score{};
  GlobalScore global;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t leader = 0;
    for (std::size_t d = 0; d < kLags; ++d) {
      if (score[d] > score[leader]) leader = d;
    }
    const bool actual = bits[i];
    const std::size_t lag_of_leader = leader + 1;
    const bool prediction =
        i >= lag_of_leader ? bits[i - lag_of_leader] : false;
    global.observe(prediction == actual);
    for (std::size_t d = 0; d < kLags; ++d) {
      const std::size_t lag_d = d + 1;
      if (i >= lag_d && bits[i - lag_d] == actual) ++score[d];
    }
  }
  return from_predictions("Lag", global.correct, global.total,
                          global.longest_run);
}

EstimatorResult multi_mmc(const BitStream& bits) {
  constexpr std::size_t kMaxDepth = 16;
  const std::size_t n = bits.size();
  if (n < kMaxDepth + 2) return from_predictions("Multi-MMC", 0, 0, 0);

  // Per-depth Markov-model counts: counts[d][context][next].
  std::vector<std::vector<std::array<std::uint32_t, 2>>> counts(kMaxDepth);
  for (std::size_t d = 0; d < kMaxDepth; ++d) {
    counts[d].assign(std::size_t{1} << (d + 1), {0, 0});
  }
  std::array<std::size_t, kMaxDepth> score{};
  GlobalScore global;
  std::uint64_t history = 0;  // trailing bits, LSB = most recent
  for (std::size_t i = 0; i < n; ++i) {
    const bool actual = bits[i];
    if (i >= 2) {
      std::size_t leader = 0;
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (score[d] > score[leader]) leader = d;
      }
      // Global prediction from the leading depth's context counts.
      bool global_pred = false;
      bool global_valid = false;
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (i < d + 2) break;
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        const auto& c = counts[d][ctx];
        const bool pred = c[1] >= c[0];
        const bool valid = (c[0] + c[1]) > 0;
        if (d == leader) {
          global_pred = pred;
          global_valid = valid;
        }
        if (valid && pred == actual) ++score[d];
      }
      global.observe(global_valid && global_pred == actual);
      // Update the models with the observed transition.
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        if (i < d + 1) break;
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        ++counts[d][ctx][actual ? 1u : 0u];
      }
    } else if (i == 1) {
      const std::uint64_t ctx = history & 1u;
      ++counts[0][ctx][actual ? 1u : 0u];
    }
    history = (history << 1) | (actual ? 1u : 0u);
  }
  return from_predictions("Multi-MMC", global.correct, global.total,
                          global.longest_run);
}

EstimatorResult lz78y(const BitStream& bits) {
  constexpr std::size_t kMaxDepth = 16;
  constexpr std::size_t kDictCapacity = 65536;
  const std::size_t n = bits.size();
  if (n < kMaxDepth + 2) return from_predictions("LZ78Y", 0, 0, 0);

  // Dictionary: per depth, context -> next-bit counts, entries added only
  // while capacity remains (the LZ78-style growth rule).
  std::vector<std::vector<std::array<std::uint32_t, 2>>> counts(kMaxDepth);
  std::vector<std::vector<bool>> present(kMaxDepth);
  for (std::size_t d = 0; d < kMaxDepth; ++d) {
    counts[d].assign(std::size_t{1} << (d + 1), {0, 0});
    present[d].assign(std::size_t{1} << (d + 1), false);
  }
  std::size_t dict_size = 0;
  GlobalScore global;
  std::uint64_t history = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool actual = bits[i];
    if (i >= kMaxDepth + 1) {
      // Predict with the deepest present context (longest match heuristic).
      bool prediction = false;
      bool valid = false;
      for (std::size_t d = kMaxDepth; d-- > 0;) {
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        if (present[d][ctx]) {
          const auto& c = counts[d][ctx];
          prediction = c[1] >= c[0];
          valid = true;
          break;
        }
      }
      global.observe(valid && prediction == actual);
      // Dictionary update.
      for (std::size_t d = 0; d < kMaxDepth; ++d) {
        const std::uint64_t ctx = history & ((std::uint64_t{1} << (d + 1)) - 1);
        if (!present[d][ctx]) {
          if (dict_size < kDictCapacity) {
            present[d][ctx] = true;
            ++dict_size;
            ++counts[d][ctx][actual ? 1u : 0u];
          }
        } else {
          ++counts[d][ctx][actual ? 1u : 0u];
        }
      }
    }
    history = (history << 1) | (actual ? 1u : 0u);
  }
  return from_predictions("LZ78Y", global.correct, global.total,
                          global.longest_run);
}

}  // namespace dhtrng::stats::sp800_90b
