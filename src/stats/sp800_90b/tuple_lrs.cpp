// SP 800-90B sections 6.3.5 and 6.3.6: t-Tuple and Longest Repeated
// Substring estimators (binary alphabet, windowed counting).
//
// The scalar engine rescans the stream once (twice for LRS) per tuple
// length with flat / hashed window tables.  The wordwise engine refines a
// partition of window start positions one bit at a time instead: groups of
// positions whose windows agree on the first L bits are split by bit L,
// singletons drop out, and the per-length statistics (max count, number of
// colliding pairs) are read off the group sizes.  Both are multiset
// statistics of the value -> count map — max is order-free and the pair
// sum adds integers (C(c,2) <= C(n,2) < 2^53), so the doubles agree
// bit-for-bit with the scalar engine's accumulation order.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "stats/sp800_90b.h"
#include "stats/stats_config.h"

namespace dhtrng::stats::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;
constexpr std::size_t kFlatLimit = 20;  // flat table up to 2^20 counters

EstimatorResult bounded(std::string name, double p_hat, double n) {
  EstimatorResult r;
  r.name = std::move(name);
  const double p_u =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / (n - 1.0)));
  r.p_max = std::clamp(p_u, 1e-12, 1.0);
  r.h_min = std::min(-std::log2(r.p_max), 1.0);
  return r;
}

/// Per-length tuple statistics: the maximum count and the number of pairs
/// of equal tuples (sum over values of C(c,2)), for overlapping windows of
/// length `len`.
struct TupleStats {
  std::uint64_t max_count = 0;
  double collision_pairs = 0.0;
};

TupleStats tuple_stats(const BitStream& bits, std::size_t len) {
  TupleStats st;
  const std::size_t n = bits.size();
  if (len == 0 || len > 63 || n < len) return st;
  const std::uint64_t mask =
      len == 63 ? ~std::uint64_t{0} >> 1 : (std::uint64_t{1} << len) - 1;
  const auto account = [&](std::uint64_t count) {
    st.max_count = std::max(st.max_count, count);
    st.collision_pairs +=
        0.5 * static_cast<double>(count) * static_cast<double>(count - 1);
  };
  if (len <= kFlatLimit) {
    std::vector<std::uint32_t> counts(std::size_t{1} << len, 0);
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
      if (i + 1 >= len) ++counts[window];
    }
    for (std::uint32_t c : counts) {
      if (c > 1) account(c);
      else st.max_count = std::max<std::uint64_t>(st.max_count, c);
    }
  } else {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    counts.reserve(n);
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
      if (i + 1 >= len) ++counts[window];
    }
    for (const auto& [value, c] : counts) {
      (void)value;
      if (c > 1) account(c);
      else st.max_count = std::max<std::uint64_t>(st.max_count, c);
    }
  }
  return st;
}

/// Incremental partition refinement over window start positions.  After
/// `next()` has been called L times, the kept groups are exactly the sets
/// of positions p <= n - L whose length-L windows are equal, restricted to
/// groups of size >= 2 (singletons can never split again and contribute
/// neither a pair nor a max beyond 1).  Each refinement step only touches
/// positions still in a group, so the cost collapses once the data stops
/// repeating — O(n) per length early on, near zero past ~2 log2 n.
class TupleRefiner {
 public:
  explicit TupleRefiner(const BitStream& bits)
      : words_(bits.words()), n_(bits.size()) {
    pos_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      pos_[i] = static_cast<std::uint32_t>(i);
    }
    tmp_.resize(n_);
    if (n_ > 0) group_len_.push_back(n_);
  }

  /// Advance to the next length (first call refines to length 1) and
  /// return that length's statistics.
  TupleStats next() {
    ++len_;
    TupleStats st;
    if (len_ > n_) {
      group_len_.clear();
      return st;
    }
    const std::size_t limit = n_ - len_;   // valid starts: p <= limit
    const std::size_t off = len_ - 1;      // split by bits[p + off]
    std::uint64_t largest = 0;
    std::size_t read = 0, out = 0;
    new_groups_.clear();
    for (std::size_t glen : group_len_) {
      zeros_.clear();
      ones_.clear();
      for (std::size_t k = 0; k < glen; ++k) {
        const std::uint32_t p = pos_[read + k];
        if (p > limit) continue;  // window would run past the end
        const std::size_t q = p + off;
        if ((words_[q >> 6] >> (q & 63)) & 1) {
          ones_.push_back(p);
        } else {
          zeros_.push_back(p);
        }
      }
      read += glen;
      for (const auto* sub : {&zeros_, &ones_}) {
        const std::size_t c = sub->size();
        if (c < 2) continue;  // singleton: count 1, no pairs, never splits
        for (std::uint32_t p : *sub) tmp_[out++] = p;
        new_groups_.push_back(c);
        largest = std::max<std::uint64_t>(largest, c);
        st.collision_pairs +=
            0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
      }
    }
    pos_.swap(tmp_);
    group_len_.swap(new_groups_);
    // Every valid window carries some value, so the max count is at least 1
    // even when all surviving counts (dropped singletons) are exactly 1.
    st.max_count = std::max<std::uint64_t>(largest, 1);
    return st;
  }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t n_;
  std::size_t len_ = 0;
  std::vector<std::uint32_t> pos_, tmp_, zeros_, ones_;
  std::vector<std::size_t> group_len_, new_groups_;
};

bool use_refiner(const BitStream& bits) {
  return active_engine() == Engine::Wordwise &&
         bits.size() < std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

EstimatorResult t_tuple(const BitStream& bits) {
  const std::size_t n = bits.size();
  // Find t: the largest tuple length whose most common tuple appears at
  // least 35 times; P_max over lengths 1..t of (max_count / windows)^(1/i).
  const bool wordwise = use_refiner(bits);
  TupleRefiner refiner(bits);
  double p_hat = 0.0;
  for (std::size_t len = 1; len <= 63; ++len) {
    const TupleStats st =
        wordwise ? refiner.next() : tuple_stats(bits, len);
    if (st.max_count < 35) break;
    const double windows = static_cast<double>(n - len + 1);
    const double p_len = std::pow(
        static_cast<double>(st.max_count) / windows,
        1.0 / static_cast<double>(len));
    p_hat = std::max(p_hat, p_len);
  }
  if (p_hat == 0.0) p_hat = 0.5;
  return bounded("t-Tuple", p_hat, static_cast<double>(n));
}

EstimatorResult lrs(const BitStream& bits) {
  const std::size_t n = bits.size();
  if (use_refiner(bits)) {
    // Single refinement sweep: lengths below u (the first length whose most
    // common tuple appears fewer than 35 times) only advance the partition;
    // from u on, the pair counts feed the estimate until repeats run out.
    TupleRefiner refiner(bits);
    double p_hat = 0.0;
    bool counting = false;
    for (std::size_t len = 1; len <= 63; ++len) {
      const TupleStats st = refiner.next();
      if (!counting) {
        if (st.max_count >= 35) continue;
        counting = true;  // len == u
      }
      if (st.collision_pairs < 1.0) break;  // no repeats at this length
      const double windows = static_cast<double>(n - len + 1);
      const double total_pairs = 0.5 * windows * (windows - 1.0);
      const double p_w = st.collision_pairs / total_pairs;
      p_hat = std::max(p_hat, std::pow(p_w, 1.0 / static_cast<double>(len)));
    }
    if (p_hat == 0.0) p_hat = 0.5;
    return bounded("LRS", p_hat, static_cast<double>(n));
  }
  // u: one past the largest length with max count >= 35 (where t-Tuple
  // stops); v: the longest length that still has any repeated tuple.
  std::size_t u = 1;
  while (u <= 63 && tuple_stats(bits, u).max_count >= 35) ++u;
  double p_hat = 0.0;
  for (std::size_t len = u; len <= 63; ++len) {
    const TupleStats st = tuple_stats(bits, len);
    if (st.collision_pairs < 1.0) break;  // no repeats at this length
    const double windows = static_cast<double>(n - len + 1);
    const double total_pairs = 0.5 * windows * (windows - 1.0);
    const double p_w = st.collision_pairs / total_pairs;
    p_hat = std::max(p_hat, std::pow(p_w, 1.0 / static_cast<double>(len)));
  }
  if (p_hat == 0.0) p_hat = 0.5;
  return bounded("LRS", p_hat, static_cast<double>(n));
}

}  // namespace dhtrng::stats::sp800_90b
