// SP 800-90B sections 6.3.5 and 6.3.6: t-Tuple and Longest Repeated
// Substring estimators (binary alphabet, windowed counting).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/sp800_90b.h"

namespace dhtrng::stats::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;
constexpr std::size_t kFlatLimit = 20;  // flat table up to 2^20 counters

EstimatorResult bounded(std::string name, double p_hat, double n) {
  EstimatorResult r;
  r.name = std::move(name);
  const double p_u =
      std::min(1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / (n - 1.0)));
  r.p_max = std::clamp(p_u, 1e-12, 1.0);
  r.h_min = std::min(-std::log2(r.p_max), 1.0);
  return r;
}

/// Per-length tuple statistics: the maximum count and the number of pairs
/// of equal tuples (sum over values of C(c,2)), for overlapping windows of
/// length `len`.
struct TupleStats {
  std::uint64_t max_count = 0;
  double collision_pairs = 0.0;
};

TupleStats tuple_stats(const BitStream& bits, std::size_t len) {
  TupleStats st;
  const std::size_t n = bits.size();
  if (len == 0 || len > 63 || n < len) return st;
  const std::uint64_t mask =
      len == 63 ? ~std::uint64_t{0} >> 1 : (std::uint64_t{1} << len) - 1;
  const auto account = [&](std::uint64_t count) {
    st.max_count = std::max(st.max_count, count);
    st.collision_pairs +=
        0.5 * static_cast<double>(count) * static_cast<double>(count - 1);
  };
  if (len <= kFlatLimit) {
    std::vector<std::uint32_t> counts(std::size_t{1} << len, 0);
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
      if (i + 1 >= len) ++counts[window];
    }
    for (std::uint32_t c : counts) {
      if (c > 1) account(c);
      else st.max_count = std::max<std::uint64_t>(st.max_count, c);
    }
  } else {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    counts.reserve(n);
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
      if (i + 1 >= len) ++counts[window];
    }
    for (const auto& [value, c] : counts) {
      (void)value;
      if (c > 1) account(c);
      else st.max_count = std::max<std::uint64_t>(st.max_count, c);
    }
  }
  return st;
}

}  // namespace

EstimatorResult t_tuple(const BitStream& bits) {
  const std::size_t n = bits.size();
  // Find t: the largest tuple length whose most common tuple appears at
  // least 35 times; P_max over lengths 1..t of (max_count / windows)^(1/i).
  double p_hat = 0.0;
  for (std::size_t len = 1; len <= 63; ++len) {
    const TupleStats st = tuple_stats(bits, len);
    if (st.max_count < 35) break;
    const double windows = static_cast<double>(n - len + 1);
    const double p_len = std::pow(
        static_cast<double>(st.max_count) / windows,
        1.0 / static_cast<double>(len));
    p_hat = std::max(p_hat, p_len);
  }
  if (p_hat == 0.0) p_hat = 0.5;
  return bounded("t-Tuple", p_hat, static_cast<double>(n));
}

EstimatorResult lrs(const BitStream& bits) {
  const std::size_t n = bits.size();
  // u: one past the largest length with max count >= 35 (where t-Tuple
  // stops); v: the longest length that still has any repeated tuple.
  std::size_t u = 1;
  while (u <= 63 && tuple_stats(bits, u).max_count >= 35) ++u;
  double p_hat = 0.0;
  for (std::size_t len = u; len <= 63; ++len) {
    const TupleStats st = tuple_stats(bits, len);
    if (st.collision_pairs < 1.0) break;  // no repeats at this length
    const double windows = static_cast<double>(n - len + 1);
    const double total_pairs = 0.5 * windows * (windows - 1.0);
    const double p_w = st.collision_pairs / total_pairs;
    p_hat = std::max(p_hat, std::pow(p_w, 1.0 / static_cast<double>(len)));
  }
  if (p_hat == 0.0) p_hat = 0.5;
  return bounded("LRS", p_hat, static_cast<double>(n));
}

}  // namespace dhtrng::stats::sp800_90b
