#include "stats/stats_config.h"

#include <atomic>

namespace dhtrng::stats {

namespace {
std::atomic<Engine> g_engine{Engine::Wordwise};
}  // namespace

Engine active_engine() { return g_engine.load(std::memory_order_relaxed); }

void set_engine(Engine engine) {
  g_engine.store(engine, std::memory_order_relaxed);
}

const char* engine_name(Engine engine) {
  return engine == Engine::Scalar ? "scalar" : "wordwise";
}

}  // namespace dhtrng::stats
