// Statistical-engine selection.
//
// Every hot kernel in src/stats exists twice: a Scalar reference that walks
// the BitStream bit by bit (the original, obviously-spec-faithful code) and
// a Wordwise engine that processes whole 64-bit words (popcounts, shift-and-
// mask window extraction, byte-table prefix sums).  The two are numerically
// identical — the wordwise kernels are restricted to transformations that
// preserve the exact integer statistics and the exact floating-point
// operation sequence — and a differential fuzz test pins that equality.
// This mirrors the simulator's Scheduler::ReferenceHeap oracle: the slow
// engine stays as the trusted baseline the fast one is checked against.
#pragma once

namespace dhtrng::stats {

enum class Engine {
  Scalar,    ///< bit-at-a-time reference implementations (the oracle)
  Wordwise,  ///< 64-bit word-parallel kernels (default)
};

struct StatsConfig {
  Engine engine = Engine::Wordwise;
};

/// Engine used by the statistical suites.  Process-wide (the suites are
/// free functions); reads are lock-free so run_suite workers can consult it
/// concurrently.
Engine active_engine();
void set_engine(Engine engine);

const char* engine_name(Engine engine);

/// RAII engine override for tests and benchmarks.
class ScopedEngine {
 public:
  explicit ScopedEngine(Engine engine) : previous_(active_engine()) {
    set_engine(engine);
  }
  ~ScopedEngine() { set_engine(previous_); }
  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;

 private:
  Engine previous_;
};

}  // namespace dhtrng::stats
