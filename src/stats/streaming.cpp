// Streaming certification accumulators (see streaming.h for the model).
//
// The snapshot-time formulas below are deliberate replicas of the
// Engine::Scalar batch kernels — frequency/block_frequency/runs/cusum
// from sp800_22/frequency_tests.cpp and mcv/markov (+ make_result) from
// sp800_90b/basic.cpp.  The duplication is the design: the streaming
// side keeps only integer sufficient statistics and must replay the
// scalar floating-point sequence exactly at snapshot() time, and the
// differential battery (tests/stats/test_streaming_differential.cpp)
// fails the build of any edit that lets the two sides drift.
#include "stats/streaming.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "support/special_functions.h"
#include "support/wordops.h"

namespace dhtrng::stats::streaming {

namespace {

using support::erfc;
using support::igamc;
using support::normal_cdf;
namespace wo = support::wordops;

constexpr double kZ99 = 2.5758293035489004;  // mirrors sp800_90b/basic.cpp

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

double replica_frequency_p(std::uint64_t n_, std::uint64_t ones_) {
  const double n = static_cast<double>(n_);
  const double ones = static_cast<double>(ones_);
  const double s = std::abs(2.0 * ones - n) / std::sqrt(n);
  return erfc(s / std::sqrt(2.0));
}

double replica_block_frequency_p(std::uint64_t blocks, std::uint64_t sum_sq,
                                 std::size_t block_len) {
  // With block_len = 2^k every scalar term (pi - 0.5)^2 = d^2/block_len^2
  // is an exact dyadic rational and the scalar running sum stays exact
  // below 2^53, so the integer sum of d^2 reconstructs the scalar
  // chi-square bit-for-bit in any summation order.
  double chi2 = static_cast<double>(sum_sq) /
                (static_cast<double>(block_len) * static_cast<double>(block_len));
  chi2 *= 4.0 * static_cast<double>(block_len);
  return igamc(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
}

double replica_runs_p(std::uint64_t n_, std::uint64_t ones_, std::uint64_t v_) {
  const double nd = static_cast<double>(n_);
  const double pi = static_cast<double>(ones_) / nd;
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(nd)) {
    return 0.0;  // prerequisite frequency check failed (2.3.4 step 2)
  }
  const double vd = static_cast<double>(v_);
  return erfc(std::abs(vd - 2.0 * nd * pi * (1.0 - pi)) /
              (2.0 * std::sqrt(2.0 * nd) * pi * (1.0 - pi)));
}

double replica_cusum_p(std::uint64_t n, std::int64_t z_) {
  if (z_ == 0) return 0.0;
  const double zn = static_cast<double>(z_);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double nd = static_cast<double>(n);
  double sum1 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn + 1.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum1 += normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd - 1.0) * zn / sqrt_n);
    }
  }
  double sum2 = 0.0;
  {
    const long long lo = static_cast<long long>((-nd / zn - 3.0) / 4.0);
    const long long hi = static_cast<long long>((nd / zn - 1.0) / 4.0);
    for (long long k = lo; k <= hi; ++k) {
      const double kd = static_cast<double>(k);
      sum2 += normal_cdf((4.0 * kd + 3.0) * zn / sqrt_n) -
              normal_cdf((4.0 * kd + 1.0) * zn / sqrt_n);
    }
  }
  return 1.0 - sum1 + sum2;
}

/// make_result's p_max -> h_min mapping (clamp, -log2, cap at 1 bit).
double h_from_p_max(double p_max) {
  const double clamped = std::clamp(p_max, 1e-12, 1.0);
  return std::min(-std::log2(clamped), 1.0);
}

double replica_mcv_h(std::uint64_t n_, std::uint64_t ones_) {
  if (n_ < 2) return h_from_p_max(1.0);  // matches the scalar n < 2 guard
  const double n = static_cast<double>(n_);
  const double ones = static_cast<double>(ones_);
  const double p_hat = std::max(ones, n - ones) / n;
  const double p_u = std::min(
      1.0, p_hat + kZ99 * std::sqrt(p_hat * (1.0 - p_hat) / (n - 1.0)));
  return h_from_p_max(p_u);
}

double replica_markov_h(std::uint64_t n_, std::uint64_t ones_,
                        std::uint64_t t11, std::uint64_t t10,
                        std::uint64_t t01) {
  if (n_ < 2) return h_from_p_max(1.0);
  const std::uint64_t pairs = n_ - 1;
  std::array<std::array<double, 2>, 2> counts{};
  counts[1][1] = static_cast<double>(t11);
  counts[1][0] = static_cast<double>(t10);
  counts[0][1] = static_cast<double>(t01);
  counts[0][0] = static_cast<double>(pairs - t11 - t10 - t01);
  const double ones = static_cast<double>(ones_);
  std::array<double, 2> p_init = {1.0 - ones / static_cast<double>(n_),
                                  ones / static_cast<double>(n_)};
  std::array<std::array<double, 2>, 2> t{};
  for (int a = 0; a < 2; ++a) {
    const double row = counts[static_cast<std::size_t>(a)][0] +
                       counts[static_cast<std::size_t>(a)][1];
    for (int b = 0; b < 2; ++b) {
      t[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          row > 0.0 ? counts[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(b)] /
                          row
                    : 0.5;
    }
  }
  constexpr int kSteps = 128;
  std::array<double, 2> logp = {
      p_init[0] > 0 ? std::log2(p_init[0]) : -1e300,
      p_init[1] > 0 ? std::log2(p_init[1]) : -1e300};
  for (int step = 1; step < kSteps; ++step) {
    std::array<double, 2> next = {-1e300, -1e300};
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const double tr =
            t[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        if (tr <= 0.0) continue;
        next[static_cast<std::size_t>(b)] =
            std::max(next[static_cast<std::size_t>(b)],
                     logp[static_cast<std::size_t>(a)] + std::log2(tr));
      }
    }
    logp = next;
  }
  const double best = std::max(logp[0], logp[1]);
  const double p_max = std::pow(2.0, best / kSteps);
  return h_from_p_max(p_max);
}

}  // namespace

double Snapshot::live_min_entropy() const {
  if (windows > 0) return std::min(window_mcv_h_last, window_markov_h_last);
  if (mcv_valid) return std::min(mcv_h, markov_h);
  return 0.0;
}

bool Snapshot::pass(const Thresholds& t) const {
  if (frequency_valid && frequency_p < t.alpha) return false;
  if (block_frequency_valid && block_frequency_p < t.alpha) return false;
  if (runs_valid && runs_p < t.alpha) return false;
  if (cusum_valid && (cusum_fwd_p < t.alpha || cusum_bwd_p < t.alpha)) {
    return false;
  }
  if (windows > 0) {
    if (window_mcv_h_last < t.min_entropy ||
        window_markov_h_last < t.min_entropy) {
      return false;
    }
  } else if (mcv_valid &&
             (mcv_h < t.min_entropy || markov_h < t.min_entropy)) {
    return false;
  }
  return true;
}

SourceTracker::SourceTracker(TrackerConfig config) : config_(config) {
  if (!is_pow2(config_.block_len) || config_.block_len < 8) {
    throw std::invalid_argument(
        "SourceTracker: block_len must be a power of two >= 8");
  }
  if (!is_pow2(config_.window_bits) || config_.window_bits < 8) {
    throw std::invalid_argument(
        "SourceTracker: window_bits must be a power of two >= 8");
  }
}

void SourceTracker::step_bit(bool bit) {
  const bool had = n_ > 0;
  const bool prev = last_bit_;
  const bool in_window = w_fill_ > 0;
  ++n_;
  ones_ += bit ? 1 : 0;
  if (!had) {
    first_bit_ = bit;
  } else if (prev != bit) {
    ++transitions_;
  }
  last_bit_ = bit;
  if (had) {
    if (prev && bit) ++t11_;
    else if (prev) ++t10_;
    else if (bit) ++t01_;
  }
  const std::int64_t d = bit ? 1 : -1;
  max_prefix_ = std::max(max_prefix_, walk_ + d);
  min_prefix_ = std::min(min_prefix_, walk_ + d);
  max_suffix_ = std::max<std::int64_t>(0, max_suffix_ + d);
  min_suffix_ = std::min<std::int64_t>(0, min_suffix_ + d);
  walk_ += d;
  cur_block_ones_ += bit ? 1 : 0;
  if (++cur_block_fill_ == config_.block_len) finish_block();
  if (in_window) {
    if (prev && bit) ++w_t11_;
    else if (prev) ++w_t10_;
    else if (bit) ++w_t01_;
  }
  w_ones_ += bit ? 1 : 0;
  if (++w_fill_ == config_.window_bits) finish_window();
}

// Both byte steps require n_ % 8 == 0 on entry (the feed entry points
// guarantee it); block and window boundaries are then byte-aligned, so a
// byte never straddles one.
void SourceTracker::step_byte_lsb(std::uint8_t v) {
  const bool had = n_ > 0;
  const bool prev = last_bit_;
  const bool in_window = w_fill_ > 0;
  const unsigned x = v;
  const bool first = (x & 1u) != 0;
  const bool last = (x >> 7) & 1u;
  const auto pop = static_cast<std::uint64_t>(std::popcount(x));
  const auto trans =
      static_cast<std::uint64_t>(std::popcount((x ^ (x >> 1)) & 0x7fu));
  // LSB-first stream order: the transition i -> i+1 pairs bit i with bit
  // i+1, so "from" is the lower bit index.
  const auto b11 = static_cast<std::uint64_t>(std::popcount(x & (x >> 1) & 0x7fu));
  const auto b10 = static_cast<std::uint64_t>(std::popcount(x & ~(x >> 1) & 0x7fu));
  const auto b01 = static_cast<std::uint64_t>(std::popcount(~x & (x >> 1) & 0x7fu));
  const wo::ByteWalk fw = wo::kWalkForward[x];
  // Prefix extremes of the reversed traversal == suffix extremes of the
  // stream-order walk.
  const wo::ByteWalk sfx = wo::kWalkBackward[x];

  n_ += 8;
  ones_ += pop;
  if (!had) {
    first_bit_ = first;
  } else if (prev != first) {
    ++transitions_;
  }
  transitions_ += trans;
  last_bit_ = last;
  if (had) {
    if (prev && first) ++t11_;
    else if (prev) ++t10_;
    else if (first) ++t01_;
  }
  t11_ += b11;
  t10_ += b10;
  t01_ += b01;
  max_prefix_ = std::max(max_prefix_, walk_ + fw.max_prefix);
  min_prefix_ = std::min(min_prefix_, walk_ + fw.min_prefix);
  max_suffix_ = std::max<std::int64_t>(
      {0, static_cast<std::int64_t>(sfx.max_prefix), max_suffix_ + fw.delta});
  min_suffix_ = std::min<std::int64_t>(
      {0, static_cast<std::int64_t>(sfx.min_prefix), min_suffix_ + fw.delta});
  walk_ += fw.delta;
  cur_block_ones_ += pop;
  cur_block_fill_ += 8;
  if (cur_block_fill_ == config_.block_len) finish_block();
  if (in_window) {
    if (prev && first) ++w_t11_;
    else if (prev) ++w_t10_;
    else if (first) ++w_t01_;
  }
  w_t11_ += b11;
  w_t10_ += b10;
  w_t01_ += b01;
  w_ones_ += pop;
  w_fill_ += 8;
  if (w_fill_ == config_.window_bits) finish_window();
}

void SourceTracker::step_byte_msb(std::uint8_t v) {
  const bool had = n_ > 0;
  const bool prev = last_bit_;
  const bool in_window = w_fill_ > 0;
  const unsigned x = v;
  const bool first = (x >> 7) & 1u;
  const bool last = (x & 1u) != 0;
  const auto pop = static_cast<std::uint64_t>(std::popcount(x));
  const auto trans =
      static_cast<std::uint64_t>(std::popcount((x ^ (x >> 1)) & 0x7fu));
  // MSB-first stream order: the transition pairs bit k+1 ("from") with
  // bit k ("to"), so 1->0 reads the *shifted* word as the source bit.
  const auto b11 = static_cast<std::uint64_t>(std::popcount(x & (x >> 1) & 0x7fu));
  const auto b10 = static_cast<std::uint64_t>(std::popcount((x >> 1) & ~x & 0x7fu));
  const auto b01 = static_cast<std::uint64_t>(std::popcount(x & ~(x >> 1) & 0x7fu));
  // MSB-first traversal is kWalkBackward's order; kWalkForward then gives
  // the suffix extremes.
  const wo::ByteWalk fw = wo::kWalkBackward[x];
  const wo::ByteWalk sfx = wo::kWalkForward[x];

  n_ += 8;
  ones_ += pop;
  if (!had) {
    first_bit_ = first;
  } else if (prev != first) {
    ++transitions_;
  }
  transitions_ += trans;
  last_bit_ = last;
  if (had) {
    if (prev && first) ++t11_;
    else if (prev) ++t10_;
    else if (first) ++t01_;
  }
  t11_ += b11;
  t10_ += b10;
  t01_ += b01;
  max_prefix_ = std::max(max_prefix_, walk_ + fw.max_prefix);
  min_prefix_ = std::min(min_prefix_, walk_ + fw.min_prefix);
  max_suffix_ = std::max<std::int64_t>(
      {0, static_cast<std::int64_t>(sfx.max_prefix), max_suffix_ + fw.delta});
  min_suffix_ = std::min<std::int64_t>(
      {0, static_cast<std::int64_t>(sfx.min_prefix), min_suffix_ + fw.delta});
  walk_ += fw.delta;
  cur_block_ones_ += pop;
  cur_block_fill_ += 8;
  if (cur_block_fill_ == config_.block_len) finish_block();
  if (in_window) {
    if (prev && first) ++w_t11_;
    else if (prev) ++w_t10_;
    else if (first) ++w_t01_;
  }
  w_t11_ += b11;
  w_t10_ += b10;
  w_t01_ += b01;
  w_ones_ += pop;
  w_fill_ += 8;
  if (w_fill_ == config_.window_bits) finish_window();
}

void SourceTracker::finish_block() {
  const std::int64_t d = static_cast<std::int64_t>(cur_block_ones_) -
                         static_cast<std::int64_t>(config_.block_len / 2);
  block_sum_sq_ += static_cast<std::uint64_t>(d * d);
  ++blocks_;
  cur_block_ones_ = 0;
  cur_block_fill_ = 0;
}

void SourceTracker::finish_window() {
  const double mcv =
      replica_mcv_h(config_.window_bits, w_ones_);
  const double markov = replica_markov_h(config_.window_bits, w_ones_, w_t11_,
                                         w_t10_, w_t01_);
  w_mcv_last_ = mcv;
  w_markov_last_ = markov;
  if (windows_ == 0) {
    w_mcv_min_ = mcv;
    w_markov_min_ = markov;
  } else {
    w_mcv_min_ = std::min(w_mcv_min_, mcv);
    w_markov_min_ = std::min(w_markov_min_, markov);
  }
  ++windows_;
  w_ones_ = 0;
  w_t11_ = w_t10_ = w_t01_ = 0;
  w_fill_ = 0;
}

void SourceTracker::feed_bit(bool bit) { step_bit(bit); }

void SourceTracker::feed_word(std::uint64_t bits, std::size_t nbits) {
  if (nbits > 64) {
    throw std::invalid_argument("SourceTracker::feed_word: nbits > 64");
  }
  while (nbits >= 8 && (n_ % 8) == 0) {
    step_byte_lsb(static_cast<std::uint8_t>(bits & 0xff));
    bits >>= 8;
    nbits -= 8;
  }
  for (std::size_t i = 0; i < nbits; ++i) {
    step_bit(((bits >> i) & 1u) != 0);
  }
}

void SourceTracker::feed_bytes(const std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if ((n_ % 8) == 0) {
      step_byte_msb(data[i]);
    } else {
      for (int b = 7; b >= 0; --b) {
        step_bit(((data[i] >> b) & 1u) != 0);
      }
    }
  }
}

void SourceTracker::merge(const SourceTracker& rhs) {
  if (config_.block_len != rhs.config_.block_len ||
      config_.window_bits != rhs.config_.window_bits) {
    throw std::invalid_argument("SourceTracker::merge: config mismatch");
  }
  const std::uint64_t align =
      std::max(config_.block_len, config_.window_bits);
  if (n_ % align != 0) {
    throw std::invalid_argument(
        "SourceTracker::merge: left stream not aligned to "
        "max(block_len, window_bits); merged blocks/windows would shift");
  }
  if (rhs.n_ == 0) return;
  if (n_ > 0) {
    transitions_ += rhs.transitions_ + (last_bit_ != rhs.first_bit_ ? 1 : 0);
    if (last_bit_ && rhs.first_bit_) ++t11_;
    else if (last_bit_) ++t10_;
    else if (rhs.first_bit_) ++t01_;
  } else {
    transitions_ = rhs.transitions_;
    first_bit_ = rhs.first_bit_;
  }
  last_bit_ = rhs.last_bit_;
  t11_ += rhs.t11_;
  t10_ += rhs.t10_;
  t01_ += rhs.t01_;
  // rhs's walk extremes, re-based on this walk's endpoint (prefixes) and
  // displaced suffixes; both sides' extremes include the empty walk.
  max_prefix_ = std::max(max_prefix_, walk_ + rhs.max_prefix_);
  min_prefix_ = std::min(min_prefix_, walk_ + rhs.min_prefix_);
  max_suffix_ = std::max(rhs.max_suffix_, max_suffix_ + rhs.walk_);
  min_suffix_ = std::min(rhs.min_suffix_, min_suffix_ + rhs.walk_);
  walk_ += rhs.walk_;
  // Alignment guarantees this tracker's partial block/window are empty,
  // so rhs's partials carry over verbatim.
  block_sum_sq_ += rhs.block_sum_sq_;
  blocks_ += rhs.blocks_;
  cur_block_ones_ = rhs.cur_block_ones_;
  cur_block_fill_ = rhs.cur_block_fill_;
  if (rhs.windows_ > 0) {
    w_mcv_last_ = rhs.w_mcv_last_;
    w_markov_last_ = rhs.w_markov_last_;
    if (windows_ == 0) {
      w_mcv_min_ = rhs.w_mcv_min_;
      w_markov_min_ = rhs.w_markov_min_;
    } else {
      w_mcv_min_ = std::min(w_mcv_min_, rhs.w_mcv_min_);
      w_markov_min_ = std::min(w_markov_min_, rhs.w_markov_min_);
    }
    windows_ += rhs.windows_;
  }
  w_ones_ = rhs.w_ones_;
  w_t11_ = rhs.w_t11_;
  w_t10_ = rhs.w_t10_;
  w_t01_ = rhs.w_t01_;
  w_fill_ = rhs.w_fill_;
  n_ += rhs.n_;
  ones_ += rhs.ones_;
}

Snapshot SourceTracker::snapshot() const {
  Snapshot s;
  s.block_len = config_.block_len;
  s.window_bits = config_.window_bits;
  s.bits = n_;
  s.ones = ones_;
  s.runs_v = n_ > 0 ? transitions_ + 1 : 0;
  s.cusum_fwd_peak = std::max(max_prefix_, -min_prefix_);
  s.cusum_bwd_peak = std::max(max_suffix_, -min_suffix_);
  s.blocks = blocks_;
  s.block_sum_sq = block_sum_sq_;
  s.markov_t11 = t11_;
  s.markov_t10 = t10_;
  s.markov_t01 = t01_;
  s.windows = windows_;
  s.frequency_valid = n_ >= 1;
  s.runs_valid = n_ >= 1;
  s.cusum_valid = n_ >= 1;
  s.block_frequency_valid = blocks_ >= 1;
  s.mcv_valid = n_ >= 2;
  s.markov_valid = n_ >= 2;
  // Empty-stream tail semantics: the scalar frequency/runs kernels
  // divide by n and yield NaN on empty input, so those p-values stay at
  // their no-data default (1.0, valid = false).  Everything else is
  // well-defined for every n and computed unconditionally, matching the
  // scalar result exactly (cusum: z = 0 -> 0.0; block frequency with 0
  // blocks: igamc(0, 0) = 1.0; mcv/markov: p_max = 1.0 below 2 bits).
  if (s.frequency_valid) s.frequency_p = replica_frequency_p(n_, ones_);
  s.block_frequency_p =
      replica_block_frequency_p(blocks_, block_sum_sq_, config_.block_len);
  if (s.runs_valid) s.runs_p = replica_runs_p(n_, ones_, s.runs_v);
  s.cusum_fwd_p = replica_cusum_p(n_, s.cusum_fwd_peak);
  s.cusum_bwd_p = replica_cusum_p(n_, s.cusum_bwd_peak);
  s.mcv_h = replica_mcv_h(n_, ones_);
  s.markov_h = replica_markov_h(n_, ones_, t11_, t10_, t01_);
  if (windows_ > 0) {
    s.window_mcv_h_last = w_mcv_last_;
    s.window_markov_h_last = w_markov_last_;
    s.window_mcv_h_min = w_mcv_min_;
    s.window_markov_h_min = w_markov_min_;
  }
  return s;
}

}  // namespace dhtrng::stats::streaming
