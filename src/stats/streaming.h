// Streaming online certification — incremental, mergeable versions of the
// cheap SP 800-22 kernels (monobit, block frequency, runs, cumulative
// sums) plus a tumbling-window SP 800-90B MCV/Markov min-entropy
// estimate, maintained as O(1)-state accumulators while bytes flow
// through core::EntropyPool.  This is AIS-31's online-test model promoted
// to a first-class service feature: the tracker certifies the *served*
// stream (bits that passed the RCT/APT health gate), not an offline
// sample.
//
// Correctness contract: a SourceTracker fed any chunking of a stream
// (bits, bytes, words, merges of sub-trackers) yields a snapshot() whose
// statistics and p-values are *bit-exactly* equal to the retained
// Engine::Scalar batch kernels over the same bits:
//
//   frequency_p        == sp800_22::frequency(bits)
//   block_frequency_p  == sp800_22::block_frequency(bits, block_len)
//   runs_p             == sp800_22::runs(bits)
//   cusum_{fwd,bwd}_p  == sp800_22::cumulative_sums(bits)
//   mcv_h / markov_h   == sp800_90b::{mcv,markov}(bits).h_min
//   window h values    == sp800_90b::{mcv,markov}(window slice).h_min
//
// The streaming state is purely integer sufficient statistics (popcounts,
// transition counts, ±1-walk prefix/suffix extremes via the
// support::wordops byte tables, per-block squared deviations); every
// floating-point operation happens at snapshot() time, replaying the
// scalar formulas' exact operation sequence.  Block frequency is the one
// kernel where the scalar code sums doubles in stream order — with
// block_len a power of two each term (pi - 0.5)^2 = d^2 / block_len^2 is
// an exactly-representable dyadic rational and the partial sums stay
// exact below 2^53, so the integer sum of d^2 reconstructs the scalar
// chi-square bit-for-bit in any order.  The formula replicas live in
// streaming.cpp and are kept honest by the differential battery
// (tests/stats/test_streaming_differential.cpp).
//
// Merge semantics: merge(rhs) appends rhs's stream after this tracker's.
// The result is exact when this tracker's bit count is a multiple of
// max(block_len, window_bits) (both powers of two, so that is their lcm)
// — then rhs's block and window grids land on the same offsets they had
// standalone.  Misaligned or config-mismatched merges throw.  The
// EntropyPool feeds each producer's tracker whole blocks, so the pool's
// merged view is always exact.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dhtrng::stats::streaming {

struct TrackerConfig {
  /// SP 800-22 2.2 block length for the streaming block-frequency test.
  /// Must be a power of two >= 8 (powers of two are what make the
  /// streaming chi-square exactly equal to the scalar sum).
  std::size_t block_len = 128;
  /// Tumbling-window size for the windowed 90B MCV/Markov estimates.
  /// Must be a power of two >= 8.
  std::size_t window_bits = 1024;
};

/// Decision thresholds for Snapshot::pass().  The default alpha is far
/// below SP 800-22's offline 0.01: an online monitor evaluates the same
/// growing stream at every snapshot, so the per-kernel false-alarm rate
/// has to sit near the AIS-31 online-test regime rather than the
/// one-shot-test regime.
struct Thresholds {
  double alpha = 1e-6;       ///< SP 800-22 p-value floor
  double min_entropy = 0.5;  ///< windowed 90B h_min floor (per bit)
};

/// One coherent view of a tracker's state: the integer sufficient
/// statistics (pinned by the KAT tests) plus the derived p-values and
/// min-entropy estimates.  `*_valid` flags mark kernels whose minimum
/// data requirement is met; invalid kernels report their no-data value
/// and are skipped by pass().
struct Snapshot {
  // Config echo (so a snapshot is self-describing in CERT output).
  std::size_t block_len = 0;
  std::size_t window_bits = 0;

  // Integer sufficient statistics.
  std::uint64_t bits = 0;
  std::uint64_t ones = 0;
  std::uint64_t runs_v = 0;          ///< SP 800-22 2.3 V_n (transitions + 1)
  std::int64_t cusum_fwd_peak = 0;   ///< max |S_k| of the forward ±1 walk
  std::int64_t cusum_bwd_peak = 0;   ///< max |S_k| of the backward walk
  std::uint64_t blocks = 0;          ///< complete block-frequency blocks
  std::uint64_t block_sum_sq = 0;    ///< sum over blocks of d^2, d = ones - L/2
  std::uint64_t markov_t11 = 0;      ///< 1->1 transitions (whole stream)
  std::uint64_t markov_t10 = 0;      ///< 1->0 transitions
  std::uint64_t markov_t01 = 0;      ///< 0->1 transitions
  std::uint64_t windows = 0;         ///< completed 90B windows

  // SP 800-22 p-values (scalar-engine exact).
  double frequency_p = 1.0;
  double block_frequency_p = 1.0;
  double runs_p = 1.0;
  double cusum_fwd_p = 1.0;
  double cusum_bwd_p = 1.0;
  bool frequency_valid = false;        ///< bits >= 1
  bool block_frequency_valid = false;  ///< blocks >= 1
  bool runs_valid = false;             ///< bits >= 1
  bool cusum_valid = false;            ///< bits >= 1

  // SP 800-90B min-entropy estimates (scalar-engine exact h_min).
  double mcv_h = 0.0;     ///< cumulative MCV over the whole stream
  double markov_h = 0.0;  ///< cumulative Markov over the whole stream
  bool mcv_valid = false;     ///< bits >= 2
  bool markov_valid = false;  ///< bits >= 2

  // Tumbling-window 90B estimates (valid once windows >= 1).
  double window_mcv_h_last = 0.0;
  double window_markov_h_last = 0.0;
  double window_mcv_h_min = 0.0;   ///< min over all completed windows
  double window_markov_h_min = 0.0;

  /// Smallest live min-entropy evidence: the windowed last-window
  /// estimates when a window has completed, else the cumulative
  /// estimates, else 0 entropy claimed (no data).
  double live_min_entropy() const;

  /// Online pass/fail: every valid SP 800-22 p-value >= alpha and the
  /// last-window 90B estimates (the AIS-31 "current window" decision)
  /// >= min_entropy.  Trackers with no completed window fall back to the
  /// cumulative estimates once they are valid.
  bool pass(const Thresholds& t = {}) const;
};

/// Incremental certification state for one bit stream.  Feed order is
/// stream order; the three feed entry points only differ in how the bits
/// are packed:
///  * feed_bit(b)              — one bit;
///  * feed_word(w, nbits)      — nbits <= 64 samples, LSB-first (the
///                               HealthMonitor::feed_word convention);
///  * feed_bytes(p, len)       — bytes unpacked MSB-first (the pool's
///                               emission packing and
///                               BitStream::from_bytes convention).
class SourceTracker {
 public:
  explicit SourceTracker(TrackerConfig config = {});

  void feed_bit(bool bit);
  void feed_word(std::uint64_t bits, std::size_t nbits);
  void feed_bytes(const std::uint8_t* data, std::size_t len);

  /// Append rhs's stream after this tracker's.  Exact only when
  /// bits() % max(block_len, window_bits) == 0 (see file comment);
  /// throws std::invalid_argument on misalignment or config mismatch.
  void merge(const SourceTracker& rhs);

  Snapshot snapshot() const;

  std::uint64_t bits() const { return n_; }
  const TrackerConfig& config() const { return config_; }

 private:
  void step_bit(bool bit);
  void step_byte_lsb(std::uint8_t v);
  void step_byte_msb(std::uint8_t v);
  void finish_block();
  void finish_window();

  TrackerConfig config_;

  std::uint64_t n_ = 0;
  std::uint64_t ones_ = 0;

  // Runs: transition count plus the boundary bits for merging.
  std::uint64_t transitions_ = 0;
  bool first_bit_ = false;
  bool last_bit_ = false;

  // Cumulative sums: the ±1 walk's total displacement plus its prefix
  // and suffix extremes (all including the empty prefix/suffix = 0).
  std::int64_t walk_ = 0;
  std::int64_t max_prefix_ = 0;
  std::int64_t min_prefix_ = 0;
  std::int64_t max_suffix_ = 0;
  std::int64_t min_suffix_ = 0;

  // Block frequency: completed-block squared deviations + current block.
  std::uint64_t block_sum_sq_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t cur_block_ones_ = 0;
  std::size_t cur_block_fill_ = 0;

  // Markov transition counts over the whole stream.
  std::uint64_t t11_ = 0;
  std::uint64_t t10_ = 0;
  std::uint64_t t01_ = 0;

  // Tumbling 90B window: intra-window counts + completed-window results.
  std::uint64_t w_ones_ = 0;
  std::uint64_t w_t11_ = 0;
  std::uint64_t w_t10_ = 0;
  std::uint64_t w_t01_ = 0;
  std::size_t w_fill_ = 0;
  std::uint64_t windows_ = 0;
  double w_mcv_last_ = 0.0;
  double w_markov_last_ = 0.0;
  double w_mcv_min_ = 0.0;
  double w_markov_min_ = 0.0;
};

}  // namespace dhtrng::stats::streaming
