// AES-128/-256 block encryption (FIPS 197), encrypt-only — the block
// cipher behind the CTR_DRBG construction (core/drbg.h counterpart of
// SP 800-90A section 10.2.1).  Validated against the FIPS known-answer
// vectors in the tests.  Table-based implementation; this library's AES is
// for simulation-study plumbing, not constant-time production use (the
// header says so, loudly).
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace dhtrng::support {

class Aes {
 public:
  /// Key must be 16 (AES-128) or 32 (AES-256) bytes.
  explicit Aes(const std::vector<std::uint8_t>& key);

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;

  std::size_t rounds() const { return rounds_; }

 private:
  std::size_t rounds_;
  // Round keys: 4*(rounds+1) 32-bit words.
  std::array<std::uint32_t, 60> round_keys_{};
};

}  // namespace dhtrng::support
