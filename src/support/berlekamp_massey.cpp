#include "support/berlekamp_massey.h"

#include <bit>
#include <cstdint>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::support {

namespace {

// Fixed-width bit vector helpers (width = number of 64-bit words).

void shift_right_xor(std::vector<std::uint64_t>& dst,
                     const std::vector<std::uint64_t>& src,
                     std::size_t shift) {
  // dst ^= src >> shift   (logical shift across words; bit i of src lands on
  // bit i - shift of dst).
  const std::size_t word_shift = shift >> 6;
  const std::size_t bit_shift = shift & 63;
  const std::size_t words = dst.size();
  for (std::size_t w = 0; w + word_shift < words; ++w) {
    std::uint64_t v = src[w + word_shift] >> bit_shift;
    if (bit_shift != 0 && w + word_shift + 1 < words) {
      v |= src[w + word_shift + 1] << (64 - bit_shift);
    }
    dst[w] ^= v;
  }
}

std::uint64_t and_parity_shifted(const std::vector<std::uint64_t>& a,
                                 const std::vector<std::uint64_t>& b,
                                 std::size_t b_shift) {
  // parity( a & (b >> b_shift) )
  const std::size_t word_shift = b_shift >> 6;
  const std::size_t bit_shift = b_shift & 63;
  const std::size_t words = a.size();
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w + word_shift < words; ++w) {
    std::uint64_t v = b[w + word_shift] >> bit_shift;
    if (bit_shift != 0 && w + word_shift + 1 < words) {
      v |= b[w + word_shift + 1] << (64 - bit_shift);
    }
    acc ^= a[w] & v;
  }
  return static_cast<std::uint64_t>(std::popcount(acc)) & 1u;
}

}  // namespace

std::size_t linear_complexity(const BitStream& bits, std::size_t begin,
                              std::size_t len) {
  if (len == 0) return 0;
  // Word-parallel Berlekamp-Massey.  The connection polynomials C and B are
  // kept bit-reversed within a width-len window (bit (len-1-i) holds
  // coefficient c_i), so the discrepancy
  //     d_n = XOR_{i=0..L} c_i * s_{n-i}
  // becomes a masked popcount-parity of S with C shifted right by
  // (len-1-n), and the update C ^= B * x^(n-m) becomes a right shift.
  const std::size_t words = (len + 63) / 64;
  std::vector<std::uint64_t> s(words, 0);
  for (std::size_t i = 0; i < len; ++i) {
    if (bits[begin + i]) s[i >> 6] |= 1ULL << (i & 63);
  }
  std::vector<std::uint64_t> c(words, 0), b(words, 0), t;
  const auto set_top = [&](std::vector<std::uint64_t>& v) {
    v[(len - 1) >> 6] |= 1ULL << ((len - 1) & 63);
  };
  set_top(c);  // C(x) = 1
  set_top(b);  // B(x) = 1
  std::size_t l = 0;
  // m is the index of the last length change; the textbook initial value is
  // -1, which unsigned wraparound reproduces exactly (n - m == n + 1).
  std::size_t m = static_cast<std::size_t>(-1);
  for (std::size_t n = 0; n < len; ++n) {
    const std::uint64_t d = and_parity_shifted(s, c, len - 1 - n);
    if (d == 0) continue;
    if (2 * l <= n) {
      t = c;
      shift_right_xor(c, b, n - m);
      b = std::move(t);
      l = n + 1 - l;
      m = n;
    } else {
      shift_right_xor(c, b, n - m);
    }
  }
  return l;
}

}  // namespace dhtrng::support
