#include "support/berlekamp_massey.h"

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "support/bitstream.h"

namespace dhtrng::support {

std::size_t linear_complexity_ref(const BitStream& bits, std::size_t begin,
                                  std::size_t len) {
  if (len == 0) return 0;
  std::vector<std::uint8_t> s(len), c(len, 0), b(len, 0), t(len);
  for (std::size_t i = 0; i < len; ++i) s[i] = bits[begin + i] ? 1 : 0;
  c[0] = b[0] = 1;
  std::size_t l = 0;
  std::size_t m = static_cast<std::size_t>(-1);  // -1; n - m wraps to n + 1
  for (std::size_t n = 0; n < len; ++n) {
    std::uint8_t d = s[n];
    for (std::size_t i = 1; i <= l; ++i) {
      d = static_cast<std::uint8_t>(d ^ (c[i] & s[n - i]));
    }
    if (d == 0) continue;
    t = c;
    const std::size_t shift = n - m;
    for (std::size_t i = 0; i + shift < len; ++i) {
      c[i + shift] ^= b[i];  // C(x) ^= B(x) * x^shift
    }
    if (2 * l <= n) {
      l = n + 1 - l;
      m = n;
      b = t;
    }
  }
  return l;
}

std::size_t linear_complexity(const BitStream& bits, std::size_t begin,
                              std::size_t len) {
  if (len == 0) return 0;
  // Word-parallel Berlekamp-Massey.  The connection polynomials C and B are
  // kept bit-reversed within a width-len window (bit (len-1-i) holds
  // coefficient c_i), so the discrepancy
  //     d_n = XOR_{i=0..L} c_i * s_{n-i}
  // becomes a masked popcount-parity of S with C shifted right by
  // (len-1-n), and the update C ^= B * x^(n-m) becomes a right shift.
  // deg C <= L and deg B <= (L at the last length change), so both loops
  // only walk the words that support can reach — O(L/64) instead of
  // O(len/64) per step.
  const std::size_t words = (len + 63) / 64;
  constexpr std::size_t kStackWords = 64;  // blocks up to 4096 bits
  std::array<std::uint64_t, kStackWords> s_stack{}, c_stack{}, b_stack{},
      t_stack{};
  std::vector<std::uint64_t> heap;
  std::uint64_t *s, *c, *b, *t;
  if (words <= kStackWords) {
    s = s_stack.data(), c = c_stack.data(), b = b_stack.data(),
    t = t_stack.data();
  } else {
    heap.assign(4 * words, 0);
    s = heap.data(), c = s + words, b = c + words, t = b + words;
  }
  for (std::size_t w = 0; w < words; ++w) s[w] = bits.chunk64(begin + 64 * w);
  if ((len & 63) != 0) s[words - 1] &= (1ULL << (len & 63)) - 1;

  const auto set_top = [&](std::uint64_t* v) {
    v[(len - 1) >> 6] |= 1ULL << ((len - 1) & 63);
  };
  set_top(c);  // C(x) = 1
  set_top(b);  // B(x) = 1

  // dst ^= b >> shift, restricted to the dst bits B's support can reach
  // (B has coefficients 0..b_deg, i.e. window bits len-1-b_deg .. len-1).
  const auto xor_shifted_b = [&](std::size_t shift, std::size_t b_deg) {
    // shift >= len pushes even coefficient b_0 past the window: a no-op
    // (the reference's `i + shift < len` loop bound).  Reachable only on
    // the first discrepancy (m = -1), where shift = n + 1 can hit len.
    if (shift >= len) return;
    const std::size_t word_shift = shift >> 6;
    const unsigned bit_shift = static_cast<unsigned>(shift & 63);
    const std::size_t top = len - 1 - shift;
    const std::size_t bot = top >= b_deg ? top - b_deg : 0;
    for (std::size_t w = bot >> 6; w <= top >> 6; ++w) {
      std::uint64_t v = b[w + word_shift] >> bit_shift;
      if (bit_shift != 0 && w + word_shift + 1 < words) {
        v |= b[w + word_shift + 1] << (64 - bit_shift);
      }
      c[w] ^= v;
    }
  };

  std::size_t l = 0;
  std::size_t m = static_cast<std::size_t>(-1);  // -1; n - m wraps to n + 1
  std::size_t b_deg = 0;                         // support bound of B
  for (std::size_t n = 0; n < len; ++n) {
    // d_n: C >> (len-1-n) aligns coefficient c_{n-j} with s_j; the product
    // is nonzero only for j in [n-l, n].
    const std::size_t shift = len - 1 - n;
    const std::size_t word_shift = shift >> 6;
    const unsigned bit_shift = static_cast<unsigned>(shift & 63);
    const std::size_t lo = n >= l ? (n - l) >> 6 : 0;
    const std::size_t hi = n >> 6;
    std::uint64_t acc = 0;
    for (std::size_t w = lo; w <= hi; ++w) {
      std::uint64_t v = 0;
      if (w + word_shift < words) {
        v = c[w + word_shift] >> bit_shift;
        if (bit_shift != 0 && w + word_shift + 1 < words) {
          v |= c[w + word_shift + 1] << (64 - bit_shift);
        }
      }
      acc ^= s[w] & v;
    }
    if ((std::popcount(acc) & 1) == 0) continue;

    if (2 * l <= n) {
      for (std::size_t w = 0; w < words; ++w) t[w] = c[w];
      xor_shifted_b(n - m, b_deg);
      std::swap(b, t);  // B := previous C
      b_deg = l;
      l = n + 1 - l;
      m = n;
    } else {
      xor_shifted_b(n - m, b_deg);
    }
  }
  return l;
}

}  // namespace dhtrng::support
