// Berlekamp–Massey over GF(2): shortest LFSR generating a bit block.
// Used by the SP 800-22 linear complexity test.
#pragma once

#include <cstddef>

namespace dhtrng::support {

class BitStream;

/// Linear complexity (length of the shortest LFSR) of bits
/// [begin, begin + len) of the stream.  Word-parallel: connection
/// polynomials live in 64-bit words (stack-allocated up to 4096 bits), the
/// block is packed via chunk64, and the discrepancy / update loops touch
/// only the words the polynomial support can reach.
std::size_t linear_complexity(const BitStream& bits, std::size_t begin,
                              std::size_t len);

/// Textbook bit-at-a-time Berlekamp–Massey.  Returns the same value as
/// linear_complexity; kept as the Scalar statistics engine's oracle.
std::size_t linear_complexity_ref(const BitStream& bits, std::size_t begin,
                                  std::size_t len);

}  // namespace dhtrng::support
