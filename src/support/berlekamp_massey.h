// Berlekamp–Massey over GF(2): shortest LFSR generating a bit block.
// Used by the SP 800-22 linear complexity test.
#pragma once

#include <cstddef>

namespace dhtrng::support {

class BitStream;

/// Linear complexity (length of the shortest LFSR) of bits
/// [begin, begin + len) of the stream.
std::size_t linear_complexity(const BitStream& bits, std::size_t begin,
                              std::size_t len);

}  // namespace dhtrng::support
