#include "support/bitstream.h"

#include <bit>
#include <cctype>
#include <stdexcept>

namespace dhtrng::support {

BitStream::BitStream(std::size_t nbits, bool value)
    : words_((nbits + 63) / 64, value ? ~0ULL : 0ULL), size_(nbits) {
  if (value && (size_ & 63) != 0) {
    words_.back() &= (1ULL << (size_ & 63)) - 1;
  }
}

BitStream BitStream::from_string(const std::string& s) {
  BitStream bs;
  bs.reserve(s.size());
  for (char c : s) {
    if (c == '0' || c == '1') {
      bs.push_back(c == '1');
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("BitStream::from_string: bad character");
    }
  }
  return bs;
}

BitStream BitStream::from_bytes(const std::vector<std::uint8_t>& bytes) {
  BitStream bs;
  bs.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) bs.push_back((b >> i) & 1);
  }
  return bs;
}

bool BitStream::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitStream::at");
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void BitStream::push_back(bool bit) {
  if ((size_ & 63) == 0) words_.push_back(0);
  if (bit) words_.back() |= 1ULL << (size_ & 63);
  ++size_;
}

void BitStream::append(const BitStream& other) {
  // Fast path when this stream is word-aligned.
  if ((size_ & 63) == 0) {
    words_.insert(words_.end(), other.words_.begin(), other.words_.end());
    size_ += other.size_;
    return;
  }
  for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
}

std::size_t BitStream::count_ones() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitStream::count_ones(std::size_t begin, std::size_t len) const {
  if (begin + len > size_) throw std::out_of_range("BitStream::count_ones");
  std::size_t total = 0;
  std::size_t i = begin;
  const std::size_t end = begin + len;
  // Align to a word boundary, then count whole words.
  while (i < end && (i & 63) != 0) total += (*this)[i++] ? 1u : 0u;
  while (i + 64 <= end) {
    total += static_cast<std::size_t>(std::popcount(words_[i >> 6]));
    i += 64;
  }
  while (i < end) total += (*this)[i++] ? 1u : 0u;
  return total;
}

BitStream BitStream::slice(std::size_t begin, std::size_t len) const {
  if (begin + len > size_) throw std::out_of_range("BitStream::slice");
  BitStream out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back((*this)[begin + i]);
  return out;
}

std::uint64_t BitStream::word(std::size_t begin, std::size_t len) const {
  if (len > 64 || begin + len > size_) throw std::out_of_range("BitStream::word");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) v = (v << 1) | ((*this)[begin + i] ? 1u : 0u);
  return v;
}

std::vector<std::uint8_t> BitStream::to_bytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    if ((*this)[i]) out[i >> 3] |= static_cast<std::uint8_t>(0x80u >> (i & 7));
  }
  return out;
}

std::string BitStream::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

bool BitStream::operator==(const BitStream& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != other.words_[w]) return false;
  }
  return true;
}

BitStream BitStream::exclusive_or(const BitStream& a, const BitStream& b) {
  if (a.size_ != b.size_) throw std::invalid_argument("BitStream::exclusive_or: size mismatch");
  BitStream out;
  out.size_ = a.size_;
  out.words_.resize(a.words_.size());
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    out.words_[w] = a.words_[w] ^ b.words_[w];
  }
  return out;
}

std::uint64_t BitStream::chunk64(std::size_t pos) const {
  const std::size_t w = pos >> 6;
  const std::size_t s = pos & 63;
  std::uint64_t v = w < words_.size() ? words_[w] >> s : 0;
  if (s != 0 && w + 1 < words_.size()) v |= words_[w + 1] << (64 - s);
  // Mask off bits beyond size_.
  if (pos + 64 > size_) {
    const std::size_t valid = size_ > pos ? size_ - pos : 0;
    v = valid == 0 ? 0 : v & (valid >= 64 ? ~0ULL : ((1ULL << valid) - 1));
  }
  return v;
}

std::size_t BitStream::hamming_distance(std::size_t off_a, std::size_t off_b,
                                        std::size_t len) const {
  if (off_a + len > size_ || off_b + len > size_) {
    throw std::out_of_range("BitStream::hamming_distance");
  }
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 64 <= len; i += 64) {
    total += static_cast<std::size_t>(
        std::popcount(chunk64(off_a + i) ^ chunk64(off_b + i)));
  }
  if (i < len) {
    const std::uint64_t mask = (1ULL << (len - i)) - 1;
    total += static_cast<std::size_t>(
        std::popcount((chunk64(off_a + i) ^ chunk64(off_b + i)) & mask));
  }
  return total;
}

std::string BitStream::to_pbm(std::size_t width, std::size_t height,
                              bool invert) const {
  if (width * height > size_) throw std::out_of_range("BitStream::to_pbm");
  std::string out = "P1\n" + std::to_string(width) + " " +
                    std::to_string(height) + "\n";
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const bool bit = (*this)[y * width + x];
      out.push_back((bit != invert) ? '1' : '0');
      out.push_back(x + 1 == width ? '\n' : ' ');
    }
  }
  return out;
}

}  // namespace dhtrng::support
