// Packed bit sequence container.
//
// Every TRNG backend emits into a BitStream and every statistical test
// consumes one, so this is the common currency of the repository.  Bits are
// stored LSB-first inside 64-bit words; indexing is in emission order.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dhtrng::support {

class BitStream {
 public:
  BitStream() = default;
  explicit BitStream(std::size_t nbits, bool value = false);

  /// Parse from a string of '0'/'1' characters (whitespace ignored).
  static BitStream from_string(const std::string& s);
  /// Unpack bytes MSB-first (the usual transmission order of NIST data files).
  static BitStream from_bytes(const std::vector<std::uint8_t>& bytes);

  void push_back(bool bit);
  void append(const BitStream& other);
  void clear() { words_.clear(); size_ = 0; }
  void reserve(std::size_t nbits) { words_.reserve((nbits + 63) / 64); }

  bool operator[](std::size_t i) const {
    assert(i < size_ && "BitStream index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    assert(i < size_ && "BitStream index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) words_[i >> 6] |= mask; else words_[i >> 6] &= ~mask;
  }

  /// Bounds-checked operator[]: throws std::out_of_range.
  bool at(std::size_t i) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Word view of the packed storage: ceil(size()/64) words, bit i of the
  /// stream at bit (i & 63) of word (i >> 6).  Invariant: bits at positions
  /// >= size() in the final word are zero, so word-parallel kernels can
  /// popcount whole words without masking the tail.
  std::span<const std::uint64_t> words() const {
    return {words_.data(), words_.size()};
  }

  /// Number of 1 bits in the whole stream.
  std::size_t count_ones() const;
  /// Number of 1 bits in [begin, begin+len).
  std::size_t count_ones(std::size_t begin, std::size_t len) const;

  /// Sub-sequence copy of [begin, begin+len).
  BitStream slice(std::size_t begin, std::size_t len) const;

  /// Interpret bits [begin, begin+len) as an unsigned integer, first bit is
  /// the most significant (len <= 64).
  std::uint64_t word(std::size_t begin, std::size_t len) const;

  /// Pack to bytes MSB-first (padding the final byte with zeros).
  std::vector<std::uint8_t> to_bytes() const;
  std::string to_string() const;

  bool operator==(const BitStream& other) const;

  /// Bitwise XOR of two equal-length streams.
  static BitStream exclusive_or(const BitStream& a, const BitStream& b);

  /// 64 bits starting at position `pos` (LSB = bit at pos); bits past the
  /// end read as 0.  Word-parallel building block.
  std::uint64_t chunk64(std::size_t pos) const;

  /// Hamming distance between the windows [off_a, off_a+len) and
  /// [off_b, off_b+len) of this stream (word-parallel).
  std::size_t hamming_distance(std::size_t off_a, std::size_t off_b,
                               std::size_t len) const;

  /// Write an ASCII PBM (P1) image, row-major, `width` bits per row.  Used by
  /// the Figure 7 bitstream-image experiment.  `invert` renders 1 as white.
  std::string to_pbm(std::size_t width, std::size_t height,
                     bool invert = false) const;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace dhtrng::support
