#include "support/fft.h"

#include <array>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace dhtrng::support {

namespace {

void fft_impl(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

// --- Mixed-radix machinery for the fast real-DFT path -----------------------
//
// A Plan holds the factorization of the transform length plus two twiddle
// tables computed once (each entry an independent cos/sin call, so table
// error stays at ~1 ulp instead of accumulating through a recurrence):
//   twiddle[t]      = exp(-2*pi*i * t / n)        for the complex FFT stages
//   half_twiddle[k] = exp(-2*pi*i * k / (2*n))    for the real untangle step
// Plans are cached per length; the spectral test always asks for one length
// per stream size, so the cache stays tiny.

struct MixedRadixPlan {
  std::size_t n = 0;
  std::vector<std::size_t> factors;  // radix per recursion level, top-down
  std::vector<std::complex<double>> twiddle;
  std::vector<std::complex<double>> half_twiddle;
};

bool smooth235(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    while (n % f == 0) n /= f;
  }
  return n == 1;
}

std::shared_ptr<const MixedRadixPlan> mixed_radix_plan(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const MixedRadixPlan>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  auto plan = std::make_shared<MixedRadixPlan>();
  plan->n = n;
  std::size_t rem = n;
  for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    while (rem % f == 0) {
      plan->factors.push_back(f);
      rem /= f;
    }
  }
  plan->twiddle.resize(n);
  plan->half_twiddle.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(t) / static_cast<double>(n);
    plan->twiddle[t] = {std::cos(angle), std::sin(angle)};
    plan->half_twiddle[t] = {std::cos(angle / 2.0), std::sin(angle / 2.0)};
  }
  cache.emplace(n, plan);
  return plan;
}

// Specialized small-radix butterflies.  The generic radix-r combine costs
// r^2 complex multiplies per output group; exploiting the conjugate
// symmetry of the twiddle roots brings radix 5 down to 16 real multiplies
// and radix 3 down to 8 (the X_{r-q} outputs reuse the X_q products with a
// sign flip).  Constants are the real/imag parts of exp(-2*pi*i*q/r).
struct Radix5Consts {
  double c1, s1, c2, s2;
};

inline Radix5Consts radix5_consts() {
  static const Radix5Consts k = {
      std::cos(2.0 * std::numbers::pi / 5.0),
      std::sin(2.0 * std::numbers::pi / 5.0),
      std::cos(4.0 * std::numbers::pi / 5.0),
      std::sin(4.0 * std::numbers::pi / 5.0)};
  return k;
}

/// Forward DFT of 5 points: out_q = sum_p t_p exp(-2*pi*i*p*q/5).
inline void radix5_butterfly(const std::complex<double> t[5],
                             std::complex<double>& o0,
                             std::complex<double>& o1,
                             std::complex<double>& o2,
                             std::complex<double>& o3,
                             std::complex<double>& o4) {
  const Radix5Consts k = radix5_consts();
  const std::complex<double> a1 = t[1] + t[4];
  const std::complex<double> a2 = t[2] + t[3];
  const std::complex<double> b1 = t[1] - t[4];
  const std::complex<double> b2 = t[2] - t[3];
  const std::complex<double> m1 = t[0] + k.c1 * a1 + k.c2 * a2;
  const std::complex<double> m2 = t[0] + k.c2 * a1 + k.c1 * a2;
  const std::complex<double> n1 = k.s1 * b1 + k.s2 * b2;
  const std::complex<double> n2 = k.s2 * b1 - k.s1 * b2;
  // X_q = m - i*n and X_{5-q} = m + i*n; -i*(x+iy) = (y, -x).
  o0 = t[0] + a1 + a2;
  o1 = {m1.real() + n1.imag(), m1.imag() - n1.real()};
  o4 = {m1.real() - n1.imag(), m1.imag() + n1.real()};
  o2 = {m2.real() + n2.imag(), m2.imag() - n2.real()};
  o3 = {m2.real() - n2.imag(), m2.imag() + n2.real()};
}

/// Forward DFT of 3 points.
inline void radix3_butterfly(const std::complex<double> t[3],
                             std::complex<double>& o0,
                             std::complex<double>& o1,
                             std::complex<double>& o2) {
  static const double s = std::sin(2.0 * std::numbers::pi / 3.0);
  const std::complex<double> a = t[1] + t[2];
  const std::complex<double> b = t[1] - t[2];
  const std::complex<double> m = t[0] - 0.5 * a;
  const std::complex<double> n = s * b;
  o0 = t[0] + a;
  o1 = {m.real() + n.imag(), m.imag() - n.real()};
  o2 = {m.real() - n.imag(), m.imag() + n.real()};
}

// Decimation-in-time: DFT of in[0], in[stride], ..., in[(n-1)*stride] into
// out[0..n).  tw_stride = plan.n / n, so every twiddle w_n^x is
// plan.twiddle[x * tw_stride]; the index p*k0*tw_stride is bounded by
// (r-1)/r * plan.n, so no wrap-around is ever needed.
void mixed_radix_rec(const std::complex<double>* in, std::size_t stride,
                     std::complex<double>* out, std::size_t n,
                     const MixedRadixPlan& plan, std::size_t level,
                     std::size_t tw_stride) {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  if (n == 5) {
    const std::complex<double> t[5] = {in[0], in[stride], in[2 * stride],
                                       in[3 * stride], in[4 * stride]};
    radix5_butterfly(t, out[0], out[1], out[2], out[3], out[4]);
    return;
  }
  if (n == 3) {
    const std::complex<double> t[3] = {in[0], in[stride], in[2 * stride]};
    radix3_butterfly(t, out[0], out[1], out[2]);
    return;
  }
  if (n <= 5) {
    // Direct strided DFT leaf: avoids recursing to n == 1 and a separate
    // combine pass.  w_n^j = twiddle[j * (plan.n / n)] since n | plan.n.
    std::array<std::complex<double>, 5> x;
    for (std::size_t p = 0; p < n; ++p) x[p] = in[p * stride];
    const std::size_t unit = plan.n / n;
    for (std::size_t q = 0; q < n; ++q) {
      std::complex<double> acc = x[0];
      std::size_t j = 0;
      for (std::size_t p = 1; p < n; ++p) {
        j += q;
        if (j >= n) j -= n;
        acc += x[p] * plan.twiddle[j * unit];
      }
      out[q] = acc;
    }
    return;
  }
  const std::size_t r = plan.factors[level];
  const std::size_t m = n / r;
  for (std::size_t p = 0; p < r; ++p) {
    mixed_radix_rec(in + p * stride, stride * r, out + p * m, m, plan,
                    level + 1, tw_stride * r);
  }
  const auto& w = plan.twiddle;
  if (r == 2) {
    std::size_t idx = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::complex<double> t0 = out[k];
      const std::complex<double> t1 = out[m + k] * w[idx];
      out[k] = t0 + t1;
      out[m + k] = t0 - t1;
      idx += tw_stride;
    }
  } else if (r == 5) {
    std::complex<double> t[5];
    std::array<std::size_t, 5> idx{};
    for (std::size_t k = 0; k < m; ++k) {
      t[0] = out[k];
      for (std::size_t p = 1; p < 5; ++p) {
        t[p] = out[p * m + k] * w[idx[p]];
        idx[p] += p * tw_stride;
      }
      radix5_butterfly(t, out[k], out[m + k], out[2 * m + k], out[3 * m + k],
                       out[4 * m + k]);
    }
  } else {  // r == 3
    std::complex<double> t[3];
    std::size_t i1 = 0, i2 = 0;
    for (std::size_t k = 0; k < m; ++k) {
      t[0] = out[k];
      t[1] = out[m + k] * w[i1];
      t[2] = out[2 * m + k] * w[i2];
      i1 += tw_stride;
      i2 += 2 * tw_stride;
      radix3_butterfly(t, out[k], out[m + k], out[2 * m + k]);
    }
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { fft_impl(data, false); }

void ifft(std::vector<std::complex<double>>& data) { fft_impl(data, true); }

std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  if ((n & (n - 1)) == 0) {
    auto buf = data;
    fft(buf);
    return buf;
  }
  // Bluestein: X_k = conj(w_k) * sum_j (a_j w_j) * w_{k-j}, a circular
  // convolution evaluated with power-of-two FFTs of length m >= 2n - 1.
  // w_j = exp(-i pi j^2 / n); j^2 is reduced mod 2n to keep the angle small.
  const std::size_t m = std::bit_ceil(2 * n - 1);
  std::vector<std::complex<double>> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t j2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(j) * j) % (2ULL * n));
    const double angle = std::numbers::pi * static_cast<double>(j2) /
                         static_cast<double>(n);
    w[j] = {std::cos(angle), -std::sin(angle)};
  }
  std::vector<std::complex<double>> a(m, {0.0, 0.0}), b(m, {0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) a[j] = data[j] * w[j];
  b[0] = std::conj(w[0]);
  for (std::size_t j = 1; j < n; ++j) {
    b[j] = b[m - j] = std::conj(w[j]);
  }
  fft(a);
  fft(b);
  for (std::size_t j = 0; j < m; ++j) a[j] *= b[j];
  ifft(a);
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k];
  return out;
}

std::vector<double> real_dft_magnitudes(const std::vector<double>& signal) {
  const std::size_t n = signal.size();
  if (n == 0) return {};
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < n; ++i) buf[i] = {signal[i], 0.0};
  const auto spectrum = dft(buf);
  std::vector<double> mags(n / 2);
  for (std::size_t i = 0; i < mags.size(); ++i) mags[i] = std::abs(spectrum[i]);
  return mags;
}

bool fast_real_dft_available(std::size_t n) {
  return n >= 2 && n % 2 == 0 && smooth235(n / 2);
}

std::vector<double> real_dft_magnitudes_fast(const std::vector<double>& signal) {
  const std::size_t n = signal.size();
  if (!fast_real_dft_available(n)) {
    throw std::invalid_argument("real_dft_magnitudes_fast: unsupported length");
  }
  const std::size_t h = n / 2;
  const auto plan = mixed_radix_plan(h);

  // Pack the real signal into a half-length complex sequence
  // z_j = x_{2j} + i x_{2j+1} and transform it once.
  std::vector<std::complex<double>> z(h), zhat(h);
  for (std::size_t j = 0; j < h; ++j) {
    z[j] = {signal[2 * j], signal[2 * j + 1]};
  }
  mixed_radix_rec(z.data(), 1, zhat.data(), h, *plan, 0, 1);

  // Untangle: with E_k / O_k the DFTs of the even / odd subsequences,
  //   Z_k = E_k + i O_k  =>  E_k = (Z_k + conj(Z_{h-k}))/2,
  //                          O_k = (Z_k - conj(Z_{h-k}))/(2i),
  //   X_k = E_k + exp(-2*pi*i*k/n) O_k   for k = 0..h-1.
  std::vector<double> mags(h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::complex<double> zk = zhat[k];
    const std::complex<double> zc = std::conj(zhat[(h - k) % h]);
    const std::complex<double> e = 0.5 * (zk + zc);
    const std::complex<double> d = 0.5 * (zk - zc);           // = i O_k
    const std::complex<double> o(d.imag(), -d.real());        // O_k = -i d
    const std::complex<double> xk = e + plan->half_twiddle[k] * o;
    // sqrt(re^2 + im^2) instead of std::abs (hypot): magnitudes here are
    // O(sqrt(n)), nowhere near the over/underflow range hypot guards
    // against, and sqrt vectorizes.
    mags[k] = std::sqrt(xk.real() * xk.real() + xk.imag() * xk.imag());
  }
  return mags;
}

}  // namespace dhtrng::support
