#include "support/fft.h"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dhtrng::support {

namespace {

void fft_impl(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { fft_impl(data, false); }

void ifft(std::vector<std::complex<double>>& data) { fft_impl(data, true); }

std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (n == 0) return {};
  if ((n & (n - 1)) == 0) {
    auto buf = data;
    fft(buf);
    return buf;
  }
  // Bluestein: X_k = conj(w_k) * sum_j (a_j w_j) * w_{k-j}, a circular
  // convolution evaluated with power-of-two FFTs of length m >= 2n - 1.
  // w_j = exp(-i pi j^2 / n); j^2 is reduced mod 2n to keep the angle small.
  const std::size_t m = std::bit_ceil(2 * n - 1);
  std::vector<std::complex<double>> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t j2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(j) * j) % (2ULL * n));
    const double angle = std::numbers::pi * static_cast<double>(j2) /
                         static_cast<double>(n);
    w[j] = {std::cos(angle), -std::sin(angle)};
  }
  std::vector<std::complex<double>> a(m, {0.0, 0.0}), b(m, {0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) a[j] = data[j] * w[j];
  b[0] = std::conj(w[0]);
  for (std::size_t j = 1; j < n; ++j) {
    b[j] = b[m - j] = std::conj(w[j]);
  }
  fft(a);
  fft(b);
  for (std::size_t j = 0; j < m; ++j) a[j] *= b[j];
  ifft(a);
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * w[k];
  return out;
}

std::vector<double> real_dft_magnitudes(const std::vector<double>& signal) {
  const std::size_t n = signal.size();
  if (n == 0) return {};
  std::vector<std::complex<double>> buf(n);
  for (std::size_t i = 0; i < n; ++i) buf[i] = {signal[i], 0.0};
  const auto spectrum = dft(buf);
  std::vector<double> mags(n / 2);
  for (std::size_t i = 0; i < mags.size(); ++i) mags[i] = std::abs(spectrum[i]);
  return mags;
}

}  // namespace dhtrng::support
