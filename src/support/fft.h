// Iterative radix-2 complex FFT.  Used by the SP 800-22 discrete Fourier
// transform (spectral) test; sequence lengths there are up to 2^20, well
// within double precision.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace dhtrng::support {

/// In-place forward FFT.  data.size() must be a power of two (>= 1).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (scaled by 1/N).  data.size() must be a power of two.
void ifft(std::vector<std::complex<double>>& data);

/// Exact DFT of an arbitrary-length complex sequence via Bluestein's
/// chirp-z algorithm (power-of-two sizes dispatch to the plain FFT).
std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& data);

/// Magnitudes of the first floor(n/2) frequency bins of the exact length-n
/// DFT of a real signal (the SP 800-22 spectral-test convention; n need not
/// be a power of two).
std::vector<double> real_dft_magnitudes(const std::vector<double>& signal);

/// True when real_dft_magnitudes_fast accepts length n: n even with n/2 a
/// {2,3,5}-smooth integer.  The SP 800-22 workload n = 10^6 qualifies
/// (n/2 = 2^5 * 5^6).
bool fast_real_dft_available(std::size_t n);

/// Same bins as real_dft_magnitudes but via a cached-plan mixed-radix
/// complex FFT of length n/2 with even/odd real packing, instead of three
/// power-of-two Bluestein FFTs of length >= 2n.  Roughly an order of
/// magnitude faster at n = 10^6.  Results agree with real_dft_magnitudes to
/// normal FFT rounding (~1e-11 relative), not bitwise: callers that need
/// engine-exact decisions must re-check near-threshold values against the
/// exact path.  Throws std::invalid_argument when !fast_real_dft_available.
std::vector<double> real_dft_magnitudes_fast(const std::vector<double>& signal);

}  // namespace dhtrng::support
