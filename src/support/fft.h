// Iterative radix-2 complex FFT.  Used by the SP 800-22 discrete Fourier
// transform (spectral) test; sequence lengths there are up to 2^20, well
// within double precision.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace dhtrng::support {

/// In-place forward FFT.  data.size() must be a power of two (>= 1).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (scaled by 1/N).  data.size() must be a power of two.
void ifft(std::vector<std::complex<double>>& data);

/// Exact DFT of an arbitrary-length complex sequence via Bluestein's
/// chirp-z algorithm (power-of-two sizes dispatch to the plain FFT).
std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& data);

/// Magnitudes of the first floor(n/2) frequency bins of the exact length-n
/// DFT of a real signal (the SP 800-22 spectral-test convention; n need not
/// be a power of two).
std::vector<double> real_dft_magnitudes(const std::vector<double>& signal);

}  // namespace dhtrng::support
