#include "support/gf2.h"

#include <cmath>
#include <stdexcept>

namespace dhtrng::support {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_bits_(rows, 0) {
  if (cols > 64) throw std::invalid_argument("Gf2Matrix: cols > 64");
}

std::size_t Gf2Matrix::rank() const {
  std::vector<std::uint64_t> rows = row_bits_;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows.size(); ++col) {
    const std::uint64_t mask = 1ULL << col;
    // Find a pivot row with a 1 in this column.
    std::size_t pivot = rank;
    while (pivot < rows.size() && (rows[pivot] & mask) == 0) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r] & mask)) rows[r] ^= rows[rank];
    }
    ++rank;
  }
  return rank;
}

double gf2_full_rank_deficit_probability(std::size_t m, std::size_t deficit) {
  // P(rank = r) for a random m x m binary matrix with r = m - d:
  //   2^(r(2m-r) - m^2) * prod_{i=0}^{r-1} ((1-2^(i-m))^2 / (1-2^(i-r)))
  // and r(2m-r) - m^2 = -d^2 (SP 800-22 section 3.5).
  const double d = static_cast<double>(deficit);
  const double dm = static_cast<double>(m);
  const double r = dm - d;
  double prod = 1.0;
  for (std::size_t i = 0; i < m - deficit; ++i) {
    const double di = static_cast<double>(i);
    const double num = 1.0 - std::pow(2.0, di - dm);
    const double den = 1.0 - std::pow(2.0, di - r);
    prod *= num * num / den;
  }
  return std::pow(2.0, -d * d) * prod;
}

}  // namespace dhtrng::support
