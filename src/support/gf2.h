// Binary (GF(2)) matrix utilities for the SP 800-22 rank test.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace dhtrng::support {

/// Dense binary matrix with up to 64 columns, one word per row.
class Gf2Matrix {
 public:
  Gf2Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const {
    return (row_bits_[r] >> c) & 1u;
  }
  void set(std::size_t r, std::size_t c, bool v) {
    if (v) row_bits_[r] |= 1ULL << c; else row_bits_[r] &= ~(1ULL << c);
  }

  /// Replace a whole row at once; bit c of `bits` becomes column c.  Bits at
  /// or above cols() must be zero.  Word-parallel fill for the rank test.
  void set_row_bits(std::size_t r, std::uint64_t bits) { row_bits_[r] = bits; }

  /// Rank over GF(2) via word-parallel Gaussian elimination.
  std::size_t rank() const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint64_t> row_bits_;
};

/// Probability that a random m x m binary matrix has rank m - d
/// (d = 0, 1, ...), per the SP 800-22 rank-test derivation.
double gf2_full_rank_deficit_probability(std::size_t m, std::size_t deficit);

}  // namespace dhtrng::support
