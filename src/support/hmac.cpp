#include "support/hmac.h"

namespace dhtrng::support {

namespace {
constexpr std::size_t kBlock = 64;
}

HmacSha256::HmacSha256(const std::vector<std::uint8_t>& key) {
  std::vector<std::uint8_t> k = key;
  if (k.size() > kBlock) {
    const Sha256::Digest d = Sha256::hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0x00);

  std::vector<std::uint8_t> ipad(kBlock);
  opad_key_.resize(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad);
}

void HmacSha256::update(const std::uint8_t* data, std::size_t len) {
  inner_.update(data, len);
}

Sha256::Digest HmacSha256::finish() {
  const Sha256::Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Sha256::Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                           const std::vector<std::uint8_t>& message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

}  // namespace dhtrng::support
