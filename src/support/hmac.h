// HMAC-SHA256 (FIPS 198-1), validated against the RFC 4231 test vectors.
// Building block of the HMAC_DRBG construction in core/drbg.h.
#pragma once

#include <cstdint>
#include <vector>

#include "support/sha256.h"

namespace dhtrng::support {

/// One-shot HMAC-SHA256.
Sha256::Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                           const std::vector<std::uint8_t>& message);

/// Incremental HMAC for multi-part messages.
class HmacSha256 {
 public:
  explicit HmacSha256(const std::vector<std::uint8_t>& key);

  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }
  void update(std::uint8_t byte) { update(&byte, 1); }

  Sha256::Digest finish();

 private:
  std::vector<std::uint8_t> opad_key_;
  Sha256 inner_;
};

}  // namespace dhtrng::support
