#include "support/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dhtrng::support {

namespace {

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

void write_binary(const BitStream& bits, const std::string& path) {
  auto out = open_out(path, std::ios::binary);
  const auto bytes = bits.to_bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

BitStream read_binary(const std::string& path, std::size_t nbits) {
  auto in = open_in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  BitStream bits = BitStream::from_bytes(bytes);
  if (nbits == 0) return bits;
  if (nbits > bits.size()) {
    throw std::runtime_error("read_binary: file shorter than requested");
  }
  return bits.slice(0, nbits);
}

void write_ascii(const BitStream& bits, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  out << bits.to_string();
}

BitStream read_ascii(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return BitStream::from_string(ss.str());
}

}  // namespace dhtrng::support
