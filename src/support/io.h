// Bitstream file I/O, including the formats the external reference tools
// consume: raw packed bytes (NIST SP 800-90B `ea_non_iid`-style input) and
// the ASCII '0'/'1' "epsilon" format of the NIST SP 800-22 STS — so
// streams generated here can be cross-checked against the official suites
// and vice versa.
#pragma once

#include <string>

#include "support/bitstream.h"

namespace dhtrng::support {

/// Write packed bytes (MSB-first per byte, zero-padded tail).
void write_binary(const BitStream& bits, const std::string& path);

/// Read packed bytes; `nbits` trims the zero-padded tail (0 = 8 * filesize).
BitStream read_binary(const std::string& path, std::size_t nbits = 0);

/// Write the STS ASCII epsilon format ('0'/'1' characters, no separators).
void write_ascii(const BitStream& bits, const std::string& path);

/// Read ASCII '0'/'1' (whitespace ignored).
BitStream read_ascii(const std::string& path);

}  // namespace dhtrng::support
