// Bounded MPMC FIFO with blocking push/pop — the hand-off channel between
// entropy producers and consumers (core::EntropyPool) and a reusable
// backpressure primitive.
//
// Semantics:
//  * push blocks while the buffer is full (backpressure on producers);
//  * pop blocks while the buffer is empty;
//  * close() makes every pending and future push fail immediately, while
//    pops keep draining the remaining items and then fail — so a consumer
//    always sees every item produced before the close.
// FIFO order is global: items come out in the order their pushes completed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace dhtrng::support {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return slots_.size(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Blocking push; returns false (dropping the item) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || count_ < slots_.size(); });
    if (closed_) return false;
    slots_[(head_ + count_) % slots_.size()] = std::move(item);
    ++count_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || count_ == slots_.size()) return false;
      slots_[(head_ + count_) % slots_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional only after close() with the buffer drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    return take_locked(lock);
  }

  /// Non-blocking pop; empty optional when nothing is buffered.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ == 0) return std::nullopt;
    return take_locked(lock);
  }

  /// Fail pending/future pushes, let pops drain what remains, wake everyone.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::optional<T> take_locked(std::unique_lock<std::mutex>& lock) {
    T item = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace dhtrng::support
