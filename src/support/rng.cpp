#include "support/rng.h"

namespace dhtrng::support {

double Xoshiro256::gaussian() noexcept {
  if (gauss_valid_) {
    gauss_valid_ = false;
    return gauss_cache_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  gauss_cache_ = v * factor;
  gauss_valid_ = true;
  return u * factor;
}

void Xoshiro256::gaussian_fill(double* out, std::size_t n) noexcept {
  // Calls gaussian() in a loop *inside this translation unit*, so the
  // compiler inlines the polar method here while the per-call entry point
  // keeps its historical out-of-line cost.  The value stream and the
  // cached-pair state are exactly those of n successive gaussian() calls.
  for (std::size_t i = 0; i < n; ++i) out[i] = gaussian();
}

double Xoshiro256::exponential(double mean) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace dhtrng::support
