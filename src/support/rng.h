// Deterministic pseudo-random infrastructure used by the *simulation models*.
//
// Everything stochastic in this repository (gate jitter, metastable
// resolution, sub-threshold latching, ...) draws from one of these engines
// with an explicit 64-bit seed, so every experiment table is reproducible
// bit-for-bit.  Note the layering: these PRNGs play the role of the physical
// noise of the paper's FPGAs; the *product* of the simulated circuits is what
// the statistical test suites in src/stats evaluate.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace dhtrng::support {

/// SplitMix64 — used to expand a single user seed into independent stream
/// seeds (one per noise source / gate / ring).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator.  Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    gauss_valid_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() noexcept;

  /// Fill `out[0..n)` with the next `n` values of the gaussian() stream —
  /// bit-identical to n successive gaussian() calls (including the cached
  /// pair state), but one call per block so the event engine's batched
  /// noise path amortizes the call overhead.
  void gaussian_fill(double* out, std::size_t n) noexcept;

  /// Fast-noise mode: batched Box-Muller through the dispatched SIMD
  /// kernels (support/simd_noise.h).  NOT bit-compatible with the
  /// gaussian() stream — this is the documented fast-mode relaxation —
  /// and it leaves the cached-pair state untouched.  Every dispatch tier
  /// produces identical doubles.  Values come in pairs, so an odd `n`
  /// consumes one extra draw.  Defined in simd_noise.cpp.
  void gaussian_fill_fast(double* out, std::size_t n) noexcept;

  /// Raw 64-bit block fill (the fast-noise kernels' input stream).
  void fill_raw(std::uint64_t* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = (*this)();
  }

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double sigma) noexcept {
    return mean + sigma * gaussian();
  }

  /// Bernoulli trial.
  bool bernoulli(double p_true) noexcept { return uniform() < p_true; }

  /// Exponentially distributed with given mean (> 0).
  double exponential(double mean) noexcept;

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double gauss_cache_ = 0.0;
  bool gauss_valid_ = false;
};

}  // namespace dhtrng::support
