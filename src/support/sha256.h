// Self-contained SHA-256 (FIPS 180-4), used by the conditioning module as
// the vetted conditioning component of SP 800-90B section 3.1.5.1.
// Validated against the FIPS known-answer vectors in the tests.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace dhtrng::support {

class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Finalize and return the digest; the object must be reset() before
  /// further use.
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(const std::vector<std::uint8_t>& data);
  static std::string hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

}  // namespace dhtrng::support
