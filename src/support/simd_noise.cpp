// Dispatch layer for the fast-noise kernels + the scalar tier (this TU
// compiles simd_noise_kernels.inc with baseline flags; the AVX2/NEON tiers
// recompile the same include in their own TUs — see CMakeLists.txt).

#include "support/simd_noise.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "support/rng.h"

#define DHTRNG_KERNEL_NS scalar_k
#include "support/simd_noise_kernels.inc"
#undef DHTRNG_KERNEL_NS

namespace dhtrng::support::simd {

#if defined(__x86_64__) || defined(_M_X64)
// Defined in simd_noise_avx2.cpp (compiled with -mavx2 -mfma); only ever
// called after the runtime CPU check.
namespace avx2_k {
void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n);
void sin2pi_batch(const double* turns, double* out, std::size_t n);
void normal_cdf_batch(const double* x, double* out, std::size_t n);
std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p);
void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out);
}  // namespace avx2_k
#endif

#if defined(__aarch64__)
// Defined in simd_noise_neon.cpp; NEON is baseline on aarch64.
namespace neon_k {
void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n);
void sin2pi_batch(const double* turns, double* out, std::size_t n);
void normal_cdf_batch(const double* x, double* out, std::size_t n);
std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p);
void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out);
}  // namespace neon_k
#endif

namespace {

Tier hardware_tier() {
#if defined(__aarch64__)
  return Tier::Neon;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::Avx2;
  }
#endif
  return Tier::Scalar;
#else
  return Tier::Scalar;
#endif
}

std::atomic<Tier>& active_tier_slot() {
  static std::atomic<Tier> tier{detected_tier()};
  return tier;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Avx2:
      return "avx2";
    case Tier::Neon:
      return "neon";
    case Tier::Scalar:
      break;
  }
  return "scalar";
}

Tier detected_tier() {
  static const Tier tier = [] {
    const char* force = std::getenv("DHTRNG_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1') return Tier::Scalar;
    return hardware_tier();
  }();
  return tier;
}

Tier active_tier() { return active_tier_slot().load(std::memory_order_relaxed); }

Tier force_tier(Tier t) {
  if (t != Tier::Scalar && t != hardware_tier()) t = Tier::Scalar;
  return active_tier_slot().exchange(t, std::memory_order_relaxed);
}

void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n) {
  switch (active_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::Avx2:
      avx2_k::boxmuller_transform(raw, out, n);
      return;
#endif
#if defined(__aarch64__)
    case Tier::Neon:
      neon_k::boxmuller_transform(raw, out, n);
      return;
#endif
    default:
      scalar_k::boxmuller_transform(raw, out, n);
      return;
  }
}

void sin2pi_batch(const double* turns, double* out, std::size_t n) {
  switch (active_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::Avx2:
      avx2_k::sin2pi_batch(turns, out, n);
      return;
#endif
#if defined(__aarch64__)
    case Tier::Neon:
      neon_k::sin2pi_batch(turns, out, n);
      return;
#endif
    default:
      scalar_k::sin2pi_batch(turns, out, n);
      return;
  }
}

void normal_cdf_batch(const double* x, double* out, std::size_t n) {
  switch (active_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::Avx2:
      avx2_k::normal_cdf_batch(x, out, n);
      return;
#endif
#if defined(__aarch64__)
    case Tier::Neon:
      neon_k::normal_cdf_batch(x, out, n);
      return;
#endif
    default:
      scalar_k::normal_cdf_batch(x, out, n);
      return;
  }
}

std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p) {
  switch (active_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::Avx2:
      return avx2_k::uniform_lt_mask64(raw, p);
#endif
#if defined(__aarch64__)
    case Tier::Neon:
      return neon_k::uniform_lt_mask64(raw, p);
#endif
    default:
      return scalar_k::uniform_lt_mask64(raw, p);
  }
}

void XoshiroSoA::seed_lane(std::size_t lane, std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (int j = 0; j < 4; ++j) s[j][lane] = sm.next();
}

void XoshiroSoA::advance(std::uint64_t* out) {
  switch (active_tier()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Tier::Avx2:
      avx2_k::xoshiro_soa_advance(s, out);
      return;
#endif
#if defined(__aarch64__)
    case Tier::Neon:
      neon_k::xoshiro_soa_advance(s, out);
      return;
#endif
    default:
      scalar_k::xoshiro_soa_advance(s, out);
      return;
  }
}

void XoshiroSoA::fill(std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i + 64 <= n; i += 64) advance(out + i);
}

}  // namespace dhtrng::support::simd

namespace dhtrng::support {

void Xoshiro256::gaussian_fill_fast(double* out, std::size_t n) noexcept {
  std::uint64_t raw[256];
  std::size_t done = 0;
  while (n - done >= 2) {
    const std::size_t chunk = std::min<std::size_t>((n - done) & ~1ULL, 256);
    fill_raw(raw, chunk);
    simd::boxmuller_transform(raw, out + done, chunk);
    done += chunk;
  }
  if (done < n) {
    // Odd tail: Box-Muller produces pairs, so one draw is discarded (the
    // documented fast-mode stream dependence on fill boundaries).
    double pair[2];
    fill_raw(raw, 2);
    simd::boxmuller_transform(raw, pair, 2);
    out[done] = pair[0];
  }
}

}  // namespace dhtrng::support
