// Dispatch layer for the fast-noise kernels + the scalar tier (this TU
// compiles simd_noise_kernels.inc with baseline flags; the AVX2/NEON tiers
// recompile the same include in their own TUs — see CMakeLists.txt).

#include "support/simd_noise.h"

#include <atomic>
#include <cstdlib>

#include "support/rng.h"

#define DHTRNG_KERNEL_NS scalar_k
#include "support/simd_noise_kernels.inc"
#undef DHTRNG_KERNEL_NS

namespace dhtrng::support::simd {

// Every tier exports the same kernel set; the per-tier namespaces repeat
// this list (kept as a macro so a new kernel can't be declared for one
// tier and forgotten for another).
#define DHTRNG_KERNEL_DECLS                                                   \
  void boxmuller_transform(const std::uint64_t* raw, double* out,             \
                           std::size_t n);                                    \
  void boxmuller_fill(std::uint64_t s[4], double* out, std::size_t n);        \
  void xoshiro_soa_gaussian_fill(std::uint64_t s[4][64], double* out,         \
                                 std::size_t n);                              \
  void sin2pi_batch(const double* turns, double* out, std::size_t n);         \
  void sin2pi_batch_trimmed(const double* turns, double* out, std::size_t n); \
  void normal_cdf_batch(const double* x, double* out, std::size_t n);         \
  void normal_cdf_batch_trimmed(const double* x, double* out, std::size_t n); \
  void normal_cdf_batch_trimmed_gated(const double* x, double* out,           \
                                      std::size_t n, double cutoff);          \
  void fast_log_batch(const double* x, double* out, std::size_t n);           \
  void fast_log_batch_trimmed(const double* x, double* out, std::size_t n);   \
  void fast_exp_batch(const double* y, double* out, std::size_t n);           \
  void fast_exp_batch_trimmed(const double* y, double* out, std::size_t n);   \
  std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p); \
  std::uint64_t uniform_lt_mask64_hi(const std::uint64_t* raw,                \
                                     const double* p);                        \
  std::uint64_t uniform_lt_mask64_lo(const std::uint64_t* raw,                \
                                     const double* p);                        \
  void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out);

#if defined(__x86_64__) || defined(_M_X64)
// Defined in simd_noise_avx2.cpp (compiled with -mavx2 -mfma); only ever
// called after the runtime CPU check.
namespace avx2_k {
DHTRNG_KERNEL_DECLS
}  // namespace avx2_k
// `return f(...)` is valid for void f, so one form covers every kernel.
#define DHTRNG_DISPATCH(call)             \
  switch (active_tier()) {                \
    case Tier::Avx2:                      \
      return avx2_k::call;                \
    default:                              \
      return scalar_k::call;              \
  }
#elif defined(__aarch64__)
// Defined in simd_noise_neon.cpp; NEON is baseline on aarch64.
namespace neon_k {
DHTRNG_KERNEL_DECLS
}  // namespace neon_k
#define DHTRNG_DISPATCH(call)             \
  switch (active_tier()) {                \
    case Tier::Neon:                      \
      return neon_k::call;                \
    default:                              \
      return scalar_k::call;              \
  }
#else
#define DHTRNG_DISPATCH(call) return scalar_k::call;
#endif

namespace {

Tier hardware_tier() {
#if defined(__aarch64__)
  return Tier::Neon;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::Avx2;
  }
#endif
  return Tier::Scalar;
#else
  return Tier::Scalar;
#endif
}

std::atomic<Tier>& active_tier_slot() {
  static std::atomic<Tier> tier{detected_tier()};
  return tier;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Avx2:
      return "avx2";
    case Tier::Neon:
      return "neon";
    case Tier::Scalar:
      break;
  }
  return "scalar";
}

Tier detected_tier() {
  static const Tier tier = [] {
    const char* force = std::getenv("DHTRNG_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1') return Tier::Scalar;
    return hardware_tier();
  }();
  return tier;
}

Tier active_tier() { return active_tier_slot().load(std::memory_order_relaxed); }

Tier force_tier(Tier t) {
  if (t != Tier::Scalar && t != hardware_tier()) t = Tier::Scalar;
  return active_tier_slot().exchange(t, std::memory_order_relaxed);
}

void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n) {
  DHTRNG_DISPATCH(boxmuller_transform(raw, out, n))
}

void boxmuller_fill(std::uint64_t s[4], double* out, std::size_t n) {
  DHTRNG_DISPATCH(boxmuller_fill(s, out, n))
}

void sin2pi_batch(const double* turns, double* out, std::size_t n) {
  DHTRNG_DISPATCH(sin2pi_batch(turns, out, n))
}

void sin2pi_batch_trimmed(const double* turns, double* out, std::size_t n) {
  DHTRNG_DISPATCH(sin2pi_batch_trimmed(turns, out, n))
}

void normal_cdf_batch(const double* x, double* out, std::size_t n) {
  DHTRNG_DISPATCH(normal_cdf_batch(x, out, n))
}

void normal_cdf_batch_trimmed(const double* x, double* out, std::size_t n) {
  DHTRNG_DISPATCH(normal_cdf_batch_trimmed(x, out, n))
}

void normal_cdf_batch_trimmed_gated(const double* x, double* out,
                                    std::size_t n, double cutoff) {
  DHTRNG_DISPATCH(normal_cdf_batch_trimmed_gated(x, out, n, cutoff))
}

void fast_log_batch(const double* x, double* out, std::size_t n) {
  DHTRNG_DISPATCH(fast_log_batch(x, out, n))
}

void fast_log_batch_trimmed(const double* x, double* out, std::size_t n) {
  DHTRNG_DISPATCH(fast_log_batch_trimmed(x, out, n))
}

void fast_exp_batch(const double* y, double* out, std::size_t n) {
  DHTRNG_DISPATCH(fast_exp_batch(y, out, n))
}

void fast_exp_batch_trimmed(const double* y, double* out, std::size_t n) {
  DHTRNG_DISPATCH(fast_exp_batch_trimmed(y, out, n))
}

std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p) {
  DHTRNG_DISPATCH(uniform_lt_mask64(raw, p))
}

std::uint64_t uniform_lt_mask64_hi(const std::uint64_t* raw, const double* p) {
  DHTRNG_DISPATCH(uniform_lt_mask64_hi(raw, p))
}

std::uint64_t uniform_lt_mask64_lo(const std::uint64_t* raw, const double* p) {
  DHTRNG_DISPATCH(uniform_lt_mask64_lo(raw, p))
}

void XoshiroSoA::seed_lane(std::size_t lane, std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (int j = 0; j < 4; ++j) s[j][lane] = sm.next();
}

void XoshiroSoA::advance(std::uint64_t* out) {
  DHTRNG_DISPATCH(xoshiro_soa_advance(s, out))
}

void XoshiroSoA::fill(std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i + 64 <= n; i += 64) advance(out + i);
}

void XoshiroSoA::gaussian_fill(double* out, std::size_t n) {
  DHTRNG_DISPATCH(xoshiro_soa_gaussian_fill(s, out, n))
}

}  // namespace dhtrng::support::simd

namespace dhtrng::support {

void Xoshiro256::gaussian_fill_fast(double* out, std::size_t n) noexcept {
  // Fused xoshiro + Box-Muller straight from the generator state — no
  // intermediate raw buffer.  The fused stream is position-fixed, so any
  // chunking of fills yields the same values (the pre-fusion fill-then-
  // transform path only guaranteed that per chunk).
  simd::boxmuller_fill(s_, out, n & ~std::size_t{1});
  if ((n & 1) != 0) {
    // Odd tail: the fused kernel produces pairs, so one draw of the final
    // word is discarded (as with the pre-fusion path).
    double pair[2];
    simd::boxmuller_fill(s_, pair, 2);
    out[n - 1] = pair[0];
  }
}

}  // namespace dhtrng::support
