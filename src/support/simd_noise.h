// Runtime-dispatched SIMD noise kernels — the fast-noise mode's math core.
//
// The exact-doubles noise pipeline (Xoshiro256::gaussian_fill,
// FlickerNoise::fill, SharedSupplyNoise) draws one double at a time through
// the Marsaglia polar method; its value stream is pinned by the golden
// waveform digests and cannot be reordered.  The kernels here implement the
// documented `fast-noise` relaxation: batched Box-Muller and polynomial
// special functions over whole blocks, laid out so the compiler vectorizes
// them (AVX2 on x86-64, NEON on aarch64, plain scalar elsewhere).
//
// Dispatch contract: every tier produces *bit-identical* doubles.  All
// tiers compile the same kernel source (simd_noise_kernels.inc) with
// contraction disabled and explicit std::fma, and IEEE-754 makes +, -, *,
// /, sqrt and fma deterministic per lane — so vector width never changes a
// result, only wall-clock.  tests/noise/test_simd_dispatch.cpp asserts
// exact equality between the active tier and the forced-scalar path; the
// documented compatibility bound for future platforms is <= 2 ulp.
//
// Tier selection: the best tier the CPU supports, clamped to Scalar when
// the environment variable DHTRNG_FORCE_SCALAR=1 is set (the CI parity
// lane), or overridden programmatically with force_tier() (tests).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dhtrng::support {
class Xoshiro256;
}

namespace dhtrng::support::simd {

enum class Tier { Scalar, Avx2, Neon };

const char* tier_name(Tier t);

/// Best tier this CPU supports, after the DHTRNG_FORCE_SCALAR clamp.
/// Evaluated once per process.
Tier detected_tier();

/// Tier the kernels currently dispatch to (detected_tier() unless
/// force_tier() changed it).
Tier active_tier();

/// Test hook: force dispatch to `t` (clamped to what the CPU supports).
/// Returns the previously active tier.
Tier force_tier(Tier t);

/// Batched Box-Muller: consumes `n` raw 64-bit words and writes `n`
/// standard normals (`n` must be even; words are consumed in groups of
/// up to 4 pairs).  Deterministic: out[i] depends only on raw[] and i.
void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n);

/// out[i] = sin(2*pi*turns[i]) for turns in [0, 2); absolute error < 1e-15.
void sin2pi_batch(const double* turns, double* out, std::size_t n);

/// out[i] = Phi(x[i]), the standard normal CDF, via the Abramowitz-Stegun
/// 7.1.26 rational approximation (absolute error < 1e-6 — documented
/// fast-mode accuracy; exact mode keeps support::normal_cdf).
void normal_cdf_batch(const double* x, double* out, std::size_t n);

/// Bit i of the result is set iff the uniform in [0,1) derived from raw[i]
/// is < p[i] — 64 independent Bernoulli trials packed into one word (the
/// bitsliced backend's coin flips).  Exact in every tier.
std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p);

/// 64 parallel xoshiro256** streams in structure-of-arrays layout: state
/// word j of lane l is s[j][l].  One advance() yields 64 independent
/// uint64s (one per lane).  Seeded per lane via SplitMix64 like the scalar
/// Xoshiro256, so lanes are as independent as 64 separately-seeded scalar
/// generators.
struct XoshiroSoA {
  std::uint64_t s[4][64];

  void seed_lane(std::size_t lane, std::uint64_t seed);

  /// out[l] = next value of lane l's stream, for all 64 lanes.
  void advance(std::uint64_t* out);

  /// Fill `n` words (n a multiple of 64) lane-major: out[k*64 + l] is the
  /// k-th draw of lane l.
  void fill(std::uint64_t* out, std::size_t n);
};

}  // namespace dhtrng::support::simd
