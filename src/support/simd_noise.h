// Runtime-dispatched SIMD noise kernels — the fast-noise mode's math core.
//
// The exact-doubles noise pipeline (Xoshiro256::gaussian_fill,
// FlickerNoise::fill, SharedSupplyNoise) draws one double at a time through
// the Marsaglia polar method; its value stream is pinned by the golden
// waveform digests and cannot be reordered.  The kernels here implement the
// documented `fast-noise` relaxation: batched Box-Muller and polynomial
// special functions over whole blocks, laid out so the compiler vectorizes
// them (AVX2 on x86-64, NEON on aarch64, plain scalar elsewhere).
//
// Dispatch contract: every tier produces *bit-identical* doubles.  All
// tiers compile the same kernel source (simd_noise_kernels.inc) with
// contraction disabled and explicit std::fma, and IEEE-754 makes +, -, *,
// /, sqrt and fma deterministic per lane — so vector width never changes a
// result, only wall-clock.  tests/noise/test_simd_dispatch.cpp asserts
// exact equality between the active tier and the forced-scalar path; the
// documented compatibility bound for future platforms is <= 2 ulp.
//
// Tier selection: the best tier the CPU supports, clamped to Scalar when
// the environment variable DHTRNG_FORCE_SCALAR=1 is set (the CI parity
// lane), or overridden programmatically with force_tier() (tests).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dhtrng::support {
class Xoshiro256;
}

namespace dhtrng::support::simd {

enum class Tier { Scalar, Avx2, Neon };

const char* tier_name(Tier t);

/// Best tier this CPU supports, after the DHTRNG_FORCE_SCALAR clamp.
/// Evaluated once per process.
Tier detected_tier();

/// Tier the kernels currently dispatch to (detected_tier() unless
/// force_tier() changed it).
Tier active_tier();

/// Test hook: force dispatch to `t` (clamped to what the CPU supports).
/// Returns the previously active tier.
Tier force_tier(Tier t);

/// Batched Box-Muller: consumes `n` raw 64-bit words and writes `n`
/// standard normals (`n` must be even; words are consumed in groups of
/// up to 4 pairs).  Deterministic: out[i] depends only on raw[] and i.
/// One whole word per uniform — the unfused transform, kept for callers
/// that already hold a raw stream and for the dispatch-parity oracle.
void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n);

/// Fused fill: advances the xoshiro256** state `s` inline and writes `n`
/// standard normals (`n` must be even), two per raw word — the high 32
/// bits feed the Box-Muller radius (trimmed log, tail clipped at ~6.66
/// sigma), the low 32 bits the angle (trimmed sincos).  Per-sample
/// absolute error vs an exact Box-Muller of the same uniforms < 1e-6.
/// Position-fixed: normals 2j, 2j+1 depend only on the j-th word after
/// the incoming state, so chunked fills concatenate exactly.
void boxmuller_fill(std::uint64_t s[4], double* out, std::size_t n);

/// out[i] = sin(2*pi*turns[i]) for turns in [0, 2); absolute error < 1e-15.
void sin2pi_batch(const double* turns, double* out, std::size_t n);

/// Trimmed-grade sin(2*pi*t): absolute error < 1e-6 (measured ~3.1e-7) at
/// roughly half the polynomial work.  Fast-noise consumers only.
void sin2pi_batch_trimmed(const double* turns, double* out, std::size_t n);

/// out[i] = Phi(x[i]), the standard normal CDF, via the Abramowitz-Stegun
/// 7.1.26 rational approximation (absolute error < 1e-6 — documented
/// fast-mode accuracy; exact mode keeps support::normal_cdf).
void normal_cdf_batch(const double* x, double* out, std::size_t n);

/// Trimmed-grade Phi(x): same A&S 7.1.26 rational term (absolute error
/// 1.5e-7 dominates) over the trimmed exponential; total error < 1e-6.
void normal_cdf_batch_trimmed(const double* x, double* out, std::size_t n);

/// Group-gated trimmed Phi(x): any 4-lane group whose inputs all sit at or
/// above `cutoff` skips the evaluation and stores 1.0; a group with at
/// least one lane below the cutoff (and any tail lanes past the last full
/// group) evaluates exactly like normal_cdf_batch_trimmed.  The gate is
/// per-4-group in every tier, so tiers stay bit-identical.  Meant for
/// consumers that mask out far lanes anyway (the SoA engine's aperture
/// keep test): their downstream results are bit-identical at a fraction of
/// the CDF work when most lanes are far from an edge.
void normal_cdf_batch_trimmed_gated(const double* x, double* out,
                                    std::size_t n, double cutoff);

/// Elementwise accuracy-test entry points (dense sweeps vs libm live in
/// tests/support/test_fast_math.cpp).  Domains: log x in (0, 1], exp y
/// <= 0.  Budgets: full-grade rel err <= 1e-13 for fast_log, <= 5e-13
/// for fast_exp (the degree-10 Taylor truncates at ~2.2e-13 of the
/// result at the |r| = ln2/2 reduction boundary), trimmed <= 1e-6.
void fast_log_batch(const double* x, double* out, std::size_t n);
void fast_log_batch_trimmed(const double* x, double* out, std::size_t n);
void fast_exp_batch(const double* y, double* out, std::size_t n);
void fast_exp_batch_trimmed(const double* y, double* out, std::size_t n);

/// Bit i of the result is set iff the uniform in [0,1) derived from raw[i]
/// is < p[i] — 64 independent Bernoulli trials packed into one word (the
/// bitsliced backend's coin flips).  Exact in every tier.
std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p);

/// Sliced Bernoulli draws: the comparison consumes nowhere near 64 bits of
/// entropy, so each word is split into two independent 32-bit uniforms —
/// _hi compares the high half, _lo the low half (each in [0,1) at 2^-32
/// granularity; coin bias <= 2^-32, far below the model's probabilities).
/// Two coins per word halves the SoA engine's uniform word budget.
std::uint64_t uniform_lt_mask64_hi(const std::uint64_t* raw, const double* p);
std::uint64_t uniform_lt_mask64_lo(const std::uint64_t* raw, const double* p);

/// 64 parallel xoshiro256** streams in structure-of-arrays layout: state
/// word j of lane l is s[j][l].  One advance() yields 64 independent
/// uint64s (one per lane).  Seeded per lane via SplitMix64 like the scalar
/// Xoshiro256, so lanes are as independent as 64 separately-seeded scalar
/// generators.
struct XoshiroSoA {
  std::uint64_t s[4][64];

  void seed_lane(std::size_t lane, std::uint64_t seed);

  /// out[l] = next value of lane l's stream, for all 64 lanes.
  void advance(std::uint64_t* out);

  /// Fill `n` words (n a multiple of 64) lane-major: out[k*64 + l] is the
  /// k-th draw of lane l.
  void fill(std::uint64_t* out, std::size_t n);

  /// Fused fill of `n` standard normals (`n` even): each 64-lane advance
  /// yields 128 trimmed-grade normals via the fused Box-Muller (two per
  /// word, see boxmuller_fill).  A partial final advance consumes its
  /// first ceil(rem/2) words and deterministically discards the rest.
  void gaussian_fill(double* out, std::size_t n);
};

}  // namespace dhtrng::support::simd
