// AVX2 tier of the fast-noise kernels, written with intrinsics because the
// mixed integer/double control flow in the shared kernel source defeats the
// autovectorizer.  Every operation below mirrors the scalar tier
// (simd_noise_kernels.inc) one-for-one: the same IEEE-754 basic operations
// (+, -, *, /, sqrt), the same explicit FMAs in the same places, the same
// exact mask/select/bit operations.  Each of those is correctly rounded per
// lane, so this tier is bit-identical to the scalar tier — the property
// tests/noise/test_simd_dispatch.cpp asserts.  Only reached after the
// runtime __builtin_cpu_supports("avx2")/"fma" check in simd_noise.cpp.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace dhtrng::support::simd::avx2_k {

namespace {

const __m256d kMagic = _mm256_castsi256_pd(
    _mm256_set1_epi64x(0x4330000000000000LL));  // 2^52 with OR-able mantissa
const __m256d kTwo52 = _mm256_set1_pd(0x1p52);
const __m256d kInvTwo52 = _mm256_set1_pd(0x1p-52);
const __m256d kInvTwo32 = _mm256_set1_pd(0x1p-32);
const __m256d kSignBit = _mm256_set1_pd(-0.0);

inline std::uint64_t rotl64(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

// Scalar xoshiro256** advance for the fused fill — the state recurrence is
// serial, only the Box-Muller math vectorizes.  Mirrors xoshiro_next in
// simd_noise_kernels.inc (integer ops: identical on every tier).
inline std::uint64_t xoshiro_next(std::uint64_t s[4]) {
  const std::uint64_t s1 = s[1];
  const std::uint64_t out = rotl64(s1 * 5u, 7) * 9u;
  const std::uint64_t t = s1 << 17;
  s[2] ^= s[0];
  s[3] ^= s1;
  s[1] = s1 ^ s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl64(s[3], 45);
  return out;
}

// double(x) for x < 2^52 — mirrors small_u64_to_double.
inline __m256d small_u64_to_double(__m256i x) {
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(
                           x, _mm256_castpd_si256(kMagic))),
                       kTwo52);
}

inline __m256d u01_open(__m256i raw) {
  return _mm256_mul_pd(small_u64_to_double(_mm256_srli_epi64(raw, 12)),
                       kInvTwo52);
}

inline __m256d u01_closed(__m256i raw) {
  return _mm256_mul_pd(
      _mm256_add_pd(small_u64_to_double(_mm256_srli_epi64(raw, 12)),
                    _mm256_set1_pd(1.0)),
      kInvTwo52);
}

// log(x) for x in (0, 1] — mirrors fast_log.
inline __m256d fast_log(__m256d x) {
  const __m256i bits = _mm256_castpd_si256(x);
  __m256d e = _mm256_sub_pd(small_u64_to_double(_mm256_srli_epi64(bits, 52)),
                            _mm256_set1_pd(1022.0));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3fe0000000000000LL)));
  const __m256d fold =
      _mm256_cmp_pd(m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  // m += fold*m and e -= fold, with fold acting as {0,1}: exact either way.
  m = _mm256_add_pd(m, _mm256_and_pd(fold, m));
  e = _mm256_sub_pd(e, _mm256_and_pd(fold, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d r =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(0.11764705882352941);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.13333333333333333));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.15384615384615385));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.18181818181818182));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.22222222222222222));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.2857142857142857));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.4));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.6666666666666666));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(2.0));
  return _mm256_fmadd_pd(
      e, _mm256_set1_pd(6.93147180369123816490e-01),
      _mm256_fmadd_pd(
          p, r,
          _mm256_mul_pd(e, _mm256_set1_pd(1.90821492927058770002e-10))));
}

// Trimmed log for x in (0, 1] — mirrors fast_log_t (4-term atanh series,
// single-constant ln2).
inline __m256d fast_log_t(__m256d x) {
  const __m256i bits = _mm256_castpd_si256(x);
  __m256d e = _mm256_sub_pd(small_u64_to_double(_mm256_srli_epi64(bits, 52)),
                            _mm256_set1_pd(1022.0));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3fe0000000000000LL)));
  const __m256d fold =
      _mm256_cmp_pd(m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  m = _mm256_add_pd(m, _mm256_and_pd(fold, m));
  e = _mm256_sub_pd(e, _mm256_and_pd(fold, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d r =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(0.2857142857142857);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.4));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.6666666666666666));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(2.0));
  return _mm256_fmadd_pd(e, _mm256_set1_pd(6.93147180559945286227e-01),
                         _mm256_mul_pd(p, r));
}

// exp(y) for y <= 0 — mirrors fast_exp.
inline __m256d fast_exp(__m256d y) {
  __m256d n = _mm256_floor_pd(_mm256_fmadd_pd(
      y, _mm256_set1_pd(1.4426950408889634074), _mm256_set1_pd(0.5)));
  n = _mm256_max_pd(n, _mm256_set1_pd(-1022.0));
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-6.93145751953125e-1), y);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-1.42860682030941723212e-6), r);
  __m256d p = _mm256_set1_pd(2.755731922398589e-7);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.7557319223985893e-6));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.48015873015873e-5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.984126984126984e-4));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.3888888888888889e-3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(8.333333333333333e-3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(4.1666666666666664e-2));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.16666666666666666));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  // 2^n via exponent bits: n is integral in [-1022, 0].
  const __m128i ni = _mm256_cvttpd_epi32(n);
  const __m256i ni64 = _mm256_cvtepi32_epi64(ni);
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(ni64, _mm256_set1_epi64x(1023)), 52));
  const __m256d out = _mm256_mul_pd(p, scale);
  const __m256d tiny = _mm256_cmp_pd(y, _mm256_set1_pd(-708.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(tiny, out);
}

// Trimmed exp for y <= 0 — mirrors fast_exp_t (Taylor cut at r^6/720).
inline __m256d fast_exp_t(__m256d y) {
  __m256d n = _mm256_floor_pd(_mm256_fmadd_pd(
      y, _mm256_set1_pd(1.4426950408889634074), _mm256_set1_pd(0.5)));
  n = _mm256_max_pd(n, _mm256_set1_pd(-1022.0));
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-6.93145751953125e-1), y);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-1.42860682030941723212e-6), r);
  __m256d p = _mm256_set1_pd(1.3888888888888889e-3);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(8.333333333333333e-3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(4.1666666666666664e-2));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.16666666666666666));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  const __m128i ni = _mm256_cvttpd_epi32(n);
  const __m256i ni64 = _mm256_cvtepi32_epi64(ni);
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(ni64, _mm256_set1_epi64x(1023)), 52));
  const __m256d out = _mm256_mul_pd(p, scale);
  const __m256d tiny = _mm256_cmp_pd(y, _mm256_set1_pd(-708.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(tiny, out);
}

// sin/cos of 2*pi*t — mirrors sincos2pi (quarter-turn reduction + Taylor).
inline void sincos2pi(__m256d t, __m256d& sin_out, __m256d& cos_out) {
  const __m256d a = _mm256_mul_pd(_mm256_set1_pd(4.0), t);
  const __m256d k = _mm256_floor_pd(_mm256_add_pd(a, _mm256_set1_pd(0.5)));
  const __m256d x = _mm256_mul_pd(_mm256_sub_pd(a, k),
                                  _mm256_set1_pd(1.5707963267948966));
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d sp = _mm256_set1_pd(-7.647163731819816e-13);
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(1.6059043836821613e-10));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-2.505210838544172e-8));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(2.7557319223985893e-6));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-1.984126984126984e-4));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(8.3333333333333333e-3));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-0.16666666666666666));
  const __m256d sinx = _mm256_fmadd_pd(_mm256_mul_pd(sp, x2), x, x);
  __m256d cp = _mm256_set1_pd(-1.1470745597729725e-11);
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(2.08767569878681e-9));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-2.7557319223985888e-7));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(2.48015873015873e-5));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-1.3888888888888889e-3));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(4.1666666666666664e-2));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-0.5));
  const __m256d cosx = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(1.0));
  // Quadrant selection: q = int(k); swap for odd q, negate sin for
  // q & 2, negate cos when bits 0 and 1 differ (q in {1, 2} mod 4).
  // Same bit-63 shift trick as the trimmed variant below — identical
  // selections, fewer mask-materialising uops.
  const __m256i q64 = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(k));
  const __m256i swap_bit = _mm256_slli_epi64(q64, 63);
  const __m256i sneg_bit = _mm256_slli_epi64(q64, 62);
  const __m256d swap_m = _mm256_castsi256_pd(swap_bit);
  __m256d s = _mm256_blendv_pd(sinx, cosx, swap_m);
  __m256d c = _mm256_blendv_pd(cosx, sinx, swap_m);
  s = _mm256_xor_pd(s,
                    _mm256_and_pd(_mm256_castsi256_pd(sneg_bit), kSignBit));
  c = _mm256_xor_pd(
      c, _mm256_and_pd(
             _mm256_castsi256_pd(_mm256_xor_si256(swap_bit, sneg_bit)),
             kSignBit));
  sin_out = s;
  cos_out = c;
}

// Trimmed sin/cos of 2*pi*t — mirrors sincos2pi_t (sin cut at x^7/7!,
// cos at x^8/8!).
inline void sincos2pi_t(__m256d t, __m256d& sin_out, __m256d& cos_out) {
  const __m256d a = _mm256_mul_pd(_mm256_set1_pd(4.0), t);
  const __m256d k = _mm256_floor_pd(_mm256_add_pd(a, _mm256_set1_pd(0.5)));
  const __m256d x = _mm256_mul_pd(_mm256_sub_pd(a, k),
                                  _mm256_set1_pd(1.5707963267948966));
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d sp = _mm256_set1_pd(-1.984126984126984e-4);
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(8.3333333333333333e-3));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-0.16666666666666666));
  const __m256d sinx = _mm256_fmadd_pd(_mm256_mul_pd(sp, x2), x, x);
  __m256d cp = _mm256_set1_pd(2.48015873015873e-5);
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-1.3888888888888889e-3));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(4.1666666666666664e-2));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-0.5));
  const __m256d cosx = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(1.0));
  // Quadrant q = int(k) drives swap (bit 0), sin negation (bit 1) and cos
  // negation (bit 0 ^ bit 1).  blendv and the sign xor only read bit 63,
  // so the quadrant bits are shifted straight up instead of being widened
  // through compare/convert mask chains — same selections, ~5 fewer uops
  // on the shuffle-heavy ports.  Bits above 1 shift out, so no & 3 mask.
  const __m256i q64 = _mm256_cvtepi32_epi64(_mm256_cvttpd_epi32(k));
  const __m256i swap_bit = _mm256_slli_epi64(q64, 63);
  const __m256i sneg_bit = _mm256_slli_epi64(q64, 62);
  const __m256d swap_m = _mm256_castsi256_pd(swap_bit);
  __m256d s = _mm256_blendv_pd(sinx, cosx, swap_m);
  __m256d c = _mm256_blendv_pd(cosx, sinx, swap_m);
  s = _mm256_xor_pd(s,
                    _mm256_and_pd(_mm256_castsi256_pd(sneg_bit), kSignBit));
  c = _mm256_xor_pd(
      c, _mm256_and_pd(
             _mm256_castsi256_pd(_mm256_xor_si256(swap_bit, sneg_bit)),
             kSignBit));
  sin_out = s;
  cos_out = c;
}

// One 4-pair Box-Muller group: raw[0..3] -> u1 lanes, raw[4..7] -> u2.
inline void bm_group4(const std::uint64_t* raw, double* out) {
  const __m256i raw1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw));
  const __m256i raw2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4));
  const __m256d u1 = u01_closed(raw1);
  const __m256d r = _mm256_sqrt_pd(
      _mm256_mul_pd(_mm256_set1_pd(-2.0), fast_log(u1)));
  __m256d s, c;
  sincos2pi(u01_open(raw2), s, c);
  const __m256d rc = _mm256_mul_pd(r, c);
  const __m256d rs = _mm256_mul_pd(r, s);
  // Interleave (rc, rs) pairs: [a0 b0 a1 b1], [a2 b2 a3 b3].
  const __m256d lo = _mm256_unpacklo_pd(rc, rs);  // a0 b0 a2 b2
  const __m256d hi = _mm256_unpackhi_pd(rc, rs);  // a1 b1 a3 b3
  _mm256_storeu_pd(out, _mm256_permute2f128_pd(lo, hi, 0x20));
  _mm256_storeu_pd(out + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
}

// Radial half of the fused Box-Muller group: 4 packed words -> the
// squared-radius operand v = -2 log_t(u1), where u1 comes from the words'
// high 32 bits.  Kept separate from the finish half so block transforms
// can run it as its own pass: the log's divide chain is ~60 cycles deep,
// and batching the radial pass over many independent groups lets the
// out-of-order core keep the divider busy instead of stalling on one
// group's log -> sqrt -> sincos chain end to end.
inline __m256d bm_radial4(__m256i ww) {
  const __m256d u1 = _mm256_mul_pd(
      _mm256_add_pd(small_u64_to_double(_mm256_srli_epi64(ww, 32)),
                    _mm256_set1_pd(1.0)),
      kInvTwo32);
  return _mm256_mul_pd(_mm256_set1_pd(-2.0), fast_log_t(u1));
}

// Finish half: square-root the radial operand, rotate by the angular
// uniform (low 32 bits), interleave and store 8 normals.
inline void bm_finish4(__m256i ww, __m256d v, double* out) {
  const __m256d r = _mm256_sqrt_pd(v);
  const __m256d u2 = _mm256_mul_pd(
      small_u64_to_double(
          _mm256_and_si256(ww, _mm256_set1_epi64x(0xffffffffLL))),
      kInvTwo32);
  __m256d s, c;
  sincos2pi_t(u2, s, c);
  const __m256d rc = _mm256_mul_pd(r, c);
  const __m256d rs = _mm256_mul_pd(r, s);
  const __m256d lo = _mm256_unpacklo_pd(rc, rs);
  const __m256d hi = _mm256_unpackhi_pd(rc, rs);
  _mm256_storeu_pd(out, _mm256_permute2f128_pd(lo, hi, 0x20));
  _mm256_storeu_pd(out + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
}

// One fused Box-Muller group: 4 packed words -> 8 trimmed-grade normals
// (hi 32 bits radial, lo 32 bits angular) — mirrors bm_group_fused.
inline void bm_group_fused4(const std::uint64_t* w, double* out) {
  const __m256i ww =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  bm_finish4(ww, bm_radial4(ww), out);
}

// Two-pass block transform: words (a multiple of 4, at most 64) packed
// words -> 2*words normals.  Pass one computes every group's radial
// operand, pass two square-roots and rotates.  Each word's outputs are
// exactly bm_group_fused4's (the fused mapping is position-fixed), so
// this is a pure instruction-scheduling change — verified bit-identical
// by the SimdDispatch parity suite.
inline void bm_block_fused(const std::uint64_t* w, std::size_t words,
                           double* out) {
  __m256d v[16];
  const std::size_t groups = words / 4;
  for (std::size_t g = 0; g < groups; ++g) {
    v[g] = bm_radial4(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4 * g)));
  }
  for (std::size_t g = 0; g < groups; ++g) {
    bm_finish4(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4 * g)),
        v[g], out + 8 * g);
  }
}

}  // namespace

void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) bm_group4(raw + i, out + i);
  const std::size_t rem = n - i;
  if (rem != 0) {
    // Tail of 1-3 pairs: pad to a full group (pad lanes compute garbage
    // that is discarded; used lanes see exactly the scalar values).
    const std::size_t pairs = rem / 2;
    std::uint64_t pad[8] = {1, 1, 1, 1, 1, 1, 1, 1};
    double tmp[8];
    for (std::size_t j = 0; j < pairs; ++j) {
      pad[j] = raw[i + j];
      pad[4 + j] = raw[i + pairs + j];
    }
    bm_group4(pad, tmp);
    for (std::size_t j = 0; j < rem; ++j) out[i + j] = tmp[j];
  }
}

void boxmuller_fill(std::uint64_t s[4], double* out, std::size_t n) {
  // Fused fill: the xoshiro recurrence advances serially (loop-carried
  // dependency), the per-word Box-Muller math runs in two-pass blocks of
  // 64 words / 128 normals.  Position-fixed word->normal mapping keeps
  // this bit-identical to the scalar tier's group-of-8 loop.
  std::uint64_t w[64];
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    for (int j = 0; j < 64; ++j) w[j] = xoshiro_next(s);
    bm_block_fused(w, 64, out + i);
  }
  for (; i + 8 <= n; i += 8) {
    for (int j = 0; j < 4; ++j) w[j] = xoshiro_next(s);
    bm_group_fused4(w, out + i);
  }
  const std::size_t rem = n - i;  // 0, 2, 4 or 6
  if (rem != 0) {
    std::uint64_t pad[4] = {1, 1, 1, 1};
    double tmp[8];
    for (std::size_t j = 0; j < rem / 2; ++j) pad[j] = xoshiro_next(s);
    bm_group_fused4(pad, tmp);
    for (std::size_t j = 0; j < rem; ++j) out[i + j] = tmp[j];
  }
}

void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out);

void xoshiro_soa_gaussian_fill(std::uint64_t s[4][64], double* out,
                               std::size_t n) {
  std::uint64_t w[64];
  std::size_t done = 0;
  while (done < n) {
    xoshiro_soa_advance(s, w);
    const std::size_t take = n - done < 128 ? n - done : 128;
    std::size_t j = take / 8 * 8;
    bm_block_fused(w, j / 2, out + done);
    if (j < take) {
      const std::size_t rem = take - j;  // 2, 4 or 6
      std::uint64_t pad[4] = {1, 1, 1, 1};
      double tmp[8];
      for (std::size_t kw = 0; kw < rem / 2; ++kw) pad[kw] = w[j / 2 + kw];
      bm_group_fused4(pad, tmp);
      for (std::size_t kw = 0; kw < rem; ++kw) out[done + j + kw] = tmp[kw];
    }
    done += take;
  }
}

void sin2pi_batch(const double* turns, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d s, c;
    sincos2pi(_mm256_loadu_pd(turns + i), s, c);
    _mm256_storeu_pd(out + i, s);
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = turns[j];
    __m256d s, c;
    sincos2pi(_mm256_loadu_pd(tin), s, c);
    _mm256_storeu_pd(tout, s);
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void sin2pi_batch_trimmed(const double* turns, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d s, c;
    sincos2pi_t(_mm256_loadu_pd(turns + i), s, c);
    _mm256_storeu_pd(out + i, s);
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = turns[j];
    __m256d s, c;
    sincos2pi_t(_mm256_loadu_pd(tin), s, c);
    _mm256_storeu_pd(tout, s);
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

namespace {

inline __m256d cdf_group(__m256d x) {
  const __m256d z = _mm256_mul_pd(_mm256_andnot_pd(kSignBit, x),
                                  _mm256_set1_pd(0.7071067811865476));
  const __m256d t = _mm256_div_pd(
      _mm256_set1_pd(1.0),
      _mm256_fmadd_pd(_mm256_set1_pd(0.3275911), z, _mm256_set1_pd(1.0)));
  __m256d poly = _mm256_set1_pd(1.061405429);
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-1.453152027));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(1.421413741));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-0.284496736));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(0.254829592));
  const __m256d e =
      fast_exp(_mm256_xor_pd(_mm256_mul_pd(z, z), kSignBit));
  const __m256d half_erfc = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(poly, t)), e);
  const __m256d neg = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  return _mm256_blendv_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), half_erfc),
                          half_erfc, neg);
}

// Trimmed CDF: identical A&S rational term over the trimmed exponential.
inline __m256d cdf_group_t(__m256d x) {
  const __m256d z = _mm256_mul_pd(_mm256_andnot_pd(kSignBit, x),
                                  _mm256_set1_pd(0.7071067811865476));
  const __m256d t = _mm256_div_pd(
      _mm256_set1_pd(1.0),
      _mm256_fmadd_pd(_mm256_set1_pd(0.3275911), z, _mm256_set1_pd(1.0)));
  __m256d poly = _mm256_set1_pd(1.061405429);
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-1.453152027));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(1.421413741));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-0.284496736));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(0.254829592));
  const __m256d e =
      fast_exp_t(_mm256_xor_pd(_mm256_mul_pd(z, z), kSignBit));
  const __m256d half_erfc = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(poly, t)), e);
  const __m256d neg = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  return _mm256_blendv_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), half_erfc),
                          half_erfc, neg);
}

}  // namespace

void normal_cdf_batch(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, cdf_group(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, cdf_group(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void normal_cdf_batch_trimmed(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, cdf_group_t(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, cdf_group_t(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void normal_cdf_batch_trimmed_gated(const double* x, double* out,
                                    std::size_t n, double cutoff) {
  // Same per-4 gate as the scalar tier: a group with no lane below the
  // cutoff stores 1.0 and skips the CDF.  Tail lanes always evaluate.
  const __m256d cut = _mm256_set1_pd(cutoff);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xx = _mm256_loadu_pd(x + i);
    if (_mm256_movemask_pd(_mm256_cmp_pd(xx, cut, _CMP_LT_OQ)) == 0) {
      _mm256_storeu_pd(out + i, one);
    } else {
      _mm256_storeu_pd(out + i, cdf_group_t(xx));
    }
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, cdf_group_t(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

// Elementwise accuracy-test entry points — pad lanes use in-domain values
// (1.0 for log, 0.0 for exp) so no spurious FP exceptions fire.
void fast_log_batch(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, fast_log(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[4] = {1.0, 1.0, 1.0, 1.0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, fast_log(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void fast_log_batch_trimmed(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, fast_log_t(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[4] = {1.0, 1.0, 1.0, 1.0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, fast_log_t(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void fast_exp_batch(const double* y, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, fast_exp(_mm256_loadu_pd(y + i)));
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = y[j];
    _mm256_storeu_pd(tout, fast_exp(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

void fast_exp_batch_trimmed(const double* y, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, fast_exp_t(_mm256_loadu_pd(y + i)));
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = y[j];
    _mm256_storeu_pd(tout, fast_exp_t(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p) {
  std::uint64_t mask = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4 * g));
    const __m256d u = u01_open(r);
    const __m256d lt = _mm256_cmp_pd(u, _mm256_loadu_pd(p + 4 * g),
                                     _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(lt)))
            << (4 * g);
  }
  return mask;
}

std::uint64_t uniform_lt_mask64_hi(const std::uint64_t* raw,
                                   const double* p) {
  std::uint64_t mask = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4 * g));
    const __m256d u = _mm256_mul_pd(
        small_u64_to_double(_mm256_srli_epi64(r, 32)), kInvTwo32);
    const __m256d lt = _mm256_cmp_pd(u, _mm256_loadu_pd(p + 4 * g),
                                     _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(lt)))
            << (4 * g);
  }
  return mask;
}

std::uint64_t uniform_lt_mask64_lo(const std::uint64_t* raw,
                                   const double* p) {
  std::uint64_t mask = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4 * g));
    const __m256d u = _mm256_mul_pd(
        small_u64_to_double(
            _mm256_and_si256(r, _mm256_set1_epi64x(0xffffffffLL))),
        kInvTwo32);
    const __m256d lt = _mm256_cmp_pd(u, _mm256_loadu_pd(p + 4 * g),
                                     _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(lt)))
            << (4 * g);
  }
  return mask;
}

void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out) {
  for (int g = 0; g < 16; ++g) {
    const int l = 4 * g;
    __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[0][l]));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[1][l]));
    __m256i s2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[2][l]));
    __m256i s3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[3][l]));
    // result = rotl(s1*5, 7) * 9, with *5 and *9 as shift-adds.
    const __m256i x5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = _mm256_or_si256(_mm256_slli_epi64(x5, 7),
                                        _mm256_srli_epi64(x5, 57));
    const __m256i res = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + l), res);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45),
                         _mm256_srli_epi64(s3, 19));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[0][l]), s0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[1][l]), s1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[2][l]), s2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[3][l]), s3);
  }
}

}  // namespace dhtrng::support::simd::avx2_k

#endif
