// AVX2 tier of the fast-noise kernels, written with intrinsics because the
// mixed integer/double control flow in the shared kernel source defeats the
// autovectorizer.  Every operation below mirrors the scalar tier
// (simd_noise_kernels.inc) one-for-one: the same IEEE-754 basic operations
// (+, -, *, /, sqrt), the same explicit FMAs in the same places, the same
// exact mask/select/bit operations.  Each of those is correctly rounded per
// lane, so this tier is bit-identical to the scalar tier — the property
// tests/noise/test_simd_dispatch.cpp asserts.  Only reached after the
// runtime __builtin_cpu_supports("avx2")/"fma" check in simd_noise.cpp.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace dhtrng::support::simd::avx2_k {

namespace {

const __m256d kMagic = _mm256_castsi256_pd(
    _mm256_set1_epi64x(0x4330000000000000LL));  // 2^52 with OR-able mantissa
const __m256d kTwo52 = _mm256_set1_pd(0x1p52);
const __m256d kInvTwo52 = _mm256_set1_pd(0x1p-52);
const __m256d kSignBit = _mm256_set1_pd(-0.0);

// double(x) for x < 2^52 — mirrors small_u64_to_double.
inline __m256d small_u64_to_double(__m256i x) {
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(
                           x, _mm256_castpd_si256(kMagic))),
                       kTwo52);
}

inline __m256d u01_open(__m256i raw) {
  return _mm256_mul_pd(small_u64_to_double(_mm256_srli_epi64(raw, 12)),
                       kInvTwo52);
}

inline __m256d u01_closed(__m256i raw) {
  return _mm256_mul_pd(
      _mm256_add_pd(small_u64_to_double(_mm256_srli_epi64(raw, 12)),
                    _mm256_set1_pd(1.0)),
      kInvTwo52);
}

// log(x) for x in (0, 1] — mirrors fast_log.
inline __m256d fast_log(__m256d x) {
  const __m256i bits = _mm256_castpd_si256(x);
  __m256d e = _mm256_sub_pd(small_u64_to_double(_mm256_srli_epi64(bits, 52)),
                            _mm256_set1_pd(1022.0));
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3fe0000000000000LL)));
  const __m256d fold =
      _mm256_cmp_pd(m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  // m += fold*m and e -= fold, with fold acting as {0,1}: exact either way.
  m = _mm256_add_pd(m, _mm256_and_pd(fold, m));
  e = _mm256_sub_pd(e, _mm256_and_pd(fold, _mm256_set1_pd(1.0)));
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d r =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(0.11764705882352941);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.13333333333333333));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.15384615384615385));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.18181818181818182));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.22222222222222222));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.2857142857142857));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.4));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(0.6666666666666666));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(2.0));
  return _mm256_fmadd_pd(
      e, _mm256_set1_pd(6.93147180369123816490e-01),
      _mm256_fmadd_pd(
          p, r,
          _mm256_mul_pd(e, _mm256_set1_pd(1.90821492927058770002e-10))));
}

// exp(y) for y <= 0 — mirrors fast_exp.
inline __m256d fast_exp(__m256d y) {
  __m256d n = _mm256_floor_pd(_mm256_fmadd_pd(
      y, _mm256_set1_pd(1.4426950408889634074), _mm256_set1_pd(0.5)));
  n = _mm256_max_pd(n, _mm256_set1_pd(-1022.0));
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-6.93145751953125e-1), y);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-1.42860682030941723212e-6), r);
  __m256d p = _mm256_set1_pd(2.755731922398589e-7);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.7557319223985893e-6));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(2.48015873015873e-5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.984126984126984e-4));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.3888888888888889e-3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(8.333333333333333e-3));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(4.1666666666666664e-2));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.16666666666666666));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  // 2^n via exponent bits: n is integral in [-1022, 0].
  const __m128i ni = _mm256_cvttpd_epi32(n);
  const __m256i ni64 = _mm256_cvtepi32_epi64(ni);
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(ni64, _mm256_set1_epi64x(1023)), 52));
  const __m256d out = _mm256_mul_pd(p, scale);
  const __m256d tiny = _mm256_cmp_pd(y, _mm256_set1_pd(-708.0), _CMP_LT_OQ);
  return _mm256_andnot_pd(tiny, out);
}

// sin/cos of 2*pi*t — mirrors sincos2pi (quarter-turn reduction + Taylor).
inline void sincos2pi(__m256d t, __m256d& sin_out, __m256d& cos_out) {
  const __m256d a = _mm256_mul_pd(_mm256_set1_pd(4.0), t);
  const __m256d k = _mm256_floor_pd(_mm256_add_pd(a, _mm256_set1_pd(0.5)));
  const __m256d x = _mm256_mul_pd(_mm256_sub_pd(a, k),
                                  _mm256_set1_pd(1.5707963267948966));
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d sp = _mm256_set1_pd(-7.647163731819816e-13);
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(1.6059043836821613e-10));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-2.505210838544172e-8));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(2.7557319223985893e-6));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-1.984126984126984e-4));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(8.3333333333333333e-3));
  sp = _mm256_fmadd_pd(sp, x2, _mm256_set1_pd(-0.16666666666666666));
  const __m256d sinx = _mm256_fmadd_pd(_mm256_mul_pd(sp, x2), x, x);
  __m256d cp = _mm256_set1_pd(-1.1470745597729725e-11);
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(2.08767569878681e-9));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-2.7557319223985888e-7));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(2.48015873015873e-5));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-1.3888888888888889e-3));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(4.1666666666666664e-2));
  cp = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(-0.5));
  const __m256d cosx = _mm256_fmadd_pd(cp, x2, _mm256_set1_pd(1.0));
  // Quadrant selection: q = int(k) & 3; swap for odd q, negate sin for
  // q >= 2, negate cos for q in {1, 2}.
  const __m128i q32 =
      _mm_and_si128(_mm256_cvttpd_epi32(k), _mm_set1_epi32(3));
  const __m256i swap64 = _mm256_cvtepi32_epi64(
      _mm_cmpeq_epi32(_mm_and_si128(q32, _mm_set1_epi32(1)),
                      _mm_set1_epi32(1)));
  const __m256i sneg64 = _mm256_cvtepi32_epi64(
      _mm_cmpgt_epi32(q32, _mm_set1_epi32(1)));
  const __m256i cneg64 = _mm256_cvtepi32_epi64(_mm_or_si128(
      _mm_cmpeq_epi32(q32, _mm_set1_epi32(1)),
      _mm_cmpeq_epi32(q32, _mm_set1_epi32(2))));
  const __m256d swap_m = _mm256_castsi256_pd(swap64);
  __m256d s = _mm256_blendv_pd(sinx, cosx, swap_m);
  __m256d c = _mm256_blendv_pd(cosx, sinx, swap_m);
  s = _mm256_xor_pd(s, _mm256_and_pd(_mm256_castsi256_pd(sneg64), kSignBit));
  c = _mm256_xor_pd(c, _mm256_and_pd(_mm256_castsi256_pd(cneg64), kSignBit));
  sin_out = s;
  cos_out = c;
}

// One 4-pair Box-Muller group: raw[0..3] -> u1 lanes, raw[4..7] -> u2.
inline void bm_group4(const std::uint64_t* raw, double* out) {
  const __m256i raw1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw));
  const __m256i raw2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4));
  const __m256d u1 = u01_closed(raw1);
  const __m256d r = _mm256_sqrt_pd(
      _mm256_mul_pd(_mm256_set1_pd(-2.0), fast_log(u1)));
  __m256d s, c;
  sincos2pi(u01_open(raw2), s, c);
  const __m256d rc = _mm256_mul_pd(r, c);
  const __m256d rs = _mm256_mul_pd(r, s);
  // Interleave (rc, rs) pairs: [a0 b0 a1 b1], [a2 b2 a3 b3].
  const __m256d lo = _mm256_unpacklo_pd(rc, rs);  // a0 b0 a2 b2
  const __m256d hi = _mm256_unpackhi_pd(rc, rs);  // a1 b1 a3 b3
  _mm256_storeu_pd(out, _mm256_permute2f128_pd(lo, hi, 0x20));
  _mm256_storeu_pd(out + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
}

}  // namespace

void boxmuller_transform(const std::uint64_t* raw, double* out,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) bm_group4(raw + i, out + i);
  const std::size_t rem = n - i;
  if (rem != 0) {
    // Tail of 1-3 pairs: pad to a full group (pad lanes compute garbage
    // that is discarded; used lanes see exactly the scalar values).
    const std::size_t pairs = rem / 2;
    std::uint64_t pad[8] = {1, 1, 1, 1, 1, 1, 1, 1};
    double tmp[8];
    for (std::size_t j = 0; j < pairs; ++j) {
      pad[j] = raw[i + j];
      pad[4 + j] = raw[i + pairs + j];
    }
    bm_group4(pad, tmp);
    for (std::size_t j = 0; j < rem; ++j) out[i + j] = tmp[j];
  }
}

void sin2pi_batch(const double* turns, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d s, c;
    sincos2pi(_mm256_loadu_pd(turns + i), s, c);
    _mm256_storeu_pd(out + i, s);
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = turns[j];
    __m256d s, c;
    sincos2pi(_mm256_loadu_pd(tin), s, c);
    _mm256_storeu_pd(tout, s);
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

namespace {

inline __m256d cdf_group(__m256d x) {
  const __m256d z = _mm256_mul_pd(_mm256_andnot_pd(kSignBit, x),
                                  _mm256_set1_pd(0.7071067811865476));
  const __m256d t = _mm256_div_pd(
      _mm256_set1_pd(1.0),
      _mm256_fmadd_pd(_mm256_set1_pd(0.3275911), z, _mm256_set1_pd(1.0)));
  __m256d poly = _mm256_set1_pd(1.061405429);
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-1.453152027));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(1.421413741));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(-0.284496736));
  poly = _mm256_fmadd_pd(poly, t, _mm256_set1_pd(0.254829592));
  const __m256d e =
      fast_exp(_mm256_xor_pd(_mm256_mul_pd(z, z), kSignBit));
  const __m256d half_erfc = _mm256_mul_pd(
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(poly, t)), e);
  const __m256d neg = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  return _mm256_blendv_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), half_erfc),
                          half_erfc, neg);
}

}  // namespace

void normal_cdf_batch(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, cdf_group(_mm256_loadu_pd(x + i)));
  }
  if (i < n) {
    double tin[4] = {0, 0, 0, 0}, tout[4];
    for (std::size_t j = i; j < n; ++j) tin[j - i] = x[j];
    _mm256_storeu_pd(tout, cdf_group(_mm256_loadu_pd(tin)));
    for (std::size_t j = i; j < n; ++j) out[j] = tout[j - i];
  }
}

std::uint64_t uniform_lt_mask64(const std::uint64_t* raw, const double* p) {
  std::uint64_t mask = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + 4 * g));
    const __m256d u = u01_open(r);
    const __m256d lt = _mm256_cmp_pd(u, _mm256_loadu_pd(p + 4 * g),
                                     _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(lt)))
            << (4 * g);
  }
  return mask;
}

void xoshiro_soa_advance(std::uint64_t s[4][64], std::uint64_t* out) {
  for (int g = 0; g < 16; ++g) {
    const int l = 4 * g;
    __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[0][l]));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[1][l]));
    __m256i s2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[2][l]));
    __m256i s3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&s[3][l]));
    // result = rotl(s1*5, 7) * 9, with *5 and *9 as shift-adds.
    const __m256i x5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = _mm256_or_si256(_mm256_slli_epi64(x5, 7),
                                        _mm256_srli_epi64(x5, 57));
    const __m256i res = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + l), res);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45),
                         _mm256_srli_epi64(s3, 19));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[0][l]), s0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[1][l]), s1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[2][l]), s2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(&s[3][l]), s3);
  }
}

}  // namespace dhtrng::support::simd::avx2_k

#endif
