// NEON tier of the fast-noise kernels: same source as the scalar tier
// (simd_noise_kernels.inc).  NEON is baseline on aarch64, so no extra
// flags are needed — the fixed-width group loops vectorize 2 doubles wide
// and std::fma maps to fused multiply-add instructions.
#if defined(__aarch64__)

#define DHTRNG_KERNEL_NS neon_k
#include "support/simd_noise_kernels.inc"
#undef DHTRNG_KERNEL_NS

#endif
