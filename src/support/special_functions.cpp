#include "support/special_functions.h"

#include <cmath>
#include <limits>

namespace dhtrng::support {

namespace {

constexpr double kMachEp = 1.11022302462515654042e-16;  // 2^-53
constexpr double kMaxLog = 709.782712893383996732;
constexpr double kBig = 4.503599627370496e15;
constexpr double kBigInv = 2.22044604925031308085e-16;

/// lgamma(3) writes the global `signgam`, which races when concurrent
/// service shards compute p-values; the reentrant variant returns the
/// identical value without touching process-global state.
double log_gamma(double a) {
#if defined(__unix__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

}  // namespace

double igamc(double a, double x) {
  if (x <= 0 || a <= 0) return 1.0;
  if (x < 1.0 || x < a) return 1.0 - igam(a, x);

  double ax = a * std::log(x) - x - log_gamma(a);
  if (ax < -kMaxLog) return 0.0;
  ax = std::exp(ax);

  // Continued fraction (Cephes).
  double y = 1.0 - a;
  double z = x + y + 1.0;
  double c = 0.0;
  double pkm2 = 1.0, qkm2 = x;
  double pkm1 = x + 1.0, qkm1 = z * x;
  double ans = pkm1 / qkm1;
  double t;
  do {
    c += 1.0;
    y += 1.0;
    z += 2.0;
    const double yc = y * c;
    const double pk = pkm1 * z - pkm2 * yc;
    const double qk = qkm1 * z - qkm2 * yc;
    if (qk != 0.0) {
      const double r = pk / qk;
      t = std::fabs((ans - r) / r);
      ans = r;
    } else {
      t = 1.0;
    }
    pkm2 = pkm1;
    pkm1 = pk;
    qkm2 = qkm1;
    qkm1 = qk;
    if (std::fabs(pk) > kBig) {
      pkm2 *= kBigInv;
      pkm1 *= kBigInv;
      qkm2 *= kBigInv;
      qkm1 *= kBigInv;
    }
  } while (t > kMachEp);
  return ans * ax;
}

double igam(double a, double x) {
  if (x <= 0 || a <= 0) return 0.0;
  if (x > 1.0 && x > a) return 1.0 - igamc(a, x);

  double ax = a * std::log(x) - x - log_gamma(a);
  if (ax < -kMaxLog) return 0.0;
  ax = std::exp(ax);

  // Power series (Cephes).
  double r = a;
  double c = 1.0;
  double ans = 1.0;
  do {
    r += 1.0;
    c *= x / r;
    ans += c;
  } while (c / ans > kMachEp);
  return ans * ax / a;
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_q(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double erfc(double x) { return std::erfc(x); }

double chi_square_p_value(double x, double degrees_of_freedom) {
  if (degrees_of_freedom <= 0) return std::numeric_limits<double>::quiet_NaN();
  return igamc(degrees_of_freedom / 2.0, x / 2.0);
}

}  // namespace dhtrng::support
