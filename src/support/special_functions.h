// Special functions needed by the statistical test suites: the regularized
// incomplete gamma functions (chi-square tail probabilities), the normal
// CDF / Q-function (paper Eq. 2), and erfc wrappers.
//
// igam/igamc follow the classic Cephes series / continued-fraction split,
// which is also what the NIST STS reference implementation uses, so p-values
// agree with published NIST worked examples.
#pragma once

namespace dhtrng::support {

/// Regularized lower incomplete gamma P(a, x).
double igam(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double igamc(double a, double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Gaussian Q-function, Q(x) = 1 - normal_cdf(x).  This is the paper's
/// Eq. (2): the probability a metastable flip-flop settles to 1 given the
/// normalized sampling offset x = delta / sigma.
double normal_q(double x);

/// Complementary error function (thin wrapper over std::erfc, centralises
/// the dependency).
double erfc(double x);

/// Survival function of a chi-square distribution with k degrees of freedom
/// evaluated at x, i.e. the p-value of a chi-square statistic.
double chi_square_p_value(double x, double degrees_of_freedom);

}  // namespace dhtrng::support
