#include "support/stats_util.h"

#include <algorithm>
#include <cmath>

#include "support/special_functions.h"

namespace dhtrng::support {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double std_dev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double p_value_uniformity(std::span<const double> p_values) {
  if (p_values.empty()) return 0.0;
  constexpr int kBins = 10;
  int counts[kBins] = {};
  for (double p : p_values) {
    int bin = static_cast<int>(p * kBins);
    bin = std::clamp(bin, 0, kBins - 1);
    ++counts[bin];
  }
  const double expected = static_cast<double>(p_values.size()) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return igamc((kBins - 1) / 2.0, chi2 / 2.0);
}

double pass_proportion(std::span<const double> p_values, double alpha) {
  if (p_values.empty()) return 0.0;
  std::size_t pass = 0;
  for (double p : p_values) {
    if (p >= alpha) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(p_values.size());
}

double min_pass_proportion(std::size_t sample_count, double alpha) {
  if (sample_count == 0) return 0.0;
  const double p = 1.0 - alpha;
  return p - 3.0 * std::sqrt(p * alpha / static_cast<double>(sample_count));
}

std::size_t min_pass_count(std::size_t sample_count, double pass_probability,
                           double confidence) {
  if (sample_count == 0) return 0;
  // Walk the binomial CDF from 0 passes upward; the threshold is the first
  // k whose lower tail P(X < k) exceeds 1 - confidence.
  const double q = 1.0 - pass_probability;
  const double alpha = 1.0 - confidence;
  double tail = 0.0;
  // Log-space pmf walk: P(X = 0) = q^n underflows a double for large n.
  double log_pmf = static_cast<double>(sample_count) * std::log(q);
  const double log_ratio = std::log(pass_probability) - std::log(q);
  for (std::size_t k = 0; k <= sample_count; ++k) {
    tail += std::exp(log_pmf);
    if (tail > alpha) return k;
    // P(X = k+1) from P(X = k).
    log_pmf += std::log(static_cast<double>(sample_count - k) /
                        static_cast<double>(k + 1)) +
               log_ratio;
  }
  return sample_count;
}

std::string pass_fraction_string(std::span<const double> p_values,
                                 double alpha) {
  std::size_t pass = 0;
  for (double p : p_values) {
    if (p >= alpha) ++pass;
  }
  return std::to_string(pass) + "/" + std::to_string(p_values.size());
}

}  // namespace dhtrng::support
