// Small descriptive-statistics helpers shared by the test suites and the
// experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dhtrng::support {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double std_dev(std::span<const double> xs);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

/// Chi-square uniformity p-value of a set of p-values over 10 equal bins —
/// the "P-value of the P-values" the NIST STS final report prints per test.
double p_value_uniformity(std::span<const double> p_values);

/// Proportion of p-values >= alpha, as the STS proportion column.
double pass_proportion(std::span<const double> p_values, double alpha = 0.01);

/// Minimum passing proportion for a given sample size at alpha = 0.01
/// (the NIST three-sigma acceptance band lower edge).  Gaussian
/// approximation — only meaningful for sample counts of ~50+.
double min_pass_proportion(std::size_t sample_count, double alpha = 0.01);

/// Exact-binomial minimum pass count: the smallest k such that observing
/// fewer than k passes out of `sample_count` sequences is implausible
/// (probability < 1 - confidence) for a healthy generator with
/// per-sequence pass probability `pass_probability`.  Valid at any sample
/// size, unlike the Gaussian band.
std::size_t min_pass_count(std::size_t sample_count,
                           double pass_probability = 0.99,
                           double confidence = 0.999);

/// Format helper: "k/n" pass counter string used in the paper's tables.
std::string pass_fraction_string(std::span<const double> p_values,
                                 double alpha = 0.01);

}  // namespace dhtrng::support
