#include "support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dhtrng::support {

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t n = std::max<std::size_t>(n_threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per_chunk;
    const std::size_t hi = std::min(lo + per_chunk, end);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }

  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace dhtrng::support
