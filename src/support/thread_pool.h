// Fixed-size worker pool — the concurrency substrate for the parallel
// generation and statistical-suite paths.
//
// Design constraints, in order:
//  * determinism of *results* must never depend on scheduling: callers
//    partition work up front and merge in a fixed order, the pool only
//    supplies CPU time;
//  * bounded resources: a fixed number of std::thread workers created at
//    construction, no dynamic spawning;
//  * exceptions thrown by a task surface at the join point (the future, or
//    the parallel_for call), never terminate a worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dhtrng::support {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (at least 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t n_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task; the future reports completion (and rethrows any
  /// exception the task raised).
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for every i in [begin, end), partitioned into one
  /// contiguous chunk per worker, and block until all chunks finish.
  /// The first task exception (lowest chunk index) is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dhtrng::support
