// Word-parallel building blocks shared by the Wordwise statistics engine.
//
// The byte tables summarise the ±1 random walk of eight bits at a time
// (bit set -> +1, clear -> -1): the net displacement plus the extreme
// partial sums over the byte's non-empty prefixes.  A walk kernel adds the
// running sum to the prefix extremes to recover the exact per-bit extremes
// without visiting individual bits.  Tables exist for both traversal
// orders because the cumulative-sums test walks the stream forward
// (LSB-first within a packed word) and backward (MSB-first).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "support/bitstream.h"

namespace dhtrng::support::wordops {

struct ByteWalk {
  std::int8_t delta;       ///< sum of the eight ±1 steps
  std::int8_t max_prefix;  ///< max over the 8 non-empty prefix sums
  std::int8_t min_prefix;  ///< min over the 8 non-empty prefix sums
};

namespace detail {
constexpr std::array<ByteWalk, 256> make_walk_table(bool msb_first) {
  std::array<ByteWalk, 256> table{};
  for (int value = 0; value < 256; ++value) {
    int sum = 0;
    int max_prefix = -9;
    int min_prefix = 9;
    for (int step = 0; step < 8; ++step) {
      const int bit = msb_first ? (value >> (7 - step)) & 1 : (value >> step) & 1;
      sum += bit ? 1 : -1;
      if (sum > max_prefix) max_prefix = sum;
      if (sum < min_prefix) min_prefix = sum;
    }
    table[static_cast<std::size_t>(value)] = {
        static_cast<std::int8_t>(sum), static_cast<std::int8_t>(max_prefix),
        static_cast<std::int8_t>(min_prefix)};
  }
  return table;
}
}  // namespace detail

/// Walk table for bits taken LSB-first (stream order within a packed word).
inline constexpr std::array<ByteWalk, 256> kWalkForward =
    detail::make_walk_table(false);
/// Walk table for bits taken MSB-first (reverse stream order).
inline constexpr std::array<ByteWalk, 256> kWalkBackward =
    detail::make_walk_table(true);

/// Reverse the low `m` bits of `v` (m <= 64).  Maps an LSB-first window
/// value to the MSB-first convention used by the scalar pattern kernels.
constexpr std::uint64_t bit_reverse(std::uint64_t v, unsigned m) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < m; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

/// Call `emit(value, length)` for each maximal run of identical bits in
/// [begin, begin + len) of the stream, in order.  Runs are consumed with
/// trailing-one counts on 64-bit chunks, so the cost is O(runs + len/64)
/// rather than one branch per bit.
template <typename Fn>
inline void for_each_run(const BitStream& bits, std::size_t begin,
                         std::size_t len, Fn&& emit) {
  std::size_t i = 0;
  while (i < len) {
    const bool v = bits.chunk64(begin + i) & 1;
    std::size_t j = i;
    while (j < len) {
      std::uint64_t x = bits.chunk64(begin + j);
      if (!v) x = ~x;  // count the run as trailing ones either way
      const std::size_t valid = std::min<std::size_t>(64, len - j);
      const std::size_t k = std::min<std::size_t>(
          static_cast<std::size_t>(std::countr_one(x)), valid);
      j += k;
      if (k < valid || valid < 64) break;  // run ended, or stream ended
    }
    emit(v, j - i);
    i = j;
  }
}

}  // namespace dhtrng::support::wordops
