// Cross-validation of the two DH-TRNG backends: the fast phase-domain model
// must be statistically consistent with the event-driven gate-level netlist
// (DESIGN.md section 6).  We compare distribution-level properties — bias,
// serial correlation, run-length distribution — not bit-for-bit equality
// (the backends use different noise representations).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dhtrng.h"
#include "stats/correlation.h"

namespace dhtrng::core {
namespace {

support::BitStream generate(Backend backend, std::uint64_t seed,
                            std::size_t nbits) {
  DhTrng t{{.seed = seed, .backend = backend}};
  return t.generate(nbits);
}

TEST(BackendEquivalence, BothBalanced) {
  const auto fast = generate(Backend::Fast, 21, 20000);
  const auto gate = generate(Backend::GateLevel, 21, 20000);
  EXPECT_LT(stats::bias_percent(fast), 2.5);
  EXPECT_LT(stats::bias_percent(gate), 2.5);
}

TEST(BackendEquivalence, BothLowAutocorrelation) {
  const auto fast = generate(Backend::Fast, 22, 20000);
  const auto gate = generate(Backend::GateLevel, 22, 20000);
  for (std::size_t lag = 0; lag < 5; ++lag) {
    EXPECT_LT(std::abs(stats::autocorrelation(fast, 5)[lag]), 0.05);
    EXPECT_LT(std::abs(stats::autocorrelation(gate, 5)[lag]), 0.05);
  }
}

TEST(BackendEquivalence, RunLengthDistributionsAgree) {
  const auto runs_histogram = [](const support::BitStream& bits) {
    std::array<double, 6> h{};
    std::size_t run = 1, total = 0;
    for (std::size_t i = 1; i < bits.size(); ++i) {
      if (bits[i] == bits[i - 1]) {
        ++run;
      } else {
        ++h[std::min<std::size_t>(run, 6) - 1];
        ++total;
        run = 1;
      }
    }
    for (auto& v : h) v /= static_cast<double>(total);
    return h;
  };
  const auto fast = runs_histogram(generate(Backend::Fast, 23, 40000));
  const auto gate = runs_histogram(generate(Backend::GateLevel, 23, 40000));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(fast[i], gate[i], 0.05) << "run length " << i + 1;
  }
  // And both near the ideal geometric distribution 2^-k.
  EXPECT_NEAR(fast[0], 0.5, 0.05);
  EXPECT_NEAR(gate[0], 0.5, 0.05);
}

TEST(BackendEquivalence, GateLevelIsDeterministicPerSeed) {
  EXPECT_EQ(generate(Backend::GateLevel, 5, 3000),
            generate(Backend::GateLevel, 5, 3000));
  EXPECT_NE(generate(Backend::GateLevel, 5, 3000),
            generate(Backend::GateLevel, 6, 3000));
}

TEST(BackendEquivalence, GateLevelRestartDiverges) {
  DhTrng t{{.seed = 31, .backend = Backend::GateLevel}};
  const auto a = t.generate(1000);
  t.restart();
  const auto b = t.generate(1000);
  EXPECT_NE(a, b);
}

TEST(BackendEquivalence, GateLevelExercisesMetastability) {
  DhTrng t{{.seed = 32, .backend = Backend::GateLevel}};
  t.generate(3000);
  ASSERT_NE(t.simulator(), nullptr);
  EXPECT_GT(t.simulator()->metastable_samples(), 0u);
}

TEST(BackendEquivalence, FastBackendHasNoSimulator) {
  DhTrng t{{.seed = 33}};
  EXPECT_EQ(t.simulator(), nullptr);
}

}  // namespace
}  // namespace dhtrng::core
